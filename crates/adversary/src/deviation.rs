//! The deviation vocabulary: strategic transformations of a `(tree, asks)`
//! scenario.
//!
//! Each [`Deviation`] rewrites a [`BaseScenario`] into an [`Attacked`]
//! scenario and reports which user slots belong to the attacker
//! ([`Identity`]). The transformations are pure data manipulation over
//! `rit-model` and `rit-tree` types — no mechanism in sight — which is what
//! lets `rit-core` probes, `rit-sim` experiments, and the `experiments`
//! binary share them.

use std::borrow::Cow;

use rand::{Rng, RngCore};

use rit_model::{Ask, TaskTypeId};
use rit_tree::sybil::{self, SybilPlan};
use rit_tree::{IncentiveTree, NodeId};

use crate::error::AdversaryError;

/// The honest scenario a deviation starts from.
///
/// `costs` holds each user's *true* unit cost `cⱼ` (used to price the
/// attacker's allocation); callers that only evaluate attacker-free
/// deviations (e.g. platform-side [`Screening`]) may pass an empty slice.
#[derive(Clone, Copy, Debug)]
pub struct BaseScenario<'a> {
    /// The honest incentive tree.
    pub tree: &'a IncentiveTree,
    /// The honest ask vector, aligned with `tree`'s user nodes.
    pub asks: &'a [Ask],
    /// True unit costs, indexed by user. Must cover every user referenced
    /// by a deviation's [`Identity::origin`] or attacker set.
    pub costs: &'a [f64],
}

/// One user slot controlled by the attacker in an attacked scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Identity {
    /// The user index of this identity in the *attacked* scenario.
    pub user: usize,
    /// The user (in the *base* scenario) whose true cost applies: a sybil
    /// identity performs tasks at the victim's real cost, a coalition
    /// member at its own.
    pub origin: usize,
}

/// A scenario after a deviation was applied.
///
/// Tree and asks are [`Cow`]s: deviations that leave them untouched (e.g.
/// [`Screening`]) borrow the base scenario, so the honest structures are
/// never copied just to be re-run.
#[derive(Clone, Debug)]
pub struct Attacked<'a> {
    /// The post-attack incentive tree.
    pub tree: Cow<'a, IncentiveTree>,
    /// The post-attack ask vector (aligned with `tree`'s user nodes).
    pub asks: Cow<'a, [Ask]>,
    /// The attacker's identities in the attacked scenario.
    pub identities: Vec<Identity>,
    /// Per-user eligibility mask for platform-side screening deviations
    /// (`None` means everyone participates).
    pub eligible: Option<Vec<bool>>,
}

impl<'a> Attacked<'a> {
    /// An untouched copy of the base scenario (no attacker, no mask).
    #[must_use]
    pub fn honest(base: &BaseScenario<'a>) -> Self {
        Self {
            tree: Cow::Borrowed(base.tree),
            asks: Cow::Borrowed(base.asks),
            identities: Vec::new(),
            eligible: None,
        }
    }
}

/// A strategic deviation from honest participation.
///
/// Implementations must be deterministic given the scenario and the
/// generator state: all randomness comes from `rng`, and the runner hands
/// the *same* generator to the mechanism afterwards, so the number of
/// draws an implementation makes is part of its reproducibility contract.
pub trait Deviation: Send + Sync {
    /// A short kind label (stable across runs; used in reports).
    fn name(&self) -> &str;

    /// The base-scenario users the attacker controls. Their summed honest
    /// utility is the baseline the deviation is compared against.
    fn attacker(&self) -> Vec<usize>;

    /// Transforms the base scenario into the attacked scenario.
    ///
    /// # Errors
    ///
    /// Returns [`AdversaryError`] when the deviation is ill-formed for this
    /// scenario (invalid rewritten ask, out-of-range user, tree error).
    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        rng: &mut dyn RngCore,
    ) -> Result<Attacked<'a>, AdversaryError>;
}

/// How a [`SybilSplit`]'s identities price themselves.
#[derive(Clone, Debug, PartialEq)]
pub enum SybilPricing {
    /// All identities ask `unit_price`, splitting the victim's claimed
    /// quantity uniformly at random into positive parts (the Lemma 6.4
    /// equal-ask attack and the Fig 9 generator).
    Uniform {
        /// The per-identity unit price.
        unit_price: f64,
    },
    /// Explicit per-identity asks (must match the plan's identity count
    /// and keep the victim's task type) — e.g. the ablation's
    /// withhold-and-decoy pair.
    Explicit(Vec<Ask>),
}

/// A §3-B sybil attack: `user` splits into `plan.num_identities` fake
/// identities re-arranged per `plan`, with asks given by `pricing`.
#[derive(Clone, Debug)]
pub struct SybilSplit {
    /// The attacking user (victim slot of the split).
    pub user: usize,
    /// Identity count and topology.
    pub plan: SybilPlan,
    /// How the identities bid.
    pub pricing: SybilPricing,
}

impl Deviation for SybilSplit {
    fn name(&self) -> &str {
        "sybil"
    }

    fn attacker(&self) -> Vec<usize> {
        vec![self.user]
    }

    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        rng: &mut dyn RngCore,
    ) -> Result<Attacked<'a>, AdversaryError> {
        if self.user >= base.asks.len() {
            return Err(AdversaryError::UserOutOfRange {
                user: self.user,
                users: base.asks.len(),
            });
        }
        let victim_ask = base.asks[self.user];
        // Draw order matters for stream reproducibility: quantity split
        // first, then the tree transformation.
        let identity_asks: Cow<'_, [Ask]> = match &self.pricing {
            SybilPricing::Uniform { unit_price } => Cow::Owned(uniform_identity_asks(
                victim_ask.task_type(),
                victim_ask.quantity().max(self.plan.num_identities as u64),
                self.plan.num_identities,
                *unit_price,
                rng,
            )),
            SybilPricing::Explicit(asks) => Cow::Borrowed(asks.as_slice()),
        };
        let sc = apply_sybil_attack(
            base.tree,
            base.asks,
            self.user,
            &identity_asks,
            &self.plan,
            rng,
        )?;
        Ok(Attacked {
            tree: Cow::Owned(sc.tree),
            asks: Cow::Owned(sc.asks),
            identities: sc
                .identity_users
                .into_iter()
                .map(|user| Identity {
                    user,
                    origin: self.user,
                })
                .collect(),
            eligible: None,
        })
    }
}

/// A price misreport: `user` bids `factor ×` its honest unit price
/// (overbidding for `factor > 1`, shading for `factor < 1`; Lemma 6.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PriceMisreport {
    /// The misreporting user.
    pub user: usize,
    /// Multiplier on the honest unit price.
    pub factor: f64,
}

impl Deviation for PriceMisreport {
    fn name(&self) -> &str {
        "misreport"
    }

    fn attacker(&self) -> Vec<usize> {
        vec![self.user]
    }

    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        _rng: &mut dyn RngCore,
    ) -> Result<Attacked<'a>, AdversaryError> {
        let asks = rewrite_ask(base.asks, self.user, |a| {
            a.with_unit_price(a.unit_price() * self.factor)
        })?;
        let identities = vec![Identity {
            user: self.user,
            origin: self.user,
        }];
        Ok(Attacked {
            tree: Cow::Borrowed(base.tree),
            asks: Cow::Owned(asks),
            identities,
            eligible: None,
        })
    }
}

/// A quantity withhold: `user` claims only `quantity` tasks instead of its
/// full capacity (revealing `Kⱼ` should be weakly best).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Withholding {
    /// The withholding user.
    pub user: usize,
    /// The under-claimed quantity.
    pub quantity: u64,
}

impl Deviation for Withholding {
    fn name(&self) -> &str {
        "withholding"
    }

    fn attacker(&self) -> Vec<usize> {
        vec![self.user]
    }

    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        _rng: &mut dyn RngCore,
    ) -> Result<Attacked<'a>, AdversaryError> {
        let asks = rewrite_ask(base.asks, self.user, |a| a.with_quantity(self.quantity))?;
        let identities = vec![Identity {
            user: self.user,
            origin: self.user,
        }];
        Ok(Attacked {
            tree: Cow::Borrowed(base.tree),
            asks: Cow::Owned(asks),
            identities,
            eligible: None,
        })
    }
}

/// A `K`-coalition price manipulation: every member bids `factor ×` its
/// honest price in concert; the coalition's pooled utility is compared
/// against its pooled honest utility (the `(K_max, H)`-collusion notion).
#[derive(Clone, Debug, PartialEq)]
pub struct Coalition {
    /// The colluding users.
    pub members: Vec<usize>,
    /// Multiplier on each member's honest unit price.
    pub factor: f64,
}

impl Deviation for Coalition {
    fn name(&self) -> &str {
        "coalition"
    }

    fn attacker(&self) -> Vec<usize> {
        self.members.clone()
    }

    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        _rng: &mut dyn RngCore,
    ) -> Result<Attacked<'a>, AdversaryError> {
        let mut asks = base.asks.to_vec();
        for &m in &self.members {
            if m >= asks.len() {
                return Err(AdversaryError::UserOutOfRange {
                    user: m,
                    users: asks.len(),
                });
            }
            asks[m] = asks[m].with_unit_price(asks[m].unit_price() * self.factor)?;
        }
        let identities = self
            .members
            .iter()
            .map(|&user| Identity { user, origin: user })
            .collect();
        Ok(Attacked {
            tree: Cow::Borrowed(base.tree),
            asks: Cow::Owned(asks),
            identities,
            eligible: None,
        })
    }
}

/// Platform-side quality screening: each user independently survives with
/// probability `1 − fraction` (one uniform draw per user, in user order).
///
/// This is a *platform* deviation — there is no attacker, so its
/// [`GainReport`](crate::GainReport) side is evaluated through the
/// single-arm [`ProbeRunner::deviant_replication`](crate::ProbeRunner)
/// path and the utility fields stay zero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Screening {
    /// Fraction of users screened out in expectation (`0 ≤ fraction ≤ 1`).
    pub fraction: f64,
}

impl Deviation for Screening {
    fn name(&self) -> &str {
        "screening"
    }

    fn attacker(&self) -> Vec<usize> {
        Vec::new()
    }

    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        rng: &mut dyn RngCore,
    ) -> Result<Attacked<'a>, AdversaryError> {
        // Random exogenous quality scores; threshold at `fraction`. One
        // draw per user even at fraction 0, to keep the stream stable
        // across screening levels.
        let eligible: Vec<bool> = (0..base.asks.len())
            .map(|_| rng.gen::<f64>() >= self.fraction)
            .collect();
        Ok(Attacked {
            tree: Cow::Borrowed(base.tree),
            asks: Cow::Borrowed(base.asks),
            identities: Vec::new(),
            eligible: Some(eligible),
        })
    }
}

fn rewrite_ask(
    asks: &[Ask],
    user: usize,
    f: impl FnOnce(&Ask) -> Result<Ask, rit_model::ModelError>,
) -> Result<Vec<Ask>, AdversaryError> {
    if user >= asks.len() {
        return Err(AdversaryError::UserOutOfRange {
            user,
            users: asks.len(),
        });
    }
    let mut asks = asks.to_vec();
    asks[user] = f(&asks[user])?;
    Ok(asks)
}

/// A `(tree, asks)` scenario after a sybil attack, plus the user indices of
/// the attacker's identities.
#[derive(Clone, Debug)]
pub struct SybilScenario {
    /// The post-attack incentive tree.
    pub tree: IncentiveTree,
    /// The post-attack ask vector (aligned with `tree`'s user nodes).
    pub asks: Vec<Ask>,
    /// User indices of the attacker's identities.
    pub identity_users: Vec<usize>,
}

/// Applies a sybil attack to a `(tree, asks)` scenario.
///
/// [`rit_tree::sybil`] rewires the tree; this function completes the attack
/// by also rewriting the *ask vector*: the victim's ask is replaced by the
/// first identity's ask and the remaining identity asks are appended in
/// step with the appended identity nodes. `victim_user` is the attacker's
/// user index; `identity_asks` are the asks its `δ` identities will submit
/// (all must share the victim's task type — the paper's `t_{j_l} = t_j`
/// assumption — and there must be exactly `plan.num_identities` of them).
/// The *caller* is responsible for keeping `Σ k_{j_l}` within the
/// attacker's true capacity, which the platform cannot observe.
///
/// # Errors
///
/// Propagates tree-transformation errors ([`AdversaryError::Tree`]).
///
/// # Panics
///
/// Panics if `identity_asks.len() != plan.num_identities`, if any identity
/// ask changes task type, or if `victim_user` is out of range.
pub fn apply_sybil_attack<R: Rng + ?Sized>(
    tree: &IncentiveTree,
    asks: &[Ask],
    victim_user: usize,
    identity_asks: &[Ask],
    plan: &SybilPlan,
    rng: &mut R,
) -> Result<SybilScenario, AdversaryError> {
    assert_eq!(asks.len(), tree.num_users(), "asks must align with tree");
    assert!(victim_user < asks.len(), "victim user out of range");
    assert_eq!(
        identity_asks.len(),
        plan.num_identities,
        "need one ask per identity"
    );
    let victim_type = asks[victim_user].task_type();
    assert!(
        identity_asks.iter().all(|a| a.task_type() == victim_type),
        "identities must keep the victim's task type"
    );

    let victim_node = NodeId::from_user_index(victim_user);
    let outcome = sybil::apply(plan, tree, victim_node, rng)?;

    let mut new_asks = asks.to_vec();
    new_asks[victim_user] = identity_asks[0];
    new_asks.extend_from_slice(&identity_asks[1..]);
    debug_assert_eq!(new_asks.len(), outcome.tree.num_users());

    let identity_users = outcome
        .identities
        .iter()
        .map(|id| id.user_index().expect("identities are user nodes"))
        .collect();

    Ok(SybilScenario {
        tree: outcome.tree,
        asks: new_asks,
        identity_users,
    })
}

/// Builds `δ` identity asks that split `total_quantity` uniformly at random
/// into positive parts, all at the same `unit_price` — the Lemma 6.4
/// equal-ask attack and the Fig 9 generator.
///
/// # Panics
///
/// Panics if `delta == 0`, `total_quantity < delta`, or `unit_price` is
/// invalid.
#[must_use]
pub fn uniform_identity_asks<R: Rng + ?Sized>(
    task_type: TaskTypeId,
    total_quantity: u64,
    delta: usize,
    unit_price: f64,
    rng: &mut R,
) -> Vec<Ask> {
    sybil::split_quantity(total_quantity, delta, rng)
        .into_iter()
        .map(|k| Ask::new(task_type, k, unit_price).expect("valid split ask"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_tree::generate;

    fn t0() -> TaskTypeId {
        TaskTypeId::new(0)
    }

    fn base_world() -> (IncentiveTree, Vec<Ask>, Vec<f64>) {
        let tree = generate::path(4);
        let asks = vec![
            Ask::new(t0(), 3, 2.0).unwrap(),
            Ask::new(t0(), 4, 3.0).unwrap(),
            Ask::new(TaskTypeId::new(1), 2, 1.0).unwrap(),
            Ask::new(t0(), 1, 5.0).unwrap(),
        ];
        let costs = vec![2.0, 3.0, 1.0, 5.0];
        (tree, asks, costs)
    }

    #[test]
    fn sybil_split_rewrites_tree_asks_and_identities() {
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let dev = SybilSplit {
            user: 1,
            plan: SybilPlan::chain(2),
            pricing: SybilPricing::Uniform { unit_price: 3.0 },
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let attacked = dev.apply(&base, &mut rng).unwrap();
        assert_eq!(attacked.tree.num_users(), 5);
        assert_eq!(attacked.asks.len(), 5);
        assert_eq!(
            attacked.identities,
            vec![
                Identity { user: 1, origin: 1 },
                Identity { user: 4, origin: 1 }
            ]
        );
        // Quantity conserved across the split, price uniform.
        let split: u64 = [1usize, 4]
            .iter()
            .map(|&u| attacked.asks[u].quantity())
            .sum();
        assert_eq!(split, 4);
        assert!(attacked.asks[1].unit_price() == 3.0 && attacked.asks[4].unit_price() == 3.0);
        // Non-victims untouched.
        assert_eq!(attacked.asks[0], asks[0]);
        assert_eq!(attacked.asks[2], asks[2]);
        assert_eq!(attacked.asks[3], asks[3]);
    }

    #[test]
    fn sybil_split_matches_manual_application_on_shared_stream() {
        // The deviation must consume the generator exactly like the manual
        // split-then-attack sequence the probes used to hand-roll.
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let plan = SybilPlan::random(3);
        let dev = SybilSplit {
            user: 1,
            plan,
            pricing: SybilPricing::Uniform { unit_price: 3.0 },
        };
        let mut dev_rng = SmallRng::seed_from_u64(42);
        let attacked = dev.apply(&base, &mut dev_rng).unwrap();

        let mut manual_rng = SmallRng::seed_from_u64(42);
        let identity_asks = uniform_identity_asks(t0(), 4, 3, 3.0, &mut manual_rng);
        let manual =
            apply_sybil_attack(&tree, &asks, 1, &identity_asks, &plan, &mut manual_rng).unwrap();
        assert_eq!(attacked.asks.as_ref(), manual.asks.as_slice());
        assert_eq!(
            attacked
                .identities
                .iter()
                .map(|i| i.user)
                .collect::<Vec<_>>(),
            manual.identity_users
        );
        // Both generators must land in the same state.
        assert_eq!(dev_rng.gen::<u64>(), manual_rng.gen::<u64>());
    }

    #[test]
    fn explicit_pricing_uses_given_asks_verbatim() {
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let decoys = vec![
            Ask::new(t0(), 3, 3.0).unwrap(),
            Ask::new(t0(), 1, 9.5).unwrap(),
        ];
        let dev = SybilSplit {
            user: 1,
            plan: SybilPlan::chain(2),
            pricing: SybilPricing::Explicit(decoys.clone()),
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let attacked = dev.apply(&base, &mut rng).unwrap();
        assert_eq!(attacked.asks[1], decoys[0]);
        assert_eq!(attacked.asks[4], decoys[1]);
    }

    #[test]
    fn misreport_and_withholding_rewrite_one_ask() {
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let over = PriceMisreport {
            user: 0,
            factor: 1.5,
        }
        .apply(&base, &mut rng)
        .unwrap();
        assert_eq!(over.asks[0].unit_price(), 3.0);
        assert_eq!(over.asks[1], asks[1]);
        assert!(matches!(over.tree, Cow::Borrowed(_)));

        let under = Withholding {
            user: 1,
            quantity: 1,
        }
        .apply(&base, &mut rng)
        .unwrap();
        assert_eq!(under.asks[1].quantity(), 1);
        assert_eq!(under.identities, vec![Identity { user: 1, origin: 1 }]);
    }

    #[test]
    fn invalid_rewrites_surface_model_errors() {
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let bad_price = PriceMisreport {
            user: 0,
            factor: -1.0,
        }
        .apply(&base, &mut rng);
        assert!(matches!(bad_price, Err(AdversaryError::Model(_))));
        let bad_quantity = Withholding {
            user: 0,
            quantity: 0,
        }
        .apply(&base, &mut rng);
        assert!(matches!(bad_quantity, Err(AdversaryError::Model(_))));
        let out_of_range = PriceMisreport {
            user: 99,
            factor: 1.1,
        }
        .apply(&base, &mut rng);
        assert!(matches!(
            out_of_range,
            Err(AdversaryError::UserOutOfRange { user: 99, users: 4 })
        ));
    }

    #[test]
    fn coalition_scales_every_member() {
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let dev = Coalition {
            members: vec![0, 3],
            factor: 2.0,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let attacked = dev.apply(&base, &mut rng).unwrap();
        assert_eq!(attacked.asks[0].unit_price(), 4.0);
        assert_eq!(attacked.asks[3].unit_price(), 10.0);
        assert_eq!(attacked.asks[1], asks[1]);
        assert_eq!(dev.attacker(), vec![0, 3]);
        assert_eq!(attacked.identities.len(), 2);
    }

    #[test]
    fn screening_draws_one_lottery_per_user() {
        let (tree, asks, costs) = base_world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let attacked = Screening { fraction: 0.5 }.apply(&base, &mut rng).unwrap();
        let eligible = attacked.eligible.as_ref().unwrap();
        assert_eq!(eligible.len(), 4);
        // Exactly n draws were consumed: replaying them yields the mask.
        let mut replay = SmallRng::seed_from_u64(5);
        let expected: Vec<bool> = (0..4).map(|_| replay.gen::<f64>() >= 0.5).collect();
        assert_eq!(eligible, &expected);
        assert_eq!(rng.gen::<u64>(), replay.gen::<u64>());
        // Fraction 0 keeps everyone but still consumes the stream.
        let mut rng0 = SmallRng::seed_from_u64(5);
        let all = Screening { fraction: 0.0 }.apply(&base, &mut rng0).unwrap();
        assert!(all.eligible.unwrap().iter().all(|&e| e));
    }

    #[test]
    #[should_panic(expected = "task type")]
    fn sybil_identities_cannot_switch_type() {
        let (tree, asks, _) = base_world();
        let mut rng = SmallRng::seed_from_u64(3);
        let bad = vec![
            Ask::new(TaskTypeId::new(1), 1, 3.0).unwrap(),
            Ask::new(t0(), 1, 3.0).unwrap(),
        ];
        let _ = apply_sybil_attack(&tree, &asks, 1, &bad, &SybilPlan::star(2), &mut rng);
    }

    #[test]
    fn uniform_identity_asks_conserve_quantity() {
        let mut rng = SmallRng::seed_from_u64(4);
        for delta in 1..=6 {
            let asks = uniform_identity_asks(t0(), 12, delta, 2.5, &mut rng);
            assert_eq!(asks.len(), delta);
            assert_eq!(asks.iter().map(Ask::quantity).sum::<u64>(), 12);
            assert!(asks.iter().all(|a| a.unit_price() == 2.5));
        }
    }
}
