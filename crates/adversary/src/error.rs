//! Errors of the adversary layer.

use std::error::Error;
use std::fmt;

use rit_model::ModelError;
use rit_tree::TreeError;

/// Error returned when constructing or applying a deviation.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AdversaryError {
    /// A tree transformation failed (e.g. a sybil attack on the root).
    Tree(TreeError),
    /// A rewritten ask was invalid (e.g. a misreport factor producing a
    /// non-positive price, or a withheld quantity of zero).
    Model(ModelError),
    /// A deviation referenced a user outside the scenario.
    UserOutOfRange {
        /// The offending user index.
        user: usize,
        /// Number of users in the scenario.
        users: usize,
    },
    /// The ask vector does not align with the tree's user count.
    AskCountMismatch {
        /// Number of asks supplied.
        asks: usize,
        /// Number of user nodes in the incentive tree.
        users: usize,
    },
    /// A declarative attack spec could not be parsed or resolved.
    InvalidSpec {
        /// The offending spec line.
        line: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl fmt::Display for AdversaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Tree(e) => write!(f, "tree transformation failed: {e}"),
            Self::Model(e) => write!(f, "deviation produced an invalid ask: {e}"),
            Self::UserOutOfRange { user, users } => {
                write!(
                    f,
                    "deviation targets user {user} in a scenario of {users} users"
                )
            }
            Self::AskCountMismatch { asks, users } => {
                write!(
                    f,
                    "got {asks} asks for an incentive tree with {users} users"
                )
            }
            Self::InvalidSpec { line, reason } => {
                write!(f, "invalid attack spec `{line}`: {reason}")
            }
        }
    }
}

impl Error for AdversaryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Tree(e) => Some(e),
            Self::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for AdversaryError {
    fn from(e: TreeError) -> Self {
        Self::Tree(e)
    }
}

impl From<ModelError> for AdversaryError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_sources_chain() {
        let errs = [
            AdversaryError::Tree(TreeError::CannotAttackRoot),
            AdversaryError::Model(ModelError::ZeroQuantity),
            AdversaryError::UserOutOfRange { user: 9, users: 4 },
            AdversaryError::AskCountMismatch { asks: 3, users: 5 },
            AdversaryError::InvalidSpec {
                line: "sybil foo".into(),
                reason: "unknown key".into(),
            },
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[0].source().is_some());
        assert!(errs[1].source().is_some());
        assert!(errs[2].source().is_none());
    }

    #[test]
    fn conversions_from_layer_errors() {
        let t: AdversaryError = TreeError::CannotAttackRoot.into();
        assert_eq!(t, AdversaryError::Tree(TreeError::CannotAttackRoot));
        let m: AdversaryError = ModelError::ZeroQuantity.into();
        assert_eq!(m, AdversaryError::Model(ModelError::ZeroQuantity));
    }
}
