//! The adversary layer of the RIT reproduction: **one deviation vocabulary
//! for every attack the paper studies**, shared by unit probes
//! (`rit-core`), the simulation harness (`rit-sim`), and the `experiments`
//! binary.
//!
//! The paper's robustness claims all have the same experimental shape: take
//! a `(tree, asks)` scenario, transform it into an attacked scenario (a
//! sybil split, a price misreport, a quantity withhold, a colluding
//! coalition, a platform-side screening pass), run the mechanism on both
//! the honest and the attacked scenario over *paired seeds*, and compare
//! the attacker's utility across arms. Before this crate each consumer
//! hand-rolled that loop; here it is factored into three pieces:
//!
//! * [`Deviation`] — an object-safe strategy transforming a
//!   [`BaseScenario`] into an [`Attacked`] scenario plus the attacker's
//!   identity set ([`SybilSplit`], [`PriceMisreport`], [`Withholding`],
//!   [`Coalition`], [`Screening`]);
//! * [`ProbeRunner`] — the paired-seed evaluation loop. It is generic over
//!   an *evaluation closure* `(ScenarioView, &mut SmallRng) -> Evaluation`,
//!   so this crate never depends on the mechanism: `rit-core` plugs in
//!   `Rit::run_with_workspace`, a test could plug in a stub;
//! * [`AttackSuite`] — a named set of deviations (parsed from a
//!   declarative text spec or built in code) evaluated in one batched pass
//!   that shares each replication's honest run across all deviations.
//!
//! Randomness discipline: every replication `r` derives a fresh seed from a
//! [`SeedSchedule`]; the deviant arm draws its attack randomness (identity
//! arrangement, quantity splits, screening lotteries) *first* and the
//! mechanism continues on the same generator, which reproduces the exact
//! streams of the pre-existing hand-rolled loops bit for bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod deviation;
mod error;
mod observer;
mod runner;
mod suite;

pub use deviation::{
    apply_sybil_attack, uniform_identity_asks, Attacked, BaseScenario, Coalition, Deviation,
    Identity, PriceMisreport, Screening, SybilPricing, SybilScenario, SybilSplit, Withholding,
};
pub use error::AdversaryError;
pub use observer::{AttackObserver, NoopAttackObserver};
pub use runner::{
    derive_seed, ArmOutcome, Evaluation, GainReport, PairedOutcome, ProbeRunner, ScenarioView,
    SeedSchedule,
};
pub use suite::{AttackResult, AttackSuite, DeviationSpec, UserSelector};
