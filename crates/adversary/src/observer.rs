//! Observation hooks into a suite evaluation, mirroring `rit-core`'s
//! `AuctionObserver`: the runner pushes events, implementations aggregate
//! whatever they need (progress bars, per-replication dumps, counters)
//! without the runner allocating trace structures it may not need.

use crate::runner::{GainReport, PairedOutcome};

/// Observer of an [`AttackSuite`](crate::AttackSuite) /
/// [`ProbeRunner::run_suite`](crate::ProbeRunner::run_suite) evaluation.
///
/// All methods default to no-ops so implementations subscribe only to the
/// events they care about.
pub trait AttackObserver {
    /// A suite evaluation begins: `deviations` attacks × `runs`
    /// replications.
    fn suite_start(&mut self, deviations: usize, runs: usize) {
        let _ = (deviations, runs);
    }

    /// One paired replication of attack `attack` (by index and name)
    /// finished.
    fn replication(&mut self, attack: usize, name: &str, r: usize, outcome: &PairedOutcome) {
        let _ = (attack, name, r, outcome);
    }

    /// Attack `attack` finished all replications with `report`.
    fn attack_summary(&mut self, attack: usize, name: &str, report: &GainReport) {
        let _ = (attack, name, report);
    }

    /// The suite evaluation finished.
    fn suite_end(&mut self) {}
}

/// The do-nothing observer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopAttackObserver;

impl AttackObserver for NoopAttackObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ArmOutcome;

    #[derive(Default)]
    struct Counter {
        replications: usize,
        summaries: usize,
        started: bool,
        ended: bool,
    }

    impl AttackObserver for Counter {
        fn suite_start(&mut self, _d: usize, _r: usize) {
            self.started = true;
        }
        fn replication(&mut self, _a: usize, _n: &str, _r: usize, _o: &PairedOutcome) {
            self.replications += 1;
        }
        fn attack_summary(&mut self, _a: usize, _n: &str, _report: &GainReport) {
            self.summaries += 1;
        }
        fn suite_end(&mut self) {
            self.ended = true;
        }
    }

    #[test]
    fn default_hooks_are_noops_and_custom_hooks_fire() {
        let outcome = PairedOutcome {
            honest: ArmOutcome {
                utility: 0.0,
                completed: true,
                total_payment: 1.0,
            },
            deviant: ArmOutcome {
                utility: 0.5,
                completed: true,
                total_payment: 1.5,
            },
        };
        let report = GainReport::from_paired_samples(&[0.0], &[0.5]);
        // Noop accepts everything silently.
        let mut noop = NoopAttackObserver;
        noop.suite_start(2, 3);
        noop.replication(0, "sybil", 0, &outcome);
        noop.attack_summary(0, "sybil", &report);
        noop.suite_end();
        // A counting observer sees each event.
        let mut counter = Counter::default();
        counter.suite_start(1, 1);
        counter.replication(0, "sybil", 0, &outcome);
        counter.attack_summary(0, "sybil", &report);
        counter.suite_end();
        assert!(counter.started && counter.ended);
        assert_eq!(counter.replications, 1);
        assert_eq!(counter.summaries, 1);
    }
}
