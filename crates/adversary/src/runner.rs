//! The paired-seed evaluation loop shared by every attack experiment.
//!
//! [`ProbeRunner`] owns the statistics; the *mechanism* is injected as an
//! evaluation closure `(ScenarioView, &mut SmallRng) -> Evaluation`, so the
//! runner works for RIT, the naive auction, or any future mechanism without
//! this crate depending on them. Per replication `r` the runner reseeds a
//! fresh generator from its [`SeedSchedule`] for *each arm*: the honest arm
//! evaluates the base scenario directly; the deviant arm first lets the
//! [`Deviation`] draw its attack randomness and then continues the
//! mechanism on the same generator — the exact discipline the hand-rolled
//! probe loops used, preserved bit for bit.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rit_model::Ask;
use rit_tree::IncentiveTree;

use crate::deviation::{BaseScenario, Deviation};
use crate::error::AdversaryError;
use crate::observer::AttackObserver;

/// Derives a per-run seed from an experiment seed, a sweep-point index, and
/// a replication index — stable across runs and distinct across points
/// (SplitMix64 finalizer over the packed triple).
#[must_use]
pub fn derive_seed(experiment_seed: u64, point: u64, replication: u64) -> u64 {
    let mut z = experiment_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(point.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(replication.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How replication indices map to seeds.
///
/// Both conventions predate this crate and are kept verbatim so fixed-seed
/// results (and the statistical tests calibrated on them) are unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeedSchedule {
    /// The probe convention: `seed ^ (r · 0x9E37)` (replication 0 uses
    /// `seed` itself, which fixed-seed regression tests rely on).
    Xor {
        /// The probe's base seed.
        seed: u64,
    },
    /// The experiment convention: [`derive_seed`]`(master, point, r)`.
    Derived {
        /// The experiment's master seed.
        master: u64,
        /// The sweep-point index.
        point: u64,
    },
}

impl SeedSchedule {
    /// The seed for replication `r`.
    #[must_use]
    pub fn replication_seed(&self, r: usize) -> u64 {
        match *self {
            Self::Xor { seed } => seed ^ (r as u64).wrapping_mul(0x9E37),
            Self::Derived { master, point } => derive_seed(master, point, r as u64),
        }
    }

    /// A fresh generator for replication `r`.
    #[must_use]
    pub fn rng(&self, r: usize) -> SmallRng {
        SmallRng::seed_from_u64(self.replication_seed(r))
    }
}

/// The scenario an evaluation closure runs the mechanism on: either the
/// honest base or a deviation's output.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioView<'s> {
    /// The incentive tree.
    pub tree: &'s IncentiveTree,
    /// The ask vector (aligned with `tree`'s user nodes).
    pub asks: &'s [Ask],
    /// Screening mask, when the deviation imposes one.
    pub eligible: Option<&'s [bool]>,
}

/// What a mechanism run yields, in adversary-layer terms.
#[derive(Clone, Debug, PartialEq)]
pub struct Evaluation {
    /// Final payment per user slot.
    pub payments: Vec<f64>,
    /// Allocated tasks per user slot.
    pub allocation: Vec<u64>,
    /// Whether the job was fully allocated.
    pub completed: bool,
}

impl Evaluation {
    /// The quasi-linear utility `pⱼ − xⱼ·cⱼ` of user slot `j`.
    #[must_use]
    pub fn utility(&self, j: usize, unit_cost: f64) -> f64 {
        self.payments[j] - self.allocation[j] as f64 * unit_cost
    }

    /// Total platform expenditure `Σⱼ pⱼ`.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        self.payments.iter().sum()
    }
}

/// One arm (honest or deviant) of one replication.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArmOutcome {
    /// The attacker's pooled utility across its identities (0 for
    /// attacker-free deviations such as screening).
    pub utility: f64,
    /// Whether the job was fully allocated.
    pub completed: bool,
    /// Total platform expenditure.
    pub total_payment: f64,
}

/// Both arms of one replication under paired seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PairedOutcome {
    /// The honest arm.
    pub honest: ArmOutcome,
    /// The deviant arm.
    pub deviant: ArmOutcome,
}

impl PairedOutcome {
    /// The attacker's gain `deviant − honest` in this replication.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.deviant.utility - self.honest.utility
    }
}

/// Result of comparing a deviation against honesty over `runs` paired
/// replications.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GainReport {
    /// Mean utility of the honest arm.
    pub honest_mean: f64,
    /// Mean utility of the deviating arm.
    pub deviant_mean: f64,
    /// `deviant_mean − honest_mean`.
    pub gain: f64,
    /// Standard error of the gain, from the **paired differences**
    /// `dᵣ − hᵣ` (arms share seeds, so pairing removes the common
    /// market-draw variance the old independent-arm approximation kept).
    pub gain_se: f64,
    /// Number of replications per arm.
    pub runs: usize,
}

impl GainReport {
    /// Builds a report from per-replication paired samples (`honest[r]`
    /// and `deviant[r]` share replication `r`'s seed).
    ///
    /// # Panics
    ///
    /// Panics if the sample vectors differ in length.
    #[must_use]
    pub fn from_paired_samples(honest: &[f64], deviant: &[f64]) -> Self {
        assert_eq!(honest.len(), deviant.len(), "arms must be paired");
        let runs = honest.len();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let hm = mean(honest);
        let dm = mean(deviant);
        let gain_se = if runs < 2 {
            0.0
        } else {
            let diffs: Vec<f64> = deviant.iter().zip(honest).map(|(d, h)| d - h).collect();
            let dmean = mean(&diffs);
            let var = diffs.iter().map(|d| (d - dmean).powi(2)).sum::<f64>() / (runs - 1) as f64;
            (var / runs as f64).sqrt()
        };
        Self {
            honest_mean: hm,
            deviant_mean: dm,
            gain: dm - hm,
            gain_se,
            runs,
        }
    }

    /// Builds a report from paired outcomes.
    #[must_use]
    pub fn from_paired(outcomes: &[PairedOutcome]) -> Self {
        let honest: Vec<f64> = outcomes.iter().map(|o| o.honest.utility).collect();
        let deviant: Vec<f64> = outcomes.iter().map(|o| o.deviant.utility).collect();
        Self::from_paired_samples(&honest, &deviant)
    }

    /// The z-score of the gain (0 when the standard error vanishes).
    #[must_use]
    pub fn z_score(&self) -> f64 {
        if self.gain_se > 0.0 {
            self.gain / self.gain_se
        } else {
            0.0
        }
    }

    /// Whether the deviation shows **no significant advantage** at `z_max`
    /// standard errors (typical choice: 3.0).
    #[must_use]
    pub fn deviation_not_profitable(&self, z_max: f64) -> bool {
        self.gain <= z_max * self.gain_se.max(f64::EPSILON)
    }
}

/// The paired-seed Monte-Carlo evaluator.
///
/// Construction is free (it borrows the scenario); the mechanism enters
/// through the evaluation closure of each method, with the signature
/// `FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>` where
/// `E: From<AdversaryError>`.
#[derive(Clone, Copy, Debug)]
pub struct ProbeRunner<'a> {
    base: BaseScenario<'a>,
    schedule: SeedSchedule,
    runs: usize,
}

impl<'a> ProbeRunner<'a> {
    /// A runner over `runs` paired replications of `base` under `schedule`.
    #[must_use]
    pub fn new(base: BaseScenario<'a>, schedule: SeedSchedule, runs: usize) -> Self {
        Self {
            base,
            schedule,
            runs,
        }
    }

    /// The base scenario.
    #[must_use]
    pub fn base(&self) -> &BaseScenario<'a> {
        &self.base
    }

    /// The replication count.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// The seed schedule.
    #[must_use]
    pub fn schedule(&self) -> SeedSchedule {
        self.schedule
    }

    fn honest_arm(attacker: &[usize], costs: &[f64], ev: &Evaluation) -> ArmOutcome {
        ArmOutcome {
            utility: attacker.iter().map(|&u| ev.utility(u, costs[u])).sum(),
            completed: ev.completed,
            total_payment: ev.total_payment(),
        }
    }

    /// Runs the honest arm of replication `r` and prices the would-be
    /// attacker's slots at their true costs.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn honest_replication<E, F>(
        &self,
        r: usize,
        attacker: &[usize],
        eval: &mut F,
    ) -> Result<ArmOutcome, E>
    where
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>,
    {
        let mut rng = self.schedule.rng(r);
        let ev = eval(
            ScenarioView {
                tree: self.base.tree,
                asks: self.base.asks,
                eligible: None,
            },
            &mut rng,
        )?;
        Ok(Self::honest_arm(attacker, self.base.costs, &ev))
    }

    /// Runs the deviant arm of replication `r`: reseeds, lets `deviation`
    /// draw its attack randomness, then evaluates the attacked scenario on
    /// the same generator. This is the whole loop body for *single-arm*
    /// deviations (platform-side screening has no honest attacker to
    /// compare against).
    ///
    /// # Errors
    ///
    /// Propagates deviation and evaluation errors.
    pub fn deviant_replication<E, F>(
        &self,
        r: usize,
        deviation: &dyn Deviation,
        eval: &mut F,
    ) -> Result<ArmOutcome, E>
    where
        E: From<AdversaryError>,
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>,
    {
        let mut rng = self.schedule.rng(r);
        let attacked = deviation.apply(&self.base, &mut rng).map_err(E::from)?;
        let ev = eval(
            ScenarioView {
                tree: &attacked.tree,
                asks: &attacked.asks,
                eligible: attacked.eligible.as_deref(),
            },
            &mut rng,
        )?;
        let utility = attacked
            .identities
            .iter()
            .map(|id| ev.utility(id.user, self.base.costs[id.origin]))
            .sum();
        Ok(ArmOutcome {
            utility,
            completed: ev.completed,
            total_payment: ev.total_payment(),
        })
    }

    /// Runs both arms of replication `r` for one deviation.
    ///
    /// # Errors
    ///
    /// Propagates deviation and evaluation errors.
    pub fn replication<E, F>(
        &self,
        r: usize,
        deviation: &dyn Deviation,
        eval: &mut F,
    ) -> Result<PairedOutcome, E>
    where
        E: From<AdversaryError>,
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>,
    {
        let honest = self.honest_replication(r, &deviation.attacker(), eval)?;
        let deviant = self.deviant_replication(r, deviation, eval)?;
        Ok(PairedOutcome { honest, deviant })
    }

    /// Runs both arms of replication `r` for a whole deviation set,
    /// evaluating the honest scenario **once** and sharing it across
    /// deviations (each deviation prices its own attacker set against the
    /// shared honest evaluation; each deviant arm reseeds fresh).
    ///
    /// This is the batched per-replication primitive parallel executors
    /// fan out over (one call per `r`, merged in index order).
    ///
    /// # Errors
    ///
    /// Propagates deviation and evaluation errors.
    pub fn suite_replication<E, F>(
        &self,
        r: usize,
        deviations: &[Box<dyn Deviation>],
        eval: &mut F,
    ) -> Result<Vec<PairedOutcome>, E>
    where
        E: From<AdversaryError>,
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>,
    {
        let mut rng = self.schedule.rng(r);
        let honest_ev = eval(
            ScenarioView {
                tree: self.base.tree,
                asks: self.base.asks,
                eligible: None,
            },
            &mut rng,
        )?;
        deviations
            .iter()
            .map(|deviation| {
                let honest = Self::honest_arm(&deviation.attacker(), self.base.costs, &honest_ev);
                let deviant = self.deviant_replication(r, deviation.as_ref(), eval)?;
                Ok(PairedOutcome { honest, deviant })
            })
            .collect()
    }

    /// Evaluates one deviation over all replications and reports the gain.
    ///
    /// # Errors
    ///
    /// Propagates deviation and evaluation errors.
    pub fn run<E, F>(&self, deviation: &dyn Deviation, eval: &mut F) -> Result<GainReport, E>
    where
        E: From<AdversaryError>,
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>,
    {
        let outcomes = (0..self.runs)
            .map(|r| self.replication(r, deviation, eval))
            .collect::<Result<Vec<_>, E>>()?;
        Ok(GainReport::from_paired(&outcomes))
    }

    /// Evaluates a deviation set in one batched sequential pass: per
    /// replication the honest scenario runs once and every deviant arm
    /// runs against it (see [`Self::suite_replication`]). The observer
    /// sees every paired outcome and each deviation's final report.
    ///
    /// # Errors
    ///
    /// Propagates deviation and evaluation errors.
    pub fn run_suite<E, F, O>(
        &self,
        deviations: &[Box<dyn Deviation>],
        eval: &mut F,
        observer: &mut O,
    ) -> Result<Vec<GainReport>, E>
    where
        E: From<AdversaryError>,
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<Evaluation, E>,
        O: AttackObserver,
    {
        observer.suite_start(deviations.len(), self.runs);
        let mut samples: Vec<Vec<PairedOutcome>> = deviations
            .iter()
            .map(|_| Vec::with_capacity(self.runs))
            .collect();
        for r in 0..self.runs {
            let outcomes = self.suite_replication(r, deviations, eval)?;
            for (di, outcome) in outcomes.into_iter().enumerate() {
                observer.replication(di, deviations[di].name(), r, &outcome);
                samples[di].push(outcome);
            }
        }
        let reports: Vec<GainReport> = samples.iter().map(|s| GainReport::from_paired(s)).collect();
        for (di, report) in reports.iter().enumerate() {
            observer.attack_summary(di, deviations[di].name(), report);
        }
        observer.suite_end();
        Ok(reports)
    }

    /// Sweeps the honest scenario over all replications with the schedule's
    /// generators, without computing statistics — for side-effect probes
    /// (e.g. counting auction rounds through an observer).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn honest_sweep<E, F>(&self, eval: &mut F) -> Result<(), E>
    where
        F: FnMut(ScenarioView<'_>, &mut SmallRng) -> Result<(), E>,
    {
        for r in 0..self.runs {
            let mut rng = self.schedule.rng(r);
            eval(
                ScenarioView {
                    tree: self.base.tree,
                    asks: self.base.asks,
                    eligible: None,
                },
                &mut rng,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deviation::{PriceMisreport, Screening, Withholding};
    use rand::Rng;
    use rit_model::{Ask, TaskTypeId};
    use rit_tree::generate;

    /// A toy "mechanism": pays each user its asked price per unit for one
    /// unit, minus a noise term shared between arms through the seed.
    fn toy_eval(view: ScenarioView<'_>, rng: &mut SmallRng) -> Result<Evaluation, AdversaryError> {
        let noise: f64 = rng.gen();
        let payments: Vec<f64> = view
            .asks
            .iter()
            .enumerate()
            .map(|(j, a)| {
                if view.eligible.is_some_and(|e| !e[j]) {
                    0.0
                } else {
                    a.unit_price() + noise
                }
            })
            .collect();
        let allocation = vec![1; view.asks.len()];
        Ok(Evaluation {
            payments,
            allocation,
            completed: true,
        })
    }

    fn world() -> (rit_tree::IncentiveTree, Vec<Ask>, Vec<f64>) {
        let tree = generate::path(3);
        let t = TaskTypeId::new(0);
        let asks = vec![
            Ask::new(t, 2, 2.0).unwrap(),
            Ask::new(t, 3, 3.0).unwrap(),
            Ask::new(t, 1, 4.0).unwrap(),
        ];
        let costs = vec![2.0, 3.0, 4.0];
        (tree, asks, costs)
    }

    #[test]
    fn seed_schedules_match_legacy_conventions() {
        let xor = SeedSchedule::Xor { seed: 11 };
        assert_eq!(xor.replication_seed(0), 11);
        assert_eq!(xor.replication_seed(3), 11 ^ 3u64.wrapping_mul(0x9E37));
        let derived = SeedSchedule::Derived {
            master: 7,
            point: 2,
        };
        assert_eq!(derived.replication_seed(5), derive_seed(7, 2, 5));
    }

    #[test]
    fn paired_gain_reflects_misreport_delta() {
        let (tree, asks, costs) = world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let runner = ProbeRunner::new(base, SeedSchedule::Xor { seed: 9 }, 16);
        let dev = PriceMisreport {
            user: 1,
            factor: 1.5,
        };
        let report = runner
            .run::<AdversaryError, _>(&dev, &mut toy_eval)
            .unwrap();
        // The toy mechanism pays the asked price, so the gain is exactly
        // the price bump and the paired noise cancels: zero SE.
        assert_eq!(report.runs, 16);
        assert!((report.gain - 1.5).abs() < 1e-12);
        assert!(report.gain_se < 1e-12);
        assert!(!report.deviation_not_profitable(3.0));
    }

    #[test]
    fn paired_se_drops_shared_noise_but_keeps_real_variance() {
        let h = [1.0, 2.0, 3.0, 4.0];
        // Constant offset over paired seeds: paired SE is zero…
        let d_const: Vec<f64> = h.iter().map(|x| x + 0.5).collect();
        let r = GainReport::from_paired_samples(&h, &d_const);
        assert_eq!(r.gain_se, 0.0);
        assert!((r.gain - 0.5).abs() < 1e-12);
        // …while a varying difference is still measured.
        let d_var = [1.0, 3.0, 3.0, 5.0];
        let r = GainReport::from_paired_samples(&h, &d_var);
        assert!(r.gain_se > 0.0);
        // sd of diffs {0,1,0,1} = sqrt(1/3); se = sd/2.
        assert!((r.gain_se - (1.0f64 / 3.0).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_report_statistics() {
        let r = GainReport::from_paired_samples(&[1.0], &[1.0]);
        assert_eq!(r.gain, 0.0);
        assert_eq!(r.gain_se, 0.0);
        assert_eq!(r.z_score(), 0.0);
        assert!(r.deviation_not_profitable(3.0));
    }

    #[test]
    fn suite_shares_the_honest_arm_across_deviations() {
        let (tree, asks, costs) = world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let runner = ProbeRunner::new(
            base,
            SeedSchedule::Derived {
                master: 3,
                point: 0,
            },
            8,
        );
        let deviations: Vec<Box<dyn Deviation>> = vec![
            Box::new(PriceMisreport {
                user: 0,
                factor: 2.0,
            }),
            Box::new(Withholding {
                user: 2,
                quantity: 1,
            }),
        ];
        let mut evals = 0usize;
        let mut eval = |view: ScenarioView<'_>, rng: &mut SmallRng| {
            evals += 1;
            toy_eval(view, rng)
        };
        let reports = runner
            .run_suite::<AdversaryError, _, _>(
                &deviations,
                &mut eval,
                &mut crate::NoopAttackObserver,
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        // 8 replications × (1 shared honest + 2 deviants) = 24 evaluations,
        // not 8 × 2 × 2 = 32.
        assert_eq!(evals, 24);
        // Batched reports equal the one-deviation-at-a-time reports.
        for (di, dev) in deviations.iter().enumerate() {
            let alone = runner
                .run::<AdversaryError, _>(dev.as_ref(), &mut toy_eval)
                .unwrap();
            assert_eq!(reports[di], alone);
        }
    }

    #[test]
    fn screening_is_single_arm_and_masks_payments() {
        let (tree, asks, costs) = world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let runner = ProbeRunner::new(
            base,
            SeedSchedule::Derived {
                master: 5,
                point: 1,
            },
            4,
        );
        let dev = Screening { fraction: 1.0 };
        let arm = runner
            .deviant_replication::<AdversaryError, _>(0, &dev, &mut toy_eval)
            .unwrap();
        // Everyone screened out: nobody is paid, and with no attacker the
        // utility side stays zero.
        assert_eq!(arm.total_payment, 0.0);
        assert_eq!(arm.utility, 0.0);
    }

    #[test]
    fn honest_sweep_visits_every_replication_seed() {
        let (tree, asks, costs) = world();
        let base = BaseScenario {
            tree: &tree,
            asks: &asks,
            costs: &costs,
        };
        let schedule = SeedSchedule::Xor { seed: 77 };
        let runner = ProbeRunner::new(base, schedule, 5);
        let mut seen = Vec::new();
        runner
            .honest_sweep::<AdversaryError, _>(&mut |_, rng| {
                seen.push(rng.gen::<u64>());
                Ok(())
            })
            .unwrap();
        let expected: Vec<u64> = (0..5).map(|r| schedule.rng(r).gen::<u64>()).collect();
        assert_eq!(seen, expected);
    }
}
