//! Named deviation sets and the declarative attack-spec format.
//!
//! An [`AttackSuite`] is an ordered list of named deviations evaluated
//! together by [`ProbeRunner::run_suite`](crate::ProbeRunner::run_suite)
//! (one batched pass, honest arm shared per replication). Suites are built
//! in code or parsed from a plain-text spec — one attack per line:
//!
//! ```text
//! # identity count, topology and victim of a sybil split
//! sybil identities=3 arrangement=random user=auto price=auto
//! misreport factor=1.5 user=auto
//! withholding quantity=1 user=auto
//! coalition size=5 factor=1.3
//! screening fraction=0.4
//! ```
//!
//! `user=auto` resolves deterministically against the scenario's asks (a
//! user with room to deviate); `price=auto` means the victim's own unit
//! price. Lines starting with `#` and blank lines are ignored. The format
//! is deliberately `key=value` only — no quoting, no nesting — so it needs
//! no external parser.

use rit_model::Ask;
use rit_tree::sybil::SybilPlan;

use crate::deviation::{
    Attacked, BaseScenario, Coalition, Deviation, PriceMisreport, Screening, SybilPricing,
    SybilSplit, Withholding,
};
use crate::error::AdversaryError;
use crate::observer::AttackObserver;
use crate::runner::{Evaluation, GainReport, ProbeRunner, ScenarioView};

/// How a spec line designates the deviating user.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UserSelector {
    /// Pick a deterministic "interesting" user from the scenario: the
    /// first user claiming at least 4 tasks, falling back to the largest
    /// claim (mirrors the probe tests' selection).
    Auto,
    /// A fixed user index.
    Index(usize),
}

impl UserSelector {
    /// Resolves the selector against an ask vector.
    ///
    /// # Errors
    ///
    /// [`AdversaryError::UserOutOfRange`] for an explicit index outside
    /// the scenario (auto always resolves on non-empty asks).
    pub fn resolve(&self, asks: &[Ask]) -> Result<usize, AdversaryError> {
        match *self {
            Self::Index(user) if user < asks.len() => Ok(user),
            Self::Index(user) => Err(AdversaryError::UserOutOfRange {
                user,
                users: asks.len(),
            }),
            Self::Auto => {
                if asks.is_empty() {
                    return Err(AdversaryError::UserOutOfRange { user: 0, users: 0 });
                }
                Ok((0..asks.len())
                    .find(|&j| asks[j].quantity() >= 4)
                    .unwrap_or_else(|| {
                        (0..asks.len())
                            .max_by_key(|&j| asks[j].quantity())
                            .expect("non-empty asks")
                    }))
            }
        }
    }
}

/// One parsed attack-spec line.
#[derive(Clone, Debug, PartialEq)]
pub enum DeviationSpec {
    /// `sybil identities=δ arrangement=chain|star|random user=… price=…`
    Sybil {
        /// Identity count `δ ≥ 2`.
        identities: usize,
        /// Identity topology (`chain`, `star` or `random`).
        arrangement: String,
        /// The victim slot.
        user: UserSelector,
        /// Per-identity unit price; `None` means the victim's own price.
        price: Option<f64>,
    },
    /// `misreport factor=f user=…`
    Misreport {
        /// Multiplier on the honest unit price.
        factor: f64,
        /// The misreporting user.
        user: UserSelector,
    },
    /// `withholding quantity=k user=…`
    Withholding {
        /// The under-claimed quantity.
        quantity: u64,
        /// The withholding user.
        user: UserSelector,
    },
    /// `coalition size=K factor=f` — the `K` cheapest users collude.
    Coalition {
        /// Coalition size (clamped to the population).
        size: usize,
        /// Multiplier on each member's honest unit price.
        factor: f64,
    },
    /// `screening fraction=φ` — platform-side screening lottery.
    Screening {
        /// Expected fraction screened out.
        fraction: f64,
    },
}

impl DeviationSpec {
    /// Parses one spec line (the caller strips comments/blank lines).
    ///
    /// # Errors
    ///
    /// [`AdversaryError::InvalidSpec`] on unknown kinds, unknown or
    /// repeated keys, malformed values, or out-of-range parameters.
    pub fn parse(line: &str) -> Result<Self, AdversaryError> {
        let invalid = |reason: &str| AdversaryError::InvalidSpec {
            line: line.to_string(),
            reason: reason.to_string(),
        };
        let mut tokens = line.split_whitespace();
        let kind = tokens.next().ok_or_else(|| invalid("empty line"))?;
        let mut keys: Vec<(&str, &str)> = Vec::new();
        for token in tokens {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| invalid("expected key=value tokens"))?;
            if keys.iter().any(|&(seen, _)| seen == k) {
                return Err(invalid(&format!("repeated key `{k}`")));
            }
            keys.push((k, v));
        }
        let lookup = |key: &str| keys.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v);
        let allowed = |names: &[&str]| -> Result<(), AdversaryError> {
            for &(k, _) in &keys {
                if !names.contains(&k) {
                    return Err(invalid(&format!("unknown key `{k}`")));
                }
            }
            Ok(())
        };
        let user = |key_value: Option<&str>| -> Result<UserSelector, AdversaryError> {
            match key_value {
                None | Some("auto") => Ok(UserSelector::Auto),
                Some(v) => v
                    .parse::<usize>()
                    .map(UserSelector::Index)
                    .map_err(|_| invalid("user must be `auto` or an index")),
            }
        };

        match kind {
            "sybil" => {
                allowed(&["identities", "arrangement", "user", "price"])?;
                let identities: usize = lookup("identities")
                    .ok_or_else(|| invalid("sybil needs identities=δ"))?
                    .parse()
                    .map_err(|_| invalid("identities must be an integer"))?;
                if identities < 2 {
                    return Err(invalid("a sybil split needs at least 2 identities"));
                }
                let arrangement = lookup("arrangement").unwrap_or("random");
                if !matches!(arrangement, "chain" | "star" | "random") {
                    return Err(invalid("arrangement must be chain, star or random"));
                }
                let price = match lookup("price") {
                    None | Some("auto") => None,
                    Some(v) => Some(
                        v.parse::<f64>()
                            .ok()
                            .filter(|p| p.is_finite() && *p > 0.0)
                            .ok_or_else(|| invalid("price must be `auto` or positive"))?,
                    ),
                };
                Ok(Self::Sybil {
                    identities,
                    arrangement: arrangement.to_string(),
                    user: user(lookup("user"))?,
                    price,
                })
            }
            "misreport" => {
                allowed(&["factor", "user"])?;
                let factor: f64 = lookup("factor")
                    .ok_or_else(|| invalid("misreport needs factor=f"))?
                    .parse()
                    .map_err(|_| invalid("factor must be a number"))?;
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(invalid("factor must be positive and finite"));
                }
                Ok(Self::Misreport {
                    factor,
                    user: user(lookup("user"))?,
                })
            }
            "withholding" => {
                allowed(&["quantity", "user"])?;
                let quantity: u64 = lookup("quantity")
                    .ok_or_else(|| invalid("withholding needs quantity=k"))?
                    .parse()
                    .map_err(|_| invalid("quantity must be an integer"))?;
                if quantity == 0 {
                    return Err(invalid("quantity must be at least 1"));
                }
                Ok(Self::Withholding {
                    quantity,
                    user: user(lookup("user"))?,
                })
            }
            "coalition" => {
                allowed(&["size", "factor"])?;
                let size: usize = lookup("size")
                    .ok_or_else(|| invalid("coalition needs size=K"))?
                    .parse()
                    .map_err(|_| invalid("size must be an integer"))?;
                if size == 0 {
                    return Err(invalid("coalition size must be at least 1"));
                }
                let factor: f64 = lookup("factor")
                    .ok_or_else(|| invalid("coalition needs factor=f"))?
                    .parse()
                    .map_err(|_| invalid("factor must be a number"))?;
                if !(factor.is_finite() && factor > 0.0) {
                    return Err(invalid("factor must be positive and finite"));
                }
                Ok(Self::Coalition { size, factor })
            }
            "screening" => {
                allowed(&["fraction"])?;
                let fraction: f64 = lookup("fraction")
                    .ok_or_else(|| invalid("screening needs fraction=φ"))?
                    .parse()
                    .map_err(|_| invalid("fraction must be a number"))?;
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(invalid("fraction must lie in [0, 1]"));
                }
                Ok(Self::Screening { fraction })
            }
            other => Err(invalid(&format!("unknown attack kind `{other}`"))),
        }
    }

    /// Parses a whole spec document (one attack per line; `#` comments and
    /// blank lines ignored).
    ///
    /// # Errors
    ///
    /// Propagates the first line's parse error.
    pub fn parse_document(text: &str) -> Result<Vec<Self>, AdversaryError> {
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(Self::parse)
            .collect()
    }

    /// Resolves the spec against a concrete ask vector into a named,
    /// runnable deviation.
    ///
    /// # Errors
    ///
    /// Propagates selector resolution errors.
    pub fn resolve(&self, asks: &[Ask]) -> Result<(String, Box<dyn Deviation>), AdversaryError> {
        match self {
            Self::Sybil {
                identities,
                arrangement,
                user,
                price,
            } => {
                let user = user.resolve(asks)?;
                let plan = match arrangement.as_str() {
                    "chain" => SybilPlan::chain(*identities),
                    "star" => SybilPlan::star(*identities),
                    _ => SybilPlan::random(*identities),
                };
                let unit_price = price.unwrap_or_else(|| asks[user].unit_price());
                let name =
                    format!("sybil(identities={identities},arrangement={arrangement},user={user})");
                Ok((
                    name,
                    Box::new(SybilSplit {
                        user,
                        plan,
                        pricing: SybilPricing::Uniform { unit_price },
                    }),
                ))
            }
            Self::Misreport { factor, user } => {
                let user = user.resolve(asks)?;
                Ok((
                    format!("misreport(factor={factor},user={user})"),
                    Box::new(PriceMisreport {
                        user,
                        factor: *factor,
                    }),
                ))
            }
            Self::Withholding { quantity, user } => {
                let user = user.resolve(asks)?;
                Ok((
                    format!("withholding(quantity={quantity},user={user})"),
                    Box::new(Withholding {
                        user,
                        quantity: *quantity,
                    }),
                ))
            }
            Self::Coalition { size, factor } => {
                // The K cheapest users: the likeliest winners, so colluding
                // on price actually has leverage. Deterministic tie-break
                // by index.
                let mut by_price: Vec<usize> = (0..asks.len()).collect();
                by_price.sort_by(|&a, &b| {
                    asks[a]
                        .unit_price()
                        .total_cmp(&asks[b].unit_price())
                        .then(a.cmp(&b))
                });
                let members: Vec<usize> = by_price.into_iter().take(*size).collect();
                Ok((
                    format!("coalition(size={},factor={factor})", members.len()),
                    Box::new(Coalition {
                        members,
                        factor: *factor,
                    }),
                ))
            }
            Self::Screening { fraction } => Ok((
                format!("screening(fraction={fraction})"),
                Box::new(Screening {
                    fraction: *fraction,
                }),
            )),
        }
    }
}

/// A deviation re-labelled with a resolved, human-readable name.
struct Named {
    name: String,
    inner: Box<dyn Deviation>,
}

impl Deviation for Named {
    fn name(&self) -> &str {
        &self.name
    }

    fn attacker(&self) -> Vec<usize> {
        self.inner.attacker()
    }

    fn apply<'a>(
        &self,
        base: &BaseScenario<'a>,
        rng: &mut dyn rand::RngCore,
    ) -> Result<Attacked<'a>, AdversaryError> {
        self.inner.apply(base, rng)
    }
}

/// The outcome of one attack in a suite evaluation.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackResult {
    /// The attack's resolved name.
    pub name: String,
    /// Its gain statistics.
    pub report: GainReport,
}

/// An ordered, named set of deviations evaluated in one batched pass.
pub struct AttackSuite {
    deviations: Vec<Box<dyn Deviation>>,
}

impl AttackSuite {
    /// An empty suite.
    #[must_use]
    pub fn new() -> Self {
        Self {
            deviations: Vec::new(),
        }
    }

    /// Builds a suite from a spec document, resolving selectors against
    /// `asks`.
    ///
    /// # Errors
    ///
    /// Propagates parse and resolution errors.
    pub fn from_spec(text: &str, asks: &[Ask]) -> Result<Self, AdversaryError> {
        let mut suite = Self::new();
        for spec in DeviationSpec::parse_document(text)? {
            let (name, deviation) = spec.resolve(asks)?;
            suite.push(name, deviation);
        }
        Ok(suite)
    }

    /// The default four-attack robustness suite (sybil split, overbid,
    /// withhold, coalition), resolved against `asks`.
    ///
    /// # Errors
    ///
    /// Propagates selector resolution errors (empty scenarios).
    pub fn standard(asks: &[Ask]) -> Result<Self, AdversaryError> {
        Self::from_spec(
            "sybil identities=3 arrangement=random user=auto price=auto\n\
             misreport factor=1.5 user=auto\n\
             withholding quantity=1 user=auto\n\
             coalition size=5 factor=1.3\n",
            asks,
        )
    }

    /// Appends a deviation under a display name.
    pub fn push(&mut self, name: String, deviation: Box<dyn Deviation>) {
        self.deviations.push(Box::new(Named {
            name,
            inner: deviation,
        }));
    }

    /// The suite's deviations, in evaluation order.
    #[must_use]
    pub fn deviations(&self) -> &[Box<dyn Deviation>] {
        &self.deviations
    }

    /// The number of attacks in the suite.
    #[must_use]
    pub fn len(&self) -> usize {
        self.deviations.len()
    }

    /// Whether the suite holds no attacks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.deviations.is_empty()
    }

    /// Evaluates the suite on `runner` (see
    /// [`ProbeRunner::run_suite`]): one batched sequential pass sharing
    /// each replication's honest evaluation across all attacks.
    ///
    /// # Errors
    ///
    /// Propagates deviation and evaluation errors.
    pub fn run<E, F, O>(
        &self,
        runner: &ProbeRunner<'_>,
        eval: &mut F,
        observer: &mut O,
    ) -> Result<Vec<AttackResult>, E>
    where
        E: From<AdversaryError>,
        F: FnMut(ScenarioView<'_>, &mut rand::rngs::SmallRng) -> Result<Evaluation, E>,
        O: AttackObserver,
    {
        let reports = runner.run_suite(&self.deviations, eval, observer)?;
        Ok(self
            .deviations
            .iter()
            .zip(reports)
            .map(|(d, report)| AttackResult {
                name: d.name().to_string(),
                report,
            })
            .collect())
    }
}

impl Default for AttackSuite {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_model::TaskTypeId;

    fn asks() -> Vec<Ask> {
        let t = TaskTypeId::new(0);
        vec![
            Ask::new(t, 2, 5.0).unwrap(),
            Ask::new(t, 6, 2.0).unwrap(),
            Ask::new(t, 3, 1.0).unwrap(),
        ]
    }

    #[test]
    fn parses_every_kind() {
        let text = "\
# a comment
sybil identities=3 arrangement=chain user=1 price=2.5

misreport factor=1.5
withholding quantity=1 user=auto
coalition size=2 factor=1.3
screening fraction=0.4
";
        let specs = DeviationSpec::parse_document(text).unwrap();
        assert_eq!(specs.len(), 5);
        assert_eq!(
            specs[0],
            DeviationSpec::Sybil {
                identities: 3,
                arrangement: "chain".into(),
                user: UserSelector::Index(1),
                price: Some(2.5),
            }
        );
        assert_eq!(
            specs[1],
            DeviationSpec::Misreport {
                factor: 1.5,
                user: UserSelector::Auto
            }
        );
        assert_eq!(specs[4], DeviationSpec::Screening { fraction: 0.4 });
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "warp factor=9",
            "sybil identities=1",
            "sybil identities=3 arrangement=moebius",
            "misreport factor=-2",
            "misreport factor=1.5 factor=2.0",
            "withholding quantity=0",
            "coalition size=0 factor=1.1",
            "screening fraction=1.5",
            "sybil identities",
            "misreport factor=1.5 who=me",
        ] {
            assert!(
                matches!(
                    DeviationSpec::parse(bad),
                    Err(AdversaryError::InvalidSpec { .. })
                ),
                "accepted: {bad}"
            );
        }
    }

    #[test]
    fn auto_user_prefers_large_claims() {
        let asks = asks();
        // First user with quantity ≥ 4 is user 1.
        assert_eq!(UserSelector::Auto.resolve(&asks).unwrap(), 1);
        // With only small claims, fall back to the largest.
        let small = vec![
            Ask::new(TaskTypeId::new(0), 2, 1.0).unwrap(),
            Ask::new(TaskTypeId::new(0), 3, 1.0).unwrap(),
        ];
        assert_eq!(UserSelector::Auto.resolve(&small).unwrap(), 1);
        assert!(UserSelector::Index(7).resolve(&asks).is_err());
    }

    #[test]
    fn resolution_names_and_members_are_deterministic() {
        let asks = asks();
        let (name, dev) = DeviationSpec::Coalition {
            size: 2,
            factor: 1.3,
        }
        .resolve(&asks)
        .unwrap();
        assert_eq!(name, "coalition(size=2,factor=1.3)");
        // The two cheapest users are 2 (price 1) and 1 (price 2).
        assert_eq!(dev.attacker(), vec![2, 1]);

        let (name, dev) = DeviationSpec::Sybil {
            identities: 2,
            arrangement: "star".into(),
            user: UserSelector::Auto,
            price: None,
        }
        .resolve(&asks)
        .unwrap();
        assert_eq!(name, "sybil(identities=2,arrangement=star,user=1)");
        assert_eq!(dev.attacker(), vec![1]);
    }

    #[test]
    fn standard_suite_has_at_least_four_attacks() {
        let suite = AttackSuite::standard(&asks()).unwrap();
        assert!(suite.len() >= 4);
        assert!(!suite.is_empty());
        let names: Vec<&str> = suite.deviations().iter().map(|d| d.name()).collect();
        assert!(names[0].starts_with("sybil("));
        assert!(names[1].starts_with("misreport("));
        assert!(names[2].starts_with("withholding("));
        assert!(names[3].starts_with("coalition("));
    }
}
