//! Truthfulness probability bounds (Lemma 6.2, Lemma 6.3, Remark 6.1).
//!
//! One CRA round with parameters `(q, mᵢ)` is `k`-truthful with probability
//! at least
//!
//! ```text
//! β(q, mᵢ, k) = (1 − 1/(q+mᵢ))^k + log(1 − 2k/(q+mᵢ)) − e^(−(q+mᵢ)/8)
//! ```
//!
//! covering the three failure events of Lemma 6.2: a coalition ask lands in
//! the price sample, the consensus rounding is not a `k`-consensus while
//! `n_s > q + mᵢ`, and the probabilistic thinning overshoots `q + mᵢ`.
//!
//! **Log base.** The paper writes a bare `log`. Remark 6.1's worked example
//! (`k = 10`, `mᵢ = 1000` ⇒ "the lower bound is 0.98") matches base 10
//! (0.9813) rather than base 2 (0.9609) or base e (0.9698), so
//! [`LogBase::Ten`] is the default; the base is configurable for sensitivity
//! analysis.
//!
//! Algorithm 3 then derives a per-type round budget: with `η = H^(1/m)` and
//! `β` the per-round bound, running at most `⌊log_β η⌋` rounds keeps every
//! type `K_max`-truthful with probability ≥ `η`, hence the whole auction
//! phase `(K_max, H)`-truthful (Lemma 6.3). Which `q` to plug into `β` is
//! ambiguous in our source text; [`WorstCaseQ`] exposes both defensible
//! readings (see DESIGN.md).

/// Base of the logarithm in the Lemma 6.2 bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum LogBase {
    /// Base 2 (the base of the consensus lattice).
    Two,
    /// Natural logarithm.
    E,
    /// Base 10 — matches the paper's Remark 6.1 numerics (default).
    #[default]
    Ten,
}

impl LogBase {
    /// Applies the logarithm to `x`.
    #[must_use]
    pub fn log(self, x: f64) -> f64 {
        match self {
            Self::Two => x.log2(),
            Self::E => x.ln(),
            Self::Ten => x.log10(),
        }
    }
}

/// Which `q` the per-type round budget plugs into the per-round bound `β`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum WorstCaseQ {
    /// `q = 0`: the bound of the *worst* round (Remark 6.1 notes `β`
    /// decreases as `q` decreases). Strictly conservative — but at the
    /// paper's own Fig 6(b)/Fig 9 scales it yields a zero round budget, so
    /// the published curves cannot have used it.
    Zero,
    /// `q = mᵢ`: the bound of the *first* round (`q + mᵢ = 2mᵢ`). The
    /// reading that reproduces the paper's evaluation scales (default).
    #[default]
    FirstRound,
}

/// The Lemma 6.2 lower bound `β(q, mᵢ, k)` on the probability that one CRA
/// round is `k`-truthful.
///
/// Returns `f64::NEG_INFINITY` when `2k ≥ q + mᵢ` (the log term's argument
/// is non-positive: the bound is vacuous and the guarantee unattainable).
///
/// ```
/// use rit_auction::bounds::{cra_truthfulness_bound, LogBase};
///
/// // Remark 6.1: K_max = 10, mᵢ = 1000, q = 0 ⇒ ≈ 0.98.
/// let b = cra_truthfulness_bound(0, 1000, 10, LogBase::Ten);
/// assert!((b - 0.98).abs() < 0.005);
/// ```
#[must_use]
pub fn cra_truthfulness_bound(q: u64, m_i: u64, k: u64, base: LogBase) -> f64 {
    let qm = (q + m_i) as f64;
    if qm <= 0.0 {
        return f64::NEG_INFINITY;
    }
    let log_arg = 1.0 - 2.0 * k as f64 / qm;
    if log_arg <= 0.0 {
        return f64::NEG_INFINITY;
    }
    (1.0 - 1.0 / qm).powi(k as i32) + base.log(log_arg) - (-qm / 8.0).exp()
}

/// `η = H^(1/m)`: the per-type truthfulness target such that all `m` types
/// jointly achieve probability `H` (Algorithm 3, Line 2 / Lemma 6.3).
///
/// # Panics
///
/// Panics if `h` is outside `(0, 1)` or `num_types == 0`.
#[must_use]
pub fn per_type_target(h: f64, num_types: usize) -> f64 {
    assert!(h > 0.0 && h < 1.0, "H must lie in (0, 1), got {h}");
    assert!(num_types > 0, "need at least one task type");
    h.powf(1.0 / num_types as f64)
}

/// The per-type CRA round budget `max = ⌊log_β η⌋` (Algorithm 3, Line 7):
/// the largest number of rounds such that `β^max ≥ η`.
///
/// Returns `None` when the guarantee is unattainable (`β ≤ 0`, i.e. the job
/// is too small relative to `K_max`); returns `Some(0)` when even a single
/// round would break the target (`β < η`); `β ≥ 1` (only possible in the
/// degenerate float limit) gives effectively unlimited rounds, capped at
/// `u32::MAX`.
#[must_use]
pub fn max_rounds(beta: f64, eta: f64) -> Option<u32> {
    if beta.is_nan() || beta <= 0.0 {
        return None;
    }
    if beta >= 1.0 {
        return Some(u32::MAX);
    }
    debug_assert!(eta > 0.0 && eta < 1.0);
    let r = eta.ln() / beta.ln();
    Some(r.floor().min(f64::from(u32::MAX)) as u32)
}

/// Convenience: the round budget for one task type given the evaluation
/// parameters — combines [`cra_truthfulness_bound`] (at the `q` chosen by
/// `worst_case`), [`per_type_target`], and [`max_rounds`].
#[must_use]
pub fn round_budget(
    m_i: u64,
    k_max: u64,
    h: f64,
    num_types: usize,
    base: LogBase,
    worst_case: WorstCaseQ,
) -> Option<u32> {
    let q = match worst_case {
        WorstCaseQ::Zero => 0,
        WorstCaseQ::FirstRound => m_i,
    };
    let beta = cra_truthfulness_bound(q, m_i, k_max, base);
    let eta = per_type_target(h, num_types);
    max_rounds(beta, eta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remark_6_1_example_matches_base_ten() {
        let b = cra_truthfulness_bound(0, 1000, 10, LogBase::Ten);
        assert!((b - 0.9813).abs() < 1e-3, "got {b}");
        // And the other bases do NOT give the paper's 0.98.
        assert!(cra_truthfulness_bound(0, 1000, 10, LogBase::Two) < 0.965);
        assert!(cra_truthfulness_bound(0, 1000, 10, LogBase::E) < 0.975);
    }

    #[test]
    fn remark_6_1_example_small_q_low_bound() {
        // "if k = 10 and q = 50, the new lower bound is 0.59" — the remark's
        // illustration of why plain consensus with q+... = q is too weak.
        // With the paper's own formula at q + mᵢ = 50 (k = 10):
        let b = cra_truthfulness_bound(50, 0, 10, LogBase::Ten);
        assert!((b - 0.59).abs() < 0.05, "got {b}");
    }

    #[test]
    fn bound_increases_with_job_size() {
        let mut prev = f64::NEG_INFINITY;
        for m_i in [50u64, 100, 500, 1000, 5000, 50_000] {
            let b = cra_truthfulness_bound(0, m_i, 10, LogBase::Ten);
            assert!(b > prev);
            prev = b;
        }
        assert!(prev < 1.0);
    }

    #[test]
    fn bound_decreases_with_coalition_size() {
        let mut prev = f64::INFINITY;
        for k in [1u64, 5, 10, 50, 100] {
            let b = cra_truthfulness_bound(0, 1000, k, LogBase::Ten);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn bound_decreases_as_q_shrinks() {
        // Remark 6.1: the bound decreases with the decrement of q.
        let hi = cra_truthfulness_bound(1000, 1000, 20, LogBase::Ten);
        let lo = cra_truthfulness_bound(0, 1000, 20, LogBase::Ten);
        assert!(lo < hi);
    }

    #[test]
    fn vacuous_bound_when_job_too_small() {
        assert_eq!(
            cra_truthfulness_bound(0, 20, 10, LogBase::Ten),
            f64::NEG_INFINITY
        );
        assert_eq!(
            cra_truthfulness_bound(0, 0, 1, LogBase::Ten),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn per_type_target_roots_h() {
        let eta = per_type_target(0.8, 10);
        assert!((eta.powi(10) - 0.8).abs() < 1e-12);
        assert!(eta > 0.8);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn per_type_target_validates_h() {
        let _ = per_type_target(1.0, 10);
    }

    #[test]
    fn max_rounds_algebra() {
        // β^max ≥ η and β^(max+1) < η.
        let beta = 0.99;
        let eta = 0.97;
        let r = max_rounds(beta, eta).unwrap();
        assert!(beta.powi(r as i32) >= eta);
        assert!(beta.powi(r as i32 + 1) < eta);
    }

    #[test]
    fn max_rounds_edge_cases() {
        assert_eq!(max_rounds(-1.0, 0.9), None);
        assert_eq!(max_rounds(0.0, 0.9), None);
        assert_eq!(max_rounds(1.0, 0.9), Some(u32::MAX));
        // β < η: even one round breaks the target.
        assert_eq!(max_rounds(0.5, 0.9), Some(0));
    }

    #[test]
    fn paper_scale_budgets() {
        // Fig 6(a) scale: mᵢ = 5000, K_max = 20, H = 0.8, m = 10.
        let strict = round_budget(5000, 20, 0.8, 10, LogBase::Ten, WorstCaseQ::Zero).unwrap();
        assert!(strict >= 2, "got {strict}");
        let first = round_budget(5000, 20, 0.8, 10, LogBase::Ten, WorstCaseQ::FirstRound).unwrap();
        assert!(first >= strict);

        // Fig 6(b) smallest scale: mᵢ = 1000 — the strict reading gives 0
        // rounds (the paper's curves cannot have used it), the first-round
        // reading gives at least 1.
        let strict_1k = round_budget(1000, 20, 0.8, 10, LogBase::Ten, WorstCaseQ::Zero).unwrap();
        assert_eq!(strict_1k, 0);
        let first_1k =
            round_budget(1000, 20, 0.8, 10, LogBase::Ten, WorstCaseQ::FirstRound).unwrap();
        assert!(first_1k >= 1);
    }

    #[test]
    fn infeasible_budget_reported_as_none() {
        // mᵢ = 30 with K_max = 20: 2k ≥ q + mᵢ under the strict reading.
        assert_eq!(
            round_budget(30, 20, 0.8, 10, LogBase::Ten, WorstCaseQ::Zero),
            None
        );
    }
}
