//! Consensus rounding on the randomized exponential lattice.
//!
//! CRA (Algorithm 1, Line 4–5) draws `y ~ U[0, 1)` once and rounds the count
//! `z_s(α)` of asks at or below the sampled price *down* to the nearest
//! value of the lattice `{2^(z+y) : z ∈ ℤ}`. Because the lattice is randomly
//! offset, a coalition of `k` bidders shifting the count by at most `k` only
//! changes the rounded value with probability `O(log(z/(z−k)))` — with the
//! remaining probability the rounded count is a *consensus*: every profile
//! the coalition can induce rounds to the same value, so the coalition
//! cannot influence the winner set boundary (Goldberg & Hartline's consensus
//! estimate, adapted by the paper).

/// A randomly offset exponential lattice `{2^(z+y) : z ∈ ℤ}`.
///
/// ```
/// use rit_auction::consensus::Lattice;
///
/// let lattice = Lattice::new(0.0).unwrap(); // degenerate offset: powers of two
/// assert_eq!(lattice.round_down(9.0), Some(8.0));
/// assert_eq!(lattice.round_down(8.0), Some(8.0));
/// assert_eq!(lattice.round_down(0.6), Some(0.5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lattice {
    y: f64,
}

impl Lattice {
    /// Creates a lattice with offset `y`.
    ///
    /// Returns `None` if `y` is not in `[0, 1)`.
    #[must_use]
    pub fn new(y: f64) -> Option<Self> {
        if (0.0..1.0).contains(&y) {
            Some(Self { y })
        } else {
            None
        }
    }

    /// Draws a uniformly random offset from `rng` (Algorithm 1, Line 4).
    #[must_use]
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Self {
            y: rng.gen_range(0.0..1.0),
        }
    }

    /// The offset `y`.
    #[must_use]
    pub const fn offset(&self) -> f64 {
        self.y
    }

    /// The largest lattice value `2^(z+y) ≤ v`, or `None` if `v ≤ 0` (every
    /// lattice value is positive, so nothing rounds down from a
    /// non-positive input).
    #[must_use]
    pub fn round_down(&self, v: f64) -> Option<f64> {
        if !v.is_finite() || v <= 0.0 {
            return None;
        }
        // Candidate exponent; float log2 may be off by one ulp, so nudge.
        let mut z = (v.log2() - self.y).floor();
        let mut val = (z + self.y).exp2();
        while val > v {
            z -= 1.0;
            val = (z + self.y).exp2();
        }
        while (z + 1.0 + self.y).exp2() <= v {
            z += 1.0;
            val = (z + self.y).exp2();
        }
        Some(val)
    }

    /// The consensus winner count `n_s` (Algorithm 1, Line 5): the integer
    /// part of the lattice round-down of the raw count `z_s`. Returns 0 when
    /// `z_s == 0`.
    #[inline]
    #[must_use]
    pub fn consensus_count(&self, z_s: u64) -> u64 {
        if z_s == 0 {
            return 0;
        }
        let v = self
            .round_down(z_s as f64)
            .expect("positive count always rounds");
        v.floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn new_validates_offset() {
        assert!(Lattice::new(0.0).is_some());
        assert!(Lattice::new(0.999).is_some());
        assert!(Lattice::new(1.0).is_none());
        assert!(Lattice::new(-0.1).is_none());
        assert!(Lattice::new(f64::NAN).is_none());
    }

    #[test]
    fn round_down_at_zero_offset_is_power_of_two() {
        let l = Lattice::new(0.0).unwrap();
        assert_eq!(l.round_down(1.0), Some(1.0));
        assert_eq!(l.round_down(1.9), Some(1.0));
        assert_eq!(l.round_down(2.0), Some(2.0));
        assert_eq!(l.round_down(1000.0), Some(512.0));
        assert_eq!(l.round_down(0.3), Some(0.25));
    }

    #[test]
    fn round_down_rejects_nonpositive() {
        let l = Lattice::new(0.5).unwrap();
        assert_eq!(l.round_down(0.0), None);
        assert_eq!(l.round_down(-3.0), None);
        assert_eq!(l.round_down(f64::NAN), None);
        assert_eq!(l.round_down(f64::INFINITY), None);
    }

    #[test]
    fn round_down_is_idempotent_and_below_input() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let l = Lattice::random(&mut rng);
            let v: f64 = rng.gen_range(1e-6..1e9);
            let r = l.round_down(v).unwrap();
            assert!(r <= v, "rounded {r} above input {v}");
            assert!(r > v / 2.0, "gap between lattice points is a factor of 2");
            let rr = l.round_down(r).unwrap();
            assert!(
                (rr - r).abs() <= f64::EPSILON * r.abs() * 4.0,
                "not idempotent: {r} → {rr}"
            );
        }
    }

    #[test]
    fn round_down_is_monotone() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..500 {
            let l = Lattice::random(&mut rng);
            let a: f64 = rng.gen_range(1.0..1e6);
            let b: f64 = rng.gen_range(1.0..1e6);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(l.round_down(lo).unwrap() <= l.round_down(hi).unwrap());
        }
    }

    #[test]
    fn consensus_count_basics() {
        let l = Lattice::new(0.0).unwrap();
        assert_eq!(l.consensus_count(0), 0);
        assert_eq!(l.consensus_count(1), 1);
        assert_eq!(l.consensus_count(7), 4);
        assert_eq!(l.consensus_count(8), 8);
        assert_eq!(l.consensus_count(1023), 512);
    }

    #[test]
    fn consensus_count_never_exceeds_input() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..2000 {
            let l = Lattice::random(&mut rng);
            let z: u64 = rng.gen_range(0..1_000_000);
            let n = l.consensus_count(z);
            assert!(n <= z);
            if z > 0 {
                // Lattice points are a factor of 2 apart, and flooring can
                // lose at most 1 more.
                assert!(n + 1 >= z.div_ceil(2), "count {n} too far below {z}");
            }
        }
    }

    #[test]
    fn consensus_probability_matches_theory() {
        // For a shift of k on a count of z, the probability that the rounded
        // value differs is log2(z / (z − k)). Empirically check z = 1000,
        // k = 100: expected ≈ log2(1000/900) ≈ 0.152.
        let mut rng = SmallRng::seed_from_u64(4);
        let trials = 20_000;
        let mut differs = 0;
        for _ in 0..trials {
            let l = Lattice::random(&mut rng);
            if l.consensus_count(1000) != l.consensus_count(900) {
                differs += 1;
            }
        }
        let p = differs as f64 / trials as f64;
        let expected = (1000.0f64 / 900.0).log2();
        assert!(
            (p - expected).abs() < 0.02,
            "empirical {p:.3} vs theoretical {expected:.3}"
        );
    }
}
