//! CRA — the Collusion-Resistant Auction (paper Algorithm 1).
//!
//! `CRA(α, q, mᵢ)` allocates at most `q` tasks of one type among unit asks
//! `α` at a uniform clearing price:
//!
//! 1. sample each ask independently with probability `1/(q+mᵢ)`; let `s` be
//!    the smallest sampled value (an empty sample leaves `s` undefined — the
//!    round then allocates nothing, a bid-independent outcome, and RIT simply
//!    runs another round);
//! 2. draw a random lattice offset `y` and round the count `z_s` of asks
//!    `≤ s` down to the consensus count `n_s`;
//! 3. if `n_s ≤ q + mᵢ`, tentatively choose the `n_s` smallest asks;
//!    otherwise keep each of the `n_s` smallest independently with
//!    probability `(q+mᵢ)/(2·n_s)`;
//! 4. if more than `q + mᵢ` asks remain, keep the smallest `q + mᵢ` and
//!    reset the clearing price to the `(q+mᵢ+1)`-st smallest chosen value (a
//!    classic `(k+1)`-st price step);
//! 5. if more than `q` asks remain, thin to exactly `q` winners uniformly at
//!    random;
//! 6. every winner is paid the clearing price `s`.
//!
//! The two-stage "select up to `q + mᵢ`, then thin to `q`" structure is what
//! makes the multi-round composition in RIT `(K_max, H)`-truthful
//! (Lemma 6.2 / Remark 6.1): the winner boundary is set by the consensus
//! count, which a small coalition can rarely move.
//!
//! Since the run-length refactor this module is a thin wrapper over
//! [`crate::engine`]: the flat unit values are viewed as singleton runs and
//! one engine round is executed. The engine consumes randomness in exactly
//! the order documented above, so callers see identical outcomes whether
//! they go through this wrapper or drive [`crate::engine::run_round`]
//! directly on grouped runs.

use rand::Rng;

use crate::engine::{self, AuctionWorkspace};

/// Internal quantities of one CRA round, exposed for tracing, debugging and
/// experiment analysis. Everything here is *derived from randomness and the
/// ask multiset* — logging it does not weaken the mechanism (the round is
/// already over).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CraDiagnostics {
    /// Number of asks drawn into the price sample (Line 2).
    pub sample_size: usize,
    /// The sampled threshold `s` (`None` when the sample was empty and the
    /// round aborted).
    pub threshold: Option<f64>,
    /// The raw count `z_s` of asks at or below the threshold.
    pub raw_count: u64,
    /// The consensus-rounded count `n_s` (Line 5).
    pub consensus_count: u64,
    /// Whether the `(q+mᵢ+1)`-st price fallback re-set the clearing price
    /// (Lines 13–16).
    pub price_from_fallback: bool,
}

/// Outcome of one CRA round.
#[derive(Clone, Debug, PartialEq)]
pub struct CraOutcome {
    winners: Vec<bool>,
    clearing_price: f64,
    num_winners: usize,
    diagnostics: CraDiagnostics,
}

impl CraOutcome {
    fn empty(n: usize, diagnostics: CraDiagnostics) -> Self {
        Self {
            winners: vec![false; n],
            clearing_price: 0.0,
            num_winners: 0,
            diagnostics,
        }
    }

    /// The indicator vector `x'`: `winners()[ω]` is true iff ask `α_ω` won.
    #[must_use]
    pub fn winners(&self) -> &[bool] {
        &self.winners
    }

    /// Whether ask `ω` won a task.
    #[must_use]
    pub fn is_winner(&self, omega: usize) -> bool {
        self.winners.get(omega).copied().unwrap_or(false)
    }

    /// The uniform clearing price `s` paid to each winner (0 when there are
    /// no winners).
    #[must_use]
    pub fn clearing_price(&self) -> f64 {
        self.clearing_price
    }

    /// Number of winning asks (`≤ q`).
    #[must_use]
    pub fn num_winners(&self) -> usize {
        self.num_winners
    }

    /// The payment vector `p'`: the clearing price for winners, 0 otherwise.
    #[must_use]
    pub fn payments(&self) -> Vec<f64> {
        self.winners
            .iter()
            .map(|&w| if w { self.clearing_price } else { 0.0 })
            .collect()
    }

    /// Iterates over the indices of the winning asks.
    pub fn winner_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.winners
            .iter()
            .enumerate()
            .filter_map(|(i, &w)| w.then_some(i))
    }

    /// The round's internal quantities (sample, threshold, consensus count).
    #[must_use]
    pub fn diagnostics(&self) -> &CraDiagnostics {
        &self.diagnostics
    }
}

/// How CRA picks the tentative winners among the asks at or below the
/// sampled threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SelectionRule {
    /// The paper's Line 7/14 verbatim: "choose the smallest `n_s` asks".
    /// Rank-based — and therefore manipulable below the threshold: a
    /// coalition that shades its bids *down* climbs the ranking and wins
    /// more units at the unchanged clearing price (measured by the
    /// `bound_check` experiment; see EXPERIMENTS.md).
    #[default]
    SmallestFirst,
    /// A bid-independent variant: all asks at or below the threshold are
    /// equally eligible and `n_s` of them are drawn uniformly. Rank
    /// shading buys nothing; only threshold-crossing (already covered by
    /// the consensus analysis) remains.
    UniformEligible,
}

/// Runs one round of CRA over the unit-ask values `asks`, with `q`
/// unallocated tasks and job size `m_i` for this type (Algorithm 1),
/// using the paper's rank-based selection.
///
/// Returns an all-loser outcome when `asks` is empty or `q == 0`.
///
/// ```
/// use rand::SeedableRng;
/// use rit_auction::cra;
///
/// let asks: Vec<f64> = (1..=100).map(|i| i as f64 / 10.0).collect();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let out = cra::run(&asks, 5, 5, &mut rng);
/// assert!(out.num_winners() <= 5);
/// ```
///
/// # Panics
///
/// Panics if any ask value is non-finite or non-positive (the model layer
/// guarantees validated asks; this guards direct misuse).
#[must_use]
pub fn run<R: Rng + ?Sized>(asks: &[f64], q: u64, m_i: u64, rng: &mut R) -> CraOutcome {
    run_with_rule(asks, q, m_i, SelectionRule::SmallestFirst, rng)
}

/// Like [`run`], with an explicit [`SelectionRule`].
///
/// # Panics
///
/// Same conditions as [`run`].
#[must_use]
pub fn run_with_rule<R: Rng + ?Sized>(
    asks: &[f64],
    q: u64,
    m_i: u64,
    rule: SelectionRule,
    rng: &mut R,
) -> CraOutcome {
    assert!(
        asks.iter().all(|a| a.is_finite() && *a > 0.0),
        "ask values must be positive and finite"
    );
    let n = asks.len();
    if n == 0 || q == 0 {
        return CraOutcome::empty(n, CraDiagnostics::default());
    }
    // Lines 2-24 live in the engine; flat unit values are singleton runs.
    let compact = engine::CompactAsks::from_unit_values(asks);
    let mut ws = AuctionWorkspace::new();
    let report = engine::run_round(&compact, 0, q, m_i, rule, &mut ws, rng);

    // Emit indicators and the uniform payment. Singleton runs make the run
    // id the unit index, so the engine's winner list maps directly.
    let mut winners = vec![false; n];
    for &r in ws.winners() {
        winners[r as usize] = true;
    }
    CraOutcome {
        winners,
        clearing_price: report.clearing_price,
        num_winners: report.num_winners,
        diagnostics: report.diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn empty_asks_no_winners() {
        let out = run(&[], 5, 5, &mut rng(1));
        assert_eq!(out.num_winners(), 0);
        assert!(out.winners().is_empty());
        assert_eq!(out.clearing_price(), 0.0);
    }

    #[test]
    fn zero_q_no_winners() {
        let out = run(&[1.0, 2.0], 0, 5, &mut rng(1));
        assert_eq!(out.num_winners(), 0);
        assert!(out.payments().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn never_more_than_q_winners() {
        let asks: Vec<f64> = (1..=200).map(|i| i as f64 / 10.0).collect();
        for seed in 0..200 {
            let out = run(&asks, 7, 10, &mut rng(seed));
            assert!(out.num_winners() <= 7, "seed {seed}: {}", out.num_winners());
            assert_eq!(out.winner_indices().count(), out.num_winners());
        }
    }

    #[test]
    fn winners_pay_at_least_their_ask() {
        // Individual rationality (Lemma 6.1): clearing price ≥ winner's ask.
        let mut r = rng(7);
        for _ in 0..300 {
            let n = r.gen_range(1..120);
            let asks: Vec<f64> = (0..n).map(|_| r.gen_range(0.01..10.0)).collect();
            let q = r.gen_range(1..40);
            let m_i = r.gen_range(1..40);
            let out = run(&asks, q, m_i, &mut r);
            for w in out.winner_indices() {
                assert!(
                    asks[w] <= out.clearing_price() + 1e-12,
                    "winner ask {} above price {}",
                    asks[w],
                    out.clearing_price()
                );
            }
        }
    }

    #[test]
    fn losers_get_zero_payment() {
        let asks = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let out = run(&asks, 2, 2, &mut rng(3));
        let pay = out.payments();
        for (i, &p) in pay.iter().enumerate() {
            if !out.is_winner(i) {
                assert_eq!(p, 0.0);
            } else {
                assert_eq!(p, out.clearing_price());
            }
        }
    }

    #[test]
    fn abundant_supply_selects_cheap_asks() {
        // With many asks and small q, winners should be among the cheapest
        // z_s asks; the expensive tail should rarely win. Statistical check.
        let mut cheap_wins = 0u32;
        let mut expensive_wins = 0u32;
        let asks: Vec<f64> = (1..=100).map(f64::from).collect();
        for seed in 0..500 {
            let out = run(&asks, 5, 5, &mut rng(seed));
            for w in out.winner_indices() {
                if asks[w] <= 50.0 {
                    cheap_wins += 1;
                } else {
                    expensive_wins += 1;
                }
            }
        }
        assert!(
            cheap_wins > 10 * expensive_wins.max(1),
            "cheap {cheap_wins} vs expensive {expensive_wins}"
        );
    }

    #[test]
    fn is_winner_out_of_range_is_false() {
        let out = run(&[1.0], 1, 1, &mut rng(1));
        assert!(!out.is_winner(5));
    }

    #[test]
    fn deterministic_given_seed() {
        let asks: Vec<f64> = (1..=50).map(f64::from).collect();
        let a = run(&asks, 5, 10, &mut rng(11));
        let b = run(&asks, 5, 10, &mut rng(11));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_invalid_asks() {
        let _ = run(&[1.0, f64::NAN], 1, 1, &mut rng(1));
    }

    #[test]
    fn single_ask_almost_never_wins() {
        // One ask: even when sampled, z_s = 1 rounds down to a lattice value
        // 2^(y−1) < 1 for y > 0, so the consensus count is 0 almost surely.
        // This is the consensus auction's known "lone bidder starves"
        // behavior — the check is that nothing crashes and payments stay sane.
        for seed in 0..400 {
            let out = run(&[2.5], 10, 10, &mut rng(seed));
            assert!(out.num_winners() <= 1);
            if out.num_winners() == 1 {
                assert!(out.clearing_price() >= 2.5);
            }
        }
    }

    #[test]
    fn uniform_eligible_preserves_core_invariants() {
        let mut r = rng(21);
        for _ in 0..200 {
            let n = r.gen_range(1..120);
            let asks: Vec<f64> = (0..n).map(|_| r.gen_range(0.01..10.0)).collect();
            let q = r.gen_range(1..40);
            let m_i = r.gen_range(1..40);
            let out = run_with_rule(&asks, q, m_i, SelectionRule::UniformEligible, &mut r);
            assert!(out.num_winners() as u64 <= q);
            for w in out.winner_indices() {
                // Individual rationality and threshold eligibility.
                assert!(asks[w] <= out.clearing_price() + 1e-12);
                if let Some(s) = out.diagnostics().threshold {
                    assert!(asks[w] <= s + 1e-12);
                }
            }
        }
    }

    #[test]
    fn uniform_eligible_ignores_rank_below_threshold() {
        // Two asks far below any plausible threshold: under rank selection
        // the cheaper one wins whenever exactly one slot is filled; under
        // uniform-eligible both win equally often. Statistical check on the
        // conditional split.
        let mut asks: Vec<f64> = (0..400).map(|i| 5.0 + (i as f64) * 0.01).collect();
        asks.push(0.10); // index 400, cheapest
        asks.push(0.11); // index 401, second cheapest
        let mut rank_splits = [0u32; 2];
        let mut uniform_splits = [0u32; 2];
        for seed in 0..3000 {
            let out = run(&asks, 1, 1, &mut rng(seed));
            if out.num_winners() == 1 {
                if out.is_winner(400) {
                    rank_splits[0] += 1;
                } else if out.is_winner(401) {
                    rank_splits[1] += 1;
                }
            }
            let out = run_with_rule(&asks, 1, 1, SelectionRule::UniformEligible, &mut rng(seed));
            if out.num_winners() == 1 {
                if out.is_winner(400) {
                    uniform_splits[0] += 1;
                } else if out.is_winner(401) {
                    uniform_splits[1] += 1;
                }
            }
        }
        // Rank selection: the cheaper ask dominates whenever n_s = 1.
        assert!(
            rank_splits[0] > 3 * rank_splits[1].max(1),
            "rank selection should prefer the cheaper ask: {rank_splits:?}"
        );
        // Uniform-eligible: both far-below-threshold asks only win when
        // eligible, but neither is preferred strongly by rank.
        let total = uniform_splits[0] + uniform_splits[1];
        if total > 50 {
            let share = uniform_splits[0] as f64 / total as f64;
            assert!(
                share < 0.75,
                "uniform selection still rank-biased: {uniform_splits:?}"
            );
        }
    }

    #[test]
    fn diagnostics_are_coherent() {
        let asks: Vec<f64> = (1..=500).map(|i| i as f64 / 50.0).collect();
        for seed in 0..200 {
            let out = run(&asks, 10, 10, &mut rng(seed));
            let d = out.diagnostics();
            match d.threshold {
                None => {
                    assert_eq!(out.num_winners(), 0);
                    assert_eq!(d.raw_count, 0);
                }
                Some(s) => {
                    assert!(d.sample_size >= 1);
                    assert_eq!(d.raw_count, asks.iter().filter(|&&a| a <= s).count() as u64);
                    assert!(d.consensus_count <= d.raw_count);
                    if !d.price_from_fallback && out.num_winners() > 0 {
                        assert_eq!(out.clearing_price(), s);
                    }
                }
            }
        }
    }

    #[test]
    fn clearing_price_is_an_ask_value_or_infinite_sample_min() {
        // When the trim path triggers, the price is the (q+mᵢ+1)-st chosen
        // ask; otherwise it is the sampled minimum (an ask value) — in both
        // cases a value from `asks` (never fabricated), unless no winners.
        let asks: Vec<f64> = (1..=60).map(|i| 0.5 * i as f64).collect();
        for seed in 0..300 {
            let out = run(&asks, 4, 4, &mut rng(seed));
            if out.num_winners() > 0 {
                let p = out.clearing_price();
                assert!(
                    asks.iter().any(|&a| (a - p).abs() < 1e-12),
                    "price {p} is not an ask value"
                );
            }
        }
    }
}
