//! The allocation-free auction engine: CRA over run-length unit asks.
//!
//! [`crate::extract`] (Algorithm 2) expands every bundled ask `(tⱼ, kⱼ, aⱼ)`
//! into `kⱼ` unit asks — but all `kⱼ` units share one value and one owner, so
//! the expansion is pure redundancy. This module keeps the compressed form:
//! a [`CompactAsks`] table holds one `(value, owner, remaining)` *run* per
//! user and type, grouped by type and value-sorted **once**. A CRA round
//! ([`run_round`]) then works directly on the sorted runs:
//!
//! * per-round "extraction" is the `remaining > 0` view of the runs — an
//!   `O(users-of-type)` scan instead of an `O(Σkⱼ)` rebuild;
//! * the per-round sort disappears (the run order is round-invariant; only
//!   `remaining` changes between rounds);
//! * sampling, consensus counting, the `(q+mᵢ+1)`-st price fallback, and
//!   winner thinning all run over the sorted runs with zero heap
//!   allocations, using the reusable buffers of an [`AuctionWorkspace`].
//!
//! **Draw-order guarantee.** For the same RNG state, [`run_round`] consumes
//! randomness exactly like the flat-unit algorithm in [`crate::cra`] (which
//! is now a thin wrapper over this engine): per-unit Bernoulli draws in
//! expansion (user) order, one lattice offset, the `UniformEligible` prefix
//! shuffle, per-unit keep draws in ascending value order, and a partial
//! Fisher–Yates thinning pass. Grouped and singleton-run representations of
//! the same unit multiset therefore produce identical winners, prices,
//! diagnostics, and successor RNG states.

use rand::seq::SliceRandom;
use rand::Rng;

use rit_model::Ask;

use crate::consensus::Lattice;
use crate::cra::{CraDiagnostics, SelectionRule};

/// Run-length unit asks for all task types: one `(value, owner, remaining)`
/// run per (user, type), grouped by type in user order, plus a value-sorted
/// run permutation per type computed once at build time.
///
/// Build with [`CompactAsks::rebuild`] (reusing buffers) or
/// [`CompactAsks::from_unit_values`] (singleton runs, the [`crate::cra`]
/// wrapper path); consume winners between rounds with
/// [`CompactAsks::consume`]; restore the initial quantities with
/// [`CompactAsks::reset`].
#[derive(Clone, Debug, Default)]
pub struct CompactAsks {
    /// Unit value of each run.
    values: Vec<f64>,
    /// Owning user index of each run.
    owners: Vec<u32>,
    /// Initial unit count of each run (the ask quantity).
    totals: Vec<u64>,
    /// Units of each run not yet won this run-through.
    rem: Vec<u64>,
    /// Run ids in ascending `(value, run id)` order, per type segment.
    sorted: Vec<u32>,
    /// Segment boundaries: runs of type `t` occupy
    /// `type_start[t]..type_start[t+1]`.
    type_start: Vec<u32>,
    /// Remaining units per type (`Σ rem` over the segment).
    active: Vec<u64>,
    /// Counting-sort scratch, reused across rebuilds.
    cursors: Vec<u32>,
}

impl CompactAsks {
    /// Creates an empty table (no types, no runs).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the table from bundled asks, reusing all buffers.
    ///
    /// One run is created per ask whose type index is below `num_types` and
    /// whose user is eligible (`eligible[j]`, when a mask is given — the
    /// [quality-screening](../../rit_core/quality/index.html) path). Runs
    /// are grouped by type in user order, matching the unit expansion order
    /// of [`crate::extract::extract_with_quantities`].
    pub fn rebuild(&mut self, num_types: usize, asks: &[Ask], eligible: Option<&[bool]>) {
        self.values.clear();
        self.owners.clear();
        self.totals.clear();
        self.rem.clear();
        self.sorted.clear();
        self.type_start.clear();
        self.active.clear();
        self.cursors.clear();
        self.cursors.resize(num_types, 0);

        let included = |j: usize, ask: &Ask| {
            ask.task_type().index() < num_types && eligible.is_none_or(|e| e[j])
        };
        for (j, ask) in asks.iter().enumerate() {
            if included(j, ask) {
                self.cursors[ask.task_type().index()] += 1;
            }
        }
        let mut acc = 0u32;
        self.type_start.push(0);
        for c in &self.cursors {
            acc += c;
            self.type_start.push(acc);
        }
        let total_runs = acc as usize;
        self.values.resize(total_runs, 0.0);
        self.owners.resize(total_runs, 0);
        self.totals.resize(total_runs, 0);
        for (t, c) in self.cursors.iter_mut().enumerate() {
            *c = self.type_start[t];
        }
        for (j, ask) in asks.iter().enumerate() {
            if !included(j, ask) {
                continue;
            }
            let r = self.cursors[ask.task_type().index()] as usize;
            self.cursors[ask.task_type().index()] += 1;
            self.values[r] = ask.unit_price();
            self.owners[r] = u32::try_from(j).expect("user index fits u32");
            self.totals[r] = ask.quantity();
        }
        self.rem.extend_from_slice(&self.totals);
        self.sorted.extend(0..total_runs as u32);
        let values = &self.values;
        for t in 0..num_types {
            let (lo, hi) = (self.type_start[t] as usize, self.type_start[t + 1] as usize);
            // `sort_unstable_by` allocates nothing (std's stable sort does),
            // and the `(value, run id)` key is a total order, so the result
            // is deterministic despite the instability.
            self.sorted[lo..hi].sort_unstable_by(|&x, &y| {
                values[x as usize]
                    .partial_cmp(&values[y as usize])
                    .expect("finite asks compare")
                    .then(x.cmp(&y))
            });
        }
        for t in 0..num_types {
            let (lo, hi) = (self.type_start[t] as usize, self.type_start[t + 1] as usize);
            self.active.push(self.rem[lo..hi].iter().sum());
        }
    }

    /// Builds a single-type table of singleton runs (one unit per run) from
    /// raw unit values — the flat representation [`crate::cra`] accepts. Run
    /// `r` owns exactly unit `r`, so [`CompactAsks::owner`] is the identity.
    #[must_use]
    pub fn from_unit_values(values: &[f64]) -> Self {
        let n = values.len();
        let mut c = Self::new();
        c.values.extend_from_slice(values);
        c.owners
            .extend(0..u32::try_from(n).expect("unit count fits u32"));
        c.totals.resize(n, 1);
        c.rem.resize(n, 1);
        c.sorted.extend(0..n as u32);
        let vals = &c.values;
        c.sorted.sort_unstable_by(|&x, &y| {
            vals[x as usize]
                .partial_cmp(&vals[y as usize])
                .expect("finite asks compare")
                .then(x.cmp(&y))
        });
        c.type_start.push(0);
        c.type_start.push(n as u32);
        c.active.push(n as u64);
        c
    }

    /// Restores every run's remaining count to its initial quantity, without
    /// re-sorting — the cheap way to replay the same scenario.
    pub fn reset(&mut self) {
        self.rem.clear();
        self.rem.extend_from_slice(&self.totals);
        for (t, a) in self.active.iter_mut().enumerate() {
            let (lo, hi) = (self.type_start[t] as usize, self.type_start[t + 1] as usize);
            *a = self.rem[lo..hi].iter().sum();
        }
    }

    /// Number of task-type segments.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.type_start.len().saturating_sub(1)
    }

    /// Number of runs across all types.
    #[must_use]
    pub fn num_runs(&self) -> usize {
        self.values.len()
    }

    /// Remaining (not yet won) units of type `type_index`.
    ///
    /// # Panics
    ///
    /// Panics if `type_index` is out of range.
    #[must_use]
    pub fn active_units(&self, type_index: usize) -> u64 {
        self.active[type_index]
    }

    /// The user owning run `run` — the provenance map `λ` of Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn owner(&self, run: u32) -> usize {
        self.owners[run as usize] as usize
    }

    /// The unit value of run `run`.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn value(&self, run: u32) -> f64 {
        self.values[run as usize]
    }

    /// Units of run `run` not yet won.
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn remaining(&self, run: u32) -> u64 {
        self.rem[run as usize]
    }

    /// Records that one unit of run `run` (of type `type_index`) was won
    /// (Algorithm 3, Line 15: the winner's leftover claim shrinks).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the run is already exhausted.
    pub fn consume(&mut self, type_index: usize, run: u32) {
        debug_assert!(self.rem[run as usize] > 0, "consuming an exhausted run");
        self.rem[run as usize] -= 1;
        self.active[type_index] -= 1;
    }

    /// The `(start, end)` run range of a type segment.
    fn type_range(&self, type_index: usize) -> (usize, usize) {
        (
            self.type_start[type_index] as usize,
            self.type_start[type_index + 1] as usize,
        )
    }

    /// Splits the table into one independently mutable [`TypeAsksView`] per
    /// type segment.
    ///
    /// The per-type segments of `rem` (and the per-type `active` counters)
    /// tile their arrays exactly, so the views are disjoint and can be
    /// handed to different worker threads; `values`/`owners`/`sorted` are
    /// shared read-only. Running [`run_round_type`] on view `t` consumes
    /// randomness and mutates state exactly like [`run_round`] on
    /// `type_index = t` would.
    pub fn split_types(&mut self) -> Vec<TypeAsksView<'_>> {
        let num_types = self.num_types();
        let values: &[f64] = &self.values;
        let owners: &[u32] = &self.owners;
        let mut sorted_rest: &[u32] = &self.sorted;
        let mut rem_rest: &mut [u64] = &mut self.rem;
        let mut active_rest: &mut [u64] = &mut self.active;
        let mut views = Vec::with_capacity(num_types);
        for t in 0..num_types {
            let lo = self.type_start[t] as usize;
            let hi = self.type_start[t + 1] as usize;
            let (sorted_seg, s_rest) = sorted_rest.split_at(hi - lo);
            sorted_rest = s_rest;
            let (rem_seg, r_rest) = rem_rest.split_at_mut(hi - lo);
            rem_rest = r_rest;
            let (active_seg, a_rest) = active_rest.split_at_mut(1);
            active_rest = a_rest;
            views.push(TypeAsksView {
                type_index: t,
                values,
                owners,
                sorted: sorted_seg,
                rem: rem_seg,
                lo: lo as u32,
                active: &mut active_seg[0],
            });
        }
        views
    }
}

/// A mutable window onto one type segment of a [`CompactAsks`] table,
/// produced by [`CompactAsks::split_types`].
///
/// Views of different types borrow disjoint mutable state, so a set of
/// views can be distributed across threads (`TypeAsksView` is `Send`);
/// each offers the same read/consume surface [`run_round`] uses, addressed
/// by **global** run id exactly like the parent table.
#[derive(Debug)]
pub struct TypeAsksView<'a> {
    type_index: usize,
    values: &'a [f64],
    owners: &'a [u32],
    sorted: &'a [u32],
    rem: &'a mut [u64],
    lo: u32,
    active: &'a mut u64,
}

impl TypeAsksView<'_> {
    /// The type segment this view covers.
    #[must_use]
    pub fn type_index(&self) -> usize {
        self.type_index
    }

    /// The global run-id range of this view's segment.
    #[must_use]
    pub fn run_range(&self) -> std::ops::Range<u32> {
        self.lo..self.lo + self.rem.len() as u32
    }

    /// Remaining (not yet won) units of this type.
    #[must_use]
    pub fn active_units(&self) -> u64 {
        *self.active
    }

    /// The user owning run `run` (global run id).
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn owner(&self, run: u32) -> usize {
        self.owners[run as usize] as usize
    }

    /// The unit value of run `run` (global run id).
    ///
    /// # Panics
    ///
    /// Panics if `run` is out of range.
    #[must_use]
    pub fn value(&self, run: u32) -> f64 {
        self.values[run as usize]
    }

    /// Units of run `run` (global run id, within this segment) not yet won.
    ///
    /// # Panics
    ///
    /// Panics if `run` is outside this view's segment.
    #[must_use]
    pub fn remaining(&self, run: u32) -> u64 {
        self.rem[(run - self.lo) as usize]
    }

    /// Records that one unit of run `run` (global run id, within this
    /// segment) was won; mirrors [`CompactAsks::consume`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the run is already exhausted, and in all
    /// builds if `run` is outside this view's segment.
    pub fn consume(&mut self, run: u32) {
        let i = (run - self.lo) as usize;
        debug_assert!(self.rem[i] > 0, "consuming an exhausted run");
        self.rem[i] -= 1;
        *self.active -= 1;
    }
}

/// Reusable scratch buffers for [`run_round`]. After the first round of a
/// given scenario shape the buffers are warm and rounds allocate nothing.
///
/// After a round, [`AuctionWorkspace::winners`] holds one run id per winning
/// unit (a run appears once per unit it won).
#[derive(Clone, Debug, Default)]
pub struct AuctionWorkspace {
    /// `UniformEligible` per-unit run ids (the shuffled eligible prefix).
    eligible: Vec<u32>,
    /// Chosen per-unit run ids; after the round, the winners.
    chosen: Vec<u32>,
}

impl AuctionWorkspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Run ids of the last round's winning units, one entry per unit won
    /// (order is an artifact of selection and thinning — treat as a
    /// multiset).
    #[must_use]
    pub fn winners(&self) -> &[u32] {
        &self.chosen
    }
}

/// Summary of one engine CRA round. The winning units live in the
/// workspace ([`AuctionWorkspace::winners`]); everything here is `Copy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundReport {
    /// Units entering the round (the flat `α` length of Algorithm 2).
    pub unit_asks: u64,
    /// Winning units selected (`≤ q`).
    pub num_winners: usize,
    /// Uniform clearing price paid per winning unit (0 when no winners).
    pub clearing_price: f64,
    /// CRA internals (sample, threshold, consensus count).
    pub diagnostics: CraDiagnostics,
}

/// Runs one round of CRA (Algorithm 1) for `type_index` directly on the
/// sorted runs of `asks`, with `q` unallocated tasks and job size `m_i`.
///
/// Winners are left in `ws` ([`AuctionWorkspace::winners`]); the caller
/// applies them (and calls [`CompactAsks::consume`] per winning unit).
/// Consumes randomness identically to [`crate::cra::run_with_rule`] over the
/// equivalent flat unit asks.
///
/// # Panics
///
/// Panics if `type_index` is out of range.
#[must_use]
pub fn run_round<R: Rng + ?Sized>(
    asks: &CompactAsks,
    type_index: usize,
    q: u64,
    m_i: u64,
    rule: SelectionRule,
    ws: &mut AuctionWorkspace,
    rng: &mut R,
) -> RoundReport {
    let n = asks.active_units(type_index);
    let (lo, hi) = asks.type_range(type_index);
    run_round_core(
        asks.values.as_slice(),
        &asks.sorted[lo..hi],
        &asks.rem[lo..hi],
        lo as u32,
        n,
        q,
        m_i,
        rule,
        ws,
        rng,
    )
}

/// Runs one CRA round on a single-type view, exactly as [`run_round`] would
/// on the parent table's corresponding `type_index` — same winners (global
/// run ids in [`AuctionWorkspace::winners`]), same report, same randomness
/// consumed.
#[must_use]
pub fn run_round_type<R: Rng + ?Sized>(
    view: &TypeAsksView<'_>,
    q: u64,
    m_i: u64,
    rule: SelectionRule,
    ws: &mut AuctionWorkspace,
    rng: &mut R,
) -> RoundReport {
    run_round_core(
        view.values,
        view.sorted,
        view.rem,
        view.lo,
        *view.active,
        q,
        m_i,
        rule,
        ws,
        rng,
    )
}

/// Shared round body: one type segment, addressed by the segment's sorted
/// run ids (global), its local `rem` slice (`rem_seg[r - lo]`), and the
/// global `values` table.
#[allow(clippy::too_many_arguments)]
fn run_round_core<R: Rng + ?Sized>(
    values: &[f64],
    sorted_seg: &[u32],
    rem_seg: &[u64],
    lo: u32,
    n: u64,
    q: u64,
    m_i: u64,
    rule: SelectionRule,
    ws: &mut AuctionWorkspace,
    rng: &mut R,
) -> RoundReport {
    ws.chosen.clear();
    ws.eligible.clear();
    if n == 0 || q == 0 {
        return RoundReport {
            unit_asks: n,
            num_winners: 0,
            clearing_price: 0.0,
            diagnostics: CraDiagnostics::default(),
        };
    }
    let qm = usize::try_from(q.saturating_add(m_i)).unwrap_or(usize::MAX);

    // Lines 2-3: sample each unit with probability 1/(q+mᵢ) in the same
    // per-user expansion order Extract used; s = min sampled value.
    let sample_p = 1.0 / qm as f64;
    let mut s = f64::INFINITY;
    let mut sample_size = 0usize;
    for (i, &rem) in rem_seg.iter().enumerate() {
        if rem == 0 {
            continue;
        }
        let v = values[lo as usize + i];
        for _ in 0..rem {
            if rng.gen_bool(sample_p) {
                sample_size += 1;
                if v < s {
                    s = v;
                }
            }
        }
    }
    if !s.is_finite() {
        // Empty sample: allocate nothing (bid-independent), next round.
        return RoundReport {
            unit_asks: n,
            num_winners: 0,
            clearing_price: 0.0,
            diagnostics: CraDiagnostics {
                sample_size,
                ..CraDiagnostics::default()
            },
        };
    }

    // Lines 4-5: consensus count of units at or below s — a prefix scan of
    // the value-sorted runs (all units ≤ s precede any unit > s).
    let lattice = Lattice::random(rng);
    let mut z_s = 0u64;
    for &ri in sorted_seg {
        if values[ri as usize] > s {
            break;
        }
        z_s += rem_seg[(ri - lo) as usize];
    }
    let n_s = lattice.consensus_count(z_s);
    let n_s_usize = usize::try_from(n_s).unwrap_or(usize::MAX);
    let take = n_s_usize.min(usize::try_from(n).unwrap_or(usize::MAX));

    // Lines 6-12: tentative selection among the n_s cheapest units.
    if rule == SelectionRule::UniformEligible {
        // Materialize the eligible units (value ≤ s) and shuffle the prefix
        // so rank below the threshold carries no information.
        let z = usize::try_from(z_s).unwrap_or(usize::MAX);
        let mut left = z;
        for &ri in sorted_seg {
            if left == 0 {
                break;
            }
            let c = usize::try_from(rem_seg[(ri - lo) as usize])
                .unwrap_or(usize::MAX)
                .min(left);
            for _ in 0..c {
                ws.eligible.push(ri);
            }
            left -= c;
        }
        ws.eligible.shuffle(rng);
        if n_s_usize <= qm {
            ws.chosen.extend_from_slice(&ws.eligible[..take]);
        } else {
            let keep_p = qm as f64 / (2.0 * n_s as f64);
            for &ri in &ws.eligible[..take] {
                if rng.gen_bool(keep_p) {
                    ws.chosen.push(ri);
                }
            }
        }
    } else if n_s_usize <= qm {
        let mut left = take;
        for &ri in sorted_seg {
            if left == 0 {
                break;
            }
            let c = usize::try_from(rem_seg[(ri - lo) as usize])
                .unwrap_or(usize::MAX)
                .min(left);
            for _ in 0..c {
                ws.chosen.push(ri);
            }
            left -= c;
        }
    } else {
        let keep_p = qm as f64 / (2.0 * n_s as f64);
        let mut left = take;
        for &ri in sorted_seg {
            let mut rem = usize::try_from(rem_seg[(ri - lo) as usize]).unwrap_or(usize::MAX);
            while rem > 0 && left > 0 {
                if rng.gen_bool(keep_p) {
                    ws.chosen.push(ri);
                }
                rem -= 1;
                left -= 1;
            }
            if left == 0 {
                break;
            }
        }
    }

    // Lines 13-16: (q+mᵢ+1)-st price fallback if still too many.
    let mut price = s;
    let mut price_from_fallback = false;
    if ws.chosen.len() > qm {
        if rule == SelectionRule::UniformEligible {
            // Restore ascending value order so the fallback keeps the
            // paper's "smallest q+mᵢ" semantics (individual rationality).
            ws.chosen.sort_unstable_by(|&x, &y| {
                values[x as usize]
                    .partial_cmp(&values[y as usize])
                    .expect("finite asks compare")
                    .then(x.cmp(&y))
            });
        }
        price = values[ws.chosen[qm] as usize];
        price_from_fallback = true;
        ws.chosen.truncate(qm);
    }

    // Lines 17-19: thin to exactly q winners. A partial Fisher-Yates pass
    // draws a uniform q-subset in place, allocation-free.
    let q_usize = usize::try_from(q).unwrap_or(usize::MAX);
    if ws.chosen.len() > q_usize {
        let len = ws.chosen.len();
        for i in 0..q_usize {
            let j = rng.gen_range(i..len);
            ws.chosen.swap(i, j);
        }
        ws.chosen.truncate(q_usize);
    }

    let num_winners = ws.chosen.len();
    RoundReport {
        unit_asks: n,
        num_winners,
        clearing_price: if num_winners > 0 { price } else { 0.0 },
        diagnostics: CraDiagnostics {
            sample_size,
            threshold: Some(s),
            raw_count: z_s,
            consensus_count: n_s,
            price_from_fallback,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_model::TaskTypeId;

    fn t(i: u32) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn rebuild_groups_by_type_in_user_order() {
        let asks = vec![
            Ask::new(t(1), 2, 3.0).unwrap(),
            Ask::new(t(0), 4, 2.0).unwrap(),
            Ask::new(t(1), 1, 1.0).unwrap(),
            Ask::new(t(7), 1, 1.0).unwrap(), // outside the job: dropped
        ];
        let mut c = CompactAsks::new();
        c.rebuild(2, &asks, None);
        assert_eq!(c.num_types(), 2);
        assert_eq!(c.num_runs(), 3);
        assert_eq!(c.active_units(0), 4);
        assert_eq!(c.active_units(1), 3);
        // Type 0 segment: run for user 1. Type 1 segment: users 0, 2.
        assert_eq!(c.owner(0), 1);
        assert_eq!(c.owner(1), 0);
        assert_eq!(c.owner(2), 2);
        assert_eq!(c.value(1), 3.0);
        assert_eq!(c.remaining(1), 2);
    }

    #[test]
    fn eligibility_mask_drops_runs() {
        let asks = vec![
            Ask::new(t(0), 2, 3.0).unwrap(),
            Ask::new(t(0), 4, 2.0).unwrap(),
        ];
        let mut c = CompactAsks::new();
        c.rebuild(1, &asks, Some(&[false, true]));
        assert_eq!(c.num_runs(), 1);
        assert_eq!(c.owner(0), 1);
        assert_eq!(c.active_units(0), 4);
    }

    #[test]
    fn consume_and_reset_track_quantities() {
        let asks = vec![Ask::new(t(0), 3, 2.0).unwrap()];
        let mut c = CompactAsks::new();
        c.rebuild(1, &asks, None);
        c.consume(0, 0);
        c.consume(0, 0);
        assert_eq!(c.remaining(0), 1);
        assert_eq!(c.active_units(0), 1);
        c.reset();
        assert_eq!(c.remaining(0), 3);
        assert_eq!(c.active_units(0), 3);
    }

    #[test]
    fn rebuild_reuses_buffers_across_shapes() {
        let mut c = CompactAsks::new();
        let big: Vec<Ask> = (0..50)
            .map(|i| Ask::new(t(i % 3), 2, 1.0 + f64::from(i)).unwrap())
            .collect();
        c.rebuild(3, &big, None);
        assert_eq!(c.num_runs(), 50);
        let small = vec![Ask::new(t(0), 1, 5.0).unwrap()];
        c.rebuild(1, &small, None);
        assert_eq!(c.num_types(), 1);
        assert_eq!(c.num_runs(), 1);
        assert_eq!(c.active_units(0), 1);
        assert_eq!(c.value(0), 5.0);
    }

    #[test]
    fn run_round_respects_q_and_individual_rationality() {
        let asks: Vec<Ask> = (0..60u32)
            .map(|i| Ask::new(t(0), 1 + u64::from(i % 4), 0.1 + f64::from(i) * 0.13).unwrap())
            .collect();
        let mut c = CompactAsks::new();
        c.rebuild(1, &asks, None);
        let mut ws = AuctionWorkspace::new();
        for seed in 0..200 {
            c.reset();
            let report = run_round(
                &c,
                0,
                7,
                10,
                SelectionRule::SmallestFirst,
                &mut ws,
                &mut rng(seed),
            );
            assert!(report.num_winners <= 7);
            assert_eq!(report.num_winners, ws.winners().len());
            for &r in ws.winners() {
                assert!(c.value(r) <= report.clearing_price + 1e-12);
            }
        }
    }

    #[test]
    fn singleton_runs_have_identity_owners() {
        let c = CompactAsks::from_unit_values(&[3.0, 1.0, 2.0]);
        assert_eq!(c.num_types(), 1);
        assert_eq!(c.active_units(0), 3);
        for r in 0..3 {
            assert_eq!(c.owner(r), r as usize);
            assert_eq!(c.remaining(r), 1);
        }
    }

    #[test]
    fn split_views_match_run_round_exactly() {
        let asks: Vec<Ask> = (0..40u32)
            .map(|i| Ask::new(t(i % 3), 1 + u64::from(i % 4), 0.2 + f64::from(i) * 0.17).unwrap())
            .collect();
        let mut serial = CompactAsks::new();
        serial.rebuild(3, &asks, None);
        let mut split = serial.clone();
        let mut views = split.split_types();
        assert_eq!(views.len(), 3);
        let mut ws_a = AuctionWorkspace::new();
        let mut ws_b = AuctionWorkspace::new();
        for round in 0..4u64 {
            for (t_idx, view) in views.iter_mut().enumerate() {
                assert_eq!(view.type_index(), t_idx);
                for rule in [SelectionRule::SmallestFirst, SelectionRule::UniformEligible] {
                    let seed = 100 + 17 * round + t_idx as u64;
                    let ra = run_round(&serial, t_idx, 5, 8, rule, &mut ws_a, &mut rng(seed));
                    let rb = run_round_type(view, 5, 8, rule, &mut ws_b, &mut rng(seed));
                    assert_eq!(ra, rb);
                    assert_eq!(ws_a.winners(), ws_b.winners());
                }
                // Apply the last round's winners through both surfaces.
                let winners: Vec<u32> = ws_a.winners().to_vec();
                for &r in &winners {
                    assert_eq!(serial.owner(r), view.owner(r));
                    assert_eq!(serial.value(r), view.value(r));
                    serial.consume(t_idx, r);
                    view.consume(r);
                    assert_eq!(serial.remaining(r), view.remaining(r));
                }
                assert_eq!(serial.active_units(t_idx), view.active_units());
            }
        }
    }

    #[test]
    fn empty_type_or_zero_q_is_a_noop_round() {
        let c = CompactAsks::from_unit_values(&[]);
        let mut ws = AuctionWorkspace::new();
        let report = run_round(
            &c,
            0,
            5,
            5,
            SelectionRule::SmallestFirst,
            &mut ws,
            &mut rng(1),
        );
        assert_eq!(report.num_winners, 0);
        assert_eq!(report.unit_asks, 0);
        let c = CompactAsks::from_unit_values(&[1.0]);
        let report = run_round(
            &c,
            0,
            0,
            5,
            SelectionRule::SmallestFirst,
            &mut ws,
            &mut rng(1),
        );
        assert_eq!(report.num_winners, 0);
    }
}
