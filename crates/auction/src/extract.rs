//! Extract — expanding user asks into unit asks (paper Algorithm 2).
//!
//! CRA prices *unit* asks (one ask = one task), while users submit bundled
//! asks `(tⱼ, kⱼ, aⱼ)`. `Extract(τᵢ, A)` expands each ask of type `τᵢ` into
//! `kⱼ` unit asks of value `aⱼ` and records the provenance map
//! `λ(ω) = j`, so auction results can be folded back onto users.
//!
//! This is the reference (materializing) form of the expansion. The hot path
//! in [`crate::engine`] keeps the run-length form instead — one
//! `(value, owner, remaining)` run per user — and never materializes the
//! units; both enumerate units in the same per-user order, so outcomes and
//! RNG draws agree exactly.

use rit_model::{Ask, TaskTypeId};

/// The unit-ask vector `α` for one task type plus the provenance map `λ`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UnitAsks {
    values: Vec<f64>,
    owners: Vec<u32>,
}

impl UnitAsks {
    /// The unit ask values `α = (α₁, α₂, …)`.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The provenance map: `owner(ω)` is the index of the user whose ask
    /// produced unit ask `ω` (the paper's `λ(ω) = j`).
    #[must_use]
    pub fn owner(&self, omega: usize) -> usize {
        self.owners[omega] as usize
    }

    /// Number of unit asks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no unit asks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(value, owner)` pairs in expansion order.
    pub fn iter(&self) -> impl Iterator<Item = (f64, usize)> + '_ {
        self.values
            .iter()
            .zip(&self.owners)
            .map(|(&v, &o)| (v, o as usize))
    }
}

/// `Extract(τᵢ, A)`: expands every ask of type `task_type` into unit asks
/// (Algorithm 2). `asks[j]` is user `j`'s ask.
#[must_use]
pub fn extract(task_type: TaskTypeId, asks: &[Ask]) -> UnitAsks {
    let quantities: Vec<u64> = asks.iter().map(Ask::quantity).collect();
    extract_with_quantities(task_type, asks, &quantities)
}

/// Like [`extract`], but expanding only `remaining[j]` unit asks per user —
/// the form RIT needs between rounds, where won tasks shrink the leftover
/// claim `k'ⱼ` (Algorithm 3, Line 15).
///
/// # Panics
///
/// Panics if `remaining.len() != asks.len()`.
#[must_use]
pub fn extract_with_quantities(task_type: TaskTypeId, asks: &[Ask], remaining: &[u64]) -> UnitAsks {
    assert_eq!(
        asks.len(),
        remaining.len(),
        "remaining quantities must align with asks"
    );
    let mut values = Vec::new();
    let mut owners = Vec::new();
    for (j, (ask, &rem)) in asks.iter().zip(remaining).enumerate() {
        if ask.task_type() != task_type {
            continue;
        }
        for _ in 0..rem {
            values.push(ask.unit_price());
            owners.push(j as u32);
        }
    }
    UnitAsks { values, owners }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_model::{Ask, TaskTypeId};

    fn t(i: u32) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    #[test]
    fn paper_example() {
        // A = ((τ₀,2,3); (τ₁,3,4); (τ₀,4,2)) → α for τ₀ = (3,3,2,2,2,2),
        // λ = (0,0,2,2,2,2) in zero-based indices.
        let asks = vec![
            Ask::new(t(0), 2, 3.0).unwrap(),
            Ask::new(t(1), 3, 4.0).unwrap(),
            Ask::new(t(0), 4, 2.0).unwrap(),
        ];
        let u = extract(t(0), &asks);
        assert_eq!(u.values(), &[3.0, 3.0, 2.0, 2.0, 2.0, 2.0]);
        let owners: Vec<usize> = (0..u.len()).map(|w| u.owner(w)).collect();
        assert_eq!(owners, vec![0, 0, 2, 2, 2, 2]);
    }

    #[test]
    fn other_type_extraction() {
        let asks = vec![
            Ask::new(t(0), 2, 3.0).unwrap(),
            Ask::new(t(1), 3, 4.0).unwrap(),
        ];
        let u = extract(t(1), &asks);
        assert_eq!(u.values(), &[4.0, 4.0, 4.0]);
        assert_eq!(u.owner(0), 1);
    }

    #[test]
    fn no_matching_type_is_empty() {
        let asks = vec![Ask::new(t(0), 2, 3.0).unwrap()];
        let u = extract(t(7), &asks);
        assert!(u.is_empty());
        assert_eq!(u.len(), 0);
    }

    #[test]
    fn remaining_quantities_shrink_expansion() {
        let asks = vec![
            Ask::new(t(0), 5, 3.0).unwrap(),
            Ask::new(t(0), 2, 1.0).unwrap(),
        ];
        let u = extract_with_quantities(t(0), &asks, &[1, 0]);
        assert_eq!(u.values(), &[3.0]);
        assert_eq!(u.owner(0), 0);
    }

    #[test]
    fn iter_pairs() {
        let asks = vec![Ask::new(t(0), 2, 3.5).unwrap()];
        let u = extract(t(0), &asks);
        let pairs: Vec<(f64, usize)> = u.iter().collect();
        assert_eq!(pairs, vec![(3.5, 0), (3.5, 0)]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_remaining_panics() {
        let asks = vec![Ask::new(t(0), 2, 3.0).unwrap()];
        let _ = extract_with_quantities(t(0), &asks, &[1, 2]);
    }

    #[test]
    fn empty_profile() {
        let u = extract(t(0), &[]);
        assert!(u.is_empty());
    }
}
