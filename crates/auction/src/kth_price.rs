//! The `k`-th lowest price procurement auction (paper §4-A, citing \[31\]).
//!
//! Bidders each sell one item; the `k − 1` lowest asks win and are each paid
//! the `k`-th lowest ask. This is the textbook truthful auction the paper
//! uses in its design-challenge counterexamples — truthful in isolation, yet
//! broken once combined with an incentive tree (Fig 2 and Fig 3).

/// Outcome of a [`lowest_price_auction`].
#[derive(Clone, Debug, PartialEq)]
pub struct KthPriceOutcome {
    winners: Vec<bool>,
    clearing_price: Option<f64>,
}

impl KthPriceOutcome {
    /// Indicator vector over the input asks.
    #[must_use]
    pub fn winners(&self) -> &[bool] {
        &self.winners
    }

    /// Whether ask `i` won.
    #[must_use]
    pub fn is_winner(&self, i: usize) -> bool {
        self.winners.get(i).copied().unwrap_or(false)
    }

    /// The uniform clearing price (the `(slots+1)`-st lowest ask), or `None`
    /// when there were at most `slots` asks so no losing ask could set the
    /// price.
    #[must_use]
    pub fn clearing_price(&self) -> Option<f64> {
        self.clearing_price
    }

    /// Number of winners.
    #[must_use]
    pub fn num_winners(&self) -> usize {
        self.winners.iter().filter(|&&w| w).count()
    }

    /// Per-ask payment vector: clearing price for winners, 0 for losers.
    /// Winners with no defined clearing price are paid their own ask
    /// (degenerate full-supply case).
    #[must_use]
    pub fn payments(&self, asks: &[f64]) -> Vec<f64> {
        self.winners
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                if !w {
                    0.0
                } else {
                    self.clearing_price.unwrap_or(asks[i])
                }
            })
            .collect()
    }
}

/// Runs a procurement auction buying `slots` items: the `slots` lowest asks
/// win (ties broken by index) and each is paid the `(slots+1)`-st lowest ask.
///
/// Equivalent to the paper's "`k`-th lowest price auction" with
/// `k = slots + 1`.
///
/// # Panics
///
/// Panics if any ask is non-finite.
#[must_use]
pub fn lowest_price_auction(asks: &[f64], slots: usize) -> KthPriceOutcome {
    assert!(
        asks.iter().all(|a| a.is_finite()),
        "ask values must be finite"
    );
    let n = asks.len();
    let mut winners = vec![false; n];
    if slots == 0 || n == 0 {
        return KthPriceOutcome {
            winners,
            clearing_price: None,
        };
    }
    let mut order: Vec<usize> = (0..n).collect();
    // Unstable sort avoids the stable sort's scratch allocation; the
    // (value, index) key is a total order, so the result is deterministic.
    order.sort_unstable_by(|&a, &b| {
        asks[a]
            .partial_cmp(&asks[b])
            .expect("finite asks compare")
            .then(a.cmp(&b))
    });
    for &i in order.iter().take(slots) {
        winners[i] = true;
    }
    let clearing_price = order.get(slots).map(|&i| asks[i]);
    KthPriceOutcome {
        winners,
        clearing_price,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_third_price() {
        // Asks 5, 4, 5, 4 buying 2 → winners are the two 4s; price = 5.
        let out = lowest_price_auction(&[5.0, 4.0, 5.0, 4.0], 2);
        assert_eq!(out.winners(), &[false, true, false, true]);
        assert_eq!(out.clearing_price(), Some(5.0));
        assert_eq!(
            out.payments(&[5.0, 4.0, 5.0, 4.0]),
            vec![0.0, 5.0, 0.0, 5.0]
        );
    }

    #[test]
    fn fig2_truthful_scenario() {
        // §4-A: P1 asks (τ,2,2), P2 (τ,1,3), P3 (τ,1,5); two tasks. Unit
        // asks (2,2,3,5); winners are both of P1's units, price = 3,
        // auction payment 2×3 = 6.
        let out = lowest_price_auction(&[2.0, 2.0, 3.0, 5.0], 2);
        assert_eq!(out.winners(), &[true, true, false, false]);
        assert_eq!(out.clearing_price(), Some(3.0));
    }

    #[test]
    fn truthfulness_single_deviation() {
        // Classic check: a bidder cannot gain by misreporting. Utilities
        // computed against true costs.
        let costs = [2.0f64, 3.0, 5.0, 4.0];
        let slots = 2;
        let truthful = lowest_price_auction(&costs, slots);
        for i in 0..costs.len() {
            let truthful_pay = truthful.payments(&costs)[i];
            let truthful_util = truthful_pay - if truthful.is_winner(i) { costs[i] } else { 0.0 };
            for dev in [0.5, 0.9, 1.1, 2.0, 10.0] {
                let mut asks = costs;
                asks[i] = costs[i] * dev;
                let out = lowest_price_auction(&asks, slots);
                let pay = out.payments(&asks)[i];
                let util = pay - if out.is_winner(i) { costs[i] } else { 0.0 };
                assert!(
                    util <= truthful_util + 1e-9,
                    "bidder {i} gains by deviating ×{dev}: {util} > {truthful_util}"
                );
            }
        }
    }

    #[test]
    fn all_win_when_supply_exceeds_demand() {
        let out = lowest_price_auction(&[3.0, 1.0], 5);
        assert_eq!(out.num_winners(), 2);
        assert_eq!(out.clearing_price(), None);
        // Degenerate payment: own ask.
        assert_eq!(out.payments(&[3.0, 1.0]), vec![3.0, 1.0]);
    }

    #[test]
    fn zero_slots_or_empty() {
        assert_eq!(lowest_price_auction(&[1.0], 0).num_winners(), 0);
        assert_eq!(lowest_price_auction(&[], 3).num_winners(), 0);
    }

    #[test]
    fn ties_break_by_index() {
        let out = lowest_price_auction(&[2.0, 2.0, 2.0], 1);
        assert_eq!(out.winners(), &[true, false, false]);
        assert_eq!(out.clearing_price(), Some(2.0));
    }

    #[test]
    fn out_of_range_is_winner_false() {
        let out = lowest_price_auction(&[1.0], 1);
        assert!(!out.is_winner(7));
    }
}
