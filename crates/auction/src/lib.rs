//! Auction primitives for the RIT mechanism.
//!
//! This crate implements the auction-phase building blocks of *"Robust
//! Incentive Tree Design for Mobile Crowdsensing"* (ICDCS 2017):
//!
//! * [`consensus`] — the Goldberg–Hartline consensus-rounding lattice
//!   `{2^(z+y) : z ∈ ℤ}` that makes the winner count insensitive to small
//!   coalitions;
//! * [`cra`] — **Algorithm 1**, the Collusion-Resistant Auction: selects at
//!   most `q` winning unit asks for one task type at a uniform clearing
//!   price, `k`-truthful with high probability (Lemma 6.2);
//! * [`extract`] — **Algorithm 2**: expands per-user asks `(tⱼ, kⱼ, aⱼ)`
//!   into unit asks with a provenance map `λ`;
//! * [`engine`] — the allocation-free auction engine: CRA over run-length
//!   unit asks ([`engine::CompactAsks`]) with reusable scratch buffers
//!   ([`engine::AuctionWorkspace`]); [`cra`] is a thin wrapper over it;
//! * [`kth_price`] — the classic `k`-th lowest price procurement auction,
//!   used by the paper's §4 design-challenge counterexamples;
//! * [`bounds`] — the Lemma 6.2 truthfulness probability, `η = H^(1/m)`,
//!   and the per-type round budget `max = ⌊log_β η⌋` of Algorithm 3.
//!
//! # Example: one CRA round
//!
//! ```
//! use rand::SeedableRng;
//! use rit_auction::cra;
//!
//! let asks = vec![2.0, 3.0, 5.0, 2.5, 4.0, 9.0];
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
//! let outcome = cra::run(&asks, 2, 2, &mut rng);
//! // At most q = 2 winners; every winner's ask is at most the clearing price.
//! assert!(outcome.num_winners() <= 2);
//! for w in outcome.winner_indices() {
//!     assert!(asks[w] <= outcome.clearing_price());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod consensus;
pub mod cra;
pub mod engine;
pub mod extract;
pub mod kth_price;
