//! Property-based tests of the auction primitives.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_auction::consensus::Lattice;
use rit_auction::engine::{self, AuctionWorkspace, CompactAsks};
use rit_auction::{cra, extract, kth_price};
use rit_model::{Ask, TaskTypeId};

fn arb_asks() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..100.0, 0..80)
}

/// Bundled asks with duplicated prices so tie-breaking is exercised.
fn arb_bundled_asks() -> impl Strategy<Value = Vec<Ask>> {
    prop::collection::vec((1u64..6, 1u32..40), 1..40).prop_map(|specs| {
        specs
            .into_iter()
            .map(|(k, tenths)| Ask::new(TaskTypeId::new(0), k, f64::from(tenths) * 0.1).unwrap())
            .collect()
    })
}

proptest! {
    // ---- consensus lattice -------------------------------------------------

    #[test]
    fn lattice_round_down_bounds(y in 0.0f64..1.0, v in 1e-6f64..1e12) {
        let l = Lattice::new(y).unwrap();
        let r = l.round_down(v).unwrap();
        prop_assert!(r <= v);
        prop_assert!(r > v / 2.0);
    }

    #[test]
    fn consensus_count_monotone_in_input(y in 0.0f64..1.0, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let l = Lattice::new(y).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(l.consensus_count(lo) <= l.consensus_count(hi));
    }

    // ---- CRA ---------------------------------------------------------------

    #[test]
    fn cra_respects_capacity_and_ir(
        asks in arb_asks(),
        q in 0u64..30,
        m_i in 0u64..30,
        seed in any::<u64>(),
    ) {
        prop_assume!(q + m_i > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = cra::run(&asks, q, m_i, &mut rng);
        // Never more than q winners.
        prop_assert!(out.num_winners() as u64 <= q);
        // Indicator and payments align; winners pay ≥ their ask (IR).
        let payments = out.payments();
        prop_assert_eq!(payments.len(), asks.len());
        for (i, &a) in asks.iter().enumerate() {
            if out.is_winner(i) {
                prop_assert!(out.clearing_price() >= a - 1e-12);
                prop_assert_eq!(payments[i], out.clearing_price());
            } else {
                prop_assert_eq!(payments[i], 0.0);
            }
        }
    }

    #[test]
    fn cra_clearing_price_is_bid_independent_for_losers(
        asks in prop::collection::vec(0.01f64..100.0, 2..40),
        q in 1u64..10,
        seed in any::<u64>(),
    ) {
        // Raising a loser's ask above the price never turns it into a winner
        // under the same randomness (the winner set among others may shift,
        // but the riser itself stays out). This is the monotonicity that
        // underlies truthfulness.
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = cra::run(&asks, q, q, &mut rng);
        if let Some(loser) = (0..asks.len()).find(|&i| !out.is_winner(i) && asks[i] > out.clearing_price()) {
            let mut higher = asks.clone();
            higher[loser] = asks[loser] * 2.0;
            let mut rng2 = SmallRng::seed_from_u64(seed);
            let out2 = cra::run(&higher, q, q, &mut rng2);
            prop_assert!(!out2.is_winner(loser));
        }
    }

    #[test]
    fn uniform_eligible_rule_matches_core_invariants(
        asks in arb_asks(),
        q in 0u64..30,
        m_i in 0u64..30,
        seed in any::<u64>(),
    ) {
        use rit_auction::cra::SelectionRule;
        prop_assume!(q + m_i > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = cra::run_with_rule(&asks, q, m_i, SelectionRule::UniformEligible, &mut rng);
        prop_assert!(out.num_winners() as u64 <= q);
        for (i, &a) in asks.iter().enumerate() {
            if out.is_winner(i) {
                prop_assert!(out.clearing_price() >= a - 1e-12);
                if let Some(s) = out.diagnostics().threshold {
                    prop_assert!(a <= s + 1e-12, "winner above the sampled threshold");
                }
            }
        }
        // Both rules agree on the *set of eligible* asks given the same
        // coins: the diagnostics (sample, threshold, counts) coincide.
        let mut rng2 = SmallRng::seed_from_u64(seed);
        let rank = cra::run_with_rule(&asks, q, m_i, SelectionRule::SmallestFirst, &mut rng2);
        prop_assert_eq!(out.diagnostics().threshold, rank.diagnostics().threshold);
        prop_assert_eq!(out.diagnostics().raw_count, rank.diagnostics().raw_count);
        prop_assert_eq!(out.diagnostics().consensus_count, rank.diagnostics().consensus_count);
    }

    // ---- engine/legacy equivalence -----------------------------------------

    #[test]
    fn engine_grouped_runs_match_flat_cra_exactly(
        asks in arb_bundled_asks(),
        q in 1u64..40,
        m_i in 0u64..30,
        uniform in any::<bool>(),
        seed in any::<u64>(),
    ) {
        use rit_auction::cra::SelectionRule;
        let rule = if uniform { SelectionRule::UniformEligible } else { SelectionRule::SmallestFirst };

        // Engine path: run-length runs built from the bundled asks.
        let mut compact = CompactAsks::new();
        compact.rebuild(1, &asks, None);
        let mut ws = AuctionWorkspace::new();
        let mut rng_engine = SmallRng::seed_from_u64(seed);
        let report = engine::run_round(&compact, 0, q, m_i, rule, &mut ws, &mut rng_engine);

        // Legacy path: Extract to flat unit asks, then the cra wrapper.
        let flat = extract::extract(TaskTypeId::new(0), &asks);
        let mut rng_flat = SmallRng::seed_from_u64(seed);
        let out = cra::run_with_rule(flat.values(), q, m_i, rule, &mut rng_flat);

        // Identical prices, counts, and diagnostics...
        prop_assert_eq!(report.clearing_price, out.clearing_price());
        prop_assert_eq!(report.num_winners, out.num_winners());
        prop_assert_eq!(&report.diagnostics, out.diagnostics());
        prop_assert_eq!(report.unit_asks as usize, flat.len());
        // ...identical per-user win counts...
        let mut engine_wins = vec![0u64; asks.len()];
        for &r in ws.winners() {
            engine_wins[compact.owner(r)] += 1;
        }
        let mut flat_wins = vec![0u64; asks.len()];
        for w in out.winner_indices() {
            flat_wins[flat.owner(w)] += 1;
        }
        prop_assert_eq!(engine_wins, flat_wins);
        // ...and identical RNG draw counts (the streams stay in lockstep).
        prop_assert_eq!(rng_engine.gen::<u64>(), rng_flat.gen::<u64>());
    }

    #[test]
    fn engine_consume_matches_re_extraction(
        asks in arb_bundled_asks(),
        q0 in 1u64..20,
        seed in any::<u64>(),
    ) {
        use rit_auction::cra::SelectionRule;
        // Two consecutive rounds: the engine consumes winners in place, the
        // legacy path re-extracts with shrunken remaining quantities. Both
        // must agree round by round.
        let m_i = q0;
        let mut compact = CompactAsks::new();
        compact.rebuild(1, &asks, None);
        let mut ws = AuctionWorkspace::new();
        let mut rng_engine = SmallRng::seed_from_u64(seed);

        let mut remaining: Vec<u64> = asks.iter().map(Ask::quantity).collect();
        let mut rng_flat = SmallRng::seed_from_u64(seed);
        let mut q = q0;
        for _ in 0..2 {
            if q == 0 || compact.active_units(0) == 0 {
                break;
            }
            let report = engine::run_round(
                &compact, 0, q, m_i, SelectionRule::SmallestFirst, &mut ws, &mut rng_engine,
            );
            let flat = extract::extract_with_quantities(TaskTypeId::new(0), &asks, &remaining);
            let out = cra::run_with_rule(flat.values(), q, m_i, SelectionRule::SmallestFirst, &mut rng_flat);
            prop_assert_eq!(report.num_winners, out.num_winners());
            prop_assert_eq!(report.clearing_price, out.clearing_price());
            let mut engine_wins = vec![0u64; asks.len()];
            for &r in ws.winners() {
                engine_wins[compact.owner(r)] += 1;
                compact.consume(0, r);
                q -= 1;
            }
            let mut flat_wins = vec![0u64; asks.len()];
            for w in out.winner_indices() {
                flat_wins[flat.owner(w)] += 1;
                remaining[flat.owner(w)] -= 1;
            }
            prop_assert_eq!(engine_wins, flat_wins);
        }
    }

    // ---- Extract -----------------------------------------------------------

    #[test]
    fn extract_expands_exactly_quantities(
        quantities in prop::collection::vec(1u64..10, 1..20),
        prices in prop::collection::vec(0.1f64..50.0, 20),
        type_picks in prop::collection::vec(0u32..3, 20),
    ) {
        let asks: Vec<Ask> = quantities
            .iter()
            .enumerate()
            .map(|(j, &k)| Ask::new(TaskTypeId::new(type_picks[j]), k, prices[j]).unwrap())
            .collect();
        for t in 0..3u32 {
            let u = extract::extract(TaskTypeId::new(t), &asks);
            let expected: u64 = asks
                .iter()
                .filter(|a| a.task_type() == TaskTypeId::new(t))
                .map(Ask::quantity)
                .sum();
            prop_assert_eq!(u.len() as u64, expected);
            for (v, owner) in u.iter() {
                prop_assert_eq!(asks[owner].task_type(), TaskTypeId::new(t));
                prop_assert_eq!(v, asks[owner].unit_price());
            }
        }
    }

    // ---- k-th price --------------------------------------------------------

    #[test]
    fn kth_price_winners_are_the_cheapest(asks in prop::collection::vec(0.01f64..100.0, 1..50), slots in 1usize..20) {
        let out = kth_price::lowest_price_auction(&asks, slots);
        let price = out.clearing_price();
        for (i, &a) in asks.iter().enumerate() {
            if out.is_winner(i) {
                if let Some(p) = price {
                    prop_assert!(a <= p);
                }
            } else if let Some(p) = price {
                // Losers are at least as expensive as the clearing price.
                prop_assert!(a >= p - 1e-12);
            }
        }
        prop_assert_eq!(out.num_winners(), slots.min(asks.len()));
    }
}
