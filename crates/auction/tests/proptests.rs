//! Property-based tests of the auction primitives.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_auction::consensus::Lattice;
use rit_auction::{cra, extract, kth_price};
use rit_model::{Ask, TaskTypeId};

fn arb_asks() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..100.0, 0..80)
}

proptest! {
    // ---- consensus lattice -------------------------------------------------

    #[test]
    fn lattice_round_down_bounds(y in 0.0f64..1.0, v in 1e-6f64..1e12) {
        let l = Lattice::new(y).unwrap();
        let r = l.round_down(v).unwrap();
        prop_assert!(r <= v);
        prop_assert!(r > v / 2.0);
    }

    #[test]
    fn consensus_count_monotone_in_input(y in 0.0f64..1.0, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let l = Lattice::new(y).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(l.consensus_count(lo) <= l.consensus_count(hi));
    }

    // ---- CRA ---------------------------------------------------------------

    #[test]
    fn cra_respects_capacity_and_ir(
        asks in arb_asks(),
        q in 0u64..30,
        m_i in 0u64..30,
        seed in any::<u64>(),
    ) {
        prop_assume!(q + m_i > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = cra::run(&asks, q, m_i, &mut rng);
        // Never more than q winners.
        prop_assert!(out.num_winners() as u64 <= q);
        // Indicator and payments align; winners pay ≥ their ask (IR).
        let payments = out.payments();
        prop_assert_eq!(payments.len(), asks.len());
        for (i, &a) in asks.iter().enumerate() {
            if out.is_winner(i) {
                prop_assert!(out.clearing_price() >= a - 1e-12);
                prop_assert_eq!(payments[i], out.clearing_price());
            } else {
                prop_assert_eq!(payments[i], 0.0);
            }
        }
    }

    #[test]
    fn cra_clearing_price_is_bid_independent_for_losers(
        asks in prop::collection::vec(0.01f64..100.0, 2..40),
        q in 1u64..10,
        seed in any::<u64>(),
    ) {
        // Raising a loser's ask above the price never turns it into a winner
        // under the same randomness (the winner set among others may shift,
        // but the riser itself stays out). This is the monotonicity that
        // underlies truthfulness.
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = cra::run(&asks, q, q, &mut rng);
        if let Some(loser) = (0..asks.len()).find(|&i| !out.is_winner(i) && asks[i] > out.clearing_price()) {
            let mut higher = asks.clone();
            higher[loser] = asks[loser] * 2.0;
            let mut rng2 = SmallRng::seed_from_u64(seed);
            let out2 = cra::run(&higher, q, q, &mut rng2);
            prop_assert!(!out2.is_winner(loser));
        }
    }

    #[test]
    fn uniform_eligible_rule_matches_core_invariants(
        asks in arb_asks(),
        q in 0u64..30,
        m_i in 0u64..30,
        seed in any::<u64>(),
    ) {
        use rit_auction::cra::SelectionRule;
        prop_assume!(q + m_i > 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = cra::run_with_rule(&asks, q, m_i, SelectionRule::UniformEligible, &mut rng);
        prop_assert!(out.num_winners() as u64 <= q);
        for (i, &a) in asks.iter().enumerate() {
            if out.is_winner(i) {
                prop_assert!(out.clearing_price() >= a - 1e-12);
                if let Some(s) = out.diagnostics().threshold {
                    prop_assert!(a <= s + 1e-12, "winner above the sampled threshold");
                }
            }
        }
        // Both rules agree on the *set of eligible* asks given the same
        // coins: the diagnostics (sample, threshold, counts) coincide.
        let mut rng2 = SmallRng::seed_from_u64(seed);
        let rank = cra::run_with_rule(&asks, q, m_i, SelectionRule::SmallestFirst, &mut rng2);
        prop_assert_eq!(out.diagnostics().threshold, rank.diagnostics().threshold);
        prop_assert_eq!(out.diagnostics().raw_count, rank.diagnostics().raw_count);
        prop_assert_eq!(out.diagnostics().consensus_count, rank.diagnostics().consensus_count);
    }

    // ---- Extract -----------------------------------------------------------

    #[test]
    fn extract_expands_exactly_quantities(
        quantities in prop::collection::vec(1u64..10, 1..20),
        prices in prop::collection::vec(0.1f64..50.0, 20),
        type_picks in prop::collection::vec(0u32..3, 20),
    ) {
        let asks: Vec<Ask> = quantities
            .iter()
            .enumerate()
            .map(|(j, &k)| Ask::new(TaskTypeId::new(type_picks[j]), k, prices[j]).unwrap())
            .collect();
        for t in 0..3u32 {
            let u = extract::extract(TaskTypeId::new(t), &asks);
            let expected: u64 = asks
                .iter()
                .filter(|a| a.task_type() == TaskTypeId::new(t))
                .map(Ask::quantity)
                .sum();
            prop_assert_eq!(u.len() as u64, expected);
            for (v, owner) in u.iter() {
                prop_assert_eq!(asks[owner].task_type(), TaskTypeId::new(t));
                prop_assert_eq!(v, asks[owner].unit_price());
            }
        }
    }

    // ---- k-th price --------------------------------------------------------

    #[test]
    fn kth_price_winners_are_the_cheapest(asks in prop::collection::vec(0.01f64..100.0, 1..50), slots in 1usize..20) {
        let out = kth_price::lowest_price_auction(&asks, slots);
        let price = out.clearing_price();
        for (i, &a) in asks.iter().enumerate() {
            if out.is_winner(i) {
                if let Some(p) = price {
                    prop_assert!(a <= p);
                }
            } else if let Some(p) = price {
                // Losers are at least as expensive as the clearing price.
                prop_assert!(a >= p - 1e-12);
            }
        }
        prop_assert_eq!(out.num_winners(), slots.min(asks.len()));
    }
}
