//! Ablation: what the consensus machinery costs in time.
//!
//! RIT's CRA pays for collusion resistance with sampling, lattice rounding
//! and probabilistic thinning. This bench prices that overhead against the
//! plain (q+1)-st lowest price auction on identical unit-ask vectors — the
//! deterministic mechanism the paper proves *cannot* be `K_max`-truthful.
//! (The *quality* side of the ablation — how much a coalition gains against
//! each — is measured by the `experiments` binary's `ablation` figure, which
//! needs Monte Carlo rather than timing.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_auction::{cra, kth_price};
use std::hint::black_box;

fn consensus_vs_kth_price(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/consensus_overhead");
    for w in [10_000usize, 100_000] {
        let mut rng = SmallRng::seed_from_u64(11);
        let asks: Vec<f64> = (0..w).map(|_| rng.gen_range(0.01..10.0)).collect();
        group.throughput(Throughput::Elements(w as u64));
        group.bench_with_input(BenchmarkId::new("cra", w), &asks, |b, asks| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                black_box(cra::run(asks, 1_000, 1_000, &mut rng))
            });
        });
        group.bench_with_input(BenchmarkId::new("kth_price", w), &asks, |b, asks| {
            b.iter(|| black_box(kth_price::lowest_price_auction(asks, 1_000)));
        });
    }
    group.finish();
}

criterion_group!(benches, consensus_vs_kth_price);
criterion_main!(benches);
