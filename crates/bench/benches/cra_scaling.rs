//! Component bench: one CRA round vs the number of unit asks.
//!
//! CRA sorts the unit-ask vector, so a round is O(W log W) in the unit count
//! W; the overall auction phase stays `O(N·|J|)`-ish because the number of
//! rounds is a small constant (Theorem 3). This bench pins the per-round
//! constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_auction::cra;
use std::hint::black_box;

fn cra_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("cra/unit_asks");
    for w in [1_000usize, 10_000, 100_000] {
        let mut rng = SmallRng::seed_from_u64(1);
        let asks: Vec<f64> = (0..w).map(|_| rng.gen_range(0.01..10.0)).collect();
        group.throughput(Throughput::Elements(w as u64));
        group.bench_with_input(BenchmarkId::from_parameter(w), &asks, |b, asks| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                black_box(cra::run(asks, 500, 500, &mut rng))
            });
        });
    }
    group.finish();
}

fn extract_expansion(c: &mut Criterion) {
    use rit_model::{Ask, TaskTypeId};
    let mut group = c.benchmark_group("extract/users");
    for n in [10_000usize, 50_000] {
        let mut rng = SmallRng::seed_from_u64(2);
        let asks: Vec<Ask> = (0..n)
            .map(|_| {
                Ask::new(
                    TaskTypeId::new(rng.gen_range(0..10)),
                    rng.gen_range(1..=20),
                    rng.gen_range(0.01..10.0),
                )
                .unwrap()
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &asks, |b, asks| {
            b.iter(|| black_box(rit_auction::extract::extract(TaskTypeId::new(3), asks)));
        });
    }
    group.finish();
}

criterion_group!(benches, cra_round, extract_expansion);
criterion_main!(benches);
