//! RIT vs the paper's baselines through the generic [`Mechanism`] pipeline.
//!
//! Three arms over one frozen §7-A scenario, all entering through
//! `Mechanism::evaluate_in` with a warm per-arm workspace:
//!
//! * `rit` — Algorithm 3 (until-stall rounds), i.e. the engine measured by
//!   `engine_vs_legacy`, here reached through the trait to confirm the
//!   abstraction layer adds no measurable dispatch cost;
//! * `naive` — the §4 `k`-th-price + contribution-tree combination;
//! * `darpa` — the §1 DARPA Network Challenge referral scheme.
//!
//! Besides the Criterion group, the bench writes `BENCH_mechanisms.json`
//! (`schema_version` 1): per-arm wall-clock stats from its own timing loop
//! plus outcome economics, keyed by a [`rit_telemetry::fnv1a64`]
//! `config_hash` over the scenario-defining configuration — comparable
//! across runs and machines, like every other manifest hash in the repo.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rit_bench::BenchWorld;
use rit_core::{DarpaReferral, Mechanism, MechanismKind, MechanismOutcome, NaiveKthPriceTree};
use std::hint::black_box;

const USERS: usize = 4_000;
const TASKS_PER_TYPE: u64 = 200;
const SEED: u64 = 42;
const REPORT_REPS: usize = 3;

/// One arm of the JSON report: wall-clock samples plus the (seed-0) outcome
/// economics, so a regression in *what* a mechanism pays is as visible as a
/// regression in how fast it runs.
struct ArmReport {
    kind: MechanismKind,
    wall_s: Vec<f64>,
    completed: bool,
    total_payment: f64,
    total_auction_payment: f64,
}

fn time_arm<M: Mechanism>(world: &BenchWorld, mechanism: &M) -> ArmReport {
    let mut ws = M::Workspace::default();
    let mut wall_s = Vec::with_capacity(REPORT_REPS);
    let mut last: Option<MechanismOutcome> = None;
    for rep in 0..REPORT_REPS {
        let mut rng = world.rng(rep as u64);
        let start = Instant::now();
        let outcome = mechanism
            .evaluate_in(
                &world.job,
                &world.tree,
                &world.asks,
                None,
                &mut ws,
                &mut rng,
            )
            .expect("aligned world");
        wall_s.push(start.elapsed().as_secs_f64());
        last = Some(outcome);
    }
    let outcome = last.expect("at least one rep");
    ArmReport {
        kind: mechanism.kind(),
        wall_s,
        completed: outcome.completed(),
        total_payment: outcome.total_payment(),
        total_auction_payment: outcome.total_auction_payment(),
    }
}

fn render_report(arms: &[ArmReport]) -> String {
    let config_desc = format!(
        "engine_vs_baselines users={USERS} tasks_per_type={TASKS_PER_TYPE} seed={SEED} \
         reps={REPORT_REPS}"
    );
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"bench\": \"engine_vs_baselines\",");
    let _ = writeln!(
        s,
        "  \"config_hash\": \"{:016x}\",",
        rit_telemetry::fnv1a64(config_desc.as_bytes())
    );
    let _ = writeln!(s, "  \"users\": {USERS},");
    let _ = writeln!(s, "  \"tasks_per_type\": {TASKS_PER_TYPE},");
    let _ = writeln!(s, "  \"seed\": {SEED},");
    let _ = writeln!(s, "  \"reps\": {REPORT_REPS},");
    s.push_str("  \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let min = arm.wall_s.iter().copied().fold(f64::INFINITY, f64::min);
        let mean = arm.wall_s.iter().sum::<f64>() / arm.wall_s.len() as f64;
        let walls: Vec<String> = arm.wall_s.iter().map(|w| format!("{w:.6}")).collect();
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"wall_s\": [{}], \"min_wall_s\": {min:.6}, \
             \"mean_wall_s\": {mean:.6}, \"completed\": {}, \"total_payment\": {:.6}, \
             \"total_auction_payment\": {:.6}}}",
            arm.kind.label(),
            walls.join(", "),
            arm.completed,
            arm.total_payment,
            arm.total_auction_payment,
        );
        s.push_str(if i + 1 < arms.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// A warm-workspace measurement closure for one mechanism: the workspace is
/// reused across iterations (steady-state cost), the seed rotates so no
/// iteration replays the previous RNG stream.
fn arm_iter<'w, M: Mechanism>(
    world: &'w BenchWorld,
    mechanism: &'w M,
) -> impl FnMut() -> MechanismOutcome + 'w {
    let mut ws = M::Workspace::default();
    let mut seed = 0u64;
    move || {
        seed += 1;
        let mut rng = world.rng(seed);
        mechanism
            .evaluate_in(
                &world.job,
                &world.tree,
                &world.asks,
                None,
                &mut ws,
                &mut rng,
            )
            .unwrap()
    }
}

fn engine_vs_baselines(c: &mut Criterion) {
    let world = BenchWorld::paper(USERS, TASKS_PER_TYPE, SEED);
    let naive = NaiveKthPriceTree::new();
    let darpa = DarpaReferral::new();

    let mut group = c.benchmark_group("engine_vs_baselines");
    group.sample_size(10);

    group.bench_function("rit", |b| {
        let mut next = arm_iter(&world, &world.rit);
        b.iter(|| black_box(next()));
    });

    group.bench_function("naive", |b| {
        let mut next = arm_iter(&world, &naive);
        b.iter(|| black_box(next()));
    });

    group.bench_function("darpa", |b| {
        let mut next = arm_iter(&world, &darpa);
        b.iter(|| black_box(next()));
    });

    group.finish();

    let arms = vec![
        time_arm(&world, &world.rit),
        time_arm(&world, &naive),
        time_arm(&world, &darpa),
    ];
    let report = render_report(&arms);
    // `cargo bench` runs with the package dir as cwd; anchor the report at
    // the workspace root next to BENCH_sim.json.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("BENCH_mechanisms.json");
    match std::fs::write(&out, &report) {
        Ok(()) => eprintln!("wrote {}", out.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", out.display()),
    }
}

criterion_group!(benches, engine_vs_baselines);
criterion_main!(benches);
