//! Engine vs legacy loop — the payoff of the run-length auction engine.
//!
//! Three arms over a Fig 8-scale workload (N = 20,000 users, 10 types of
//! `mᵢ = 1,000` tasks):
//!
//! * `legacy_extract_loop`: the pre-engine auction phase, re-materializing
//!   the flat unit-ask vector every round via the public `extract` + `cra`
//!   APIs (kept here as the measurement baseline);
//! * `engine_fresh_workspace`: the engine path through a fresh
//!   [`rit_core::RitWorkspace`] each run (first-run cost included);
//! * `engine_warm_workspace`: the steady-state path — one workspace reused
//!   across iterations, zero per-round allocation.
//!
//! The setup asserts outcome equality between the arms on one seed before
//! timing, so the speedup is never measured against a diverged baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::Rng;
use rit_auction::{cra, extract};
use rit_bench::BenchWorld;
use rit_core::{NoopObserver, RitWorkspace};
use rit_model::{Ask, Job};
use std::hint::black_box;

/// The pre-engine auction phase (until-stall semantics, matching
/// `RoundLimit::until_stall()`): per round, materialize the remaining unit
/// asks and hand them to the CRA wrapper.
fn legacy_auction_phase<R: Rng + ?Sized>(
    job: &Job,
    asks: &[Ask],
    rule: cra::SelectionRule,
    rng: &mut R,
) -> (Vec<u64>, Vec<f64>, Vec<u32>, Vec<u64>) {
    let (max_rounds, max_stall) = (256u32, 8u32);
    let n = asks.len();
    let mut allocation = vec![0u64; n];
    let mut payments = vec![0.0f64; n];
    let mut remaining: Vec<u64> = asks.iter().map(Ask::quantity).collect();
    let mut rounds_used = Vec::new();
    let mut unallocated = Vec::new();

    for (task_type, m_i) in job.iter() {
        if m_i == 0 {
            rounds_used.push(0);
            unallocated.push(0);
            continue;
        }
        let mut q = m_i;
        let mut rounds = 0u32;
        let mut stall = 0u32;
        while q > 0 && rounds < max_rounds && stall < max_stall {
            let alpha = extract::extract_with_quantities(task_type, asks, &remaining);
            if alpha.is_empty() {
                break;
            }
            let out = cra::run_with_rule(alpha.values(), q, m_i, rule, rng);
            let price = out.clearing_price();
            let mut progressed = false;
            for omega in out.winner_indices() {
                let j = alpha.owner(omega);
                allocation[j] += 1;
                payments[j] += price;
                remaining[j] -= 1;
                q -= 1;
                progressed = true;
            }
            rounds += 1;
            stall = if progressed { 0 } else { stall + 1 };
        }
        rounds_used.push(rounds);
        unallocated.push(q);
    }
    (allocation, payments, rounds_used, unallocated)
}

fn engine_vs_legacy(c: &mut Criterion) {
    let world = BenchWorld::paper(20_000, 1_000, 42);
    let rule = world.rit.config().selection_rule;

    // Sanity: the arms must agree before their speed is compared.
    let phase = world
        .rit
        .run_auction_phase(&world.job, &world.asks, &mut world.rng(7))
        .expect("aligned world");
    let (allocation, payments, rounds_used, unallocated) =
        legacy_auction_phase(&world.job, &world.asks, rule, &mut world.rng(7));
    assert_eq!(phase.allocation, allocation, "engine diverged from legacy");
    assert_eq!(phase.auction_payments, payments);
    assert_eq!(phase.rounds_used, rounds_used);
    assert_eq!(phase.unallocated, unallocated);

    let mut group = c.benchmark_group("engine_vs_legacy");
    group.sample_size(10);

    group.bench_function("legacy_extract_loop", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = world.rng(seed);
            black_box(legacy_auction_phase(
                &world.job,
                &world.asks,
                rule,
                &mut rng,
            ))
        });
    });

    group.bench_function("engine_fresh_workspace", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = world.rng(seed);
            black_box(
                world
                    .rit
                    .run_auction_phase(&world.job, &world.asks, &mut rng)
                    .unwrap(),
            )
        });
    });

    group.bench_function("engine_warm_workspace", |b| {
        let mut ws = RitWorkspace::new();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = world.rng(seed);
            black_box(
                world
                    .rit
                    .run_auction_phase_with(
                        &world.job,
                        &world.asks,
                        &mut ws,
                        &mut NoopObserver,
                        &mut rng,
                    )
                    .unwrap(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, engine_vs_legacy);
criterion_main!(benches);
