//! Fig 8 — running time of RIT.
//!
//! * `fig8a/users/*`: wall time vs the number of users, with the per-type
//!   job size held at `mᵢ = 2500` (half the paper's 5000, so Criterion's
//!   statistics converge in seconds; the *linearity* is the claim).
//! * `fig8b/tasks/*`: wall time vs the per-type job size at a fixed user
//!   count.
//!
//! Each point measures both the auction phase alone and the full mechanism
//! (auction + payment determination), matching the two curves of the paper's
//! figure. Expect both curves to grow linearly and nearly coincide — the
//! payment phase is a single O(N) sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rit_bench::BenchWorld;
use std::hint::black_box;

fn fig8a_users(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a/users");
    group.sample_size(10);
    for n in [20_000usize, 40_000, 80_000] {
        let world = BenchWorld::paper(n, 2_500, 42);
        group.bench_with_input(BenchmarkId::new("auction_phase", n), &world, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = w.rng(seed);
                black_box(w.rit.run_auction_phase(&w.job, &w.asks, &mut rng).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("full_rit", n), &world, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = w.rng(seed);
                black_box(w.rit.run(&w.job, &w.tree, &w.asks, &mut rng).unwrap())
            });
        });
    }
    group.finish();
}

fn fig8b_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b/tasks");
    group.sample_size(10);
    for m_i in [500u64, 1_000, 1_500] {
        let world = BenchWorld::paper(15_000, m_i, 43);
        group.bench_with_input(BenchmarkId::new("auction_phase", m_i), &world, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = w.rng(seed);
                black_box(w.rit.run_auction_phase(&w.job, &w.asks, &mut rng).unwrap())
            });
        });
        group.bench_with_input(BenchmarkId::new("full_rit", m_i), &world, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = w.rng(seed);
                black_box(w.rit.run(&w.job, &w.tree, &w.asks, &mut rng).unwrap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig8a_users, fig8b_tasks);
criterion_main!(benches);
