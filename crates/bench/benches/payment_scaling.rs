//! Component bench: the payment-determination phase (Theorem 3's O(N)
//! claim) across tree sizes and shapes, plus the O(N²) reference for
//! contrast at small N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_core::payment;
use rit_model::{Ask, TaskTypeId};
use rit_tree::{generate, IncentiveTree};
use std::hint::black_box;

fn fixture(tree: &IncentiveTree, seed: u64) -> (Vec<Ask>, Vec<f64>) {
    let n = tree.num_users();
    let mut rng = SmallRng::seed_from_u64(seed);
    let asks: Vec<Ask> = (0..n)
        .map(|_| {
            Ask::new(
                TaskTypeId::new(rng.gen_range(0..10)),
                rng.gen_range(1..=20),
                rng.gen_range(0.01..10.0),
            )
            .unwrap()
        })
        .collect();
    let pa: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..50.0)).collect();
    (asks, pa)
}

fn payment_by_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("payment/size");
    for n in [10_000usize, 40_000, 80_000] {
        let mut rng = SmallRng::seed_from_u64(3);
        let tree = generate::preferential(n, &mut rng);
        let (asks, pa) = fixture(&tree, 4);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| black_box(payment::determine_payments(&tree, &asks, &pa)));
        });
    }
    group.finish();
}

fn payment_by_shape(c: &mut Criterion) {
    let mut group = c.benchmark_group("payment/shape");
    let n = 30_000usize;
    let mut rng = SmallRng::seed_from_u64(5);
    let shapes: [(&str, IncentiveTree); 4] = [
        ("star", generate::star(n)),
        ("path", generate::path(n)),
        ("binary", generate::k_ary(n, 2)),
        ("preferential", generate::preferential(n, &mut rng)),
    ];
    for (name, tree) in &shapes {
        let (asks, pa) = fixture(tree, 6);
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(payment::determine_payments(tree, &asks, &pa)));
        });
    }
    group.finish();
}

fn linear_vs_quadratic_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("payment/vs_reference");
    let n = 3_000usize;
    let mut rng = SmallRng::seed_from_u64(7);
    let tree = generate::preferential(n, &mut rng);
    let (asks, pa) = fixture(&tree, 8);
    group.bench_function("euler_sweep", |b| {
        b.iter(|| black_box(payment::determine_payments(&tree, &asks, &pa)));
    });
    group.bench_function("naive_reference", |b| {
        b.iter(|| black_box(payment::determine_payments_reference(&tree, &asks, &pa)));
    });
    group.finish();
}

criterion_group!(
    benches,
    payment_by_size,
    payment_by_shape,
    linear_vs_quadratic_reference
);
criterion_main!(benches);
