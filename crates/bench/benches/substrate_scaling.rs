//! Substrate benches: social-graph generation and the spanning-forest
//! incentive-tree construction at the paper's population scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_socialgraph::{generators, spanning};
use std::hint::black_box;

fn graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("socialgraph/generate");
    group.sample_size(10);
    for n in [20_000usize, 80_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("barabasi_albert", n), &n, |b, &n| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                black_box(generators::barabasi_albert(n, 2, &mut rng))
            });
        });
        group.bench_with_input(BenchmarkId::new("erdos_renyi", n), &n, |b, &n| {
            let p = 4.0 / n as f64;
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                black_box(generators::erdos_renyi(n, p, &mut rng))
            });
        });
    }
    group.finish();
}

fn spanning_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("socialgraph/spanning_forest");
    group.sample_size(10);
    for n in [20_000usize, 80_000] {
        let mut rng = SmallRng::seed_from_u64(9);
        let graph = generators::barabasi_albert(n, 2, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            b.iter(|| black_box(spanning::spanning_forest_tree(g)));
        });
    }
    group.finish();
}

fn tree_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree/from_parents");
    group.sample_size(20);
    for n in [40_000usize, 80_000] {
        let mut rng = SmallRng::seed_from_u64(10);
        let tree = rit_tree::generate::uniform_recursive(n, &mut rng);
        let parents = tree.to_parents();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &parents, |b, p| {
            b.iter(|| black_box(rit_tree::IncentiveTree::from_parents(p).unwrap()));
        });
    }
    group.finish();
}

fn diffusion_cascade(c: &mut Criterion) {
    use rit_socialgraph::diffusion::{self, DiffusionConfig};
    let mut group = c.benchmark_group("socialgraph/diffusion");
    group.sample_size(10);
    for n in [20_000usize, 80_000] {
        let mut rng = SmallRng::seed_from_u64(12);
        let graph = generators::barabasi_albert(n, 2, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &graph, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = SmallRng::seed_from_u64(seed);
                black_box(diffusion::simulate(
                    g,
                    &[0],
                    &DiffusionConfig {
                        invite_prob: 0.6,
                        target: None,
                        max_rounds: 64,
                    },
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

fn lca_queries(c: &mut Criterion) {
    use rand::Rng;
    use rit_tree::lca::LcaIndex;
    use rit_tree::NodeId;
    let mut group = c.benchmark_group("tree/lca");
    let n = 80_000usize;
    let mut rng = SmallRng::seed_from_u64(13);
    let tree = rit_tree::generate::uniform_recursive(n, &mut rng);
    group.bench_function("build_80k", |b| {
        b.iter(|| black_box(LcaIndex::build(&tree)));
    });
    let index = LcaIndex::build(&tree);
    let queries: Vec<(NodeId, NodeId)> = (0..1024)
        .map(|_| {
            (
                NodeId::new(rng.gen_range(0..=n as u32)),
                NodeId::new(rng.gen_range(0..=n as u32)),
            )
        })
        .collect();
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("query_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(a, q) in &queries {
                acc += u64::from(index.distance(a, q));
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    graph_generation,
    spanning_tree,
    tree_construction,
    diffusion_cascade,
    lca_queries
);
criterion_main!(benches);
