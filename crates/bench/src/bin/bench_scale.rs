//! Million-user single-run scale bench: substrate generation, the parallel
//! per-type auction phase, and payment determination, timed end to end.
//!
//! ```text
//! bench_scale [--quick] [--users N] [--reps N] [--seed S] [--threads T]
//!             [--out FILE] [--telemetry FILE]
//! ```
//!
//! One scenario — a Watts–Strogatz small world (`k = 6`, `β = 0.1`) with a
//! spanning-forest incentive tree and an 8-type workload — is run through
//! the full mechanism at two thread counts:
//!
//! * `auction_serial` — the per-type-streams phase on 1 thread;
//! * `auction_parallel` — the same phase on the max thread count
//!   (`--threads`, else `RIT_THREADS`, else available parallelism).
//!
//! Both phases use [`rit_core::RngMode::PerTypeStreams`] derived RNG
//! streams, so their results must be **bit-identical** — asserted every
//! repetition before any number is reported. The report (`BENCH_scale.json`,
//! `schema_version` 1) carries per-phase wall-clock samples with medians,
//! the serial/parallel auction speedup, a peak-RSS reading from
//! `/proc/self/status` (null off Linux), and the manifest `config_hash`
//! (which covers users/tasks/seed/scenario shape — not output paths or
//! thread counts).
//!
//! `--quick` drops to 100 000 users and one repetition — the CI smoke arm.
//!
//! `--telemetry FILE` (or the `RIT_TELEMETRY` environment variable)
//! installs the global JSONL sink: the run manifest, one `run` span, and
//! per-phase `substrate.gen` / `auction.phase` / `payment.phase` spans
//! stream to FILE, ready for `rit report` and `rit report trace`. Without
//! it the bench records nothing — spans are inert — and timings are
//! unchanged.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rit_core::{NoopObserver, Rit, RitConfig, RitWorkspace, RngMode, RoundLimit, WorkspacePool};
use rit_model::Job;
use rit_sim::runner::default_threads;
use rit_sim::scenario::{GraphModel, Scenario, ScenarioConfig};
use rit_telemetry::{RunManifest, SpanKind, Telemetry};

const FULL_USERS: usize = 1_000_000;
const QUICK_USERS: usize = 100_000;
const NUM_TYPES: usize = 8;

#[derive(Clone, Copy, Debug)]
struct Args {
    quick: bool,
    users: usize,
    reps: usize,
    seed: u64,
    threads: usize,
}

struct PhaseReport {
    name: &'static str,
    threads: usize,
    wall_s: Vec<f64>,
}

impl PhaseReport {
    fn p50_wall_s(&self) -> f64 {
        let mut sorted = self.wall_s.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }
}

fn parse_args() -> Result<(Args, PathBuf, Option<PathBuf>), String> {
    let mut args = Args {
        quick: false,
        users: FULL_USERS,
        reps: 3,
        seed: 2017,
        threads: default_threads(),
    };
    let mut users_overridden = false;
    let mut out = PathBuf::from("BENCH_scale.json");
    let mut telemetry_out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.reps = 1;
            }
            "--users" => {
                args.users = value("--users")?
                    .parse()
                    .map_err(|e| format!("bad --users: {e}"))?;
                users_overridden = true;
                if args.users < 100 {
                    return Err("--users must be at least 100".into());
                }
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if args.threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--telemetry" => telemetry_out = Some(PathBuf::from(value("--telemetry")?)),
            "--help" | "-h" => {
                println!(
                    "usage: bench_scale [--quick] [--users N] [--reps N] [--seed S] \
                     [--threads T] [--out FILE] [--telemetry FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.quick && !users_overridden {
        args.users = QUICK_USERS;
    }
    if telemetry_out.is_none() {
        telemetry_out = std::env::var(rit_telemetry::TELEMETRY_ENV)
            .ok()
            .filter(|p| !p.is_empty())
            .map(PathBuf::from);
    }
    Ok((args, out, telemetry_out))
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn render_report(
    args: &Args,
    tasks_per_type: u64,
    phases: &[PhaseReport],
    speedup: f64,
    config_hash_hex: &str,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"bench\": \"bench_scale\",");
    let _ = writeln!(s, "  \"quick\": {},", args.quick);
    let _ = writeln!(s, "  \"users\": {},", args.users);
    let _ = writeln!(s, "  \"task_types\": {NUM_TYPES},");
    let _ = writeln!(s, "  \"tasks_per_type\": {tasks_per_type},");
    let _ = writeln!(s, "  \"seed\": {},", args.seed);
    let _ = writeln!(s, "  \"reps\": {},", args.reps);
    let _ = writeln!(s, "  \"threads_max\": {},", args.threads);
    let _ = writeln!(s, "  \"rng_mode\": \"{}\",", RngMode::PerTypeStreams);
    let _ = writeln!(s, "  \"config_hash\": \"{config_hash_hex}\",");
    let _ = writeln!(s, "  \"bit_identical\": true,");
    let _ = writeln!(s, "  \"auction_speedup\": {},", json_f64(speedup));
    let _ = writeln!(
        s,
        "  \"peak_rss_bytes\": {},",
        peak_rss_bytes().map_or("null".to_string(), |b| b.to_string())
    );
    s.push_str("  \"phases\": [\n");
    for (i, phase) in phases.iter().enumerate() {
        let walls: Vec<String> = phase.wall_s.iter().map(|&w| json_f64(w)).collect();
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"threads\": {}, \"wall_s\": [{}], \"p50_wall_s\": {}}}",
            phase.name,
            phase.threads,
            walls.join(", "),
            json_f64(phase.p50_wall_s())
        );
        s.push_str(if i + 1 < phases.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn main() -> ExitCode {
    let (args, out, telemetry_out) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // ~0.4% of the population per type keeps until-stall round counts in the
    // dozens at every scale while still allocating hundreds of thousands of
    // tasks at the full million users.
    let tasks_per_type = (args.users as u64 / 250).max(1);
    let job = Job::from_counts(vec![tasks_per_type; NUM_TYPES]).expect("non-empty job");
    let mut config = ScenarioConfig::paper(args.users);
    config.workload.num_types = NUM_TYPES;
    config.graph = GraphModel::WattsStrogatz { k: 6, beta: 0.1 };

    let config_desc = format!(
        "bench_scale users={} types={NUM_TYPES} tasks_per_type={tasks_per_type} seed={} \
         graph=ws(k=6,beta=0.1) rounds=until_stall rng=streams",
        args.users, args.seed
    );
    let manifest = RunManifest::new(
        "bench_scale",
        env!("CARGO_PKG_VERSION"),
        &config_desc,
        args.seed,
        args.threads,
    )
    .with_rng_mode(RngMode::PerTypeStreams.as_str());
    let config_hash_hex = manifest.config_hash_hex();

    // The JSONL sink is opt-in; without it the manifest still feeds the
    // report's config hash and no telemetry is installed, so the phase
    // spans below are inert and cost nothing.
    let telemetry: Option<&'static Telemetry> = match &telemetry_out {
        Some(path) => match Telemetry::with_sink(manifest, path) {
            Ok(t) => match rit_telemetry::install(t) {
                Ok(installed) => Some(installed),
                Err(_) => {
                    eprintln!("error: telemetry already installed");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("error: cannot open telemetry sink {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .expect("valid config");

    eprintln!(
        "bench_scale: {} users, {NUM_TYPES} types x {tasks_per_type} tasks, {} reps, \
         1 vs {} threads",
        args.users, args.reps, args.threads
    );

    let mut substrate = PhaseReport {
        name: "substrate",
        threads: 1,
        wall_s: Vec::with_capacity(args.reps),
    };
    let mut auction_serial = PhaseReport {
        name: "auction_serial",
        threads: 1,
        wall_s: Vec::with_capacity(args.reps),
    };
    let mut auction_parallel = PhaseReport {
        name: "auction_parallel",
        threads: args.threads,
        wall_s: Vec::with_capacity(args.reps),
    };
    let mut payment = PhaseReport {
        name: "payment",
        threads: 1,
        wall_s: Vec::with_capacity(args.reps),
    };

    // Warm workspaces persist across repetitions: after rep 1 the auction
    // phases reuse capacity, so later reps time the algorithm, not malloc.
    let mut serial_ws = RitWorkspace::new();
    let mut parallel_ws = RitWorkspace::new();
    let pool = WorkspacePool::new();

    let run_span = rit_telemetry::span(SpanKind::Run);
    for rep in 0..args.reps {
        let span = rit_telemetry::span(SpanKind::SubstrateGen);
        let start = Instant::now();
        let scenario = Scenario::generate(&config, args.seed);
        drop(span);
        substrate.wall_s.push(start.elapsed().as_secs_f64());

        let span = rit_telemetry::span(SpanKind::AuctionPhase);
        let start = Instant::now();
        let serial = rit
            .run_auction_phase_streams_with(
                &job,
                &scenario.asks,
                args.seed,
                1,
                &mut serial_ws,
                &pool,
                &mut NoopObserver,
            )
            .expect("auction phase runs");
        drop(span);
        auction_serial.wall_s.push(start.elapsed().as_secs_f64());

        let span = rit_telemetry::span(SpanKind::AuctionPhase);
        let start = Instant::now();
        let parallel = rit
            .run_auction_phase_streams_with(
                &job,
                &scenario.asks,
                args.seed,
                args.threads,
                &mut parallel_ws,
                &pool,
                &mut NoopObserver,
            )
            .expect("auction phase runs");
        drop(span);
        auction_parallel.wall_s.push(start.elapsed().as_secs_f64());

        // The determinism contract this bench rides on: same derived
        // streams, any thread count, same bits.
        assert_eq!(
            serial, parallel,
            "per-type-streams phase diverged between 1 and {} threads",
            args.threads
        );

        let span = rit_telemetry::span(SpanKind::PaymentPhase);
        let start = Instant::now();
        let outcome = rit.determine_final_payments_with(
            &scenario.tree,
            &scenario.asks,
            parallel,
            &mut parallel_ws,
        );
        drop(span);
        payment.wall_s.push(start.elapsed().as_secs_f64());

        eprintln!(
            "  rep {}: substrate {:.3}s, auction {:.3}s -> {:.3}s, payment {:.3}s, \
             allocated {} of {}",
            rep + 1,
            substrate.wall_s[rep],
            auction_serial.wall_s[rep],
            auction_parallel.wall_s[rep],
            payment.wall_s[rep],
            outcome.total_allocated(),
            job.total_tasks(),
        );
    }

    // Close the run span before flushing so its event reaches the sink.
    drop(run_span);
    if let Some(t) = telemetry {
        if let Err(e) = t.flush() {
            eprintln!("warning: telemetry flush failed: {e}");
        }
        if let Some(path) = &telemetry_out {
            eprintln!("wrote telemetry {}", path.display());
        }
    }

    let speedup = auction_serial.p50_wall_s() / auction_parallel.p50_wall_s();
    let phases = [substrate, auction_serial, auction_parallel, payment];
    let report = render_report(&args, tasks_per_type, &phases, speedup, &config_hash_hex);
    match std::fs::write(&out, &report) {
        Ok(()) => {
            println!("{report}");
            eprintln!(
                "auction speedup at {} threads: {speedup:.2}x; wrote {}",
                args.threads,
                out.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}
