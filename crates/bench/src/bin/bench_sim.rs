//! Simulation-level bench harness: substrate caching and incremental
//! recruitment, timed end to end and emitted as machine-readable JSON.
//!
//! ```text
//! bench_sim [--quick] [--reps N] [--seed S] [--threads N] [--out FILE]
//!           [--telemetry FILE]
//! ```
//!
//! Four arms, timed with `std::time::Instant`:
//!
//! * `sweep_uncached` — the user sweep in rotating-substrate mode against a
//!   passthrough [`rit_sim::substrate::SubstrateCache`] (every replication
//!   regenerates its substrate).
//! * `sweep_cached` — the same sweep against a memoizing cache (each
//!   substrate is generated once per `(config, seed)` key).
//! * `campaign_replay` — a campaign replaying the full recruitment cascade
//!   from round 0 every epoch.
//! * `campaign_incremental` — the same campaign extending a checkpointed
//!   [`rit_socialgraph::diffusion::DiffusionState`] per epoch.
//!
//! Before any timing, both members of each pair are run once and their
//! results asserted equal (non-runtime sweep metrics; full campaign
//! reports), so the timings always compare like with like. The report —
//! wall-clock seconds per repetition plus cache generation/hit counters —
//! is written to `BENCH_sim.json` (see EXPERIMENTS.md for the schema).
//!
//! The harness always installs an in-memory [`rit_telemetry::Telemetry`]
//! registry and embeds its counters and histogram summaries (plus the run
//! manifest's `config_hash`) in the report (`schema_version` 2).
//! `--telemetry FILE` / `RIT_TELEMETRY` additionally stream the JSONL
//! event log to `FILE`.
//!
//! Both sweep arms execute on the `rit_sim::grid` engine (one global work
//! queue over cells × replications — DESIGN.md §12), so the cached and
//! uncached timings compare the substrate policy alone, not two different
//! schedulers. Set `RIT_THREADS` — or `--threads N`, which wins — to pin
//! the worker-thread count for reproducible timings; the value used is
//! recorded in the report.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use rit_sim::campaign::{self, CampaignConfig, RecruitmentMode};
use rit_sim::experiments::{sweeps, Scale};
use rit_sim::runner::default_threads;
use rit_sim::substrate::{SubstrateCache, SubstrateMode};
use rit_telemetry::{RunManifest, Telemetry};

#[derive(Clone, Copy, Debug)]
struct Args {
    quick: bool,
    reps: usize,
    seed: u64,
}

/// One timed arm of the bench, plus its substrate-cache counters from the
/// final repetition (zero for arms that do not touch a cache).
struct ArmReport {
    name: &'static str,
    wall_s: Vec<f64>,
    generations: u64,
    cache_hits: u64,
}

impl ArmReport {
    fn min_wall_s(&self) -> f64 {
        self.wall_s.iter().copied().fold(f64::INFINITY, f64::min)
    }

    fn mean_wall_s(&self) -> f64 {
        self.wall_s.iter().sum::<f64>() / self.wall_s.len() as f64
    }

    /// Median repetition time — robust against one outlier rep in a way
    /// neither min nor mean is.
    fn p50_wall_s(&self) -> f64 {
        let mut sorted = self.wall_s.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        }
    }
}

fn parse_args() -> Result<(Args, PathBuf, Option<PathBuf>), String> {
    let mut args = Args {
        quick: false,
        reps: 3,
        seed: 2017,
    };
    let mut out = PathBuf::from("BENCH_sim.json");
    let mut telemetry_out: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--quick" => {
                args.quick = true;
                args.reps = 1;
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => {
                let threads: usize = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                if threads == 0 {
                    return Err("--threads must be at least 1".into());
                }
                rit_sim::runner::set_thread_override(threads);
                rit_core::streams::set_thread_override(threads);
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--telemetry" => telemetry_out = Some(PathBuf::from(value("--telemetry")?)),
            "--help" | "-h" => {
                println!(
                    "usage: bench_sim [--quick] [--reps N] [--seed S] [--threads N] \
                     [--out FILE] [--telemetry FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if telemetry_out.is_none() {
        telemetry_out = std::env::var(rit_telemetry::TELEMETRY_ENV)
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
    }
    Ok((args, out, telemetry_out))
}

/// Times `run` `reps` times; the per-rep cache counters come from a fresh
/// cache built by `make_cache` each repetition, so the cached arm pays its
/// generations inside the timed region exactly once per repetition.
fn time_arm<C>(
    name: &'static str,
    reps: usize,
    make_cache: impl Fn() -> C,
    run: impl Fn(&C),
    counters: impl Fn(&C) -> (u64, u64),
) -> ArmReport {
    let mut wall_s = Vec::with_capacity(reps);
    let mut generations = 0;
    let mut cache_hits = 0;
    for _ in 0..reps {
        let cache = make_cache();
        let start = Instant::now();
        run(&cache);
        wall_s.push(start.elapsed().as_secs_f64());
        (generations, cache_hits) = counters(&cache);
    }
    let report = ArmReport {
        name,
        wall_s,
        generations,
        cache_hits,
    };
    eprintln!("  {name}: min {:.3}s over {reps} reps", report.min_wall_s());
    report
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

fn render_report(
    args: &Args,
    sweep_config: &sweeps::SweepConfig,
    campaign_config: &CampaignConfig,
    arms: &[ArmReport],
    telemetry: &Telemetry,
) -> String {
    let substrates = match sweep_config.substrate {
        SubstrateMode::PerReplication => 0,
        SubstrateMode::Rotating(k) => k,
    };
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 2,");
    let _ = writeln!(s, "  \"bench\": \"bench_sim\",");
    let _ = writeln!(s, "  \"quick\": {},", args.quick);
    let _ = writeln!(s, "  \"threads\": {},", default_threads());
    let _ = writeln!(
        s,
        "  \"config_hash\": \"{}\",",
        telemetry.manifest().config_hash_hex()
    );
    let _ = writeln!(s, "  \"equality_checked\": true,");
    s.push_str("  \"config\": {\n");
    let _ = writeln!(
        s,
        "    \"sweep\": {{\"scale\": \"{:?}\", \"runs\": {}, \"substrates\": {}, \"seed\": {}}},",
        sweep_config.scale, sweep_config.runs, substrates, sweep_config.seed
    );
    let _ = writeln!(
        s,
        "    \"campaign\": {{\"num_jobs\": {}, \"universe\": {}, \"initial_target\": {}, \
         \"growth_per_epoch\": {}, \"seed\": {}}},",
        campaign_config.num_jobs,
        campaign_config.universe,
        campaign_config.initial_target,
        campaign_config.growth_per_epoch,
        args.seed
    );
    let _ = writeln!(s, "    \"reps\": {}", args.reps);
    s.push_str("  },\n");
    s.push_str("  \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let walls: Vec<String> = arm.wall_s.iter().map(|&w| json_f64(w)).collect();
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"wall_s\": [{}], \"min_wall_s\": {}, \
             \"mean_wall_s\": {}, \"p50_wall_s\": {}, \
             \"substrate_generations\": {}, \"substrate_cache_hits\": {}}}",
            arm.name,
            walls.join(", "),
            json_f64(arm.min_wall_s()),
            json_f64(arm.mean_wall_s()),
            json_f64(arm.p50_wall_s()),
            arm.generations,
            arm.cache_hits
        );
        s.push_str(if i + 1 < arms.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str(&render_telemetry(telemetry));
    s.push_str("}\n");
    s
}

/// The embedded `"telemetry"` block: every counter and gauge, plus the
/// percentile summary of every histogram that recorded anything.
fn render_telemetry(telemetry: &Telemetry) -> String {
    let snap = telemetry.snapshot();
    let mut s = String::from("  \"telemetry\": {\n");
    s.push_str("    \"counters\": {");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        let _ = write!(s, "{}\"{name}\": {value}", if i == 0 { "" } else { ", " });
    }
    s.push_str("},\n    \"gauges\": {");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        let _ = write!(
            s,
            "{}\"{name}\": {}",
            if i == 0 { "" } else { ", " },
            json_f64(*value)
        );
    }
    s.push_str("},\n    \"histograms\": {\n");
    let populated: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(_, h)| h.count > 0)
        .collect();
    for (i, (name, h)) in populated.iter().enumerate() {
        let _ = write!(
            s,
            "      \"{name}\": {{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
             \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
            h.count,
            h.min,
            h.max,
            json_f64(h.mean),
            h.p50,
            h.p90,
            h.p99
        );
        s.push_str(if i + 1 < populated.len() { ",\n" } else { "\n" });
    }
    s.push_str("    }\n  }\n");
    s
}

fn main() -> ExitCode {
    let (args, out, telemetry_out) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut sweep_config =
        sweeps::SweepConfig::new(Scale::Smoke, if args.quick { 6 } else { 24 }, args.seed);
    sweep_config.substrate = SubstrateMode::Rotating(if args.quick { 2 } else { 4 });
    let mut campaign_config = CampaignConfig::small();
    campaign_config.num_jobs = if args.quick { 4 } else { 10 };

    // The manifest's config hash covers everything that determines the
    // bench's numbers — and no output paths, so runs into different files
    // hash identically (CI pins this).
    let substrates = match sweep_config.substrate {
        SubstrateMode::PerReplication => 0,
        SubstrateMode::Rotating(k) => k,
    };
    let config_desc = format!(
        "bench_sim quick={} reps={} seed={} sweep_scale={:?} sweep_runs={} substrates={} \
         campaign_jobs={}",
        args.quick,
        args.reps,
        args.seed,
        sweep_config.scale,
        sweep_config.runs,
        substrates,
        campaign_config.num_jobs,
    );
    let manifest = RunManifest::new(
        "bench_sim",
        env!("CARGO_PKG_VERSION"),
        &config_desc,
        args.seed,
        default_threads(),
    );
    let instance = match &telemetry_out {
        Some(path) => match Telemetry::with_sink(manifest, path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot open telemetry sink {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => Telemetry::new(manifest),
    };
    let telemetry = match rit_telemetry::install(instance) {
        Ok(t) => t,
        Err(_) => {
            eprintln!("error: telemetry already installed");
            return ExitCode::FAILURE;
        }
    };
    // The whole bench is one `run` span; every grid cell, worker item, and
    // campaign/epoch span recorded below starts after it in the trace.
    let run_span = telemetry.start_span(rit_telemetry::SpanKind::Run);

    // Equality gates: run both members of each pair once and require
    // identical results before any timing happens. A bench that compares
    // arms computing different things measures nothing.
    eprintln!("checking cached sweep == uncached sweep…");
    let cached = sweeps::user_sweep_with(&sweep_config, &SubstrateCache::new());
    let uncached = sweeps::user_sweep_with(&sweep_config, &SubstrateCache::passthrough());
    assert_eq!(cached.points.len(), uncached.points.len());
    for (a, b) in cached.points.iter().zip(&uncached.points) {
        assert_eq!(a.x, b.x, "sweep arms diverged");
        assert_eq!(a.utility_auction, b.utility_auction, "sweep arms diverged");
        assert_eq!(a.utility_rit, b.utility_rit, "sweep arms diverged");
        assert_eq!(a.payment_auction, b.payment_auction, "sweep arms diverged");
        assert_eq!(a.payment_rit, b.payment_rit, "sweep arms diverged");
        assert_eq!(a.completion_rate, b.completion_rate, "sweep arms diverged");
    }

    eprintln!("checking incremental campaign == replay campaign…");
    let incremental =
        campaign::run_with_mode(&campaign_config, args.seed, RecruitmentMode::Incremental)
            .expect("campaign runs");
    let replay = campaign::run_with_mode(&campaign_config, args.seed, RecruitmentMode::Replay)
        .expect("campaign runs");
    assert_eq!(incremental, replay, "campaign recruitment modes diverged");

    eprintln!("timing {} reps per arm…", args.reps);
    let arms = vec![
        time_arm(
            "sweep_uncached",
            args.reps,
            SubstrateCache::passthrough,
            |cache| {
                let _ = sweeps::user_sweep_with(&sweep_config, cache);
            },
            |cache| {
                let stats = cache.stats();
                (stats.generations, stats.hits)
            },
        ),
        time_arm(
            "sweep_cached",
            args.reps,
            SubstrateCache::new,
            |cache| {
                let _ = sweeps::user_sweep_with(&sweep_config, cache);
            },
            |cache| {
                let stats = cache.stats();
                (stats.generations, stats.hits)
            },
        ),
        time_arm(
            "campaign_replay",
            args.reps,
            || (),
            |()| {
                let _ =
                    campaign::run_with_mode(&campaign_config, args.seed, RecruitmentMode::Replay)
                        .expect("campaign runs");
            },
            |()| (0, 0),
        ),
        time_arm(
            "campaign_incremental",
            args.reps,
            || (),
            |()| {
                let _ = campaign::run_with_mode(
                    &campaign_config,
                    args.seed,
                    RecruitmentMode::Incremental,
                )
                .expect("campaign runs");
            },
            |()| (0, 0),
        ),
    ];

    // Close the run span before flushing so its event reaches the sink.
    drop(run_span);
    let report = render_report(&args, &sweep_config, &campaign_config, &arms, telemetry);
    if let Err(e) = telemetry.flush() {
        eprintln!("warning: telemetry flush failed: {e}");
    }
    if let Some(path) = &telemetry_out {
        eprintln!("wrote telemetry {}", path.display());
    }
    match std::fs::write(&out, &report) {
        Ok(()) => {
            println!("{report}");
            eprintln!("wrote {}", out.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {}: {e}", out.display());
            ExitCode::FAILURE
        }
    }
}
