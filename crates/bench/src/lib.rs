//! Shared fixtures for the RIT benchmark harness.
//!
//! The benches measure on pre-generated scenarios so Criterion's timing
//! loops only see mechanism work, not workload generation.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{Rit, RitConfig, RoundLimit};
use rit_model::{Ask, Job, Population};
use rit_sim::scenario::{Scenario, ScenarioConfig};
use rit_tree::IncentiveTree;

/// A frozen benchmark scenario.
pub struct BenchWorld {
    /// The sensing job.
    pub job: Job,
    /// The solicitation tree.
    pub tree: IncentiveTree,
    /// Truthful asks.
    pub asks: Vec<Ask>,
    /// True profiles.
    pub population: Population,
    /// The mechanism under test (best-effort rounds so every size runs).
    pub rit: Rit,
}

impl BenchWorld {
    /// Builds the §7-A scenario with `n` users and a 10-type job of `m_i`
    /// tasks per type.
    ///
    /// # Panics
    ///
    /// Panics only on invalid hard-coded configuration (never at runtime).
    #[must_use]
    pub fn paper(n: usize, m_i: u64, seed: u64) -> Self {
        let scenario = Scenario::generate(&ScenarioConfig::paper(n), seed);
        let Scenario {
            population,
            tree,
            asks,
        } = scenario;
        Self {
            job: Job::uniform(10, m_i).expect("10 types"),
            tree,
            asks,
            population,
            rit: Rit::new(RitConfig {
                round_limit: RoundLimit::until_stall(),
                ..RitConfig::default()
            })
            .expect("valid config"),
        }
    }

    /// A fresh RNG for one measurement iteration.
    #[must_use]
    pub fn rng(&self, seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_world_is_consistent_and_runnable() {
        let w = BenchWorld::paper(500, 20, 1);
        assert_eq!(w.asks.len(), 500);
        assert_eq!(w.tree.num_users(), 500);
        assert_eq!(w.population.len(), 500);
        assert_eq!(w.job.total_tasks(), 200);
        let mut rng = w.rng(3);
        let out = w
            .rit
            .run(&w.job, &w.tree, &w.asks, &mut rng)
            .expect("aligned world");
        assert_eq!(out.payments().len(), 500);
    }
}
