//! Command-line front end for the RIT mechanism.
//!
//! Implemented as a library (with a thin `main`) so every subcommand is
//! unit-testable. Subcommands:
//!
//! * `rit generate --users N [--types M] [--seed S] --out DIR` — synthesize
//!   a §7-A scenario (asks.csv, tree.csv, job.csv);
//! * `rit run --asks F --tree F --job F [--h 0.8] [--seed S] [--best-effort]
//!   [--mechanism rit|naive|darpa] [--out F]` — run the selected mechanism on
//!   CSV inputs, print a summary, write outcome.csv;
//! * `rit estimate --job F [--k-max K] [--safety X]` — the Remark 6.1
//!   recruitment threshold;
//! * `rit dot --tree F` — Graphviz dump of a solicitation tree;
//! * `rit report FILE...`, `rit report diff A B [--threshold 0.5]`,
//!   `rit report trace F [--out trace.json]` — markdown run summaries,
//!   a perf-regression gate, and Chrome-trace export over recorded
//!   `telemetry.jsonl` / `BENCH_*.json` artifacts (see
//!   [`rit_sim::report`]).
//!
//! ```
//! use rit_cli::{execute, Command};
//!
//! let cmd = Command::parse(&["estimate".into(), "--job".into(), "-".into()])?;
//! assert!(matches!(cmd, Command::Estimate { .. }));
//! # Ok::<(), rit_cli::CliError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{
    recruitment, DarpaReferral, Mechanism, MechanismKind, NaiveKthPriceTree, Rit, RitConfig,
    RitError, RitWorkspace, RngMode, RoundLimit, WorkspacePool,
};
use rit_sim::io;
use rit_sim::scenario::{Scenario, ScenarioConfig};

/// A fully parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)] // field meanings match the CLI flags documented above
pub enum Command {
    Generate {
        users: usize,
        types: usize,
        tasks_per_type: u64,
        seed: u64,
        out: PathBuf,
    },
    Run {
        asks: PathBuf,
        tree: PathBuf,
        job: PathBuf,
        h: f64,
        seed: u64,
        best_effort: bool,
        mechanism: MechanismKind,
        rng_mode: RngMode,
        out: Option<PathBuf>,
        costs: Option<PathBuf>,
    },
    Estimate {
        job: PathBuf,
        k_max: u64,
        safety: f64,
    },
    Trace {
        asks: PathBuf,
        job: PathBuf,
        seed: u64,
    },
    Budget {
        job: PathBuf,
        k_max: u64,
        h: f64,
    },
    Verify {
        asks: PathBuf,
        tree: PathBuf,
        job: PathBuf,
        runs: usize,
        seed: u64,
    },
    Attack {
        asks: PathBuf,
        tree: PathBuf,
        job: PathBuf,
        victim: usize,
        identities: usize,
        price: Option<f64>,
        runs: usize,
        seed: u64,
    },
    Dot {
        tree: PathBuf,
    },
    Report {
        files: Vec<PathBuf>,
    },
    ReportDiff {
        baseline: PathBuf,
        candidate: PathBuf,
        threshold: f64,
    },
    ReportTrace {
        input: PathBuf,
        out: Option<PathBuf>,
    },
    Help,
}

impl Command {
    /// The invocation's RNG seed, for commands that draw randomness
    /// (recorded in the telemetry run manifest).
    #[must_use]
    pub fn seed(&self) -> Option<u64> {
        match self {
            Self::Generate { seed, .. }
            | Self::Run { seed, .. }
            | Self::Trace { seed, .. }
            | Self::Verify { seed, .. }
            | Self::Attack { seed, .. } => Some(*seed),
            Self::Estimate { .. }
            | Self::Budget { .. }
            | Self::Dot { .. }
            | Self::Report { .. }
            | Self::ReportDiff { .. }
            | Self::ReportTrace { .. }
            | Self::Help => None,
        }
    }

    /// The mechanism the invocation drives (recorded in the telemetry run
    /// manifest). Only `run` can select a baseline; everything else is RIT.
    #[must_use]
    pub fn mechanism(&self) -> MechanismKind {
        match self {
            Self::Run { mechanism, .. } => *mechanism,
            _ => MechanismKind::Rit,
        }
    }

    /// The RNG mode the invocation runs under (recorded in the telemetry
    /// run manifest). Only `run` accepts `--rng-mode`; everything else uses
    /// the legacy single stream.
    #[must_use]
    pub fn rng_mode(&self) -> RngMode {
        match self {
            Self::Run { rng_mode, .. } => *rng_mode,
            _ => RngMode::SharedLegacy,
        }
    }
}

/// Errors of parsing or executing a CLI invocation.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// Input file did not parse.
    Format(io::ScenarioIoError),
    /// The mechanism rejected the inputs.
    Mechanism(rit_core::RitError),
    /// `rit report` could not ingest an artifact file.
    Report(rit_sim::report::ReportError),
    /// `rit report diff` found a gating perf regression; the payload is
    /// the full markdown diff (printed to stderr; the process exits
    /// nonzero, which is the CI gate).
    Regression(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Usage(msg) => write!(f, "usage error: {msg}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Format(e) => write!(f, "input format error: {e}"),
            Self::Mechanism(e) => write!(f, "mechanism error: {e}"),
            Self::Report(e) => write!(f, "report error: {e}"),
            Self::Regression(markdown) => f.write_str(markdown),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<io::ScenarioIoError> for CliError {
    fn from(e: io::ScenarioIoError) -> Self {
        Self::Format(e)
    }
}

impl From<rit_core::RitError> for CliError {
    fn from(e: rit_core::RitError) -> Self {
        Self::Mechanism(e)
    }
}

impl From<rit_sim::report::ReportError> for CliError {
    fn from(e: rit_sim::report::ReportError) -> Self {
        Self::Report(e)
    }
}

/// The usage text printed by `rit help`.
pub const USAGE: &str = "\
rit — robust incentive tree mechanism for mobile crowdsensing

USAGE:
  rit generate --users N [--types M] [--tasks T] [--seed S] --out DIR
  rit run --asks FILE --tree FILE --job FILE [--h 0.8] [--seed S]
          [--best-effort] [--mechanism rit|naive|darpa]
          [--rng-mode legacy|streams] [--out FILE] [--costs FILE]
  rit estimate --job FILE [--k-max 20] [--safety 1.3]
  rit trace --asks FILE --job FILE [--seed S]
  rit budget --job FILE [--k-max 20] [--h 0.8]
  rit verify --asks FILE --tree FILE --job FILE [--runs 20] [--seed S]
  rit attack --asks FILE --tree FILE --job FILE --victim J
             [--identities 2] [--price P] [--runs 40] [--seed S]
  rit dot --tree FILE
  rit report FILE [FILE...]
      (summaries include any quarantined grid cells recorded as
       cell_failure telemetry events)
  rit report diff BASELINE CANDIDATE [--threshold 0.5]
      (a metric present in only one run is reported as drift, never gated)
  rit report trace TELEMETRY_JSONL [--out trace.json]
  rit help

Every subcommand also accepts --threads N (worker threads for the
simulation harness and the streams-mode auction phase; overrides the
RIT_THREADS environment variable).
";

struct ArgCursor {
    args: Vec<String>,
    pos: usize,
}

impl ArgCursor {
    fn flag_value(&mut self, flag: &str) -> Result<Option<String>, CliError> {
        if let Some(i) = self.args.iter().skip(self.pos).position(|a| a == flag) {
            let i = self.pos + i;
            if i + 1 >= self.args.len() {
                return Err(CliError::Usage(format!("missing value for {flag}")));
            }
            let value = self.args[i + 1].clone();
            self.args.drain(i..=i + 1);
            return Ok(Some(value));
        }
        Ok(None)
    }

    fn switch(&mut self, flag: &str) -> bool {
        if let Some(i) = self.args.iter().skip(self.pos).position(|a| a == flag) {
            self.args.remove(self.pos + i);
            return true;
        }
        false
    }

    fn finish(self) -> Result<(), CliError> {
        match self.args.get(self.pos) {
            None => Ok(()),
            Some(extra) => Err(CliError::Usage(format!("unexpected argument `{extra}`"))),
        }
    }
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError>
where
    T::Err: fmt::Display,
{
    value
        .parse()
        .map_err(|e| CliError::Usage(format!("bad value for {flag}: {e}")))
}

impl Command {
    /// Parses an argument list (without the program name).
    ///
    /// The global `--threads N` flag is accepted on every subcommand; it
    /// installs a process-wide worker-thread override (via
    /// [`rit_sim::runner::set_thread_override`] and
    /// [`rit_core::streams::set_thread_override`]) that wins over the
    /// `RIT_THREADS` environment variable for both the simulation harness
    /// and the per-type-streams auction phase.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for unknown commands, missing required
    /// flags, or malformed values (including `--threads 0`).
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let Some(cmd) = args.first() else {
            return Ok(Self::Help);
        };
        let mut cur = ArgCursor {
            args: args.to_vec(),
            pos: 1,
        };
        if let Some(v) = cur.flag_value("--threads")? {
            let threads: usize = parse_num(&v, "--threads")?;
            if threads == 0 {
                return Err(CliError::Usage(
                    "bad value for --threads: must be at least 1".into(),
                ));
            }
            rit_sim::runner::set_thread_override(threads);
            rit_core::streams::set_thread_override(threads);
        }
        let require = |opt: Option<String>, flag: &str| {
            opt.ok_or_else(|| CliError::Usage(format!("missing required flag {flag}")))
        };
        let command = match cmd.as_str() {
            "generate" => Self::Generate {
                users: parse_num(&require(cur.flag_value("--users")?, "--users")?, "--users")?,
                types: match cur.flag_value("--types")? {
                    Some(v) => parse_num(&v, "--types")?,
                    None => 10,
                },
                tasks_per_type: match cur.flag_value("--tasks")? {
                    Some(v) => parse_num(&v, "--tasks")?,
                    None => 0, // 0 = auto-size from the population, see execute()
                },
                seed: match cur.flag_value("--seed")? {
                    Some(v) => parse_num(&v, "--seed")?,
                    None => 2017,
                },
                out: PathBuf::from(require(cur.flag_value("--out")?, "--out")?),
            },
            "run" => Self::Run {
                asks: PathBuf::from(require(cur.flag_value("--asks")?, "--asks")?),
                tree: PathBuf::from(require(cur.flag_value("--tree")?, "--tree")?),
                job: PathBuf::from(require(cur.flag_value("--job")?, "--job")?),
                h: match cur.flag_value("--h")? {
                    Some(v) => parse_num(&v, "--h")?,
                    None => 0.8,
                },
                seed: match cur.flag_value("--seed")? {
                    Some(v) => parse_num(&v, "--seed")?,
                    None => 2017,
                },
                best_effort: cur.switch("--best-effort"),
                mechanism: match cur.flag_value("--mechanism")? {
                    Some(v) => v.parse().map_err(CliError::Usage)?,
                    None => MechanismKind::Rit,
                },
                rng_mode: match cur.flag_value("--rng-mode")? {
                    Some(v) => v.parse().map_err(CliError::Usage)?,
                    None => RngMode::SharedLegacy,
                },
                out: cur.flag_value("--out")?.map(PathBuf::from),
                costs: cur.flag_value("--costs")?.map(PathBuf::from),
            },
            "estimate" => Self::Estimate {
                job: PathBuf::from(require(cur.flag_value("--job")?, "--job")?),
                k_max: match cur.flag_value("--k-max")? {
                    Some(v) => parse_num(&v, "--k-max")?,
                    None => 20,
                },
                safety: match cur.flag_value("--safety")? {
                    Some(v) => parse_num(&v, "--safety")?,
                    None => 1.3,
                },
            },
            "trace" => Self::Trace {
                asks: PathBuf::from(require(cur.flag_value("--asks")?, "--asks")?),
                job: PathBuf::from(require(cur.flag_value("--job")?, "--job")?),
                seed: match cur.flag_value("--seed")? {
                    Some(v) => parse_num(&v, "--seed")?,
                    None => 2017,
                },
            },
            "budget" => Self::Budget {
                job: PathBuf::from(require(cur.flag_value("--job")?, "--job")?),
                k_max: match cur.flag_value("--k-max")? {
                    Some(v) => parse_num(&v, "--k-max")?,
                    None => 20,
                },
                h: match cur.flag_value("--h")? {
                    Some(v) => parse_num(&v, "--h")?,
                    None => 0.8,
                },
            },
            "verify" => Self::Verify {
                asks: PathBuf::from(require(cur.flag_value("--asks")?, "--asks")?),
                tree: PathBuf::from(require(cur.flag_value("--tree")?, "--tree")?),
                job: PathBuf::from(require(cur.flag_value("--job")?, "--job")?),
                runs: match cur.flag_value("--runs")? {
                    Some(v) => parse_num(&v, "--runs")?,
                    None => 20,
                },
                seed: match cur.flag_value("--seed")? {
                    Some(v) => parse_num(&v, "--seed")?,
                    None => 2017,
                },
            },
            "attack" => Self::Attack {
                asks: PathBuf::from(require(cur.flag_value("--asks")?, "--asks")?),
                tree: PathBuf::from(require(cur.flag_value("--tree")?, "--tree")?),
                job: PathBuf::from(require(cur.flag_value("--job")?, "--job")?),
                victim: parse_num(
                    &require(cur.flag_value("--victim")?, "--victim")?,
                    "--victim",
                )?,
                identities: match cur.flag_value("--identities")? {
                    Some(v) => parse_num(&v, "--identities")?,
                    None => 2,
                },
                price: match cur.flag_value("--price")? {
                    Some(v) => Some(parse_num(&v, "--price")?),
                    None => None,
                },
                runs: match cur.flag_value("--runs")? {
                    Some(v) => parse_num(&v, "--runs")?,
                    None => 40,
                },
                seed: match cur.flag_value("--seed")? {
                    Some(v) => parse_num(&v, "--seed")?,
                    None => 2017,
                },
            },
            "dot" => Self::Dot {
                tree: PathBuf::from(require(cur.flag_value("--tree")?, "--tree")?),
            },
            // `report` has positional file arguments and word sub-subcommands
            // (`diff`, `trace`), unlike the flag-only commands above.
            "report" => match cur.args.get(1).map(String::as_str) {
                Some("diff") => {
                    cur.pos = 2;
                    let threshold = match cur.flag_value("--threshold")? {
                        Some(v) => parse_num(&v, "--threshold")?,
                        None => rit_sim::report::DEFAULT_THRESHOLD,
                    };
                    let rest: Vec<String> = cur.args.drain(2..).collect();
                    let [baseline, candidate] = rest.as_slice() else {
                        return Err(CliError::Usage(
                            "report diff takes exactly two files: BASELINE CANDIDATE".into(),
                        ));
                    };
                    Self::ReportDiff {
                        baseline: PathBuf::from(baseline),
                        candidate: PathBuf::from(candidate),
                        threshold,
                    }
                }
                Some("trace") => {
                    cur.pos = 2;
                    let out = cur.flag_value("--out")?.map(PathBuf::from);
                    let rest: Vec<String> = cur.args.drain(2..).collect();
                    let [input] = rest.as_slice() else {
                        return Err(CliError::Usage(
                            "report trace takes exactly one telemetry JSONL file".into(),
                        ));
                    };
                    Self::ReportTrace {
                        input: PathBuf::from(input),
                        out,
                    }
                }
                _ => {
                    let files: Vec<PathBuf> = cur.args.drain(1..).map(PathBuf::from).collect();
                    if files.is_empty() {
                        return Err(CliError::Usage(
                            "report needs at least one artifact file".into(),
                        ));
                    }
                    Self::Report { files }
                }
            },
            "help" | "--help" | "-h" => return Ok(Self::Help),
            other => return Err(CliError::Usage(format!("unknown command `{other}`"))),
        };
        cur.finish()?;
        Ok(command)
    }
}

/// Executes a command, returning the text to print on stdout.
///
/// # Errors
///
/// Propagates file, format, and mechanism errors.
pub fn execute(command: &Command) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            users,
            types,
            tasks_per_type,
            seed,
            out,
        } => generate(*users, *types, *tasks_per_type, *seed, out),
        Command::Run {
            asks,
            tree,
            job,
            h,
            seed,
            best_effort,
            mechanism,
            rng_mode,
            out,
            costs,
        } => run(
            asks,
            tree,
            job,
            *h,
            *seed,
            *best_effort,
            *mechanism,
            *rng_mode,
            out.as_deref(),
            costs.as_deref(),
        ),
        Command::Estimate { job, k_max, safety } => {
            let job = io::parse_job(&fs::read_to_string(job)?)?;
            let n = recruitment::estimate_threshold(&job, *k_max, *safety);
            Ok(format!(
                "job: {} tasks across {} types\nestimated recruitment threshold: {n} users\n\
                 (Remark 6.1: each type needs claimed capacity ≥ 2·tasks before the auction runs)\n",
                job.total_tasks(),
                job.num_types()
            ))
        }
        Command::Trace { asks, job, seed } => trace(asks, job, *seed),
        Command::Budget { job, k_max, h } => budget(job, *k_max, *h),
        Command::Verify {
            asks,
            tree,
            job,
            runs,
            seed,
        } => verify(asks, tree, job, *runs, *seed),
        Command::Attack {
            asks,
            tree,
            job,
            victim,
            identities,
            price,
            runs,
            seed,
        } => attack(asks, tree, job, *victim, *identities, *price, *runs, *seed),
        Command::Dot { tree } => {
            let tree = io::parse_tree(&fs::read_to_string(tree)?)?;
            Ok(rit_tree::dot::to_dot(&tree, |n| n.to_string()))
        }
        Command::Report { files } => {
            let mut artifacts = Vec::with_capacity(files.len());
            for file in files {
                artifacts.push((file.display().to_string(), fs::read_to_string(file)?));
            }
            Ok(rit_sim::report::summarize(&artifacts)?)
        }
        Command::ReportDiff {
            baseline,
            candidate,
            threshold,
        } => {
            let base = fs::read_to_string(baseline)?;
            let cand = fs::read_to_string(candidate)?;
            let report = rit_sim::report::diff(
                (&baseline.display().to_string(), &base),
                (&candidate.display().to_string(), &cand),
                *threshold,
            )?;
            if report.has_regressions() {
                return Err(CliError::Regression(report.markdown));
            }
            Ok(report.markdown)
        }
        Command::ReportTrace { input, out } => {
            let jsonl = fs::read_to_string(input)?;
            let (json, slices) = rit_sim::report::render_trace(&jsonl);
            match out {
                Some(path) => {
                    fs::write(path, &json)?;
                    Ok(format!(
                        "wrote {slices} span slice(s) to {}\n",
                        path.display()
                    ))
                }
                None => Ok(json),
            }
        }
    }
}

fn budget(job_path: &Path, k_max: u64, h: f64) -> Result<String, CliError> {
    use rit_auction::bounds::{self, LogBase, WorstCaseQ};
    use std::fmt::Write as _;
    let job = io::parse_job(&fs::read_to_string(job_path)?)?;
    if !(h > 0.0 && h < 1.0) {
        return Err(CliError::Usage(format!("--h must lie in (0, 1), got {h}")));
    }
    let eta = bounds::per_type_target(h, job.num_types());
    let mut out = format!(
        "K_max = {k_max}, H = {h}, m = {} types ⇒ per-type target η = {eta:.6}\n\n",
        job.num_types()
    );
    let _ = writeln!(out, "type   tasks    budget(q=0)   budget(q=m_i)   verdict");
    for (t, m_i) in job.iter() {
        let label = format!("{t}");
        if m_i == 0 {
            let _ = writeln!(
                out,
                "{label:<7}{m_i:<9}—             —               trivial"
            );
            continue;
        }
        let fmt_budget = |wc: WorstCaseQ| {
            bounds::round_budget(m_i, k_max, h, job.num_types(), LogBase::Ten, wc)
                .map_or_else(|| "infeasible".to_string(), |b| b.to_string())
        };
        let strict = fmt_budget(WorstCaseQ::Zero);
        let first = fmt_budget(WorstCaseQ::FirstRound);
        let verdict = if strict == "infeasible" {
            "job too small for K_max (Remark 6.1)"
        } else if strict == "0" && first == "0" {
            "no rounds possible — recruit more or lower H"
        } else if strict == "0" {
            "feasible only under the first-round reading"
        } else {
            "guarantee feasible"
        };
        let _ = writeln!(out, "{label:<7}{m_i:<9}{strict:<14}{first:<16}{verdict}");
    }
    Ok(out)
}

/// Empirical invariant check over repeated runs: individual rationality
/// (payments cover every winner's ask), per-type exactness on completion,
/// the §7 total-payment bound, and the void rule on failure.
fn verify(
    asks_path: &Path,
    tree_path: &Path,
    job_path: &Path,
    runs: usize,
    seed: u64,
) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let asks = io::parse_asks(&fs::read_to_string(asks_path)?)?;
    let tree = io::parse_tree(&fs::read_to_string(tree_path)?)?;
    let job = io::parse_job(&fs::read_to_string(job_path)?)?;
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;

    let mut completed = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for r in 0..runs {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(r as u64));
        let out = rit.run(&job, &tree, &asks, &mut rng)?;
        if !out.completed() {
            if out.total_payment() != 0.0 || out.total_allocated() != 0 {
                violations.push(format!("run {r}: failed run was not voided"));
            }
            continue;
        }
        completed += 1;
        let mut per_type = vec![0u64; job.num_types()];
        for (j, &x) in out.allocation().iter().enumerate() {
            if x > out.allocation().len() as u64 + asks[j].quantity() {
                violations.push(format!("run {r}: user {j} over-allocated"));
            }
            if x > 0 {
                per_type[asks[j].task_type().index()] += x;
            }
            let floor = x as f64 * asks[j].unit_price();
            if out.auction_payments()[j] < floor - 1e-9 {
                violations.push(format!(
                    "run {r}: user {j} paid {} below ask total {floor}",
                    out.auction_payments()[j]
                ));
            }
            if out.payment(j) < out.auction_payments()[j] - 1e-9 {
                violations.push(format!("run {r}: user {j} final payment below auction"));
            }
        }
        for (t, m_i) in job.iter() {
            if per_type[t.index()] != m_i {
                violations.push(format!(
                    "run {r}: type {t} allocated {} ≠ {m_i}",
                    per_type[t.index()]
                ));
            }
        }
        if out.total_payment() > 2.0 * out.total_auction_payment() + 1e-9 {
            violations.push(format!("run {r}: §7 bound broken"));
        }
    }

    let mut out = format!(
        "verified {runs} runs: {completed} completed, {} failed (voided)\n",
        runs - completed
    );
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "all invariants hold: individual rationality, per-type exactness,\n\
             payment ≥ auction payment, total ≤ 2× auction total, void-on-failure"
        );
    } else {
        let _ = writeln!(out, "{} violations:", violations.len());
        for v in violations.iter().take(20) {
            let _ = writeln!(out, "  {v}");
        }
    }
    Ok(out)
}

/// Measures a sybil attack's mean gain: the victim splits into
/// `identities` chain-arranged identities at the given price (its own ask
/// value when `--price` is omitted), and the attacker's mean total utility
/// over `runs` replications is compared against honesty.
#[allow(clippy::too_many_arguments)]
fn attack(
    asks_path: &Path,
    tree_path: &Path,
    job_path: &Path,
    victim: usize,
    identities: usize,
    price: Option<f64>,
    runs: usize,
    seed: u64,
) -> Result<String, CliError> {
    use rit_core::sybil_exec;
    use rit_tree::sybil::SybilPlan;
    let asks = io::parse_asks(&fs::read_to_string(asks_path)?)?;
    let tree = io::parse_tree(&fs::read_to_string(tree_path)?)?;
    let job = io::parse_job(&fs::read_to_string(job_path)?)?;
    if victim >= asks.len() {
        return Err(CliError::Usage(format!(
            "--victim {victim} out of range (0..{})",
            asks.len()
        )));
    }
    if identities < 2 {
        return Err(CliError::Usage("--identities must be at least 2".into()));
    }
    if asks[victim].quantity() < identities as u64 {
        return Err(CliError::Usage(format!(
            "victim claims only {} tasks; cannot field {identities} identities",
            asks[victim].quantity()
        )));
    }
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;
    // The CLI treats the submitted ask value as the true cost — the
    // conservative reading for an honest victim.
    let cost = asks[victim].unit_price();
    let identity_price = price.unwrap_or(cost);

    let mut honest_sum = 0.0;
    let mut attack_sum = 0.0;
    for r in 0..runs as u64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(r));
        let out = rit.run(&job, &tree, &asks, &mut rng)?;
        honest_sum += out.utility(victim, cost);

        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(r) ^ 0xA77A);
        let identity_asks = sybil_exec::uniform_identity_asks(
            asks[victim].task_type(),
            asks[victim].quantity(),
            identities,
            identity_price,
            &mut rng,
        );
        let sc = sybil_exec::apply_attack(
            &tree,
            &asks,
            victim,
            &identity_asks,
            &SybilPlan::random(identities),
            &mut rng,
        )?;
        let out = rit.run(&job, &sc.tree, &sc.asks, &mut rng)?;
        attack_sum += sc.attacker_utility(&out, cost);
    }
    let honest = honest_sum / runs as f64;
    let attacked = attack_sum / runs as f64;
    Ok(format!(
        "victim user {victim} (ask {:.4} × {}), {identities} identities at price {identity_price:.4}\n\
         honest mean utility   {honest:.4}\n\
         attacked mean utility {attacked:.4}\n\
         gain {:+.4} — {}\n",
        cost,
        asks[victim].quantity(),
        attacked - honest,
        if attacked <= honest {
            "the split does not pay (sybil-proofness)"
        } else {
            "positive point estimate; check against the run-to-run noise before concluding"
        }
    ))
}

fn trace(asks_path: &Path, job_path: &Path, seed: u64) -> Result<String, CliError> {
    use std::fmt::Write as _;
    let asks = io::parse_asks(&fs::read_to_string(asks_path)?)?;
    let job = io::parse_job(&fs::read_to_string(job_path)?)?;
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;
    let mut rng = SmallRng::seed_from_u64(seed);
    let (phase, traces) = rit.run_auction_phase_traced(&job, &asks, &mut rng)?;
    let mut out = format!(
        "auction phase {}: {} / {} tasks allocated, total expenditure {:.4}\n\n",
        if phase.completed() {
            "completed"
        } else {
            "incomplete"
        },
        phase.allocation.iter().sum::<u64>(),
        job.total_tasks(),
        phase.auction_payments.iter().sum::<f64>(),
    );
    for t in &traces {
        let _ = writeln!(
            out,
            "type {} ({} tasks, {} rounds, {} empty, expenditure {:.4}):",
            t.task_type,
            t.tasks,
            t.rounds.len(),
            t.empty_rounds(),
            t.expenditure()
        );
        let _ = writeln!(
            out,
            "  round  q_before  unit_asks  z_s     n_s     winners  price"
        );
        for r in &t.rounds {
            let _ = writeln!(
                out,
                "  {:<7}{:<10}{:<11}{:<8}{:<8}{:<9}{:.4}",
                r.round,
                r.q_before,
                r.unit_asks,
                r.diagnostics.raw_count,
                r.diagnostics.consensus_count,
                r.winners,
                r.clearing_price
            );
        }
    }
    Ok(out)
}

fn generate(
    users: usize,
    types: usize,
    tasks_per_type: u64,
    seed: u64,
    out: &Path,
) -> Result<String, CliError> {
    let mut config = ScenarioConfig::paper(users);
    config.workload.num_types = types;
    let scenario = Scenario::generate(&config, seed);
    // Auto-size the job to roughly a quarter of the expected per-type
    // capacity, comfortably within Remark 6.1.
    let tasks = if tasks_per_type > 0 {
        tasks_per_type
    } else {
        let per_type = (users as u64 * (config.workload.capacity_max + 1) / 2) / types as u64;
        (per_type / 4).max(1)
    };
    let job = rit_model::Job::uniform(types, tasks).map_err(io::ScenarioIoError::from)?;
    fs::create_dir_all(out)?;
    fs::write(out.join("asks.csv"), io::render_asks(&scenario.asks))?;
    fs::write(out.join("tree.csv"), io::render_tree(&scenario.tree))?;
    fs::write(out.join("job.csv"), io::render_job(&job))?;
    let costs: Vec<f64> = scenario
        .population
        .iter()
        .map(rit_model::UserProfile::unit_cost)
        .collect();
    fs::write(out.join("costs.csv"), io::render_costs(&costs))?;
    Ok(format!(
        "wrote {}/asks.csv, tree.csv, job.csv, costs.csv ({users} users, {types} types, {tasks} tasks/type)\n",
        out.display()
    ))
}

#[allow(clippy::too_many_arguments)]
fn run(
    asks_path: &Path,
    tree_path: &Path,
    job_path: &Path,
    h: f64,
    seed: u64,
    best_effort: bool,
    mechanism: MechanismKind,
    rng_mode: RngMode,
    out: Option<&Path>,
    costs_path: Option<&Path>,
) -> Result<String, CliError> {
    let asks = io::parse_asks(&fs::read_to_string(asks_path)?)?;
    let tree = io::parse_tree(&fs::read_to_string(tree_path)?)?;
    let job = io::parse_job(&fs::read_to_string(job_path)?)?;

    if rng_mode == RngMode::PerTypeStreams && mechanism != MechanismKind::Rit {
        return Err(CliError::Usage(format!(
            "--rng-mode streams only applies to the rit mechanism, not {mechanism}"
        )));
    }

    // Baselines have no recruitment knob (`--h`) and no round limit; they run
    // through the generic `Mechanism` pipeline and render the normalized view.
    match mechanism {
        MechanismKind::Rit => {}
        MechanismKind::Naive => {
            return run_baseline(
                &NaiveKthPriceTree::new(),
                &asks,
                &tree,
                &job,
                seed,
                out,
                costs_path,
            )
        }
        MechanismKind::Darpa => {
            return run_baseline(
                &DarpaReferral::new(),
                &asks,
                &tree,
                &job,
                seed,
                out,
                costs_path,
            )
        }
    }

    let round_limit = if best_effort {
        RoundLimit::until_stall()
    } else {
        RoundLimit::default()
    };
    let rit = Rit::new(RitConfig {
        h,
        round_limit,
        ..RitConfig::default()
    })?;
    // With global telemetry installed, ride the observer hook through the
    // auction phase; observers draw no randomness, so the outcome is
    // bit-identical to the plain seeded path below.
    let outcome = match rit_telemetry::active() {
        Some(t) => {
            if asks.len() != tree.num_users() {
                return Err(RitError::AskCountMismatch {
                    asks: asks.len(),
                    users: tree.num_users(),
                }
                .into());
            }
            let mut ws = RitWorkspace::new();
            let mut observer = rit_telemetry::TelemetryObserver::new(t);
            let phase = match rng_mode {
                RngMode::SharedLegacy => {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    rit.run_auction_phase_with(&job, &asks, &mut ws, &mut observer, &mut rng)?
                }
                RngMode::PerTypeStreams => {
                    let pool = WorkspacePool::new();
                    rit.run_auction_phase_streams_with(
                        &job,
                        &asks,
                        seed,
                        rit_core::streams::default_threads(),
                        &mut ws,
                        &pool,
                        &mut observer,
                    )?
                }
            };
            let payment_span = t.start_span(rit_telemetry::SpanKind::PaymentPhase);
            let outcome = rit.determine_final_payments_with(&tree, &asks, phase, &mut ws);
            drop(payment_span);
            outcome
        }
        None => rit.run_seeded(&job, &tree, &asks, rng_mode, seed)?,
    };

    let mut summary = String::new();
    if outcome.completed() {
        let winners = outcome.allocation().iter().filter(|&&x| x > 0).count();
        let recruiters = outcome
            .solicitation_rewards()
            .iter()
            .filter(|&&r| r > 1e-12)
            .count();
        summary.push_str(&format!(
            "completed: {} tasks to {winners} users\n\
             total payment {:.4} (auction {:.4} + solicitation {:.4} across {recruiters} recruiters)\n",
            outcome.total_allocated(),
            outcome.total_payment(),
            outcome.total_auction_payment(),
            outcome.total_payment() - outcome.total_auction_payment(),
        ));
        let stats = rit_sim::analysis::summarize(&asks, &outcome);
        summary.push_str(&format!(
            "payment distribution: gini {:.3}, top-decile share {:.1}%\n",
            stats.gini,
            100.0 * stats.top_decile_share
        ));
        if let Some(path) = costs_path {
            let costs = io::parse_costs(&fs::read_to_string(path)?)?;
            if costs.len() != asks.len() {
                return Err(CliError::Usage(format!(
                    "--costs has {} rows, expected {}",
                    costs.len(),
                    asks.len()
                )));
            }
            let utilities: Vec<f64> = (0..asks.len())
                .map(|j| outcome.utility(j, costs[j]))
                .collect();
            let min = utilities.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let mean = utilities.iter().sum::<f64>() / utilities.len() as f64;
            summary.push_str(&format!(
                "true-cost audit: mean utility {mean:.4}, min utility {min:.4} (IR ⇒ ≥ 0)\n"
            ));
        }
    } else {
        let missing: u64 = outcome.unallocated().iter().sum();
        summary.push_str(&format!(
            "NOT completed: {missing} tasks unallocated — all payments void (paper Line 27)\n\
             consider more recruitment (`rit estimate`) or --best-effort\n"
        ));
    }
    if let Some(path) = out {
        fs::write(path, io::render_outcome(&asks, &outcome))?;
        summary.push_str(&format!("wrote {}\n", path.display()));
    }
    Ok(summary)
}

/// `rit run --mechanism naive|darpa`: same inputs and outputs as the RIT
/// path, but driven through the generic [`Mechanism`] pipeline and summarized
/// from the normalized [`rit_core::MechanismOutcome`] view.
fn run_baseline<M: Mechanism>(
    mechanism: &M,
    asks: &[rit_model::Ask],
    tree: &rit_tree::IncentiveTree,
    job: &rit_model::Job,
    seed: u64,
    out: Option<&Path>,
    costs_path: Option<&Path>,
) -> Result<String, CliError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let outcome = mechanism.evaluate(job, tree, asks, &mut rng)?;

    let mut summary = format!("mechanism: {}\n", mechanism.kind());
    if outcome.completed() {
        let winners = outcome.allocation().iter().filter(|&&x| x > 0).count();
        let rewards = outcome.solicitation_rewards();
        let recruiters = rewards.iter().filter(|&&r| r > 1e-12).count();
        summary.push_str(&format!(
            "completed: {} tasks to {winners} users\n\
             total payment {:.4} (auction {:.4} + solicitation {:.4} across {recruiters} recruiters)\n",
            outcome.total_allocated(),
            outcome.total_payment(),
            outcome.total_auction_payment(),
            outcome.total_payment() - outcome.total_auction_payment(),
        ));
        summary.push_str(&format!(
            "payment distribution: gini {:.3}\n",
            rit_sim::analysis::gini(outcome.payments())
        ));
        if let Some(path) = costs_path {
            let costs = io::parse_costs(&fs::read_to_string(path)?)?;
            if costs.len() != asks.len() {
                return Err(CliError::Usage(format!(
                    "--costs has {} rows, expected {}",
                    costs.len(),
                    asks.len()
                )));
            }
            let utilities: Vec<f64> = (0..asks.len())
                .map(|j| outcome.utility(j, costs[j]))
                .collect();
            let min = utilities.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            let mean = utilities.iter().sum::<f64>() / utilities.len() as f64;
            summary.push_str(&format!(
                "true-cost audit: mean utility {mean:.4}, min utility {min:.4}\n"
            ));
        }
    } else {
        let allocated = outcome.total_allocated();
        summary.push_str(&format!(
            "NOT completed: {allocated}/{} tasks allocated — all payments void\n",
            job.total_tasks()
        ));
    }
    if let Some(path) = out {
        fs::write(path, io::render_mechanism_outcome(asks, &outcome))?;
        summary.push_str(&format!("wrote {}\n", path.display()));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(Command::parse(&[]).unwrap(), Command::Help);
        assert_eq!(Command::parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(Command::parse(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_generate_defaults() {
        let cmd =
            Command::parse(&args(&["generate", "--users", "100", "--out", "/tmp/x"])).unwrap();
        match cmd {
            Command::Generate {
                users,
                types,
                seed,
                tasks_per_type,
                ..
            } => {
                assert_eq!(users, 100);
                assert_eq!(types, 10);
                assert_eq!(seed, 2017);
                assert_eq!(tasks_per_type, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_run_full() {
        let cmd = Command::parse(&args(&[
            "run",
            "--asks",
            "a.csv",
            "--tree",
            "t.csv",
            "--job",
            "j.csv",
            "--h",
            "0.9",
            "--best-effort",
            "--out",
            "o.csv",
        ]))
        .unwrap();
        match cmd {
            Command::Run {
                h,
                best_effort,
                mechanism,
                rng_mode,
                out,
                ..
            } => {
                assert_eq!(h, 0.9);
                assert!(best_effort);
                assert_eq!(mechanism, MechanismKind::Rit);
                assert_eq!(rng_mode, RngMode::SharedLegacy);
                assert_eq!(out, Some(PathBuf::from("o.csv")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_run_rng_mode_flag() {
        let base = [
            "run", "--asks", "a.csv", "--tree", "t.csv", "--job", "j.csv",
        ];
        for (label, mode) in [
            ("legacy", RngMode::SharedLegacy),
            ("shared", RngMode::SharedLegacy),
            ("streams", RngMode::PerTypeStreams),
            ("per-type", RngMode::PerTypeStreams),
        ] {
            let mut argv = base.to_vec();
            argv.extend(["--rng-mode", label]);
            let cmd = Command::parse(&args(&argv)).unwrap();
            assert_eq!(cmd.rng_mode(), mode, "--rng-mode {label}");
        }
        let mut argv = base.to_vec();
        argv.extend(["--rng-mode", "turbo"]);
        assert!(matches!(
            Command::parse(&args(&argv)),
            Err(CliError::Usage(msg)) if msg.contains("turbo")
        ));
        // Commands without the flag report the legacy default.
        let cmd = Command::parse(&args(&["estimate", "--job", "j.csv"])).unwrap();
        assert_eq!(cmd.rng_mode(), RngMode::SharedLegacy);
    }

    #[test]
    fn parse_run_mechanism_flag() {
        let base = [
            "run", "--asks", "a.csv", "--tree", "t.csv", "--job", "j.csv",
        ];
        for (label, kind) in [
            ("rit", MechanismKind::Rit),
            ("naive", MechanismKind::Naive),
            ("darpa", MechanismKind::Darpa),
        ] {
            let mut argv = base.to_vec();
            argv.extend(["--mechanism", label]);
            let cmd = Command::parse(&args(&argv)).unwrap();
            assert_eq!(cmd.mechanism(), kind, "--mechanism {label}");
        }
        let mut argv = base.to_vec();
        argv.extend(["--mechanism", "greedy"]);
        assert!(matches!(
            Command::parse(&args(&argv)),
            Err(CliError::Usage(msg)) if msg.contains("greedy")
        ));
    }

    #[test]
    fn parse_rejects_unknown_and_extra() {
        assert!(matches!(
            Command::parse(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(&args(&["dot", "--tree", "t.csv", "surprise"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(&args(&["run", "--asks", "a.csv"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(&args(&["generate", "--users"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parse_report_variants() {
        assert_eq!(
            Command::parse(&args(&["report", "telemetry.jsonl", "BENCH_sim.json"])).unwrap(),
            Command::Report {
                files: vec![
                    PathBuf::from("telemetry.jsonl"),
                    PathBuf::from("BENCH_sim.json")
                ]
            }
        );
        assert_eq!(
            Command::parse(&args(&["report", "diff", "a.json", "b.json"])).unwrap(),
            Command::ReportDiff {
                baseline: PathBuf::from("a.json"),
                candidate: PathBuf::from("b.json"),
                threshold: rit_sim::report::DEFAULT_THRESHOLD,
            }
        );
        assert_eq!(
            Command::parse(&args(&[
                "report",
                "diff",
                "--threshold",
                "0.1",
                "a.json",
                "b.json"
            ]))
            .unwrap(),
            Command::ReportDiff {
                baseline: PathBuf::from("a.json"),
                candidate: PathBuf::from("b.json"),
                threshold: 0.1,
            }
        );
        assert_eq!(
            Command::parse(&args(&[
                "report",
                "trace",
                "t.jsonl",
                "--out",
                "trace.json"
            ]))
            .unwrap(),
            Command::ReportTrace {
                input: PathBuf::from("t.jsonl"),
                out: Some(PathBuf::from("trace.json")),
            }
        );
        // Report commands carry no seed and default mechanism/RNG labels.
        let cmd = Command::parse(&args(&["report", "x.jsonl"])).unwrap();
        assert_eq!(cmd.seed(), None);
        assert_eq!(cmd.mechanism(), MechanismKind::Rit);
    }

    #[test]
    fn parse_report_rejects_bad_arity() {
        assert!(matches!(
            Command::parse(&args(&["report"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(&args(&["report", "diff", "only-one.json"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            Command::parse(&args(&["report", "trace", "a.jsonl", "b.jsonl"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn report_diff_execution_gates_on_regression() {
        let dir = std::env::temp_dir().join("rit_cli_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bench = |wall: f64| {
            format!(
                r#"{{"schema_version": 1, "bench": "bench_scale",
                    "phases": [{{"name": "auction_parallel", "threads": 2,
                                 "wall_s": [{wall}], "p50_wall_s": {wall}}}]}}"#
            )
        };
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, bench(1.0)).unwrap();
        std::fs::write(&b, bench(10.0)).unwrap();

        // Identical runs pass and render the gate verdict.
        let same = execute(&Command::ReportDiff {
            baseline: a.clone(),
            candidate: a.clone(),
            threshold: rit_sim::report::DEFAULT_THRESHOLD,
        })
        .unwrap();
        assert!(same.contains("Gate: **pass**"));

        // An injected 10x slowdown fails the gate and names the metric.
        let err = execute(&Command::ReportDiff {
            baseline: a.clone(),
            candidate: b.clone(),
            threshold: rit_sim::report::DEFAULT_THRESHOLD,
        })
        .unwrap_err();
        match err {
            CliError::Regression(markdown) => {
                assert!(
                    markdown.contains("phase.auction_parallel.wall_s"),
                    "{markdown}"
                );
            }
            other => panic!("expected Regression, got {other:?}"),
        }

        // The summary renders the phase table from the same artifact.
        let summary = execute(&Command::Report { files: vec![a] }).unwrap();
        assert!(summary.contains("auction_parallel"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_trace_execution_writes_chrome_trace_json() {
        let dir = std::env::temp_dir().join("rit_cli_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("telemetry.jsonl");
        std::fs::write(
            &jsonl,
            concat!(
                r#"{"event":"manifest","tool":"rit","version":"0"}"#,
                "\n",
                r#"{"event":"span","name":"run","id":1,"parent":0,"thread":1,"start_us":0,"dur_us":5}"#,
                "\n",
            ),
        )
        .unwrap();
        let out = dir.join("trace.json");
        let msg = execute(&Command::ReportTrace {
            input: jsonl,
            out: Some(out.clone()),
        })
        .unwrap();
        assert!(msg.contains("1 span slice"));
        let trace = std::fs::read_to_string(&out).unwrap();
        let v = rit_telemetry::JsonValue::parse(&trace).unwrap();
        assert!(v.get("traceEvents").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_execution_prints_usage() {
        let out = execute(&Command::Help).unwrap();
        assert!(out.contains("rit generate"));
        assert!(out.contains("rit run"));
        assert!(out.contains("--threads"));
    }

    #[test]
    fn parse_rejects_bad_threads_values() {
        let base = ["estimate", "--job", "j.csv"];
        for bad in ["0", "-2", "many"] {
            let mut argv = base.to_vec();
            argv.extend(["--threads", bad]);
            assert!(
                matches!(
                    Command::parse(&args(&argv)),
                    Err(CliError::Usage(msg)) if msg.contains("--threads")
                ),
                "--threads {bad} should be a usage error"
            );
        }
        let mut argv = base.to_vec();
        argv.push("--threads");
        assert!(matches!(
            Command::parse(&args(&argv)),
            Err(CliError::Usage(msg)) if msg.contains("--threads")
        ));
    }

    #[test]
    fn parse_threads_installs_process_override() {
        // The flag is global: any subcommand accepts it, and it installs
        // the process-wide override for both the simulation harness and
        // the streams-mode auction phase.
        let cmd = Command::parse(&args(&["dot", "--tree", "t.csv", "--threads", "3"])).unwrap();
        assert!(matches!(cmd, Command::Dot { .. }));
        assert_eq!(rit_sim::runner::default_threads(), 3);
        assert_eq!(rit_core::streams::default_threads(), 3);
        // Clear so other tests in this process see the env/default path.
        rit_sim::runner::set_thread_override(0);
        rit_core::streams::set_thread_override(0);
    }
}
