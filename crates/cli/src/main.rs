//! Thin binary wrapper over [`rit_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rit_cli::Command::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n\n{}", rit_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match rit_cli::execute(&command) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
