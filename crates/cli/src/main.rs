//! Thin binary wrapper over [`rit_cli`].
//!
//! Setting `RIT_TELEMETRY=<path>` streams a run manifest plus per-round
//! auction events to `<path>` as JSONL and prints flush-time metric
//! summaries there; the variable is read here so every subcommand gets the
//! same instrumentation without plumbing a flag through each one.

use std::process::ExitCode;

use rit_telemetry::{RunManifest, Telemetry, TELEMETRY_ENV};

/// Installs the global telemetry instance when [`TELEMETRY_ENV`] names a
/// writable path. Returns the installed handle so `main` can flush it.
fn install_telemetry(args: &[String], command: &rit_cli::Command) -> Option<&'static Telemetry> {
    let path = std::env::var(TELEMETRY_ENV)
        .ok()
        .filter(|p| !p.is_empty())?;
    let config_desc = format!("rit {}", args.join(" "));
    let manifest = RunManifest::new(
        "rit",
        env!("CARGO_PKG_VERSION"),
        &config_desc,
        command.seed().unwrap_or(0),
        rit_sim::runner::default_threads(),
    )
    .with_mechanism(command.mechanism().label())
    .with_rng_mode(command.rng_mode().as_str());
    match Telemetry::with_sink(manifest, std::path::Path::new(&path)) {
        Ok(t) => match rit_telemetry::install(t) {
            Ok(installed) => Some(installed),
            Err(_) => {
                eprintln!("warning: telemetry already installed; ignoring {TELEMETRY_ENV}");
                None
            }
        },
        Err(e) => {
            eprintln!("warning: cannot open telemetry sink {path}: {e}");
            None
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rit_cli::Command::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}\n\n{}", rit_cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let telemetry = install_telemetry(&args, &command);
    let result = rit_cli::execute(&command);
    if let Some(t) = telemetry {
        if let Err(e) = t.flush() {
            eprintln!("warning: telemetry flush failed: {e}");
        }
    }
    match result {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
