//! End-to-end CLI flows against a temporary directory: generate → estimate
//! → run → dot.

use std::fs;
use std::path::PathBuf;

use rit_cli::{execute, Command};
use rit_core::{MechanismKind, RngMode};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rit_cli_test_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_run_round_trip() {
    let dir = temp_dir("roundtrip");
    // Generate a scenario big enough to complete reliably.
    let out = execute(&Command::Generate {
        users: 800,
        types: 4,
        tasks_per_type: 0, // auto-size
        seed: 11,
        out: dir.clone(),
    })
    .unwrap();
    assert!(out.contains("asks.csv"));
    for f in ["asks.csv", "tree.csv", "job.csv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }

    // Estimate against the generated job.
    let estimate = execute(&Command::Estimate {
        job: dir.join("job.csv"),
        k_max: 20,
        safety: 1.3,
    })
    .unwrap();
    assert!(estimate.contains("estimated recruitment threshold"));

    // Run the mechanism best-effort and write the outcome.
    let outcome_path = dir.join("outcome.csv");
    let summary = execute(&Command::Run {
        asks: dir.join("asks.csv"),
        tree: dir.join("tree.csv"),
        job: dir.join("job.csv"),
        h: 0.8,
        seed: 3,
        best_effort: true,
        mechanism: MechanismKind::Rit,
        rng_mode: RngMode::SharedLegacy,
        out: Some(outcome_path.clone()),
        costs: Some(dir.join("costs.csv")),
    })
    .unwrap();
    assert!(
        summary.contains("completed") || summary.contains("NOT completed"),
        "unexpected summary: {summary}"
    );
    if summary.starts_with("completed") {
        assert!(
            summary.contains("true-cost audit"),
            "missing audit: {summary}"
        );
    }
    assert!(dir.join("costs.csv").exists());
    let outcome = fs::read_to_string(&outcome_path).unwrap();
    assert!(outcome.starts_with("user,task_type,allocated"));
    assert_eq!(outcome.lines().count(), 801);

    // DOT dump parses the same tree file.
    let dot = execute(&Command::Dot {
        tree: dir.join("tree.csv"),
    })
    .unwrap();
    assert!(dot.starts_with("digraph incentive_tree"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn run_is_deterministic_per_seed() {
    let dir = temp_dir("determinism");
    execute(&Command::Generate {
        users: 400,
        types: 3,
        tasks_per_type: 50,
        seed: 5,
        out: dir.clone(),
    })
    .unwrap();
    let run = |seed: u64, rng_mode: RngMode, tag: &str| {
        let path = dir.join(format!("out_{tag}.csv"));
        execute(&Command::Run {
            asks: dir.join("asks.csv"),
            tree: dir.join("tree.csv"),
            job: dir.join("job.csv"),
            h: 0.8,
            seed,
            best_effort: true,
            mechanism: MechanismKind::Rit,
            rng_mode,
            out: Some(path.clone()),
            costs: None,
        })
        .unwrap();
        fs::read_to_string(path).unwrap()
    };
    let a = run(9, RngMode::SharedLegacy, "a");
    let b = run(9, RngMode::SharedLegacy, "b");
    let c = run(10, RngMode::SharedLegacy, "c");
    assert_eq!(a, b);
    assert_ne!(a, c);
    // Per-type streams: equally deterministic per seed, but a different
    // (equally valid) draw order than the legacy shared stream.
    let s1 = run(9, RngMode::PerTypeStreams, "s1");
    let s2 = run(9, RngMode::PerTypeStreams, "s2");
    assert_eq!(s1, s2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn run_baselines_through_the_generic_pipeline() {
    let dir = temp_dir("baselines");
    execute(&Command::Generate {
        users: 600,
        types: 3,
        tasks_per_type: 40,
        seed: 21,
        out: dir.clone(),
    })
    .unwrap();
    for kind in [MechanismKind::Naive, MechanismKind::Darpa] {
        let path = dir.join(format!("out_{kind}.csv"));
        let summary = execute(&Command::Run {
            asks: dir.join("asks.csv"),
            tree: dir.join("tree.csv"),
            job: dir.join("job.csv"),
            h: 0.8,
            seed: 7,
            best_effort: false,
            mechanism: kind,
            rng_mode: RngMode::SharedLegacy,
            out: Some(path.clone()),
            costs: None,
        })
        .unwrap();
        assert!(
            summary.starts_with(&format!("mechanism: {kind}")),
            "got: {summary}"
        );
        assert!(
            summary.contains("completed") || summary.contains("NOT completed"),
            "got: {summary}"
        );
        let outcome = fs::read_to_string(&path).unwrap();
        assert!(outcome.starts_with("user,task_type,allocated"));
        assert_eq!(outcome.lines().count(), 601);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn trace_prints_per_type_stories() {
    let dir = temp_dir("trace");
    execute(&Command::Generate {
        users: 500,
        types: 3,
        tasks_per_type: 40,
        seed: 8,
        out: dir.clone(),
    })
    .unwrap();
    let out = execute(&Command::Trace {
        asks: dir.join("asks.csv"),
        job: dir.join("job.csv"),
        seed: 2,
    })
    .unwrap();
    assert!(out.contains("auction phase"), "got: {out}");
    for t in ["τ0", "τ1", "τ2"] {
        assert!(out.contains(&format!("type {t} (")), "missing {t}: {out}");
    }
    assert!(out.contains("q_before"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn budget_reports_feasibility_per_type() {
    let dir = temp_dir("budget");
    fs::write(dir.join("job.csv"), "task_type,tasks\n0,5000\n1,30\n2,0\n").unwrap();
    let out = execute(&Command::Budget {
        job: dir.join("job.csv"),
        k_max: 20,
        h: 0.8,
    })
    .unwrap();
    assert!(out.contains("guarantee feasible"), "got: {out}");
    assert!(out.contains("Remark 6.1"), "got: {out}");
    assert!(out.contains("trivial"), "got: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn verify_reports_clean_invariants() {
    let dir = temp_dir("verify");
    execute(&Command::Generate {
        users: 600,
        types: 3,
        tasks_per_type: 40,
        seed: 12,
        out: dir.clone(),
    })
    .unwrap();
    let out = execute(&Command::Verify {
        asks: dir.join("asks.csv"),
        tree: dir.join("tree.csv"),
        job: dir.join("job.csv"),
        runs: 8,
        seed: 4,
    })
    .unwrap();
    assert!(out.contains("verified 8 runs"), "got: {out}");
    assert!(out.contains("all invariants hold"), "got: {out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn attack_reports_gain_estimate() {
    let dir = temp_dir("attack");
    execute(&Command::Generate {
        users: 400,
        types: 2,
        tasks_per_type: 60,
        seed: 14,
        out: dir.clone(),
    })
    .unwrap();
    // Find a victim claiming at least 3 tasks.
    let asks = fs::read_to_string(dir.join("asks.csv")).unwrap();
    let victim = asks
        .lines()
        .skip(1)
        .position(|l| l.split(',').nth(2).unwrap().parse::<u64>().unwrap() >= 3)
        .unwrap();
    let out = execute(&Command::Attack {
        asks: dir.join("asks.csv"),
        tree: dir.join("tree.csv"),
        job: dir.join("job.csv"),
        victim,
        identities: 2,
        price: None,
        runs: 6,
        seed: 5,
    })
    .unwrap();
    assert!(out.contains("honest mean utility"), "got: {out}");
    assert!(out.contains("gain"), "got: {out}");

    // Guard rails.
    let err = execute(&Command::Attack {
        asks: dir.join("asks.csv"),
        tree: dir.join("tree.csv"),
        job: dir.join("job.csv"),
        victim: 999_999,
        identities: 2,
        price: None,
        runs: 1,
        seed: 5,
    })
    .unwrap_err();
    assert!(err.to_string().contains("out of range"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_files_surface_cleanly() {
    let err = execute(&Command::Run {
        asks: PathBuf::from("/nonexistent/asks.csv"),
        tree: PathBuf::from("/nonexistent/tree.csv"),
        job: PathBuf::from("/nonexistent/job.csv"),
        h: 0.8,
        seed: 1,
        best_effort: false,
        mechanism: MechanismKind::Rit,
        rng_mode: RngMode::SharedLegacy,
        out: None,
        costs: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("i/o error"));
}

#[test]
fn malformed_input_reports_line() {
    let dir = temp_dir("malformed");
    fs::write(dir.join("job.csv"), "task_type,tasks\n0,five\n").unwrap();
    let err = execute(&Command::Estimate {
        job: dir.join("job.csv"),
        k_max: 20,
        safety: 1.0,
    })
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "got: {msg}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn strict_mode_reports_infeasible_guarantee() {
    let dir = temp_dir("strict");
    // Tiny job: 2·K_max ≥ mᵢ under the paper budget.
    execute(&Command::Generate {
        users: 200,
        types: 2,
        tasks_per_type: 5,
        seed: 2,
        out: dir.clone(),
    })
    .unwrap();
    let err = execute(&Command::Run {
        asks: dir.join("asks.csv"),
        tree: dir.join("tree.csv"),
        job: dir.join("job.csv"),
        h: 0.8,
        seed: 1,
        best_effort: false,
        mechanism: MechanismKind::Rit,
        rng_mode: RngMode::SharedLegacy,
        out: None,
        costs: None,
    })
    .unwrap_err();
    assert!(err.to_string().contains("mechanism error"), "got: {err}");
    let _ = fs::remove_dir_all(&dir);
}
