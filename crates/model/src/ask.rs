//! Sealed-bid asks `(tⱼ, kⱼ, aⱼ)` and ask profiles.

use std::fmt;

use crate::{ModelError, TaskTypeId};

/// A sealed-bid ask `(tⱼ, kⱼ, aⱼ)` submitted by a user upon joining the
/// incentive tree (paper §3-A).
///
/// * `task_type` — the single type `tⱼ` the user bids for (in mobile spectrum
///   sensing, the user's geographic area);
/// * `quantity` — `kⱼ > 0`, the maximum number of tasks the user claims to be
///   able to complete;
/// * `unit_price` — `aⱼ > 0`, the minimum reward demanded per task.
///
/// The submission is sealed: no user sees any other user's ask. `kⱼ` need not
/// equal the true capacity `Kⱼ` and `aⱼ` need not equal the true cost `cⱼ`;
/// the whole point of RIT is to make revealing both a dominant strategy with
/// high probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ask {
    task_type: TaskTypeId,
    quantity: u64,
    unit_price: f64,
}

impl Ask {
    /// Creates a validated ask.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ZeroQuantity`] if `quantity == 0`;
    /// * [`ModelError::NonPositivePrice`] if `unit_price` is not a positive,
    ///   finite number.
    pub fn new(task_type: TaskTypeId, quantity: u64, unit_price: f64) -> Result<Self, ModelError> {
        if quantity == 0 {
            return Err(ModelError::ZeroQuantity);
        }
        if !(unit_price.is_finite() && unit_price > 0.0) {
            return Err(ModelError::NonPositivePrice { value: unit_price });
        }
        Ok(Self {
            task_type,
            quantity,
            unit_price,
        })
    }

    /// The task type `tⱼ` this ask bids for.
    #[must_use]
    pub const fn task_type(&self) -> TaskTypeId {
        self.task_type
    }

    /// The claimed quantity `kⱼ`.
    #[must_use]
    pub const fn quantity(&self) -> u64 {
        self.quantity
    }

    /// The claimed unit price `aⱼ`.
    #[must_use]
    pub const fn unit_price(&self) -> f64 {
        self.unit_price
    }

    /// Returns a copy of this ask with a different unit price — handy for
    /// probing untruthful deviations in tests and experiments.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositivePrice`] if the new price is invalid.
    pub fn with_unit_price(&self, unit_price: f64) -> Result<Self, ModelError> {
        Self::new(self.task_type, self.quantity, unit_price)
    }

    /// Returns a copy of this ask with a different quantity.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ZeroQuantity`] if `quantity == 0`.
    pub fn with_quantity(&self, quantity: u64) -> Result<Self, ModelError> {
        Self::new(self.task_type, quantity, self.unit_price)
    }
}

impl fmt::Display for Ask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.task_type, self.quantity, self.unit_price
        )
    }
}

/// The ask vector `A = ((t₁,k₁,a₁); …; (t_N,k_N,a_N))`: one ask per tree
/// node, indexed in node order.
///
/// This is a thin collection wrapper so that mechanism code can speak in
/// terms of "the ask profile" as the paper does.
///
/// ```
/// use rit_model::{Ask, AskProfile, TaskTypeId};
///
/// let profile: AskProfile = vec![
///     Ask::new(TaskTypeId::new(0), 2, 3.0)?,
///     Ask::new(TaskTypeId::new(1), 3, 4.0)?,
/// ]
/// .into_iter()
/// .collect();
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile[1].quantity(), 3);
/// # Ok::<(), rit_model::ModelError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AskProfile {
    asks: Vec<Ask>,
}

impl AskProfile {
    /// Creates an empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a profile from a vector of asks (node order).
    #[must_use]
    pub fn from_vec(asks: Vec<Ask>) -> Self {
        Self { asks }
    }

    /// Number of asks in the profile.
    #[must_use]
    pub fn len(&self) -> usize {
        self.asks.len()
    }

    /// Whether the profile is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.asks.is_empty()
    }

    /// The ask at `index`, if present.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&Ask> {
        self.asks.get(index)
    }

    /// Appends an ask.
    pub fn push(&mut self, ask: Ask) {
        self.asks.push(ask);
    }

    /// Iterates over the asks in node order.
    pub fn iter(&self) -> impl Iterator<Item = &Ask> {
        self.asks.iter()
    }

    /// The asks as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Ask] {
        &self.asks
    }

    /// Consumes the profile, returning the underlying vector.
    #[must_use]
    pub fn into_vec(self) -> Vec<Ask> {
        self.asks
    }

    /// Total claimed quantity for one task type: `Σ{kⱼ : tⱼ = τ}`.
    ///
    /// Remark 6.1 requires this to be at least `2·mᵢ` per type for the
    /// consensus auction to select `q + mᵢ` potential winners.
    #[must_use]
    pub fn claimed_quantity_of_type(&self, task_type: TaskTypeId) -> u64 {
        self.asks
            .iter()
            .filter(|a| a.task_type() == task_type)
            .map(Ask::quantity)
            .sum()
    }

    /// The largest claimed quantity over all asks (0 if empty) — the
    /// profile-level analogue of `K_max`.
    #[must_use]
    pub fn max_quantity(&self) -> u64 {
        self.asks.iter().map(Ask::quantity).max().unwrap_or(0)
    }
}

impl std::ops::Index<usize> for AskProfile {
    type Output = Ask;

    fn index(&self, index: usize) -> &Ask {
        &self.asks[index]
    }
}

impl FromIterator<Ask> for AskProfile {
    fn from_iter<I: IntoIterator<Item = Ask>>(iter: I) -> Self {
        Self {
            asks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Ask> for AskProfile {
    fn extend<I: IntoIterator<Item = Ask>>(&mut self, iter: I) {
        self.asks.extend(iter);
    }
}

impl<'a> IntoIterator for &'a AskProfile {
    type Item = &'a Ask;
    type IntoIter = std::slice::Iter<'a, Ask>;

    fn into_iter(self) -> Self::IntoIter {
        self.asks.iter()
    }
}

impl IntoIterator for AskProfile {
    type Item = Ask;
    type IntoIter = std::vec::IntoIter<Ask>;

    fn into_iter(self) -> Self::IntoIter {
        self.asks.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    #[test]
    fn ask_validates_quantity() {
        assert_eq!(Ask::new(t(0), 0, 1.0), Err(ModelError::ZeroQuantity));
        assert!(Ask::new(t(0), 1, 1.0).is_ok());
    }

    #[test]
    fn ask_validates_price() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Ask::new(t(0), 1, bad),
                Err(ModelError::NonPositivePrice { .. })
            ));
        }
    }

    #[test]
    fn with_unit_price_keeps_other_fields() {
        let a = Ask::new(t(2), 5, 7.0).unwrap();
        let b = a.with_unit_price(3.0).unwrap();
        assert_eq!(b.task_type(), t(2));
        assert_eq!(b.quantity(), 5);
        assert_eq!(b.unit_price(), 3.0);
        assert!(a.with_unit_price(-1.0).is_err());
    }

    #[test]
    fn with_quantity_keeps_other_fields() {
        let a = Ask::new(t(2), 5, 7.0).unwrap();
        let b = a.with_quantity(1).unwrap();
        assert_eq!(b.quantity(), 1);
        assert_eq!(b.unit_price(), 7.0);
        assert!(a.with_quantity(0).is_err());
    }

    #[test]
    fn display_matches_paper_tuple_notation() {
        let a = Ask::new(t(1), 5, 7.0).unwrap();
        assert_eq!(a.to_string(), "(τ1, 5, 7)");
    }

    #[test]
    fn profile_per_type_quantity() {
        let profile: AskProfile = vec![
            Ask::new(t(0), 2, 3.0).unwrap(),
            Ask::new(t(1), 3, 4.0).unwrap(),
            Ask::new(t(0), 4, 2.0).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(profile.claimed_quantity_of_type(t(0)), 6);
        assert_eq!(profile.claimed_quantity_of_type(t(1)), 3);
        assert_eq!(profile.claimed_quantity_of_type(t(9)), 0);
        assert_eq!(profile.max_quantity(), 4);
    }

    #[test]
    fn empty_profile_behaves() {
        let p = AskProfile::new();
        assert!(p.is_empty());
        assert_eq!(p.max_quantity(), 0);
        assert!(p.get(0).is_none());
    }

    #[test]
    fn profile_extend_and_iter() {
        let mut p = AskProfile::new();
        p.push(Ask::new(t(0), 1, 1.0).unwrap());
        p.extend([Ask::new(t(0), 2, 2.0).unwrap()]);
        assert_eq!(p.len(), 2);
        let quantities: Vec<u64> = p.iter().map(Ask::quantity).collect();
        assert_eq!(quantities, vec![1, 2]);
        let owned: Vec<Ask> = p.clone().into_iter().collect();
        assert_eq!(owned.len(), 2);
        assert_eq!((&p).into_iter().count(), 2);
    }
}
