//! Heterogeneous cost models beyond the paper's uniform workload.
//!
//! The §7-A evaluation draws unit costs from `U(0, 10]`. Real sensing costs
//! are rarely uniform — battery-rich devices cluster low, metered-data users
//! cluster high — so robustness analysis needs alternative shapes with the
//! same support discipline (positive, finite, bounded). [`CostModel`]
//! provides four, and [`HeterogeneousWorkload`] plugs them into population
//! sampling; the simulation harness's `robustness` experiment sweeps them to
//! check that the paper's curve shapes are not artifacts of uniformity.

use rand::Rng;

use crate::{ModelError, Population, TaskTypeId, UserProfile};

/// A unit-cost distribution with positive bounded support.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CostModel {
    /// The paper's `U(0, max]`.
    Uniform {
        /// Upper bound (exclusive of 0, inclusive of `max`).
        max: f64,
    },
    /// Exponential with the given mean, clipped to `(0, cap]` — a heavy
    /// mass of cheap sensors with a thin expensive tail.
    Exponential {
        /// Mean of the unclipped distribution.
        mean: f64,
        /// Hard cap.
        cap: f64,
    },
    /// Two device classes: cost `low` with probability `1 − p_high`, `high`
    /// with probability `p_high`, each jittered by `±jitter` uniformly.
    Bimodal {
        /// Cheap-class center.
        low: f64,
        /// Expensive-class center.
        high: f64,
        /// Probability of the expensive class.
        p_high: f64,
        /// Uniform jitter half-width.
        jitter: f64,
    },
    /// Log-normal with the given median and log-space sigma, clipped to
    /// `(0, cap]` — multiplicative heterogeneity.
    LogNormal {
        /// Median of the unclipped distribution.
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
        /// Hard cap.
        cap: f64,
    },
}

impl CostModel {
    /// The paper's model.
    #[must_use]
    pub const fn paper() -> Self {
        Self::Uniform { max: 10.0 }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositivePrice`] when any scale parameter is
    /// non-positive or non-finite, or when `p_high`/`jitter` are out of
    /// range.
    pub fn validate(&self) -> Result<(), ModelError> {
        let ok = match *self {
            Self::Uniform { max } => max.is_finite() && max > 0.0,
            Self::Exponential { mean, cap } => {
                mean.is_finite() && mean > 0.0 && cap.is_finite() && cap > 0.0
            }
            Self::Bimodal {
                low,
                high,
                p_high,
                jitter,
            } => {
                low.is_finite()
                    && high.is_finite()
                    && low > 0.0
                    && high >= low
                    && (0.0..=1.0).contains(&p_high)
                    && jitter >= 0.0
                    && jitter < low
            }
            Self::LogNormal { median, sigma, cap } => {
                median.is_finite() && median > 0.0 && sigma >= 0.0 && cap.is_finite() && cap > 0.0
            }
        };
        if ok {
            Ok(())
        } else {
            Err(ModelError::NonPositivePrice { value: f64::NAN })
        }
    }

    /// Draws one cost; always positive and finite.
    ///
    /// # Panics
    ///
    /// Panics if the model is invalid (call [`CostModel::validate`] first
    /// when handling untrusted parameters).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.validate().expect("invalid cost model");
        let tiny = f64::MIN_POSITIVE * 1e10;
        match *self {
            Self::Uniform { max } => (rng.gen_range(0.0..max) + max * f64::EPSILON).min(max),
            Self::Exponential { mean, cap } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (-u.ln() * mean).clamp(tiny, cap)
            }
            Self::Bimodal {
                low,
                high,
                p_high,
                jitter,
            } => {
                let center = if rng.gen_bool(p_high) { high } else { low };
                let j = if jitter > 0.0 {
                    rng.gen_range(-jitter..=jitter)
                } else {
                    0.0
                };
                (center + j).max(tiny)
            }
            Self::LogNormal { median, sigma, cap } => {
                // Box–Muller normal draw in log space.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
                (median * (sigma * z).exp()).clamp(tiny, cap)
            }
        }
    }
}

/// A workload with the paper's type/capacity structure but a pluggable
/// cost model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeterogeneousWorkload {
    /// Number of task types `m`.
    pub num_types: usize,
    /// Capacity upper bound: `Kⱼ ~ U{1..=capacity_max}`.
    pub capacity_max: u64,
    /// Unit-cost model.
    pub cost: CostModel,
}

impl HeterogeneousWorkload {
    /// The paper's exact workload.
    #[must_use]
    pub const fn paper() -> Self {
        Self {
            num_types: 10,
            capacity_max: 20,
            cost: CostModel::paper(),
        }
    }

    /// Draws a population of `n` users.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyJob`] / [`ModelError::ZeroQuantity`] /
    /// [`ModelError::NonPositivePrice`] for invalid parameters.
    pub fn sample_population<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Population, ModelError> {
        if self.num_types == 0 {
            return Err(ModelError::EmptyJob);
        }
        if self.capacity_max == 0 {
            return Err(ModelError::ZeroQuantity);
        }
        self.cost.validate()?;
        let mut users = Vec::with_capacity(n);
        for _ in 0..n {
            let task_type = TaskTypeId::new(rng.gen_range(0..self.num_types as u32));
            let capacity = rng.gen_range(1..=self.capacity_max);
            let cost = self.cost.sample(rng);
            users.push(UserProfile::new(task_type, capacity, cost)?);
        }
        Ok(Population::from_vec(users))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn models() -> Vec<CostModel> {
        vec![
            CostModel::paper(),
            CostModel::Exponential {
                mean: 3.0,
                cap: 10.0,
            },
            CostModel::Bimodal {
                low: 1.0,
                high: 8.0,
                p_high: 0.3,
                jitter: 0.5,
            },
            CostModel::LogNormal {
                median: 3.0,
                sigma: 0.6,
                cap: 10.0,
            },
        ]
    }

    #[test]
    fn all_models_sample_positive_finite_bounded() {
        let mut rng = SmallRng::seed_from_u64(1);
        for model in models() {
            for _ in 0..5000 {
                let c = model.sample(&mut rng);
                assert!(c.is_finite() && c > 0.0, "{model:?} produced {c}");
                assert!(c <= 10.0 + 0.5, "{model:?} exceeded cap: {c}");
            }
        }
    }

    #[test]
    fn means_land_near_targets() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mean_of = |model: &CostModel, rng: &mut SmallRng| {
            (0..20_000).map(|_| model.sample(rng)).sum::<f64>() / 20_000.0
        };
        let uniform = mean_of(&CostModel::paper(), &mut rng);
        assert!((uniform - 5.0).abs() < 0.15, "uniform mean {uniform}");
        let expo = mean_of(
            &CostModel::Exponential {
                mean: 3.0,
                cap: 100.0,
            },
            &mut rng,
        );
        assert!((expo - 3.0).abs() < 0.15, "exponential mean {expo}");
        let bimodal = mean_of(
            &CostModel::Bimodal {
                low: 1.0,
                high: 9.0,
                p_high: 0.5,
                jitter: 0.0,
            },
            &mut rng,
        );
        assert!((bimodal - 5.0).abs() < 0.15, "bimodal mean {bimodal}");
    }

    #[test]
    fn lognormal_median_is_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let model = CostModel::LogNormal {
            median: 2.0,
            sigma: 0.8,
            cap: 1000.0,
        };
        let mut draws: Vec<f64> = (0..10_001).map(|_| model.sample(&mut rng)).collect();
        draws.sort_by(f64::total_cmp);
        let median = draws[5000];
        assert!((median - 2.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn invalid_models_rejected() {
        let bad = [
            CostModel::Uniform { max: 0.0 },
            CostModel::Exponential {
                mean: -1.0,
                cap: 5.0,
            },
            CostModel::Bimodal {
                low: 1.0,
                high: 0.5,
                p_high: 0.5,
                jitter: 0.0,
            },
            CostModel::Bimodal {
                low: 1.0,
                high: 2.0,
                p_high: 1.5,
                jitter: 0.0,
            },
            CostModel::LogNormal {
                median: 2.0,
                sigma: -0.1,
                cap: 5.0,
            },
        ];
        for model in bad {
            assert!(model.validate().is_err(), "{model:?} should be invalid");
        }
    }

    #[test]
    fn heterogeneous_population_sampling() {
        let workload = HeterogeneousWorkload {
            num_types: 4,
            capacity_max: 6,
            cost: CostModel::Exponential {
                mean: 2.0,
                cap: 10.0,
            },
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let pop = workload.sample_population(2000, &mut rng).unwrap();
        assert_eq!(pop.len(), 2000);
        assert!(pop.k_max() <= 6);
        for u in pop.iter() {
            assert!(u.task_type().index() < 4);
            assert!(u.unit_cost() > 0.0 && u.unit_cost() <= 10.0);
        }
    }

    #[test]
    fn paper_workload_matches_uniform_config() {
        // HeterogeneousWorkload::paper() and WorkloadConfig::paper() must
        // describe the same distribution (checked by moments).
        let mut rng = SmallRng::seed_from_u64(5);
        let het = HeterogeneousWorkload::paper()
            .sample_population(10_000, &mut rng)
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = crate::workload::WorkloadConfig::paper()
            .sample_population(10_000, &mut rng)
            .unwrap();
        let mean = |p: &Population| p.iter().map(|u| u.unit_cost()).sum::<f64>() / p.len() as f64;
        assert!((mean(&het) - mean(&cfg)).abs() < 0.2);
    }

    #[test]
    fn empty_type_count_rejected() {
        let workload = HeterogeneousWorkload {
            num_types: 0,
            capacity_max: 1,
            cost: CostModel::paper(),
        };
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(workload.sample_population(10, &mut rng).is_err());
    }
}
