//! Validation errors for model construction.

use std::error::Error;
use std::fmt;

use crate::TaskTypeId;

/// Error returned when constructing an invalid model value.
///
/// All constructors in this crate validate their arguments (prices and costs
/// must be positive and finite, quantities positive, task types in range) so
/// that downstream mechanism code can rely on these invariants without
/// re-checking.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A unit price or unit cost was not a positive, finite number.
    NonPositivePrice {
        /// The offending value.
        value: f64,
    },
    /// A claimed quantity or capacity was zero.
    ZeroQuantity,
    /// A job had no task types at all.
    EmptyJob,
    /// A task-type id referenced a type outside the job's range.
    TypeOutOfRange {
        /// The offending task type.
        task_type: TaskTypeId,
        /// The number of task types available.
        num_types: usize,
    },
    /// An ask claimed more tasks than the user's capacity allows.
    QuantityExceedsCapacity {
        /// Claimed quantity `kⱼ`.
        quantity: u64,
        /// True capacity `Kⱼ`.
        capacity: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositivePrice { value } => {
                write!(f, "price must be positive and finite, got {value}")
            }
            Self::ZeroQuantity => write!(f, "quantity must be at least 1"),
            Self::EmptyJob => write!(f, "job must contain at least one task type"),
            Self::TypeOutOfRange {
                task_type,
                num_types,
            } => write!(
                f,
                "task type {task_type} out of range for a job with {num_types} types"
            ),
            Self::QuantityExceedsCapacity { quantity, capacity } => write!(
                f,
                "claimed quantity {quantity} exceeds user capacity {capacity}"
            ),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty_lowercase_messages() {
        let errors = [
            ModelError::NonPositivePrice { value: -1.0 },
            ModelError::ZeroQuantity,
            ModelError::EmptyJob,
            ModelError::TypeOutOfRange {
                task_type: TaskTypeId::new(9),
                num_types: 3,
            },
            ModelError::QuantityExceedsCapacity {
                quantity: 5,
                capacity: 3,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ModelError>();
    }
}
