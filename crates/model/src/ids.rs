//! Strongly-typed identifiers for task types and users.

use std::fmt;

/// Identifier of a task type `τᵢ` (an index into the job's type list).
///
/// The paper groups sensing tasks by geographic area; each area is one task
/// type and each point of interest one task. A `TaskTypeId` is a plain index
/// `0 ‥ m−1` wrapped in a newtype so it cannot be confused with a user index
/// or a raw count.
///
/// ```
/// use rit_model::TaskTypeId;
/// let t = TaskTypeId::new(3);
/// assert_eq!(t.index(), 3);
/// assert_eq!(t.to_string(), "τ3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskTypeId(u32);

impl TaskTypeId {
    /// Creates a task-type id from its zero-based index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the zero-based index of this task type.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honors width/alignment flags (`{:<7}` etc.).
        f.pad(&format!("τ{}", self.0))
    }
}

impl From<u32> for TaskTypeId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

/// Identifier of a crowdsensing user `Pⱼ` (zero-based).
///
/// User ids index the population vector and the per-user ask/payment vectors
/// produced by the mechanism. The paper indexes users from 1 (`P₁ … P_N`);
/// we use zero-based indices internally and render them one-based in
/// `Display` to match the paper's notation.
///
/// ```
/// use rit_model::UserId;
/// let u = UserId::new(0);
/// assert_eq!(u.to_string(), "P1");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct UserId(u32);

impl UserId {
    /// Creates a user id from its zero-based index.
    #[must_use]
    pub const fn new(index: u32) -> Self {
        Self(index)
    }

    /// Returns the zero-based index of this user.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(&format!("P{}", self.0 + 1))
    }
}

impl From<u32> for UserId {
    fn from(index: u32) -> Self {
        Self::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn task_type_id_round_trips_index() {
        for i in [0u32, 1, 9, 4096] {
            let t = TaskTypeId::new(i);
            assert_eq!(t.index(), i as usize);
            assert_eq!(t.raw(), i);
            assert_eq!(TaskTypeId::from(i), t);
        }
    }

    #[test]
    fn user_id_round_trips_index() {
        for i in [0u32, 1, 9, 4096] {
            let u = UserId::new(i);
            assert_eq!(u.index(), i as usize);
            assert_eq!(UserId::from(i), u);
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(TaskTypeId::new(0).to_string(), "τ0");
        assert_eq!(UserId::new(0).to_string(), "P1");
        assert_eq!(UserId::new(28).to_string(), "P29");
    }

    #[test]
    fn display_honors_width_flags() {
        assert_eq!(format!("{:<5}", TaskTypeId::new(7)), "τ7   ");
        assert_eq!(format!("{:>5}", UserId::new(0)), "   P1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(TaskTypeId::new(1) < TaskTypeId::new(2));
        assert!(UserId::new(1) < UserId::new(2));
        let set: HashSet<UserId> = [UserId::new(1), UserId::new(1)].into_iter().collect();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", TaskTypeId::default()).is_empty());
        assert!(!format!("{:?}", UserId::default()).is_empty());
    }
}
