//! The sensing job `J`: a multi-subset of task types.

use std::fmt;

use crate::{ModelError, TaskTypeId};

/// A sensing job `J` posted by the crowdsensing platform.
///
/// A job is a multi-subset of the `m` task types: `mᵢ` is the number of tasks
/// requested in type `τᵢ`. The job is *finished* if and only if every
/// requested task has been completed (paper §3-A). For instance
/// `J = {τ₀, τ₁, τ₂, τ₂}` has `m = 3`, `m₀ = m₁ = 1`, `m₂ = 2`.
///
/// ```
/// use rit_model::{Job, TaskTypeId};
///
/// let job: Job = [TaskTypeId::new(0), TaskTypeId::new(2), TaskTypeId::new(2)]
///     .into_iter()
///     .collect();
/// assert_eq!(job.num_types(), 3);
/// assert_eq!(job.tasks_of(TaskTypeId::new(2)), 2);
/// assert_eq!(job.tasks_of(TaskTypeId::new(1)), 0);
/// assert_eq!(job.total_tasks(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Job {
    counts: Vec<u64>,
}

impl Job {
    /// Creates a job from per-type task counts: `counts[i] = mᵢ`.
    ///
    /// Types with zero requested tasks are allowed (they are trivially
    /// complete), but the job must have at least one type.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyJob`] if `counts` is empty.
    pub fn from_counts(counts: Vec<u64>) -> Result<Self, ModelError> {
        if counts.is_empty() {
            return Err(ModelError::EmptyJob);
        }
        Ok(Self { counts })
    }

    /// Creates a job requesting `tasks_per_type` tasks in each of
    /// `num_types` types — the homogeneous shape used throughout the paper's
    /// evaluation (e.g. `m = 10`, `mᵢ = 5000`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyJob`] if `num_types` is zero.
    pub fn uniform(num_types: usize, tasks_per_type: u64) -> Result<Self, ModelError> {
        Self::from_counts(vec![tasks_per_type; num_types])
    }

    /// The number of task types `m`.
    #[must_use]
    pub fn num_types(&self) -> usize {
        self.counts.len()
    }

    /// The number of tasks `mᵢ` requested in type `task_type`.
    ///
    /// Returns 0 for types outside the job's range.
    #[must_use]
    pub fn tasks_of(&self, task_type: TaskTypeId) -> u64 {
        self.counts.get(task_type.index()).copied().unwrap_or(0)
    }

    /// The total number of tasks `|J| = Σᵢ mᵢ`.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the job requests no tasks at all.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Whether `task_type` indexes one of this job's types.
    #[must_use]
    pub fn contains_type(&self, task_type: TaskTypeId) -> bool {
        task_type.index() < self.counts.len()
    }

    /// Iterates over `(τᵢ, mᵢ)` pairs in type order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskTypeId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (TaskTypeId::new(i as u32), c))
    }

    /// Iterates over the task types (including those with zero tasks).
    pub fn types(&self) -> impl Iterator<Item = TaskTypeId> + '_ {
        (0..self.counts.len() as u32).map(TaskTypeId::new)
    }

    /// The per-type counts as a slice (`counts[i] = mᵢ`).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{{")?;
        for (i, (t, c)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}×{c}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TaskTypeId> for Job {
    /// Builds a job from a multiset of task types, as in the paper's
    /// `J = {τ₁, τ₂, τ₃, τ₃}` notation. The number of types is one more than
    /// the largest index seen.
    fn from_iter<I: IntoIterator<Item = TaskTypeId>>(iter: I) -> Self {
        let mut counts: Vec<u64> = Vec::new();
        for t in iter {
            if t.index() >= counts.len() {
                counts.resize(t.index() + 1, 0);
            }
            counts[t.index()] += 1;
        }
        if counts.is_empty() {
            counts.push(0);
        }
        Self { counts }
    }
}

impl Extend<TaskTypeId> for Job {
    fn extend<I: IntoIterator<Item = TaskTypeId>>(&mut self, iter: I) {
        for t in iter {
            if t.index() >= self.counts.len() {
                self.counts.resize(t.index() + 1, 0);
            }
            self.counts[t.index()] += 1;
        }
    }
}

/// Incremental builder for [`Job`] values.
///
/// ```
/// use rit_model::{JobBuilder, TaskTypeId};
///
/// let job = JobBuilder::new()
///     .tasks(TaskTypeId::new(0), 5)
///     .tasks(TaskTypeId::new(1), 3)
///     .build()?;
/// assert_eq!(job.total_tasks(), 8);
/// # Ok::<(), rit_model::ModelError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct JobBuilder {
    counts: Vec<u64>,
}

impl JobBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `count` tasks of `task_type`, growing the type range if needed.
    #[must_use]
    pub fn tasks(mut self, task_type: TaskTypeId, count: u64) -> Self {
        if task_type.index() >= self.counts.len() {
            self.counts.resize(task_type.index() + 1, 0);
        }
        self.counts[task_type.index()] += count;
        self
    }

    /// Finalizes the job.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyJob`] if no type was ever mentioned.
    pub fn build(self) -> Result<Job, ModelError> {
        Job::from_counts(self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_rejects_empty() {
        assert_eq!(Job::from_counts(vec![]), Err(ModelError::EmptyJob));
    }

    #[test]
    fn uniform_job_matches_paper_setup() {
        let job = Job::uniform(10, 5000).unwrap();
        assert_eq!(job.num_types(), 10);
        assert_eq!(job.total_tasks(), 50_000);
        for t in job.types() {
            assert_eq!(job.tasks_of(t), 5000);
        }
    }

    #[test]
    fn paper_example_multiset() {
        // J = {τ₁, τ₂, τ₃, τ₃} from §3-A (0-based here).
        let job: Job = [0u32, 1, 2, 2].into_iter().map(TaskTypeId::new).collect();
        assert_eq!(job.num_types(), 3);
        assert_eq!(job.counts(), &[1, 1, 2]);
    }

    #[test]
    fn tasks_of_out_of_range_is_zero() {
        let job = Job::uniform(2, 3).unwrap();
        assert_eq!(job.tasks_of(TaskTypeId::new(99)), 0);
        assert!(!job.contains_type(TaskTypeId::new(2)));
        assert!(job.contains_type(TaskTypeId::new(1)));
    }

    #[test]
    fn trivial_job_detection() {
        assert!(Job::from_counts(vec![0, 0]).unwrap().is_trivial());
        assert!(!Job::from_counts(vec![0, 1]).unwrap().is_trivial());
    }

    #[test]
    fn extend_accumulates() {
        let mut job = Job::uniform(1, 1).unwrap();
        job.extend([TaskTypeId::new(0), TaskTypeId::new(3)]);
        assert_eq!(job.counts(), &[2, 0, 0, 1]);
    }

    #[test]
    fn builder_accumulates_same_type() {
        let job = JobBuilder::new()
            .tasks(TaskTypeId::new(1), 2)
            .tasks(TaskTypeId::new(1), 3)
            .build()
            .unwrap();
        assert_eq!(job.tasks_of(TaskTypeId::new(1)), 5);
        assert_eq!(job.tasks_of(TaskTypeId::new(0)), 0);
    }

    #[test]
    fn builder_empty_fails() {
        assert_eq!(JobBuilder::new().build(), Err(ModelError::EmptyJob));
    }

    #[test]
    fn display_lists_types() {
        let job = Job::from_counts(vec![1, 2]).unwrap();
        assert_eq!(job.to_string(), "J{τ0×1, τ1×2}");
    }

    #[test]
    fn from_iter_empty_yields_single_empty_type() {
        let job: Job = std::iter::empty::<TaskTypeId>().collect();
        assert_eq!(job.num_types(), 1);
        assert!(job.is_trivial());
    }
}
