//! Crowdsensing domain model for the RIT mechanism.
//!
//! This crate defines the vocabulary types shared by every other crate in the
//! workspace, mirroring Section 3-A of *"Robust Incentive Tree Design for
//! Mobile Crowdsensing"* (Zhang, Xue, Yu, Yang, Tang — ICDCS 2017):
//!
//! * a sensing [`Job`] `J`, described as a multi-subset of `m` task types
//!   `τ₁ … τ_m` (each type groups the tasks of one geographic area, each task
//!   one point of interest);
//! * crowdsensing users, each with a *private* [`UserProfile`] — a task type
//!   `tⱼ`, a capacity `Kⱼ` (the most tasks the user can physically complete)
//!   and a unit cost `cⱼ`;
//! * sealed-bid [`Ask`]s `(tⱼ, kⱼ, aⱼ)` submitted to the platform, where
//!   `kⱼ ≤ Kⱼ` is the claimed quantity and `aⱼ` the claimed unit price;
//! * the §7-A synthetic [`workload`] distributions used by the paper's
//!   evaluation.
//!
//! # Example
//!
//! ```
//! use rit_model::{Job, TaskTypeId, UserProfile};
//!
//! // A job needing 1 task of type τ₀ and 2 tasks of type τ₁.
//! let job = Job::from_counts(vec![1, 2])?;
//! assert_eq!(job.num_types(), 2);
//! assert_eq!(job.total_tasks(), 3);
//!
//! // A user able to complete up to 3 tasks of type τ₁ at unit cost 2.5.
//! let user = UserProfile::new(TaskTypeId::new(1), 3, 2.5)?;
//! let ask = user.truthful_ask();
//! assert_eq!(ask.quantity(), 3);
//! # Ok::<(), rit_model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ask;
pub mod distributions;
mod error;
mod ids;
mod job;
mod user;
pub mod workload;

pub use ask::{Ask, AskProfile};
pub use error::ModelError;
pub use ids::{TaskTypeId, UserId};
pub use job::{Job, JobBuilder};
pub use user::{Population, UserProfile};
