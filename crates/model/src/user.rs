//! Private user profiles and populations.

use std::fmt;

use crate::{Ask, ModelError, TaskTypeId};

/// The private type/capacity/cost profile of a crowdsensing user `Pⱼ`
/// (paper §3-A).
///
/// * `task_type` — the one area `tⱼ` the user can sense during the job's time
///   window;
/// * `capacity` — `Kⱼ ≥ 1`, the true maximum number of tasks the user can
///   complete;
/// * `unit_cost` — `cⱼ > 0`, the true cost (battery, time, privacy) of
///   completing one task.
///
/// The profile is private to the user; the platform only ever sees the
/// submitted [`Ask`]. [`UserProfile::truthful_ask`] produces the honest
/// revelation `(tⱼ, Kⱼ, cⱼ)` that RIT incentivizes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UserProfile {
    task_type: TaskTypeId,
    capacity: u64,
    unit_cost: f64,
}

impl UserProfile {
    /// Creates a validated profile.
    ///
    /// # Errors
    ///
    /// * [`ModelError::ZeroQuantity`] if `capacity == 0`;
    /// * [`ModelError::NonPositivePrice`] if `unit_cost` is not positive and
    ///   finite.
    pub fn new(task_type: TaskTypeId, capacity: u64, unit_cost: f64) -> Result<Self, ModelError> {
        if capacity == 0 {
            return Err(ModelError::ZeroQuantity);
        }
        if !(unit_cost.is_finite() && unit_cost > 0.0) {
            return Err(ModelError::NonPositivePrice { value: unit_cost });
        }
        Ok(Self {
            task_type,
            capacity,
            unit_cost,
        })
    }

    /// The user's task type `tⱼ`.
    #[must_use]
    pub const fn task_type(&self) -> TaskTypeId {
        self.task_type
    }

    /// The true capacity `Kⱼ`.
    #[must_use]
    pub const fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The true unit cost `cⱼ`.
    #[must_use]
    pub const fn unit_cost(&self) -> f64 {
        self.unit_cost
    }

    /// The truthful ask `(tⱼ, Kⱼ, cⱼ)`.
    #[must_use]
    pub fn truthful_ask(&self) -> Ask {
        Ask::new(self.task_type, self.capacity, self.unit_cost)
            .expect("profile invariants imply a valid ask")
    }

    /// An ask with the true type and capacity but a deviating unit price —
    /// the untruthful-bidding deviation studied in Fig 9.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositivePrice`] if `unit_price` is invalid.
    pub fn ask_with_price(&self, unit_price: f64) -> Result<Ask, ModelError> {
        Ask::new(self.task_type, self.capacity, unit_price)
    }

    /// Validates that `ask` does not exceed this user's physical capability:
    /// same type and `kⱼ ≤ Kⱼ` (the paper assumes users cannot claim more
    /// than they can deliver).
    ///
    /// # Errors
    ///
    /// * [`ModelError::TypeOutOfRange`] is **not** used here; a mismatched
    ///   type is reported as [`ModelError::QuantityExceedsCapacity`] with a
    ///   zero effective capacity, since a user has no capacity outside its
    ///   own type.
    pub fn check_ask(&self, ask: &Ask) -> Result<(), ModelError> {
        let effective_capacity = if ask.task_type() == self.task_type {
            self.capacity
        } else {
            0
        };
        if ask.quantity() > effective_capacity {
            return Err(ModelError::QuantityExceedsCapacity {
                quantity: ask.quantity(),
                capacity: effective_capacity,
            });
        }
        Ok(())
    }

    /// The user's quasi-linear utility: `payment − tasks_completed · cⱼ`
    /// (paper Eq. for `Uⱼ`).
    #[must_use]
    pub fn utility(&self, payment: f64, tasks_completed: u64) -> f64 {
        payment - tasks_completed as f64 * self.unit_cost
    }
}

impl fmt::Display for UserProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "user(type={}, K={}, c={})",
            self.task_type, self.capacity, self.unit_cost
        )
    }
}

/// A population of crowdsensing users, indexed by [`crate::UserId`].
///
/// ```
/// use rit_model::{Population, TaskTypeId, UserProfile};
///
/// let pop: Population = vec![
///     UserProfile::new(TaskTypeId::new(0), 2, 1.0)?,
///     UserProfile::new(TaskTypeId::new(1), 5, 2.0)?,
/// ]
/// .into_iter()
/// .collect();
/// assert_eq!(pop.len(), 2);
/// assert_eq!(pop.k_max(), 5);
/// # Ok::<(), rit_model::ModelError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Population {
    users: Vec<UserProfile>,
}

impl Population {
    /// Creates an empty population.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a population from a vector of profiles (user-id order).
    #[must_use]
    pub fn from_vec(users: Vec<UserProfile>) -> Self {
        Self { users }
    }

    /// Number of users `n`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The profile at `index`, if present.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&UserProfile> {
        self.users.get(index)
    }

    /// Appends a user, returning its index.
    pub fn push(&mut self, user: UserProfile) -> usize {
        self.users.push(user);
        self.users.len() - 1
    }

    /// Iterates over profiles in user-id order.
    pub fn iter(&self) -> impl Iterator<Item = &UserProfile> {
        self.users.iter()
    }

    /// The profiles as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[UserProfile] {
        &self.users
    }

    /// `K_max = max_j Kⱼ` (0 for an empty population), the coalition-size
    /// bound used throughout the paper: a user with capacity `Kⱼ` can create
    /// at most `Kⱼ` fake identities, each claiming at least one task.
    #[must_use]
    pub fn k_max(&self) -> u64 {
        self.users
            .iter()
            .map(UserProfile::capacity)
            .max()
            .unwrap_or(0)
    }

    /// Total true capacity available for one task type:
    /// `Σ{Kⱼ : tⱼ = τ}`.
    #[must_use]
    pub fn capacity_of_type(&self, task_type: TaskTypeId) -> u64 {
        self.users
            .iter()
            .filter(|u| u.task_type() == task_type)
            .map(UserProfile::capacity)
            .sum()
    }

    /// The truthful ask profile `(tⱼ, Kⱼ, cⱼ)` for every user.
    #[must_use]
    pub fn truthful_asks(&self) -> crate::AskProfile {
        self.users.iter().map(UserProfile::truthful_ask).collect()
    }
}

impl std::ops::Index<usize> for Population {
    type Output = UserProfile;

    fn index(&self, index: usize) -> &UserProfile {
        &self.users[index]
    }
}

impl FromIterator<UserProfile> for Population {
    fn from_iter<I: IntoIterator<Item = UserProfile>>(iter: I) -> Self {
        Self {
            users: iter.into_iter().collect(),
        }
    }
}

impl Extend<UserProfile> for Population {
    fn extend<I: IntoIterator<Item = UserProfile>>(&mut self, iter: I) {
        self.users.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Population {
    type Item = &'a UserProfile;
    type IntoIter = std::slice::Iter<'a, UserProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.users.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    #[test]
    fn profile_validates() {
        assert!(UserProfile::new(t(0), 0, 1.0).is_err());
        assert!(UserProfile::new(t(0), 1, 0.0).is_err());
        assert!(UserProfile::new(t(0), 1, f64::NAN).is_err());
        assert!(UserProfile::new(t(0), 1, 0.5).is_ok());
    }

    #[test]
    fn truthful_ask_reveals_profile() {
        let u = UserProfile::new(t(3), 7, 2.25).unwrap();
        let a = u.truthful_ask();
        assert_eq!(a.task_type(), t(3));
        assert_eq!(a.quantity(), 7);
        assert_eq!(a.unit_price(), 2.25);
    }

    #[test]
    fn check_ask_enforces_capability() {
        let u = UserProfile::new(t(0), 3, 1.0).unwrap();
        assert!(u.check_ask(&Ask::new(t(0), 3, 9.0).unwrap()).is_ok());
        assert!(u.check_ask(&Ask::new(t(0), 4, 9.0).unwrap()).is_err());
        // Wrong type: no capacity at all.
        assert!(u.check_ask(&Ask::new(t(1), 1, 9.0).unwrap()).is_err());
    }

    #[test]
    fn utility_is_quasilinear() {
        let u = UserProfile::new(t(0), 5, 2.0).unwrap();
        assert_eq!(u.utility(10.0, 3), 4.0);
        assert_eq!(u.utility(0.0, 0), 0.0);
        assert!(u.utility(1.0, 3) < 0.0);
    }

    #[test]
    fn population_k_max_and_type_capacity() {
        let pop: Population = vec![
            UserProfile::new(t(0), 2, 1.0).unwrap(),
            UserProfile::new(t(1), 5, 2.0).unwrap(),
            UserProfile::new(t(0), 3, 3.0).unwrap(),
        ]
        .into_iter()
        .collect();
        assert_eq!(pop.k_max(), 5);
        assert_eq!(pop.capacity_of_type(t(0)), 5);
        assert_eq!(pop.capacity_of_type(t(1)), 5);
        assert_eq!(pop.capacity_of_type(t(2)), 0);
    }

    #[test]
    fn empty_population() {
        let pop = Population::new();
        assert!(pop.is_empty());
        assert_eq!(pop.k_max(), 0);
        assert!(pop.get(0).is_none());
        assert!(pop.truthful_asks().is_empty());
    }

    #[test]
    fn truthful_asks_align_with_users() {
        let mut pop = Population::new();
        let idx = pop.push(UserProfile::new(t(1), 4, 1.5).unwrap());
        assert_eq!(idx, 0);
        let asks = pop.truthful_asks();
        assert_eq!(asks.len(), 1);
        assert_eq!(asks[0].task_type(), t(1));
    }

    #[test]
    fn display_is_informative() {
        let u = UserProfile::new(t(0), 5, 2.0).unwrap();
        assert_eq!(u.to_string(), "user(type=τ0, K=5, c=2)");
    }
}
