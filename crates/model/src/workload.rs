//! Synthetic workload generation matching the paper's §7-A simulation setup.
//!
//! The evaluation in the paper draws, for each user `Pⱼ`:
//!
//! * the task type `tⱼ` uniformly among the `m = 10` types,
//! * the capacity `kⱼ` uniformly over `(0, 20]` (interpreted here as the
//!   integers `1 ..= 20`, since tasks are indivisible),
//! * the unit cost `cⱼ = aⱼ` uniformly over `(0, 10]`.
//!
//! [`WorkloadConfig`] captures these parameters; [`WorkloadConfig::sample_population`]
//! draws a [`Population`] from any [`rand::Rng`]. All randomness flows through
//! caller-supplied RNGs so experiments stay reproducible from a seed.

use rand::Rng;

use crate::{ModelError, Population, TaskTypeId, UserProfile};

/// Parameters of the §7-A user-population distribution.
///
/// ```
/// use rand::SeedableRng;
/// use rit_model::workload::WorkloadConfig;
///
/// let config = WorkloadConfig::paper();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let pop = config.sample_population(1000, &mut rng)?;
/// assert_eq!(pop.len(), 1000);
/// assert!(pop.k_max() <= 20);
/// # Ok::<(), rit_model::ModelError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Number of task types `m` (types are drawn uniformly).
    pub num_types: usize,
    /// Maximum capacity: `Kⱼ ~ U{1 ..= capacity_max}`.
    pub capacity_max: u64,
    /// Maximum unit cost: `cⱼ ~ U(0, cost_max]`.
    pub cost_max: f64,
}

impl WorkloadConfig {
    /// The exact configuration of the paper's evaluation:
    /// `m = 10`, `Kⱼ ~ U{1..20}`, `cⱼ ~ U(0, 10]`.
    #[must_use]
    pub const fn paper() -> Self {
        Self {
            num_types: 10,
            capacity_max: 20,
            cost_max: 10.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyJob`] if `num_types == 0`;
    /// * [`ModelError::ZeroQuantity`] if `capacity_max == 0`;
    /// * [`ModelError::NonPositivePrice`] if `cost_max` is not positive and
    ///   finite.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.num_types == 0 {
            return Err(ModelError::EmptyJob);
        }
        if self.capacity_max == 0 {
            return Err(ModelError::ZeroQuantity);
        }
        if !(self.cost_max.is_finite() && self.cost_max > 0.0) {
            return Err(ModelError::NonPositivePrice {
                value: self.cost_max,
            });
        }
        Ok(())
    }

    /// Draws a single user profile.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors; a valid configuration
    /// always produces a valid profile.
    pub fn sample_user<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<UserProfile, ModelError> {
        self.validate()?;
        let task_type = TaskTypeId::new(rng.gen_range(0..self.num_types as u32));
        let capacity = rng.gen_range(1..=self.capacity_max);
        // U(0, cost_max]: reject exact zero draws (probability ~0, but the
        // paper's support excludes 0 and Ask/UserProfile require positivity).
        let unit_cost = loop {
            let c = rng.gen_range(0.0..self.cost_max) + f64::EPSILON * self.cost_max;
            if c > 0.0 && c <= self.cost_max {
                break c;
            }
        };
        UserProfile::new(task_type, capacity, unit_cost)
    }

    /// Draws a population of `n` users.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn sample_population<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Population, ModelError> {
        self.validate()?;
        let mut users = Vec::with_capacity(n);
        for _ in 0..n {
            users.push(self.sample_user(rng)?);
        }
        Ok(Population::from_vec(users))
    }
}

impl Default for WorkloadConfig {
    /// Defaults to the paper's configuration ([`WorkloadConfig::paper`]).
    fn default() -> Self {
        Self::paper()
    }
}

/// Draws per-type task counts `mᵢ ~ U{lo ..= hi}` — the Fig 9 job shape
/// (`mᵢ` uniformly distributed over `(100, 500]`).
///
/// # Errors
///
/// Returns [`ModelError::EmptyJob`] if `num_types == 0`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn sample_uniform_job<R: Rng + ?Sized>(
    num_types: usize,
    lo: u64,
    hi: u64,
    rng: &mut R,
) -> Result<crate::Job, ModelError> {
    assert!(lo <= hi, "empty task-count range {lo}..={hi}");
    let counts = (0..num_types).map(|_| rng.gen_range(lo..=hi)).collect();
    crate::Job::from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_is_valid() {
        WorkloadConfig::paper().validate().unwrap();
        assert_eq!(WorkloadConfig::default(), WorkloadConfig::paper());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = WorkloadConfig::paper();
        c.num_types = 0;
        assert!(c.validate().is_err());
        let mut c = WorkloadConfig::paper();
        c.capacity_max = 0;
        assert!(c.validate().is_err());
        let mut c = WorkloadConfig::paper();
        c.cost_max = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn samples_respect_support() {
        let config = WorkloadConfig::paper();
        let mut rng = SmallRng::seed_from_u64(42);
        let pop = config.sample_population(5000, &mut rng).unwrap();
        assert_eq!(pop.len(), 5000);
        for u in pop.iter() {
            assert!(u.task_type().index() < 10);
            assert!((1..=20).contains(&u.capacity()));
            assert!(u.unit_cost() > 0.0 && u.unit_cost() <= 10.0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let config = WorkloadConfig::paper();
        let a = config
            .sample_population(100, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let b = config
            .sample_population(100, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        let c = config
            .sample_population(100, &mut SmallRng::seed_from_u64(2))
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn all_types_eventually_sampled() {
        let config = WorkloadConfig::paper();
        let mut rng = SmallRng::seed_from_u64(3);
        let pop = config.sample_population(2000, &mut rng).unwrap();
        let mut seen = [false; 10];
        for u in pop.iter() {
            seen[u.task_type().index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "2000 draws should hit all 10 types"
        );
    }

    #[test]
    fn uniform_job_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let job = sample_uniform_job(10, 100, 500, &mut rng).unwrap();
        assert_eq!(job.num_types(), 10);
        for (_, c) in job.iter() {
            assert!((100..=500).contains(&c));
        }
    }

    #[test]
    fn uniform_job_degenerate_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let job = sample_uniform_job(3, 7, 7, &mut rng).unwrap();
        assert_eq!(job.counts(), &[7, 7, 7]);
    }
}
