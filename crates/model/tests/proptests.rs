//! Property-based tests of the domain model.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_model::distributions::{CostModel, HeterogeneousWorkload};
use rit_model::workload::WorkloadConfig;
use rit_model::{Ask, AskProfile, Job, TaskTypeId, UserProfile};

proptest! {
    #[test]
    fn job_from_multiset_counts_correctly(types in prop::collection::vec(0u32..16, 0..200)) {
        let job: Job = types.iter().copied().map(TaskTypeId::new).collect();
        // Total tasks equals the multiset size.
        prop_assert_eq!(job.total_tasks(), types.len() as u64);
        // Each type's count matches a direct tally.
        for t in 0..16u32 {
            let expected = types.iter().filter(|&&x| x == t).count() as u64;
            prop_assert_eq!(job.tasks_of(TaskTypeId::new(t)), expected);
        }
        // num_types covers the largest index mentioned.
        if let Some(&max) = types.iter().max() {
            prop_assert_eq!(job.num_types(), max as usize + 1);
        }
    }

    #[test]
    fn job_iter_round_trips_counts(counts in prop::collection::vec(0u64..50, 1..30)) {
        let job = Job::from_counts(counts.clone()).unwrap();
        let collected: Vec<u64> = job.iter().map(|(_, c)| c).collect();
        prop_assert_eq!(collected, counts.clone());
        prop_assert_eq!(job.types().count(), counts.len());
    }

    #[test]
    fn ask_constructors_accept_exactly_valid_inputs(
        t in 0u32..100,
        quantity in 0u64..100,
        price in -10.0f64..10.0,
    ) {
        let result = Ask::new(TaskTypeId::new(t), quantity, price);
        let should_be_valid = quantity > 0 && price > 0.0 && price.is_finite();
        prop_assert_eq!(result.is_ok(), should_be_valid);
    }

    #[test]
    fn truthful_ask_is_always_capacity_consistent(
        t in 0u32..10,
        capacity in 1u64..100,
        cost in 0.001f64..100.0,
    ) {
        let user = UserProfile::new(TaskTypeId::new(t), capacity, cost).unwrap();
        let ask = user.truthful_ask();
        prop_assert!(user.check_ask(&ask).is_ok());
        // Any quantity above the capacity must be rejected.
        let over = ask.with_quantity(capacity + 1).unwrap();
        prop_assert!(user.check_ask(&over).is_err());
    }

    #[test]
    fn utility_is_linear_in_payment_and_tasks(
        cost in 0.001f64..50.0,
        payment in 0.0f64..500.0,
        tasks in 0u64..20,
    ) {
        let user = UserProfile::new(TaskTypeId::new(0), 20, cost).unwrap();
        let u = user.utility(payment, tasks);
        prop_assert!((u - (payment - tasks as f64 * cost)).abs() < 1e-12);
        // More payment, same tasks ⇒ more utility.
        prop_assert!(user.utility(payment + 1.0, tasks) > u);
    }

    #[test]
    fn profile_aggregates_match_naive_tally(
        specs in prop::collection::vec((0u32..5, 1u64..10, 0.01f64..10.0), 0..50),
    ) {
        let profile: AskProfile = specs
            .iter()
            .map(|&(t, k, a)| Ask::new(TaskTypeId::new(t), k, a).unwrap())
            .collect();
        for t in 0..5u32 {
            let expected: u64 = specs.iter().filter(|s| s.0 == t).map(|s| s.1).sum();
            prop_assert_eq!(profile.claimed_quantity_of_type(TaskTypeId::new(t)), expected);
        }
        let expected_max = specs.iter().map(|s| s.1).max().unwrap_or(0);
        prop_assert_eq!(profile.max_quantity(), expected_max);
    }

    #[test]
    fn cost_models_always_sample_valid_costs(
        seed in any::<u64>(),
        mean in 0.1f64..20.0,
        cap in 1.0f64..50.0,
        p_high in 0.0f64..=1.0,
        sigma in 0.0f64..2.0,
    ) {
        let models = [
            CostModel::Uniform { max: cap },
            CostModel::Exponential { mean, cap },
            CostModel::Bimodal { low: 1.0, high: 1.0 + mean, p_high, jitter: 0.5 },
            CostModel::LogNormal { median: mean, sigma, cap },
        ];
        let mut rng = SmallRng::seed_from_u64(seed);
        for model in models {
            prop_assert!(model.validate().is_ok(), "{model:?}");
            for _ in 0..50 {
                let c = model.sample(&mut rng);
                prop_assert!(c.is_finite() && c > 0.0, "{model:?} gave {c}");
            }
        }
    }

    #[test]
    fn heterogeneous_populations_always_ask_validly(
        seed in any::<u64>(),
        n in 1usize..100,
        types in 1usize..8,
        k in 1u64..30,
    ) {
        let workload = HeterogeneousWorkload {
            num_types: types,
            capacity_max: k,
            cost: CostModel::Exponential { mean: 3.0, cap: 12.0 },
        };
        let mut rng = SmallRng::seed_from_u64(seed);
        let pop = workload.sample_population(n, &mut rng).unwrap();
        prop_assert_eq!(pop.len(), n);
        for u in pop.iter() {
            prop_assert!(u.task_type().index() < types);
            prop_assert!(u.capacity() >= 1 && u.capacity() <= k);
            prop_assert!(u.check_ask(&u.truthful_ask()).is_ok());
        }
    }

    #[test]
    fn workload_samples_always_valid(seed in any::<u64>(), n in 1usize..200) {
        let config = WorkloadConfig::paper();
        let mut rng = SmallRng::seed_from_u64(seed);
        let pop = config.sample_population(n, &mut rng).unwrap();
        prop_assert_eq!(pop.len(), n);
        prop_assert!(pop.k_max() >= 1 && pop.k_max() <= 20);
        for u in pop.iter() {
            prop_assert!(u.check_ask(&u.truthful_ask()).is_ok());
        }
    }
}
