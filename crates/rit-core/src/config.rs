//! Configuration of the RIT mechanism.

use rit_auction::bounds::{LogBase, WorstCaseQ};
use rit_auction::cra::SelectionRule;

use crate::RitError;

/// How many CRA rounds the auction phase may run per task type.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoundLimit {
    /// The paper's budget `max = ⌊log_β η⌋` (Algorithm 3, Line 7), with the
    /// per-round bound `β` evaluated at the `q` given by [`WorstCaseQ`].
    /// Running under this limit makes the mechanism `(K_max, H)`-truthful
    /// (Lemma 6.3); if the budget is unattainable (`β ≤ 0`),
    /// [`crate::Rit::run`] fails with [`RitError::GuaranteeInfeasible`].
    Paper(WorstCaseQ),
    /// A fixed per-type round cap, ignoring the truthfulness target. Useful
    /// for ablations.
    Fixed(u32),
    /// Run until the type is fully allocated, a hard cap is hit, or
    /// `max_stall` consecutive rounds allocate nothing. **No truthfulness
    /// guarantee** — this is the best-effort mode needed to reproduce the
    /// paper's Fig 9 setting, whose job sizes are too small for any positive
    /// paper budget (see DESIGN.md).
    UntilStall {
        /// Hard cap on total rounds per type.
        max_rounds: u32,
        /// Stop after this many consecutive zero-allocation rounds.
        max_stall: u32,
    },
}

impl RoundLimit {
    /// The best-effort default: up to 256 rounds, stopping after 8
    /// consecutive empty rounds.
    #[must_use]
    pub const fn until_stall() -> Self {
        Self::UntilStall {
            max_rounds: 256,
            max_stall: 8,
        }
    }
}

impl Default for RoundLimit {
    /// Defaults to the paper budget with the first-round bound
    /// (`q = mᵢ`) — the reading that reproduces the paper's evaluation
    /// scales; see [`WorstCaseQ`] and DESIGN.md.
    fn default() -> Self {
        Self::Paper(WorstCaseQ::default())
    }
}

/// Configuration of [`crate::Rit`].
///
/// ```
/// use rit_core::RitConfig;
///
/// let config = RitConfig { h: 0.9, ..RitConfig::default() };
/// assert!(config.validate().is_ok());
/// assert!(RitConfig { h: 1.0, ..RitConfig::default() }.validate().is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RitConfig {
    /// The target probability `H ∈ (0, 1)` with which the mechanism is
    /// truthful and sybil-proof (paper default: 0.8).
    pub h: f64,
    /// Base of the `log` in the Lemma 6.2 bound (default: base 10, matching
    /// the paper's Remark 6.1 numerics).
    pub log_base: LogBase,
    /// Per-type round budget policy.
    pub round_limit: RoundLimit,
    /// Coalition-size bound `K_max`. `None` (default) uses the largest
    /// claimed quantity in the submitted asks — the platform's only
    /// observable proxy for the largest true capacity. Set explicitly when
    /// the platform has outside knowledge of device limits.
    pub k_max_override: Option<u64>,
    /// How CRA selects winners among below-threshold asks. The default is
    /// the paper's rank rule (Line 7); [`SelectionRule::UniformEligible`]
    /// closes the residual bid-shading channel measured by the
    /// `bound_check` experiment (see EXPERIMENTS.md).
    pub selection_rule: SelectionRule,
}

impl RitConfig {
    /// The paper's evaluation configuration: `H = 0.8`, base-10 log,
    /// default round budget.
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    /// Checks that `H ∈ (0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`RitError::InvalidProbability`] otherwise.
    pub fn validate(&self) -> Result<(), RitError> {
        if !(self.h > 0.0 && self.h < 1.0) {
            return Err(RitError::InvalidProbability { h: self.h });
        }
        Ok(())
    }
}

impl Default for RitConfig {
    fn default() -> Self {
        Self {
            h: 0.8,
            log_base: LogBase::default(),
            round_limit: RoundLimit::default(),
            k_max_override: None,
            selection_rule: SelectionRule::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = RitConfig::default();
        assert_eq!(c.h, 0.8);
        assert_eq!(c.log_base, LogBase::Ten);
        assert_eq!(c.round_limit, RoundLimit::Paper(WorstCaseQ::FirstRound));
        assert_eq!(c.k_max_override, None);
        assert_eq!(c.selection_rule, SelectionRule::SmallestFirst);
        assert_eq!(c, RitConfig::paper());
    }

    #[test]
    fn validate_h_bounds() {
        for bad in [0.0, 1.0, -0.5, 2.0, f64::NAN] {
            let c = RitConfig {
                h: bad,
                ..RitConfig::default()
            };
            assert!(c.validate().is_err(), "H = {bad} should be rejected");
        }
        assert!(RitConfig {
            h: 0.99,
            ..RitConfig::default()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn until_stall_constants() {
        assert_eq!(
            RoundLimit::until_stall(),
            RoundLimit::UntilStall {
                max_rounds: 256,
                max_stall: 8
            }
        );
    }
}
