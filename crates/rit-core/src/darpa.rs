//! The MIT DARPA Network Challenge referral scheme (paper §1).
//!
//! The 2009 strategy that recruited ~4,400 participants in nine hours: a
//! balloon finder receives `W` ($2,000), its inviter `W/2`, the inviter's
//! inviter `W/4`, and so on up the referral chain. The paper's introduction
//! uses it as the canonical incentive tree that is **not sybil-proof**: Bob
//! the finder can split into Bob₁ (finder) and Bob₂ (Bob₁'s "inviter") to
//! collect `W + W/2` while demoting honest Alice from `W/2` to `W/4`.
//!
//! This module implements the scheme so that examples and benchmarks can
//! contrast it with RIT's geometric-in-*absolute-depth* weights, which kill
//! exactly this attack (Lemma 6.4).

use rit_model::{Ask, Job};
use rit_tree::IncentiveTree;

use crate::naive::kth_price_allocation;

/// Outcome of the DARPA-style referral mechanism (see [`run`]).
#[derive(Clone, Debug, PartialEq)]
pub struct DarpaOutcome {
    /// Tasks allocated per user.
    pub allocation: Vec<u64>,
    /// Direct rewards per user — the auction payments, playing the role of
    /// the challenge's per-balloon prize `W`.
    pub auction_payments: Vec<f64>,
    /// Final payments: direct reward plus `reward / 2^distance` for every
    /// descendant's reward.
    pub payments: Vec<f64>,
    /// Whether every task of the job was allocated. Like the naive §4
    /// combination (and unlike RIT), partial runs still pay.
    pub completed: bool,
}

impl DarpaOutcome {
    /// Quasi-linear utility of user `j` at true unit cost `c`.
    #[must_use]
    pub fn utility(&self, j: usize, unit_cost: f64) -> f64 {
        self.payments[j] - self.allocation[j] as f64 * unit_cost
    }
}

/// Runs the DARPA scheme end-to-end as a crowdsensing mechanism: tasks are
/// allocated by the same per-type `(mᵢ+1)`-st lowest price auction as the
/// naive §4 combination, the auction payments stand in for the challenge's
/// direct rewards, and the referral chain above each winner collects the
/// geometric `reward / 2^distance` bonuses ([`referral_payments`]).
///
/// Because the halving is relative to the *winner's* depth rather than the
/// absolute tree depth, the scheme is not sybil-proof — the classic Bob
/// split (§1) strictly gains — which is exactly what the cross-mechanism
/// attack battery demonstrates.
///
/// # Panics
///
/// Panics if `asks.len() != tree.num_users()`.
#[must_use]
pub fn run(job: &Job, tree: &IncentiveTree, asks: &[Ask]) -> DarpaOutcome {
    run_screened(job, tree, asks, None)
}

/// Like [`run`], with an optional eligibility mask: ineligible users
/// contribute no unit asks.
///
/// # Panics
///
/// Panics if `asks.len() != tree.num_users()`, or if a mask of a different
/// length is supplied.
#[must_use]
pub fn run_screened(
    job: &Job,
    tree: &IncentiveTree,
    asks: &[Ask],
    eligible: Option<&[bool]>,
) -> DarpaOutcome {
    let n = tree.num_users();
    assert_eq!(asks.len(), n, "asks must align with tree users");
    let (allocation, auction_payments) = kth_price_allocation(job, asks, eligible);
    let completed = allocation.iter().sum::<u64>() == job.total_tasks();
    let payments = referral_payments(tree, &auction_payments);
    DarpaOutcome {
        allocation,
        auction_payments,
        payments,
        completed,
    }
}

/// Computes the referral payments: each user receives its own reward plus
/// `reward / 2^distance` for every descendant's reward.
///
/// `rewards[j]` is the direct reward of tree node `j + 1` (e.g. `W` for each
/// balloon found by that user, 0 otherwise). Runs in O(N) via a post-order
/// accumulation: `S(v) = reward_v + ½·Σ_children S(c)` and `p_v = S(v)`.
///
/// ```
/// use rit_core::darpa::referral_payments;
/// use rit_tree::generate;
///
/// // root ─ Alice ─ Bob (found the $2,000 balloon).
/// let tree = generate::path(2);
/// assert_eq!(referral_payments(&tree, &[0.0, 2000.0]), vec![1000.0, 2000.0]);
/// ```
///
/// # Panics
///
/// Panics if `rewards.len() != tree.num_users()`.
#[must_use]
pub fn referral_payments(tree: &IncentiveTree, rewards: &[f64]) -> Vec<f64> {
    let n = tree.num_users();
    assert_eq!(rewards.len(), n, "rewards must align with tree users");
    let mut s = rewards.to_vec();
    // Reverse preorder: every child is processed before its parent.
    for &node in tree.preorder().iter().rev() {
        let Some(u) = node.user_index() else { continue };
        if let Some(parent) = tree.parent(node) {
            if let Some(pu) = parent.user_index() {
                s[pu] += 0.5 * s[u];
            }
        }
    }
    s
}

/// Total payout of the scheme — the platform's liability.
#[must_use]
pub fn total_payout(tree: &IncentiveTree, rewards: &[f64]) -> f64 {
    referral_payments(tree, rewards).iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_tree::{generate, IncentiveTree, NodeId};

    #[test]
    fn bob_and_alice_paper_example() {
        // root ─ Alice ─ Bob(finder, $2000): Bob $2000, Alice $1000.
        let tree = generate::path(2);
        let p = referral_payments(&tree, &[0.0, 2000.0]);
        assert_eq!(p, vec![1000.0, 2000.0]);
    }

    #[test]
    fn bob_sybil_attack_pays_3000() {
        // root ─ Alice ─ Bob₂ ─ Bob₁(finder): Bob₁ $2000, Bob₂ $1000,
        // Alice $500 — the §1 story, verbatim.
        let tree = generate::path(3);
        let p = referral_payments(&tree, &[0.0, 0.0, 2000.0]);
        assert_eq!(p, vec![500.0, 1000.0, 2000.0]);
        // Bob's identities: users 1 and 2 → $3000 total vs $2000 honest.
        assert_eq!(p[1] + p[2], 3000.0);
    }

    #[test]
    fn branching_chains_sum_independently() {
        // root ─ P1 ─ {P2(finder 8), P3(finder 4)}.
        let tree =
            IncentiveTree::from_parents(&[NodeId::ROOT, NodeId::new(1), NodeId::new(1)]).unwrap();
        let p = referral_payments(&tree, &[0.0, 8.0, 4.0]);
        assert_eq!(p, vec![6.0, 8.0, 4.0]);
    }

    #[test]
    fn total_payout_bounded_by_twice_rewards() {
        // Geometric halving: total ≤ 2 × direct rewards.
        let mut rng = rand::rngs::mock::StepRng::new(3, 7);
        let tree = generate::uniform_recursive(300, &mut rng);
        let rewards: Vec<f64> = (0..300).map(|i| (i % 5) as f64).collect();
        let total = total_payout(&tree, &rewards);
        let direct: f64 = rewards.iter().sum();
        assert!(total >= direct);
        assert!(total <= 2.0 * direct);
    }

    #[test]
    fn empty_tree() {
        let tree = IncentiveTree::platform_only();
        assert!(referral_payments(&tree, &[]).is_empty());
        assert_eq!(total_payout(&tree, &[]), 0.0);
    }
}
