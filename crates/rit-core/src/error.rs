//! Errors of the RIT mechanism.

use std::error::Error;
use std::fmt;

use rit_adversary::AdversaryError;
use rit_model::{ModelError, TaskTypeId};
use rit_tree::TreeError;

/// Error returned by [`crate::Rit`] and related mechanisms.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RitError {
    /// `H` was outside the open interval `(0, 1)`.
    InvalidProbability {
        /// The offending value.
        h: f64,
    },
    /// The ask vector length does not match the tree's user count.
    AskCountMismatch {
        /// Number of asks supplied.
        asks: usize,
        /// Number of user nodes in the incentive tree.
        users: usize,
    },
    /// The `(K_max, H)` guarantee is unattainable for a task type: the
    /// Lemma 6.2 bound is non-positive because the per-type job size is too
    /// small relative to the coalition bound (`2·K_max ≥ q + mᵢ`). Remark
    /// 6.1 requires the solicitation to recruit enough users first; choose a
    /// different [`crate::RoundLimit`] to run best-effort instead.
    GuaranteeInfeasible {
        /// The affected task type.
        task_type: TaskTypeId,
        /// Tasks requested in that type.
        tasks: u64,
        /// The coalition bound `K_max` in effect.
        k_max: u64,
    },
    /// A tree transformation failed.
    Tree(TreeError),
    /// A constructed ask or profile was invalid.
    Model(ModelError),
    /// A deviation of the adversary layer could not be applied (variants
    /// that map onto [`RitError::Tree`] / [`RitError::Model`] are converted
    /// to those instead).
    Adversary(AdversaryError),
}

impl fmt::Display for RitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidProbability { h } => {
                write!(f, "probability H must lie in (0, 1), got {h}")
            }
            Self::AskCountMismatch { asks, users } => {
                write!(f, "got {asks} asks for an incentive tree with {users} users")
            }
            Self::GuaranteeInfeasible {
                task_type,
                tasks,
                k_max,
            } => write!(
                f,
                "type {task_type} with {tasks} tasks cannot be (K_max = {k_max}, H)-truthful: job too small (Remark 6.1 needs 2·K_max < mᵢ)"
            ),
            Self::Tree(e) => write!(f, "tree transformation failed: {e}"),
            Self::Model(e) => write!(f, "invalid model input: {e}"),
            Self::Adversary(e) => write!(f, "deviation failed: {e}"),
        }
    }
}

impl Error for RitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Tree(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::Adversary(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for RitError {
    fn from(e: TreeError) -> Self {
        Self::Tree(e)
    }
}

impl From<ModelError> for RitError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<AdversaryError> for RitError {
    fn from(e: AdversaryError) -> Self {
        match e {
            AdversaryError::Tree(t) => Self::Tree(t),
            AdversaryError::Model(m) => Self::Model(m),
            other => Self::Adversary(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            RitError::InvalidProbability { h: 1.5 },
            RitError::AskCountMismatch { asks: 3, users: 5 },
            RitError::GuaranteeInfeasible {
                task_type: TaskTypeId::new(2),
                tasks: 10,
                k_max: 20,
            },
            RitError::Tree(TreeError::CannotAttackRoot),
            RitError::Model(ModelError::ZeroQuantity),
            RitError::Adversary(AdversaryError::UserOutOfRange { user: 9, users: 4 }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn tree_error_converts_and_sources() {
        let e: RitError = TreeError::CannotAttackRoot.into();
        assert!(e.source().is_some());
        assert!(RitError::InvalidProbability { h: 0.0 }.source().is_none());
    }

    #[test]
    fn adversary_errors_flatten_into_layer_variants() {
        // Tree/Model causes collapse into the native variants so callers
        // match one error shape regardless of which layer raised it.
        let t: RitError = AdversaryError::Tree(TreeError::CannotAttackRoot).into();
        assert_eq!(t, RitError::Tree(TreeError::CannotAttackRoot));
        let m: RitError = AdversaryError::Model(ModelError::ZeroQuantity).into();
        assert_eq!(m, RitError::Model(ModelError::ZeroQuantity));
        let a: RitError = AdversaryError::UserOutOfRange { user: 1, users: 0 }.into();
        assert!(matches!(a, RitError::Adversary(_)));
        assert!(a.source().is_some());
        let e: RitError = ModelError::ZeroQuantity.into();
        assert_eq!(e, RitError::Model(ModelError::ZeroQuantity));
    }
}
