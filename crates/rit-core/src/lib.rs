//! RIT — the Robust Incentive Tree mechanism for mobile crowdsensing.
//!
//! This crate is the primary contribution of *"Robust Incentive Tree Design
//! for Mobile Crowdsensing"* (Zhang, Xue, Yu, Yang, Tang — ICDCS 2017):
//! an incentive mechanism that pays crowdsensing users for **participation**
//! (completing sensing tasks, priced by a randomized collusion-resistant
//! auction) and for **solicitation** (recruiting further users, rewarded
//! through the incentive tree), while being
//!
//! * `(K_max, H)`-**truthful** — no coalition of up to `K_max` identities
//!   gains from misreporting costs, with probability at least the
//!   user-chosen `H ∈ (0, 1)` (Theorem 2);
//! * **sybil-proof** — splitting into fake identities never raises a user's
//!   total utility (Lemma 6.4 exactly, Theorem 2 jointly with truthfulness);
//! * **individually rational** (Theorem 1), **computationally efficient**
//!   (`O(N·|J|)`, Theorem 3), and **solicitation-incentivizing** (Theorem 4).
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use rit_core::{Rit, RitConfig, RoundLimit};
//! use rit_model::{Ask, Job, TaskTypeId};
//! use rit_tree::{IncentiveTreeBuilder, NodeId};
//!
//! // One task type needing 2 tasks; three users in a small referral chain.
//! // (A toy job this small cannot carry the (K_max, H) guarantee — Remark
//! // 6.1 needs mᵢ ≫ 2·K_max — so we run best-effort; see `RoundLimit`.)
//! let job = Job::from_counts(vec![2])?;
//! let mut b = IncentiveTreeBuilder::new();
//! let p1 = b.add_child(NodeId::ROOT);
//! let p2 = b.add_child(p1);
//! let _p3 = b.add_child(p2);
//! let tree = b.build();
//!
//! let t = TaskTypeId::new(0);
//! let asks = vec![
//!     Ask::new(t, 2, 2.0)?,
//!     Ask::new(t, 1, 3.0)?,
//!     Ask::new(t, 1, 5.0)?,
//! ];
//!
//! let config = RitConfig { round_limit: RoundLimit::until_stall(), ..RitConfig::default() };
//! let rit = Rit::new(config)?;
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let outcome = rit.run(&job, &tree, &asks, &mut rng)?;
//! // Either the job completed and every winner is paid at least its ask,
//! // or nothing is allocated and all payments are zero.
//! if outcome.completed() {
//!     assert_eq!(outcome.total_allocated(), 2);
//! } else {
//!     assert_eq!(outcome.total_payment(), 0.0);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Module map
//!
//! | module | paper artifact |
//! |---|---|
//! | [`rit`](crate::Rit) | Algorithm 3 (auction phase: rounds of CRA per type) |
//! | [`mechanism`] | the generic recruit→auction→payment pipeline over RIT and the baselines |
//! | [`payment`] | Algorithm 3, Lines 22–28 (payment determination) |
//! | [`config`] | `H`, log base, round-budget policy |
//! | [`outcome`] | `x`, `p^A`, `p`, utilities |
//! | [`observer`] | zero-cost hooks into the auction-phase engine loop |
//! | [`streams`] | per-type RNG streams for the parallel auction phase |
//! | [`workspace`] | reusable scratch buffers for allocation-free reruns |
//! | [`trace`] | per-round execution diagnostics of the auction phase |
//! | [`recruitment`] | Remark 6.1 solicitation thresholds |
//! | [`probes`] | Monte-Carlo deviation probes (adapters over [`rit_adversary`]) |
//! | [`quality`] | bid-independent quality screening (the paper's deferred direction) |
//! | [`referral`] | the referral-reward design space + split-resistance screen |
//! | [`sybil_exec`] | §3-B sybil attacks in mechanism terms (over [`rit_adversary`]) |
//! | [`naive`] | §4 naive auction+tree combination (counterexamples) |
//! | [`darpa`] | the MIT DARPA Network Challenge referral scheme (§1) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod darpa;
mod error;
pub mod mechanism;
pub mod naive;
pub mod observer;
pub mod outcome;
pub mod payment;
pub mod probes;
pub mod quality;
pub mod recruitment;
pub mod referral;
mod rit;
pub mod streams;
pub mod sybil_exec;
pub mod trace;
pub mod workspace;

pub use config::{RitConfig, RoundLimit};
pub use error::RitError;
pub use mechanism::{DarpaReferral, Mechanism, MechanismKind, MechanismOutcome, NaiveKthPriceTree};
pub use observer::{AuctionObserver, NoopObserver, ObserverChain};
pub use outcome::RitOutcome;
pub use rit::{AuctionPhaseResult, Rit};
pub use streams::RngMode;
pub use trace::TraceObserver;
pub use workspace::{PooledWorkspace, RitWorkspace, WorkspacePool};
