//! The generic recruit→auction→payment pipeline.
//!
//! The paper's claims are *comparative*: RIT is sybil-proof and
//! `(K_max, H)`-truthful where the §4 naive `k`-th-price + contribution-tree
//! combination and the DARPA geometric referral scheme (§1) are not. This
//! module makes that comparison a first-class citizen: [`Mechanism`]
//! abstracts "given a job, a solicitation tree and the users' asks, allocate
//! tasks and pay people" so that every driver above `rit-core` — the
//! simulation runners, the adversary battery, the CLI — is written once and
//! monomorphized per mechanism (no `dyn`, so RIT's allocation-free hot path
//! survives the abstraction; pinned by the `alloc_counting_mechanism`
//! integration test).
//!
//! Three implementations ship here:
//!
//! | impl | paper artifact |
//! |---|---|
//! | [`Rit`] | Algorithm 3, the paper's mechanism |
//! | [`NaiveKthPriceTree`] | §4 naive auction + contribution-tree strawman |
//! | [`DarpaReferral`] | §1 MIT DARPA Network Challenge referral scheme |
//!
//! Mechanism-specific outcomes ([`RitOutcome`], [`crate::naive::NaiveOutcome`],
//! [`crate::darpa::DarpaOutcome`]) are normalized into one
//! [`MechanismOutcome`] view — allocation, auction payments, final payments,
//! completion — which is all the comparison layers need. A further mechanism
//! (e.g. the generalized lottery trees of Zhao et al.) is a ~100-line impl,
//! not a fork of the stack.

use std::fmt;
use std::str::FromStr;

use rand::Rng;

use rit_model::{Ask, Job, UserProfile};
use rit_tree::IncentiveTree;

use crate::workspace::RitWorkspace;
use crate::{darpa, naive, Rit, RitError, RitOutcome};

/// An incentive mechanism: allocates a [`Job`]'s tasks over the users of an
/// [`IncentiveTree`] given their [`Ask`]s, and determines what each user is
/// paid.
///
/// Implementations are deterministic functions of `(job, tree, asks,
/// eligible, rng)`; all randomness flows through the caller-supplied `rng`
/// (the baselines draw none). The associated [`Workspace`](Self::Workspace)
/// carries reusable scratch capacity — never results — so per-worker
/// workspaces make replication sweeps allocation-free where the mechanism
/// supports it.
pub trait Mechanism {
    /// Mechanism parameters, validated at construction.
    type Config: Clone + fmt::Debug;
    /// The mechanism-specific outcome (diagnostics included).
    type Outcome;
    /// Reusable scratch buffers; `Default` must yield an empty (cold)
    /// workspace usable for any scenario size.
    type Workspace: Default;

    /// Which mechanism this is — the stable label used by CLIs, telemetry
    /// streams and report tables.
    fn kind(&self) -> MechanismKind;

    /// The active configuration.
    fn config(&self) -> &Self::Config;

    /// Runs the mechanism. `eligible`, when present, is a platform-side
    /// screening mask: `eligible[j] == false` removes user `j`'s asks from
    /// the auction (the user keeps its tree position for referral purposes).
    ///
    /// # Errors
    ///
    /// [`RitError::AskCountMismatch`] if `asks.len() != tree.num_users()`;
    /// implementations may add their own conditions (e.g.
    /// [`RitError::GuaranteeInfeasible`] for RIT's paper round budget).
    fn run_in<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        eligible: Option<&[bool]>,
        ws: &mut Self::Workspace,
        rng: &mut R,
    ) -> Result<Self::Outcome, RitError>;

    /// Normalizes a mechanism-specific outcome into the common
    /// [`MechanismOutcome`] view (moves the vectors — no copies).
    fn normalize(&self, outcome: Self::Outcome) -> MechanismOutcome;

    /// [`run_in`](Self::run_in) + [`normalize`](Self::normalize): the
    /// one-call form every generic driver uses.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_in`](Self::run_in).
    fn evaluate_in<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        eligible: Option<&[bool]>,
        ws: &mut Self::Workspace,
        rng: &mut R,
    ) -> Result<MechanismOutcome, RitError> {
        self.run_in(job, tree, asks, eligible, ws, rng)
            .map(|o| self.normalize(o))
    }

    /// [`evaluate_in`](Self::evaluate_in) with a fresh workspace and no
    /// screening mask — the convenience entry point for one-off runs.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_in`](Self::run_in).
    fn evaluate<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        rng: &mut R,
    ) -> Result<MechanismOutcome, RitError> {
        let mut ws = Self::Workspace::default();
        self.evaluate_in(job, tree, asks, None, &mut ws, rng)
    }
}

/// The stable identity of a [`Mechanism`] implementation — what `--mechanism`
/// flags parse into and what telemetry labels carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// The paper's mechanism (Algorithm 3).
    Rit,
    /// The §4 naive `k`-th-price auction + contribution tree.
    Naive,
    /// The §1 DARPA Network Challenge geometric referral scheme.
    Darpa,
}

impl MechanismKind {
    /// Every kind, in report order.
    pub const ALL: [Self; 3] = [Self::Rit, Self::Naive, Self::Darpa];

    /// The canonical lowercase label (`rit`, `naive`, `darpa`) — stable
    /// across releases; used in CLI flags, CSV columns and JSONL events.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Rit => "rit",
            Self::Naive => "naive",
            Self::Darpa => "darpa",
        }
    }
}

impl fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(self.label())
    }
}

impl FromStr for MechanismKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rit" => Ok(Self::Rit),
            "naive" => Ok(Self::Naive),
            "darpa" => Ok(Self::Darpa),
            other => Err(format!(
                "unknown mechanism `{other}` (expected rit, naive or darpa)"
            )),
        }
    }
}

/// The mechanism-agnostic view of an outcome: who performs how many tasks,
/// what the auction said they were worth, and what the platform actually
/// pays. Everything the comparison layers (campaigns, attack batteries,
/// `experiments compare`) consume.
#[derive(Clone, Debug, PartialEq)]
pub struct MechanismOutcome {
    completed: bool,
    allocation: Vec<u64>,
    auction_payments: Vec<f64>,
    payments: Vec<f64>,
}

impl MechanismOutcome {
    /// Assembles an outcome view; all three vectors must share one length
    /// (user count).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths disagree.
    #[must_use]
    pub fn new(
        completed: bool,
        allocation: Vec<u64>,
        auction_payments: Vec<f64>,
        payments: Vec<f64>,
    ) -> Self {
        assert_eq!(allocation.len(), auction_payments.len());
        assert_eq!(allocation.len(), payments.len());
        Self {
            completed,
            allocation,
            auction_payments,
            payments,
        }
    }

    /// Whether every task of the job was allocated. For RIT a `false` means
    /// the run was voided (Line 27: zero allocation, zero payments); the
    /// baselines keep their partial allocations and payments.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// Tasks allocated per user.
    #[must_use]
    pub fn allocation(&self) -> &[u64] {
        &self.allocation
    }

    /// Total number of allocated tasks `Σⱼ xⱼ`.
    #[must_use]
    pub fn total_allocated(&self) -> u64 {
        self.allocation.iter().sum()
    }

    /// The auction-phase payments `p^A` (each mechanism's notion of a user's
    /// direct task-performance worth, before any referral component).
    #[must_use]
    pub fn auction_payments(&self) -> &[f64] {
        &self.auction_payments
    }

    /// The final payments `p`: what the platform actually pays each user.
    #[must_use]
    pub fn payments(&self) -> &[f64] {
        &self.payments
    }

    /// The final payment of user `j`.
    #[must_use]
    pub fn payment(&self, j: usize) -> f64 {
        self.payments[j]
    }

    /// Total platform expenditure `Σⱼ pⱼ`.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        self.payments.iter().sum()
    }

    /// Total auction-phase expenditure `Σⱼ p^Aⱼ`.
    #[must_use]
    pub fn total_auction_payment(&self) -> f64 {
        self.auction_payments.iter().sum()
    }

    /// The quasi-linear utility `Uⱼ = pⱼ − xⱼ·cⱼ` of user `j` given its true
    /// unit cost.
    #[must_use]
    pub fn utility(&self, j: usize, unit_cost: f64) -> f64 {
        self.payments[j] - self.allocation[j] as f64 * unit_cost
    }

    /// All utilities, given the true population profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is shorter than the user count.
    #[must_use]
    pub fn utilities(&self, profiles: &[UserProfile]) -> Vec<f64> {
        assert!(
            profiles.len() >= self.payments.len(),
            "profiles shorter than payment vector"
        );
        (0..self.payments.len())
            .map(|j| self.utility(j, profiles[j].unit_cost()))
            .collect()
    }

    /// The referral/solicitation component of each payment, `pⱼ − p^Aⱼ`.
    /// Reported only for complete runs (matching
    /// [`RitOutcome::solicitation_rewards`]); zeros otherwise. Note the §4
    /// naive reward's `ln` term makes this component *negative* for some
    /// users — one symptom of that design's brokenness.
    #[must_use]
    pub fn solicitation_rewards(&self) -> Vec<f64> {
        if !self.completed {
            return vec![0.0; self.payments.len()];
        }
        self.payments
            .iter()
            .zip(&self.auction_payments)
            .map(|(&p, &pa)| p - pa)
            .collect()
    }
}

/// Bridges the normalized outcome into the adversary layer's evaluation
/// (moves the vectors, no copy).
impl From<MechanismOutcome> for rit_adversary::Evaluation {
    fn from(o: MechanismOutcome) -> Self {
        Self {
            payments: o.payments,
            allocation: o.allocation,
            completed: o.completed,
        }
    }
}

impl Mechanism for Rit {
    type Config = crate::RitConfig;
    type Outcome = RitOutcome;
    type Workspace = RitWorkspace;

    fn kind(&self) -> MechanismKind {
        MechanismKind::Rit
    }

    fn config(&self) -> &Self::Config {
        Rit::config(self)
    }

    /// Without a mask this is exactly [`Rit::run_with_workspace`] — same
    /// code path, same RNG draws, bit-identical outcome (pinned by the
    /// `mechanism_equivalence` integration test). With a mask, the screened
    /// users are dropped from the unit-ask table before the first CRA round,
    /// as in [`crate::quality`].
    fn run_in<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        eligible: Option<&[bool]>,
        ws: &mut Self::Workspace,
        rng: &mut R,
    ) -> Result<Self::Outcome, RitError> {
        match eligible {
            None => self.run_with_workspace(job, tree, asks, ws, rng),
            Some(mask) => {
                let n = tree.num_users();
                if asks.len() != n {
                    return Err(RitError::AskCountMismatch {
                        asks: asks.len(),
                        users: n,
                    });
                }
                let phase = self.auction_phase_with(
                    job,
                    asks,
                    Some(mask),
                    ws,
                    &mut crate::NoopObserver,
                    rng,
                )?;
                Ok(self.determine_final_payments(tree, asks, phase))
            }
        }
    }

    fn normalize(&self, outcome: Self::Outcome) -> MechanismOutcome {
        MechanismOutcome {
            completed: outcome.completed,
            allocation: outcome.allocation,
            auction_payments: outcome.auction_payments,
            payments: outcome.payments,
        }
    }
}

/// The §4 naive combination as a [`Mechanism`]: per-type `(mᵢ+1)`-st lowest
/// price auction ([`rit_auction::kth_price`]) + the contribution-based
/// incentive-tree reward, with auction payments as contributions
/// ([`naive::run`]). Deterministic — draws nothing from the RNG.
///
/// This is the paper's strawman: truthful auction, sybil-proof tree,
/// **broken composition** (neither property survives, Figs 2–3). Running it
/// through the same attack battery as RIT turns those counterexamples into
/// machine-checked `gain > 0` verdicts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NaiveKthPriceTree;

impl NaiveKthPriceTree {
    /// Creates the baseline (it has no parameters).
    #[must_use]
    pub const fn new() -> Self {
        Self
    }
}

impl Mechanism for NaiveKthPriceTree {
    type Config = ();
    type Outcome = naive::NaiveOutcome;
    type Workspace = ();

    fn kind(&self) -> MechanismKind {
        MechanismKind::Naive
    }

    fn config(&self) -> &Self::Config {
        &()
    }

    fn run_in<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        eligible: Option<&[bool]>,
        _ws: &mut Self::Workspace,
        _rng: &mut R,
    ) -> Result<Self::Outcome, RitError> {
        let n = tree.num_users();
        if asks.len() != n {
            return Err(RitError::AskCountMismatch {
                asks: asks.len(),
                users: n,
            });
        }
        Ok(naive::run_screened(job, tree, asks, eligible))
    }

    fn normalize(&self, outcome: Self::Outcome) -> MechanismOutcome {
        MechanismOutcome {
            completed: outcome.completed,
            allocation: outcome.allocation,
            auction_payments: outcome.auction_payments,
            payments: outcome.payments,
        }
    }
}

/// The §1 DARPA Network Challenge referral scheme as a [`Mechanism`]: tasks
/// allocated by the same `k`-th-price auction as [`NaiveKthPriceTree`], then
/// each winner's auction payment propagates up the referral chain with
/// geometric halving ([`darpa::run`]). Deterministic — draws nothing from
/// the RNG.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DarpaReferral;

impl DarpaReferral {
    /// Creates the baseline (it has no parameters).
    #[must_use]
    pub const fn new() -> Self {
        Self
    }
}

impl Mechanism for DarpaReferral {
    type Config = ();
    type Outcome = darpa::DarpaOutcome;
    type Workspace = ();

    fn kind(&self) -> MechanismKind {
        MechanismKind::Darpa
    }

    fn config(&self) -> &Self::Config {
        &()
    }

    fn run_in<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        eligible: Option<&[bool]>,
        _ws: &mut Self::Workspace,
        _rng: &mut R,
    ) -> Result<Self::Outcome, RitError> {
        let n = tree.num_users();
        if asks.len() != n {
            return Err(RitError::AskCountMismatch {
                asks: asks.len(),
                users: n,
            });
        }
        Ok(darpa::run_screened(job, tree, asks, eligible))
    }

    fn normalize(&self, outcome: Self::Outcome) -> MechanismOutcome {
        MechanismOutcome {
            completed: outcome.completed,
            allocation: outcome.allocation,
            auction_payments: outcome.auction_payments,
            payments: outcome.payments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_model::TaskTypeId;
    use rit_tree::generate;

    use crate::{RitConfig, RoundLimit};

    fn t0() -> TaskTypeId {
        TaskTypeId::new(0)
    }

    fn scenario() -> (Job, IncentiveTree, Vec<Ask>) {
        let job = Job::from_counts(vec![2]).unwrap();
        let tree = generate::path(3);
        let asks = vec![
            Ask::new(t0(), 2, 2.0).unwrap(),
            Ask::new(t0(), 1, 3.0).unwrap(),
            Ask::new(t0(), 1, 5.0).unwrap(),
        ];
        (job, tree, asks)
    }

    #[test]
    fn kind_labels_roundtrip() {
        for kind in MechanismKind::ALL {
            assert_eq!(kind.label().parse::<MechanismKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.label());
        }
        assert!("vcg".parse::<MechanismKind>().is_err());
    }

    #[test]
    fn rit_trait_path_matches_inherent_run() {
        let (job, tree, asks) = scenario();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let direct = rit
            .run(&job, &tree, &asks, &mut SmallRng::seed_from_u64(9))
            .unwrap();
        let via_trait = rit
            .evaluate(&job, &tree, &asks, &mut SmallRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(via_trait.completed(), direct.completed());
        assert_eq!(via_trait.allocation(), direct.allocation());
        assert_eq!(via_trait.payments(), direct.payments());
        assert_eq!(via_trait.auction_payments(), direct.auction_payments());
    }

    #[test]
    fn naive_trait_path_matches_module_run() {
        let (job, tree, asks) = scenario();
        let mech = NaiveKthPriceTree::new();
        let direct = naive::run(&job, &tree, &asks);
        let out = mech
            .evaluate(&job, &tree, &asks, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(out.allocation(), direct.allocation.as_slice());
        assert_eq!(out.payments(), direct.payments.as_slice());
        assert!(out.completed());
    }

    #[test]
    fn darpa_trait_path_matches_module_run() {
        let (job, tree, asks) = scenario();
        let mech = DarpaReferral::new();
        let direct = darpa::run(&job, &tree, &asks);
        let out = mech
            .evaluate(&job, &tree, &asks, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(out.allocation(), direct.allocation.as_slice());
        assert_eq!(out.payments(), direct.payments.as_slice());
        // Winner P1 (2 tasks at clearing price 3 ⇒ 6) propagates nothing up:
        // it is the deepest node, so ancestors P1's chain collects halves.
        assert_eq!(out.total_auction_payment(), 6.0);
    }

    #[test]
    fn baselines_draw_no_randomness() {
        // The RNG stream must be untouched by the deterministic baselines —
        // a requirement for paired honest/deviant comparisons.
        let (job, tree, asks) = scenario();
        let mut rng = SmallRng::seed_from_u64(77);
        let mut twin = SmallRng::seed_from_u64(77);
        let _ = NaiveKthPriceTree::new().evaluate(&job, &tree, &asks, &mut rng);
        let _ = DarpaReferral::new().evaluate(&job, &tree, &asks, &mut rng);
        assert_eq!(rng.gen::<u64>(), twin.gen::<u64>());
    }

    #[test]
    fn ask_count_mismatch_is_an_error_not_a_panic() {
        let (job, tree, mut asks) = scenario();
        asks.pop();
        let mut rng = SmallRng::seed_from_u64(0);
        for err in [
            NaiveKthPriceTree::new()
                .evaluate(&job, &tree, &asks, &mut rng)
                .unwrap_err(),
            DarpaReferral::new()
                .evaluate(&job, &tree, &asks, &mut rng)
                .unwrap_err(),
        ] {
            assert!(matches!(
                err,
                RitError::AskCountMismatch { asks: 2, users: 3 }
            ));
        }
    }

    #[test]
    fn screening_mask_flows_through_every_impl() {
        let (job, tree, asks) = scenario();
        // Mask out the cheapest user: P2 and P3 must win instead.
        let mask = [false, true, true];
        let mech = NaiveKthPriceTree::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let out = mech
            .evaluate_in(&job, &tree, &asks, Some(&mask), &mut (), &mut rng)
            .unwrap();
        assert_eq!(out.allocation(), &[0, 1, 1]);

        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let mut ws = RitWorkspace::new();
        let out = rit
            .evaluate_in(&job, &tree, &asks, Some(&mask), &mut ws, &mut rng)
            .unwrap();
        assert_eq!(out.allocation()[0], 0, "screened user must win nothing");
    }

    #[test]
    fn outcome_new_validates_lengths() {
        let out = MechanismOutcome::new(true, vec![1, 0], vec![2.0, 0.0], vec![3.0, 1.0]);
        assert_eq!(out.total_allocated(), 1);
        assert_eq!(out.total_payment(), 4.0);
        assert_eq!(out.solicitation_rewards(), vec![1.0, 1.0]);
        let ev: rit_adversary::Evaluation = out.into();
        assert_eq!(ev.payments, vec![3.0, 1.0]);
        assert!(ev.completed);
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn outcome_new_rejects_mismatched_lengths() {
        let _ = MechanismOutcome::new(true, vec![1], vec![2.0, 0.0], vec![3.0]);
    }

    #[test]
    fn incomplete_outcome_reports_zero_solicitation() {
        let out = MechanismOutcome::new(false, vec![1, 0], vec![2.0, 0.0], vec![2.0, 0.0]);
        assert_eq!(out.solicitation_rewards(), vec![0.0, 0.0]);
    }
}
