//! The naive auction + incentive-tree combination of §4.
//!
//! The paper motivates RIT by showing that gluing an off-the-shelf truthful
//! auction (the `k`-th lowest price auction \[31\]) onto an off-the-shelf
//! sybil-proof contribution-based incentive tree (Lv & Moscibroda \[24\],
//! using auction payments as contributions) produces a mechanism that is
//! **neither sybil-proof (Fig 2) nor truthful (Fig 3)**. This module
//! implements that broken combination so both counterexamples are runnable,
//! and so benchmarks can quantify how much an attacker gains against it
//! versus against RIT.
//!
//! The reward function follows the paper's §4 formula
//! `pⱼ = 2·p^Aⱼ + ln(1 − p^Aⱼ / Σ_{Pᵢ ∈ subtree(j)} p^Aᵢ)` with the log
//! term dropped when the subtree has no outside contribution (the formula's
//! domain edge; our source text is OCR-damaged here — see DESIGN.md — so the
//! counterexamples are asserted qualitatively, not against the paper's
//! constants).

use rit_auction::{extract, kth_price};
use rit_model::{Ask, Job};
use rit_tree::IncentiveTree;

/// Outcome of the naive combined mechanism.
#[derive(Clone, Debug, PartialEq)]
pub struct NaiveOutcome {
    /// Tasks allocated per user.
    pub allocation: Vec<u64>,
    /// Auction payments `p^A` per user.
    pub auction_payments: Vec<f64>,
    /// Final (tree-augmented) payments per user.
    pub payments: Vec<f64>,
    /// Whether every task of the job was allocated. Unlike RIT there is no
    /// Line 27 void rule — partial allocations keep their payments — so this
    /// flag is purely informational (completion-rate reporting).
    pub completed: bool,
}

impl NaiveOutcome {
    /// Quasi-linear utility of user `j` at true unit cost `c`.
    #[must_use]
    pub fn utility(&self, j: usize, unit_cost: f64) -> f64 {
        self.payments[j] - self.allocation[j] as f64 * unit_cost
    }
}

/// Runs the naive combination: per type, a `(mᵢ+1)`-st lowest price auction
/// over the extracted unit asks, then the contribution-based tree reward.
///
/// Unlike RIT, the naive mechanism happily produces partial allocations —
/// there is no all-or-nothing completion rule in the §4 strawman.
///
/// # Panics
///
/// Panics if `asks.len() != tree.num_users()`.
#[must_use]
pub fn run(job: &Job, tree: &IncentiveTree, asks: &[Ask]) -> NaiveOutcome {
    run_screened(job, tree, asks, None)
}

/// Like [`run`], with an optional eligibility mask: ineligible users
/// contribute no unit asks (the platform-side screening hook shared by every
/// mechanism, see [`crate::Mechanism`]).
///
/// # Panics
///
/// Panics if `asks.len() != tree.num_users()`, or if a mask of a different
/// length is supplied.
#[must_use]
pub fn run_screened(
    job: &Job,
    tree: &IncentiveTree,
    asks: &[Ask],
    eligible: Option<&[bool]>,
) -> NaiveOutcome {
    let n = tree.num_users();
    assert_eq!(asks.len(), n, "asks must align with tree users");
    let (allocation, auction_payments) = kth_price_allocation(job, asks, eligible);
    let completed = allocation.iter().sum::<u64>() == job.total_tasks();
    let payments = tree_reward(tree, &auction_payments);
    NaiveOutcome {
        allocation,
        auction_payments,
        payments,
        completed,
    }
}

/// The per-type `(mᵢ+1)`-st lowest price allocation shared by the §4 naive
/// combination and the DARPA baseline ([`crate::darpa`]): for each task type,
/// extract unit asks, run [`kth_price::lowest_price_auction`] for `mᵢ` slots,
/// and fold winners back onto users. Users masked out by `eligible`
/// contribute no unit asks.
///
/// Returns `(allocation, auction_payments)` per user.
///
/// # Panics
///
/// Panics if `eligible` is present with a length other than `asks.len()`.
#[must_use]
pub fn kth_price_allocation(
    job: &Job,
    asks: &[Ask],
    eligible: Option<&[bool]>,
) -> (Vec<u64>, Vec<f64>) {
    let n = asks.len();
    if let Some(mask) = eligible {
        assert_eq!(mask.len(), n, "eligibility mask must align with asks");
    }
    let quantities: Vec<u64> = asks
        .iter()
        .enumerate()
        .map(|(j, a)| {
            if eligible.is_none_or(|mask| mask[j]) {
                a.quantity()
            } else {
                0
            }
        })
        .collect();
    let mut allocation = vec![0u64; n];
    let mut auction_payments = vec![0.0f64; n];
    for (task_type, m_i) in job.iter() {
        if m_i == 0 {
            continue;
        }
        let alpha = extract::extract_with_quantities(task_type, asks, &quantities);
        let out = kth_price::lowest_price_auction(alpha.values(), m_i as usize);
        let pay = out.payments(alpha.values());
        for (omega, &payment) in pay.iter().enumerate() {
            if out.is_winner(omega) {
                let j = alpha.owner(omega);
                allocation[j] += 1;
                auction_payments[j] += payment;
            }
        }
    }
    (allocation, auction_payments)
}

/// The contribution-based incentive-tree reward of §4, with the auction
/// payment as each user's contribution.
///
/// `pⱼ = 2·p^Aⱼ + ln(1 − p^Aⱼ/Sⱼ)` where `Sⱼ` is the subtree contribution
/// including `j`; when the subtree holds no contribution beyond `j`'s own
/// (leaf case, log of 0) the reward degrades to the bare `p^Aⱼ`.
#[must_use]
pub fn tree_reward(tree: &IncentiveTree, auction_payments: &[f64]) -> Vec<f64> {
    let n = tree.num_users();
    assert_eq!(auction_payments.len(), n);
    // Subtree sums via reverse-preorder accumulation.
    let mut subtree = auction_payments.to_vec();
    for &node in tree.preorder().iter().rev() {
        let Some(u) = node.user_index() else { continue };
        if let Some(parent) = tree.parent(node) {
            if let Some(pu) = parent.user_index() {
                subtree[pu] += subtree[u];
            }
        }
    }
    (0..n)
        .map(|j| {
            let own = auction_payments[j];
            let s = subtree[j];
            if own <= 0.0 {
                // No contribution ⇒ 2·0 + ln(1 − 0) = 0, regardless of descendants.
                0.0
            } else if s > own {
                2.0 * own + (1.0 - own / s).ln()
            } else {
                own // domain edge: no outside contribution in the subtree
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_model::TaskTypeId;
    use rit_tree::generate;

    fn t0() -> TaskTypeId {
        TaskTypeId::new(0)
    }

    #[test]
    fn allocates_cheapest_units_per_type() {
        // Fig 2's truthful profile: P1 (τ0,2,2), P2 (τ0,1,3), P3 (τ0,1,5),
        // two tasks. P1 wins both at the 3rd price 3 ⇒ p^A₁ = 6.
        let job = Job::from_counts(vec![2]).unwrap();
        let tree = generate::path(3);
        let asks = vec![
            Ask::new(t0(), 2, 2.0).unwrap(),
            Ask::new(t0(), 1, 3.0).unwrap(),
            Ask::new(t0(), 1, 5.0).unwrap(),
        ];
        let out = run(&job, &tree, &asks);
        assert_eq!(out.allocation, vec![2, 0, 0]);
        assert_eq!(out.auction_payments, vec![6.0, 0.0, 0.0]);
    }

    #[test]
    fn tree_reward_leaf_is_bare_payment() {
        let tree = generate::star(2);
        let p = tree_reward(&tree, &[4.0, 0.0]);
        assert_eq!(p, vec![4.0, 0.0]);
    }

    #[test]
    fn tree_reward_with_descendants_exceeds_own() {
        // P1 contributes 4, its child P2 contributes 4:
        // p₁ = 2·4 + ln(1 − 4/8) = 8 + ln(½) ≈ 7.307 > 4.
        let tree = generate::path(2);
        let p = tree_reward(&tree, &[4.0, 4.0]);
        assert!((p[0] - (8.0 + 0.5f64.ln())).abs() < 1e-12);
        assert_eq!(p[1], 4.0);
    }

    #[test]
    fn zero_contribution_earns_nothing() {
        // Even with rich descendants the §4 reward of a zero contributor is 0
        // (matching the paper's Fig 3 narrative: p^A₁ = 0 ⇒ p₁ = 0).
        let tree = generate::path(2);
        let p = tree_reward(&tree, &[0.0, 9.0]);
        assert_eq!(p[0], 0.0);
    }

    #[test]
    fn fig3_untruthfulness_qualitative() {
        // §4-B: four sellers of one type with costs 5, 4, 5, 4; two tasks.
        // Truthful: P1 loses, utility 0. Underbidding to 4−ε makes P1 win at
        // a clearing price ≥ its cost... the *auction* alone would leave
        // utility ≈ 0 − but the tree reward doubles the payment, making the
        // lie strictly profitable. P2, P3, P4 hang under P1.
        let job = Job::from_counts(vec![2]).unwrap();
        let tree = generate::path(4);
        let costs = [5.0, 4.0, 5.0, 4.0];
        let truthful: Vec<Ask> = costs
            .iter()
            .map(|&c| Ask::new(t0(), 1, c).unwrap())
            .collect();
        let honest = run(&job, &tree, &truthful);
        let honest_utility = honest.utility(0, costs[0]);
        assert_eq!(honest_utility, 0.0, "truthful P1 loses and earns 0");

        let mut lying = truthful.clone();
        lying[0] = Ask::new(t0(), 1, 4.0 - 1e-9).unwrap();
        let dishonest = run(&job, &tree, &lying);
        let lying_utility = dishonest.utility(0, costs[0]);
        assert!(
            lying_utility > honest_utility + 0.5,
            "underbidding should be strictly profitable, got {lying_utility}"
        );
    }

    #[test]
    fn empty_scenario() {
        let job = Job::from_counts(vec![1]).unwrap();
        let tree = rit_tree::IncentiveTree::platform_only();
        let out = run(&job, &tree, &[]);
        assert!(out.allocation.is_empty());
        assert!(out.payments.is_empty());
    }
}
