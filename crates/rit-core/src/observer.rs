//! Zero-cost observation of the auction phase.
//!
//! The traced, untraced, and screened entry points of [`crate::Rit`] used to
//! be separate plumbing (`Option<&mut Vec<TypeTrace>>` threaded through a
//! private implementation). They now share **one** code path, parameterized
//! by an [`AuctionObserver`]: the mechanism reports type boundaries and
//! per-round results to the observer, and the observer decides what to keep.
//!
//! [`NoopObserver`] is the default; its empty methods inline away, so the
//! untraced path pays nothing for the hook. [`crate::trace::TraceObserver`]
//! records full [`crate::trace::TypeTrace`]s; [`crate::probes`] aggregates
//! lightweight round statistics. Observers never draw randomness, so
//! **every observer sees — and every entry point produces — the same
//! allocation for the same RNG state** (the invariant the
//! `traced_run_matches_untraced_and_is_coherent` test pins).

use rit_model::TaskTypeId;

use crate::trace::RoundTrace;

/// Receives auction-phase events from [`crate::Rit`]'s engine loop.
///
/// All methods default to no-ops, so an observer only implements what it
/// needs. Calls arrive strictly as, per task type:
/// `type_start`, then one `round` per CRA round, then `type_end` — types in
/// job order, exactly once each (zero-task types produce an empty
/// `type_start`/`type_end` pair with no rounds).
pub trait AuctionObserver {
    /// The auction phase is about to run its type loop over `num_types`
    /// task types. Fired once per phase, before the first `type_start` —
    /// and in the parallel per-type-streams path before the workers launch,
    /// so a timing observer brackets the real execution rather than the
    /// post-hoc replay of buffered events.
    fn phase_start(&mut self, num_types: usize) {
        let _ = num_types;
    }

    /// A task type's round loop is about to start. `budget` is the a-priori
    /// round budget (`None` for zero-task types and in until-stall mode).
    fn type_start(&mut self, task_type: TaskTypeId, tasks: u64, budget: Option<u32>) {
        let _ = (task_type, tasks, budget);
    }

    /// One CRA round finished (winners already applied).
    fn round(&mut self, round: &RoundTrace) {
        let _ = round;
    }

    /// The current task type's round loop finished.
    fn type_end(&mut self) {}

    /// The auction phase finished (after the last `type_end`).
    fn phase_end(&mut self) {}
}

/// The do-nothing observer: the untraced fast path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl AuctionObserver for NoopObserver {}

/// Fans every auction-phase event out to two observers, first `.0` then
/// `.1` — e.g. a full [`crate::trace::TraceObserver`] chained with a
/// telemetry aggregator, so tracing and metrics compose instead of
/// excluding each other. Chains nest (`ObserverChain(a, ObserverChain(b,
/// c))`) for wider fan-out. Since observers never draw randomness,
/// chaining changes no mechanism result: the chained run is bit-identical
/// to running either observer alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ObserverChain<A, B>(pub A, pub B);

impl<A, B> ObserverChain<A, B> {
    /// Chains two observers.
    #[must_use]
    pub fn new(first: A, second: B) -> Self {
        Self(first, second)
    }

    /// Consumes the chain, returning both observers.
    #[must_use]
    pub fn into_inner(self) -> (A, B) {
        (self.0, self.1)
    }
}

impl<A: AuctionObserver, B: AuctionObserver> AuctionObserver for ObserverChain<A, B> {
    fn phase_start(&mut self, num_types: usize) {
        self.0.phase_start(num_types);
        self.1.phase_start(num_types);
    }

    fn type_start(&mut self, task_type: TaskTypeId, tasks: u64, budget: Option<u32>) {
        self.0.type_start(task_type, tasks, budget);
        self.1.type_start(task_type, tasks, budget);
    }

    fn round(&mut self, round: &RoundTrace) {
        self.0.round(round);
        self.1.round(round);
    }

    fn type_end(&mut self) {
        self.0.type_end();
        self.1.type_end();
    }

    fn phase_end(&mut self) {
        self.0.phase_end();
        self.1.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_auction::cra::CraDiagnostics;

    #[derive(Default)]
    struct Counter {
        starts: usize,
        rounds: usize,
        ends: usize,
    }

    impl AuctionObserver for Counter {
        fn type_start(&mut self, _t: TaskTypeId, _tasks: u64, _budget: Option<u32>) {
            self.starts += 1;
        }
        fn round(&mut self, _r: &RoundTrace) {
            self.rounds += 1;
        }
        fn type_end(&mut self) {
            self.ends += 1;
        }
    }

    #[test]
    fn default_methods_are_noops() {
        let mut noop = NoopObserver;
        noop.type_start(TaskTypeId::new(0), 5, Some(3));
        noop.round(&RoundTrace {
            round: 0,
            q_before: 5,
            unit_asks: 10,
            winners: 2,
            clearing_price: 1.0,
            diagnostics: CraDiagnostics::default(),
        });
        noop.type_end();
    }

    #[test]
    fn chain_forwards_every_event_to_both_observers() {
        let mut chain = ObserverChain::new(Counter::default(), Counter::default());
        chain.type_start(TaskTypeId::new(0), 5, Some(3));
        chain.round(&RoundTrace {
            round: 0,
            q_before: 5,
            unit_asks: 10,
            winners: 2,
            clearing_price: 1.0,
            diagnostics: CraDiagnostics::default(),
        });
        chain.type_end();
        let (a, b) = chain.into_inner();
        assert_eq!((a.starts, a.rounds, a.ends), (1, 1, 1));
        assert_eq!((b.starts, b.rounds, b.ends), (1, 1, 1));
    }

    #[test]
    fn custom_observer_counts_events() {
        let mut c = Counter::default();
        c.type_start(TaskTypeId::new(0), 5, None);
        c.round(&RoundTrace {
            round: 0,
            q_before: 5,
            unit_asks: 10,
            winners: 2,
            clearing_price: 1.0,
            diagnostics: CraDiagnostics::default(),
        });
        c.type_end();
        assert_eq!((c.starts, c.rounds, c.ends), (1, 1, 1));
    }
}
