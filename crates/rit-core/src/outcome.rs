//! The result of running RIT: allocations, auction payments, final payments.

use rit_model::UserProfile;

/// Outcome of [`crate::Rit::run`] (Algorithm 3's `(x, p)` plus diagnostics).
///
/// All per-user vectors are indexed by user index (tree node `i + 1` ↔ user
/// `i`, see [`rit_tree::NodeId::user_index`]).
///
/// When the job could **not** be fully allocated within the round budget,
/// the paper's Line 27 applies: the allocation and final payments are all
/// zero (no tasks are performed, nobody is paid). The auction-phase
/// diagnostics (`auction_payments`, `rounds_used`, `unallocated`) still
/// describe the attempted run so experiments can report completion rates.
#[derive(Clone, Debug, PartialEq)]
pub struct RitOutcome {
    pub(crate) completed: bool,
    pub(crate) allocation: Vec<u64>,
    pub(crate) auction_payments: Vec<f64>,
    pub(crate) payments: Vec<f64>,
    pub(crate) rounds_used: Vec<u32>,
    pub(crate) unallocated: Vec<u64>,
}

impl RitOutcome {
    /// Whether every task of the job was allocated (the mechanism "ran to
    /// completion"). If false, allocation and payments are all zero.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// The task allocation `x`: `allocation()[j]` tasks of user `j`'s type
    /// were assigned to user `j`.
    #[must_use]
    pub fn allocation(&self) -> &[u64] {
        &self.allocation
    }

    /// Total number of allocated tasks `Σⱼ xⱼ`.
    #[must_use]
    pub fn total_allocated(&self) -> u64 {
        self.allocation.iter().sum()
    }

    /// The auction payments `p^A` (participation component). These are the
    /// *internal* quantities the payment-determination phase weights into
    /// the final payments — not what users receive.
    #[must_use]
    pub fn auction_payments(&self) -> &[f64] {
        &self.auction_payments
    }

    /// The final payments `p`: what the platform actually pays each user
    /// (auction payment plus solicitation rewards).
    #[must_use]
    pub fn payments(&self) -> &[f64] {
        &self.payments
    }

    /// The final payment of user `j`.
    #[must_use]
    pub fn payment(&self, j: usize) -> f64 {
        self.payments[j]
    }

    /// Total platform expenditure `Σⱼ pⱼ`.
    #[must_use]
    pub fn total_payment(&self) -> f64 {
        self.payments.iter().sum()
    }

    /// Total auction-phase expenditure `Σⱼ p^Aⱼ`.
    #[must_use]
    pub fn total_auction_payment(&self) -> f64 {
        self.auction_payments.iter().sum()
    }

    /// CRA rounds actually run, per task type.
    #[must_use]
    pub fn rounds_used(&self) -> &[u32] {
        &self.rounds_used
    }

    /// Tasks left unallocated per type when the auction phase stopped
    /// (all zeros iff [`RitOutcome::completed`]).
    #[must_use]
    pub fn unallocated(&self) -> &[u64] {
        &self.unallocated
    }

    /// The quasi-linear utility `Uⱼ = pⱼ − xⱼ·cⱼ` of user `j` given its true
    /// unit cost.
    #[must_use]
    pub fn utility(&self, j: usize, unit_cost: f64) -> f64 {
        self.payments[j] - self.allocation[j] as f64 * unit_cost
    }

    /// All utilities, given the true population profiles.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is shorter than the user count.
    #[must_use]
    pub fn utilities(&self, profiles: &[UserProfile]) -> Vec<f64> {
        assert!(
            profiles.len() >= self.payments.len(),
            "profiles shorter than payment vector"
        );
        (0..self.payments.len())
            .map(|j| self.utility(j, profiles[j].unit_cost()))
            .collect()
    }

    /// The solicitation component of each payment: `pⱼ − p^Aⱼ` (zero when
    /// the run failed).
    #[must_use]
    pub fn solicitation_rewards(&self) -> Vec<f64> {
        if !self.completed {
            return vec![0.0; self.payments.len()];
        }
        self.payments
            .iter()
            .zip(&self.auction_payments)
            .map(|(&p, &pa)| p - pa)
            .collect()
    }
}

/// Bridges a mechanism outcome into the adversary layer's mechanism-agnostic
/// evaluation (moves the payment/allocation vectors, no copy).
impl From<RitOutcome> for rit_adversary::Evaluation {
    fn from(o: RitOutcome) -> Self {
        Self {
            payments: o.payments,
            allocation: o.allocation,
            completed: o.completed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_model::TaskTypeId;

    fn outcome() -> RitOutcome {
        RitOutcome {
            completed: true,
            allocation: vec![2, 0, 1],
            auction_payments: vec![6.0, 0.0, 4.0],
            payments: vec![7.0, 2.0, 4.0],
            rounds_used: vec![1],
            unallocated: vec![0],
        }
    }

    #[test]
    fn totals() {
        let o = outcome();
        assert_eq!(o.total_allocated(), 3);
        assert_eq!(o.total_payment(), 13.0);
        assert_eq!(o.total_auction_payment(), 10.0);
    }

    #[test]
    fn utilities_quasilinear() {
        let o = outcome();
        assert_eq!(o.utility(0, 2.0), 3.0);
        assert_eq!(o.utility(1, 9.0), 2.0); // pure solicitation reward
        let profiles = vec![
            UserProfile::new(TaskTypeId::new(0), 2, 2.0).unwrap(),
            UserProfile::new(TaskTypeId::new(0), 1, 9.0).unwrap(),
            UserProfile::new(TaskTypeId::new(1), 1, 4.0).unwrap(),
        ];
        assert_eq!(o.utilities(&profiles), vec![3.0, 2.0, 0.0]);
    }

    #[test]
    fn solicitation_rewards_split() {
        let o = outcome();
        assert_eq!(o.solicitation_rewards(), vec![1.0, 2.0, 0.0]);
    }

    #[test]
    fn converts_into_adversary_evaluation() {
        let o = outcome();
        let ev: rit_adversary::Evaluation = o.clone().into();
        assert_eq!(ev.payments, o.payments);
        assert_eq!(ev.allocation, o.allocation);
        assert!(ev.completed);
        assert_eq!(ev.utility(0, 2.0), o.utility(0, 2.0));
        assert_eq!(ev.total_payment(), o.total_payment());
    }

    #[test]
    fn failed_run_zeroes_solicitation() {
        let o = RitOutcome {
            completed: false,
            allocation: vec![0, 0],
            auction_payments: vec![3.0, 0.0],
            payments: vec![0.0, 0.0],
            rounds_used: vec![2],
            unallocated: vec![1],
        };
        assert_eq!(o.solicitation_rewards(), vec![0.0, 0.0]);
        assert_eq!(o.total_payment(), 0.0);
    }
}
