//! The payment-determination phase (Algorithm 3, Lines 22–28).
//!
//! Once every task is allocated, the final payment of user `Pⱼ` is
//!
//! ```text
//! pⱼ = p^Aⱼ + Σ_{Pᵢ ∈ Tⱼ, tᵢ ≠ tⱼ} (1/2)^{rᵢ} · p^Aᵢ
//! ```
//!
//! where `Tⱼ` is the set of `Pⱼ`'s strict descendants and `rᵢ` is the
//! **contributor's** depth (platform root at depth 0). Three consequences,
//! each verified by tests here:
//!
//! * descendants *of the same type* contribute nothing — a user gains
//!   nothing from recruiting competitors for its own tasks, removing the
//!   incentive to pad the tree with same-type sybils;
//! * the weight decays with the contributor's *absolute* depth, so pushing a
//!   descendant deeper (as any stacked sybil identity would) strictly
//!   shrinks the per-ancestor share (the `(zᵢ+1)/2 ≤ zᵢ` algebra of
//!   Lemma 6.4);
//! * user `Pᵢ` at depth `rᵢ` has at most `rᵢ − 1` proper user ancestors, so
//!   the total solicitation payout triggered by `Pᵢ` is at most
//!   `rᵢ·(1/2)^{rᵢ}·p^Aᵢ ≤ p^Aᵢ` — the platform pays at most twice the
//!   auction total (§7's total-payment observation).
//!
//! # Complexity
//!
//! A single Euler-tour sweep answers every "sum of `w` over my descendants,
//! minus those of my own type" query in O(N + m) total — the linear
//! payment phase claimed by Theorem 3.

use rit_model::Ask;
use rit_tree::{IncentiveTree, NodeId};

/// The geometric solicitation weight `(1/2)^depth` applied to a
/// contributor's auction payment.
#[must_use]
pub fn solicitation_weight(depth: u32) -> f64 {
    0.5f64.powi(depth.min(1100) as i32) // beyond ~1074 the value underflows to 0 anyway
}

/// Reusable scratch buffers for [`determine_payments_with`]: the Euler-tour
/// query buckets and running-sum snapshots that [`determine_payments`]
/// would otherwise allocate per call. Once warm for a scenario shape, the
/// payment phase allocates only its output vector — the same discipline
/// the auction phase keeps (pinned by the `alloc_counting` tests).
#[derive(Clone, Debug, Default)]
pub struct PaymentWorkspace {
    /// CSR bucket offsets over Euler positions.
    bucket_start: Vec<u32>,
    /// Bucket fill cursors (counting-sort scratch).
    cursor: Vec<u32>,
    /// Packed `(user, end-flag)` queries, bucketed by Euler position.
    query_list: Vec<u32>,
    /// Running weighted sum per task type.
    acc_type: Vec<f64>,
    /// Per-user snapshot of the total running sum at subtree entry.
    start_total: Vec<f64>,
    /// Per-user snapshot of the same-type running sum at subtree entry.
    start_type: Vec<f64>,
}

impl PaymentWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Computes the final payment vector `p` from the incentive tree, the asks
/// (for each user's task type) and the auction payments `p^A`
/// (Algorithm 3, Line 24).
///
/// `asks[j]` and `auction_payments[j]` belong to tree node `j + 1`.
///
/// ```
/// use rit_core::payment::determine_payments;
/// use rit_model::{Ask, TaskTypeId};
/// use rit_tree::generate;
///
/// // root ─ P1(τ0) ─ P2(τ1, paid 8 by the auction).
/// let tree = generate::path(2);
/// let asks = vec![
///     Ask::new(TaskTypeId::new(0), 1, 1.0)?,
///     Ask::new(TaskTypeId::new(1), 1, 1.0)?,
/// ];
/// let p = determine_payments(&tree, &asks, &[0.0, 8.0]);
/// // P1 earns (1/2)² · 8 = 2 for recruiting P2 (depth 2).
/// assert_eq!(p, vec![2.0, 8.0]);
/// # Ok::<(), rit_model::ModelError>(())
/// ```
///
/// # Panics
///
/// Panics if the vector lengths disagree with the tree's user count.
#[must_use]
pub fn determine_payments(
    tree: &IncentiveTree,
    asks: &[Ask],
    auction_payments: &[f64],
) -> Vec<f64> {
    determine_payments_with(tree, asks, auction_payments, &mut PaymentWorkspace::new())
}

/// [`determine_payments`] with caller-provided scratch buffers: identical
/// output, but a warm [`PaymentWorkspace`] makes repeated calls allocate
/// only the returned payment vector.
///
/// # Panics
///
/// Panics if the vector lengths disagree with the tree's user count.
#[must_use]
pub fn determine_payments_with(
    tree: &IncentiveTree,
    asks: &[Ask],
    auction_payments: &[f64],
    ws: &mut PaymentWorkspace,
) -> Vec<f64> {
    let n = tree.num_users();
    assert_eq!(asks.len(), n, "asks must align with tree users");
    assert_eq!(
        auction_payments.len(),
        n,
        "auction payments must align with tree users"
    );
    if n == 0 {
        return Vec::new();
    }

    // Weighted contribution of each user node: w_i = (1/2)^{r_i} · p^A_i.
    let weight_of = |node: NodeId| -> f64 {
        match node.user_index() {
            None => 0.0,
            Some(u) => solicitation_weight(tree.depth(node)) * auction_payments[u],
        }
    };

    // Number of distinct task types mentioned (accumulator width).
    let num_types = asks
        .iter()
        .map(|a| a.task_type().index() + 1)
        .max()
        .unwrap_or(1);

    // Bucket two queries per user node at Euler positions:
    //   start  (entry + 1): snapshot the running sums before the descendants;
    //   end    (exit):      take the difference = descendant sums.
    // Buckets in CSR form (counting sort by position): one flat buffer
    // rather than a Vec per position. Query payload packs the user index
    // with the end-flag in the top bit.
    const END_FLAG: u32 = 1 << 31;
    let num_positions = tree.num_nodes() + 1;
    ws.bucket_start.clear();
    ws.bucket_start.resize(num_positions + 1, 0);
    for node in tree.user_nodes() {
        ws.bucket_start[tree.entry_time(node) + 2] += 1;
        ws.bucket_start[tree.exit_time(node) + 1] += 1;
    }
    for i in 0..num_positions {
        ws.bucket_start[i + 1] += ws.bucket_start[i];
    }
    ws.cursor.clear();
    ws.cursor.extend_from_slice(&ws.bucket_start);
    ws.query_list.clear();
    ws.query_list.resize(2 * n, 0);
    for node in tree.user_nodes() {
        let u = node.user_index().expect("user node") as u32;
        let start_pos = tree.entry_time(node) + 1;
        ws.query_list[ws.cursor[start_pos] as usize] = u;
        ws.cursor[start_pos] += 1;
        let end_pos = tree.exit_time(node);
        ws.query_list[ws.cursor[end_pos] as usize] = u | END_FLAG;
        ws.cursor[end_pos] += 1;
    }

    let mut acc_total = 0.0f64;
    ws.acc_type.clear();
    ws.acc_type.resize(num_types, 0.0);
    ws.start_total.clear();
    ws.start_total.resize(n, 0.0);
    ws.start_type.clear();
    ws.start_type.resize(n, 0.0);
    let mut payments = vec![0.0f64; n];

    for pos in 0..num_positions {
        let bucket =
            &ws.query_list[ws.bucket_start[pos] as usize..ws.bucket_start[pos + 1] as usize];
        for &packed in bucket {
            let u = (packed & !END_FLAG) as usize;
            let t = asks[u].task_type().index();
            if packed & END_FLAG != 0 {
                let desc_total = acc_total - ws.start_total[u];
                let desc_same_type = ws.acc_type[t] - ws.start_type[u];
                payments[u] = auction_payments[u] + (desc_total - desc_same_type);
            } else {
                ws.start_total[u] = acc_total;
                ws.start_type[u] = ws.acc_type[t];
            }
        }
        if pos < tree.num_nodes() {
            let node = tree.preorder()[pos];
            if let Some(u) = node.user_index() {
                let w = weight_of(node);
                acc_total += w;
                ws.acc_type[asks[u].task_type().index()] += w;
            }
        }
    }
    payments
}

/// Reference implementation: the same formula evaluated directly from the
/// definition in O(N²). Used by tests and available for cross-checking
/// custom tree layouts.
#[must_use]
pub fn determine_payments_reference(
    tree: &IncentiveTree,
    asks: &[Ask],
    auction_payments: &[f64],
) -> Vec<f64> {
    let n = tree.num_users();
    assert_eq!(asks.len(), n);
    assert_eq!(auction_payments.len(), n);
    let mut payments = vec![0.0f64; n];
    for node in tree.user_nodes() {
        let j = node.user_index().expect("user node");
        let mut p = auction_payments[j];
        for d in tree.descendants(node) {
            let i = d.user_index().expect("descendants of a user are users");
            if asks[i].task_type() != asks[j].task_type() {
                p += solicitation_weight(tree.depth(d)) * auction_payments[i];
            }
        }
        payments[j] = p;
    }
    payments
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rit_model::TaskTypeId;
    use rit_tree::generate;

    fn ask(t: u32, price: f64) -> Ask {
        Ask::new(TaskTypeId::new(t), 1, price).unwrap()
    }

    #[test]
    fn weight_halves_per_level() {
        assert_eq!(solicitation_weight(0), 1.0);
        assert_eq!(solicitation_weight(1), 0.5);
        assert_eq!(solicitation_weight(3), 0.125);
        assert_eq!(solicitation_weight(4000), 0.0); // underflow guard
    }

    #[test]
    fn single_chain_hand_computed() {
        // root ─ P1(τ0) ─ P2(τ1) ─ P3(τ0)
        let tree = generate::path(3);
        let asks = vec![ask(0, 1.0), ask(1, 1.0), ask(0, 1.0)];
        let pa = vec![4.0, 8.0, 16.0];
        let p = determine_payments(&tree, &asks, &pa);
        // P1: own 4 + P2 (τ1, depth 2 → ¼·8 = 2); P3 same type → nothing.
        assert_eq!(p[0], 6.0);
        // P2: own 8 + P3 (τ0, depth 3 → ⅛·16 = 2).
        assert_eq!(p[1], 10.0);
        // P3: leaf.
        assert_eq!(p[2], 16.0);
    }

    #[test]
    fn same_type_descendants_contribute_nothing() {
        let tree = generate::path(3);
        let asks = vec![ask(0, 1.0), ask(0, 1.0), ask(0, 1.0)];
        let pa = vec![4.0, 8.0, 16.0];
        let p = determine_payments(&tree, &asks, &pa);
        assert_eq!(p, pa);
    }

    #[test]
    fn star_tree_no_descendants() {
        let tree = generate::star(4);
        let asks = vec![ask(0, 1.0), ask(1, 1.0), ask(2, 1.0), ask(3, 1.0)];
        let pa = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(determine_payments(&tree, &asks, &pa), pa);
    }

    #[test]
    fn empty_tree() {
        let tree = rit_tree::IncentiveTree::platform_only();
        assert!(determine_payments(&tree, &[], &[]).is_empty());
    }

    #[test]
    fn matches_reference_on_random_trees() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..30 {
            let n = rng.gen_range(1..200);
            let tree = generate::uniform_recursive(n, &mut rng);
            let asks: Vec<Ask> = (0..n)
                .map(|_| ask(rng.gen_range(0..5), rng.gen_range(0.1..10.0)))
                .collect();
            let pa: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..50.0)).collect();
            let fast = determine_payments(&tree, &asks, &pa);
            let slow = determine_payments_reference(&tree, &asks, &pa);
            for (f, s) in fast.iter().zip(&slow) {
                assert!((f - s).abs() < 1e-9, "fast {f} vs reference {s}");
            }
        }
    }

    #[test]
    fn total_extra_payment_bounded_by_auction_total() {
        // §7: Σ(pⱼ − p^Aⱼ) ≤ Σ p^Aⱼ.
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..20 {
            let n = rng.gen_range(2..300);
            let tree = generate::preferential(n, &mut rng);
            let asks: Vec<Ask> = (0..n)
                .map(|_| ask(rng.gen_range(0..10), rng.gen_range(0.1..10.0)))
                .collect();
            let pa: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..50.0)).collect();
            let p = determine_payments(&tree, &asks, &pa);
            let extra: f64 = p.iter().zip(&pa).map(|(p, a)| p - a).sum();
            let total: f64 = pa.iter().sum();
            assert!(extra >= -1e-9, "solicitation rewards are non-negative");
            assert!(
                extra <= total + 1e-9,
                "extra {extra} exceeds auction total {total}"
            );
        }
    }

    #[test]
    fn deeper_contributor_pays_ancestors_less() {
        // Same contributor payment, one level deeper → each ancestor share
        // halves (the monotonicity behind Lemma 6.4's first attack kind).
        let shallow = generate::path(2); // root ─ P1 ─ P2
        let deep = generate::path(3); // root ─ P1 ─ P2 ─ P3
        let asks2 = vec![ask(0, 1.0), ask(1, 1.0)];
        let asks3 = vec![ask(0, 1.0), ask(2, 1.0), ask(1, 1.0)];
        // Contributor pays 8 in both; in `deep` it sits at depth 3 not 2.
        let p_shallow = determine_payments(&shallow, &asks2, &[0.0, 8.0]);
        let p_deep = determine_payments(&deep, &asks3, &[0.0, 0.0, 8.0]);
        assert_eq!(p_shallow[0], 2.0); // ¼ · 8
        assert_eq!(p_deep[0], 1.0); // ⅛ · 8
    }

    #[test]
    fn workspace_reuse_across_shapes_matches_fresh() {
        // One workspace carried across trees of very different sizes and
        // shapes (growing, shrinking, type-count changes) must match a
        // fresh computation every time — stale capacity never leaks into
        // results.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut ws = PaymentWorkspace::new();
        for round in 0..20 {
            let n = if round % 2 == 0 {
                rng.gen_range(150..300)
            } else {
                rng.gen_range(1..20)
            };
            let tree = generate::uniform_recursive(n, &mut rng);
            let asks: Vec<Ask> = (0..n)
                .map(|_| ask(rng.gen_range(0..7), rng.gen_range(0.1..10.0)))
                .collect();
            let pa: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..50.0)).collect();
            let warm = determine_payments_with(&tree, &asks, &pa, &mut ws);
            let fresh = determine_payments(&tree, &asks, &pa);
            assert_eq!(warm, fresh);
        }
    }

    #[test]
    #[should_panic(expected = "align")]
    fn length_mismatch_panics() {
        let tree = generate::star(2);
        let _ = determine_payments(&tree, &[ask(0, 1.0)], &[1.0, 2.0]);
    }
}
