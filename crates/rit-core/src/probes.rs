//! Empirical property probes: structured Monte-Carlo checks of the paper's
//! theorems against a concrete scenario.
//!
//! RIT's guarantees are probabilistic, so "does this deployment actually
//! resist manipulation?" is an empirical question about a *distribution* of
//! outcomes. Each probe compares a deviation against honesty over paired
//! seeds and reports a [`ProbeReport`] with the estimated gain and its
//! standard error, so callers (tests, experiments, operators) can apply
//! whatever significance threshold they need instead of re-deriving the
//! statistics.
//!
//! The probes here are thin adapters over the adversary layer: each one
//! names a [`rit_adversary::Deviation`] and hands the paired-seed loop to a
//! [`rit_adversary::ProbeRunner`] whose evaluation closure runs [`Rit`]
//! on a reused [`RitWorkspace`]. Custom deviations (coalitions, screening,
//! spec-driven suites) go through `rit_adversary` directly.

use rand::rngs::SmallRng;

use rit_adversary::{
    BaseScenario, Deviation, PriceMisreport, ProbeRunner, ScenarioView, SeedSchedule, SybilPricing,
    SybilSplit, Withholding,
};
use rit_model::{Ask, TaskTypeId};
use rit_tree::sybil::SybilPlan;
use rit_tree::IncentiveTree;

use crate::observer::AuctionObserver;
use crate::trace::RoundTrace;
use crate::workspace::RitWorkspace;
use crate::{Rit, RitError};

/// Result of comparing a deviation against honesty over `runs` paired
/// replications (re-exported from the adversary layer; the gain's standard
/// error is computed from the paired differences).
pub use rit_adversary::GainReport as ProbeReport;

/// A scenario under probe: mechanism, job, tree, asks, and the probed user's
/// true unit cost.
#[derive(Clone, Debug)]
pub struct ProbeScenario<'a> {
    /// The mechanism under test.
    pub rit: &'a Rit,
    /// The job.
    pub job: &'a rit_model::Job,
    /// The honest incentive tree.
    pub tree: &'a IncentiveTree,
    /// The honest ask vector.
    pub asks: &'a [Ask],
    /// The probed user.
    pub user: usize,
    /// The probed user's true unit cost.
    pub unit_cost: f64,
}

/// Aggregate round pressure observed across one or more auction-phase runs:
/// an [`AuctionObserver`] counting types, rounds, and zero-winner rounds.
///
/// Much lighter than full tracing — three counters instead of a
/// [`crate::trace::TypeTrace`] per type — so it suits large Monte-Carlo
/// sweeps where only "how hard did the auction work" matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundActivity {
    /// Task types entered (summed over replications).
    pub types: u64,
    /// CRA rounds executed.
    pub rounds: u64,
    /// Rounds that selected no winner (the stall signal of
    /// [`crate::RoundLimit::UntilStall`]).
    pub empty_rounds: u64,
}

impl RoundActivity {
    /// Share of rounds that allocated nothing (0 when no rounds ran).
    #[must_use]
    pub fn empty_share(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.empty_rounds as f64 / self.rounds as f64
        }
    }
}

impl AuctionObserver for RoundActivity {
    fn type_start(&mut self, _task_type: TaskTypeId, _tasks: u64, _budget: Option<u32>) {
        self.types += 1;
    }

    fn round(&mut self, round: &RoundTrace) {
        self.rounds += 1;
        if round.winners == 0 {
            self.empty_rounds += 1;
        }
    }
}

impl ProbeScenario<'_> {
    /// Runs one deviation through the adversary layer's paired-seed
    /// evaluator with this scenario's mechanism as the evaluation closure.
    fn probe(
        &self,
        deviation: &dyn Deviation,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        let mut costs = vec![0.0; self.asks.len()];
        costs[self.user] = self.unit_cost;
        let base = BaseScenario {
            tree: self.tree,
            asks: self.asks,
            costs: &costs,
        };
        let runner = ProbeRunner::new(base, SeedSchedule::Xor { seed }, runs);
        let mut ws = RitWorkspace::new();
        runner.run(deviation, &mut |view: ScenarioView<'_>,
                                    rng: &mut SmallRng|
         -> Result<_, RitError> {
            let out = self
                .rit
                .run_with_workspace(self.job, view.tree, view.asks, &mut ws, rng)?;
            Ok(out.into())
        })
    }

    /// Measures the auction-phase round pressure of the honest scenario
    /// across `runs` replications (same seed schedule as the deviation
    /// probes): how many CRA rounds the job needs and how often a round
    /// stalls. Useful when tuning [`crate::RoundLimit`] budgets.
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors.
    pub fn round_activity(&self, runs: usize, seed: u64) -> Result<RoundActivity, RitError> {
        let base = BaseScenario {
            tree: self.tree,
            asks: self.asks,
            costs: &[],
        };
        let runner = ProbeRunner::new(base, SeedSchedule::Xor { seed }, runs);
        let mut ws = RitWorkspace::new();
        let mut activity = RoundActivity::default();
        runner.honest_sweep(&mut |view: ScenarioView<'_>,
                                   rng: &mut SmallRng|
         -> Result<(), RitError> {
            self.rit
                .run_auction_phase_with(self.job, view.asks, &mut ws, &mut activity, rng)?;
            Ok(())
        })?;
        Ok(activity)
    }

    /// Probes a **price misreport**: the user bids `price_factor ×` its ask
    /// value (Lemma 6.3 says this should not pay, with probability ≥ H).
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors; a non-positive `price_factor` surfaces
    /// as [`RitError::Model`].
    pub fn price_deviation(
        &self,
        price_factor: f64,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        self.probe(
            &PriceMisreport {
                user: self.user,
                factor: price_factor,
            },
            runs,
            seed,
        )
    }

    /// Probes a **quantity under-claim**: the user claims only `quantity`
    /// tasks instead of its full capacity (the design goal says revealing
    /// `Kⱼ` should be weakly best).
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors; a zero `quantity` surfaces as
    /// [`RitError::Model`].
    pub fn quantity_deviation(
        &self,
        quantity: u64,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        self.probe(
            &Withholding {
                user: self.user,
                quantity,
            },
            runs,
            seed,
        )
    }

    /// Probes a **sybil attack**: the user splits into `plan.num_identities`
    /// identities, all asking `identity_price`, with its claimed quantity
    /// divided uniformly among them (Theorem 2's attack class).
    ///
    /// # Errors
    ///
    /// Propagates mechanism and tree errors.
    pub fn sybil_deviation(
        &self,
        plan: &SybilPlan,
        identity_price: f64,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        self.probe(
            &SybilSplit {
                user: self.user,
                plan: *plan,
                pricing: SybilPricing::Uniform {
                    unit_price: identity_price,
                },
            },
            runs,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RitConfig, RoundLimit};
    use rand::SeedableRng;
    use rit_model::workload::WorkloadConfig;
    use rit_model::Job;
    use rit_tree::generate;

    fn world() -> (Rit, Job, IncentiveTree, Vec<Ask>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(77);
        let config = WorkloadConfig {
            num_types: 3,
            capacity_max: 6,
            cost_max: 10.0,
        };
        let pop = config.sample_population(900, &mut rng).unwrap();
        let tree = generate::preferential(900, &mut rng);
        let asks = pop.truthful_asks().into_vec();
        let costs = pop.iter().map(|u| u.unit_cost()).collect();
        let job = Job::uniform(3, 150).unwrap();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        (rit, job, tree, asks, costs)
    }

    #[test]
    fn probe_reports_are_internally_consistent() {
        let (rit, job, tree, asks, costs) = world();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user: 3,
            unit_cost: costs[3],
        };
        let report = scenario.price_deviation(1.3, 30, 5).unwrap();
        assert_eq!(report.runs, 30);
        assert!((report.gain - (report.deviant_mean - report.honest_mean)).abs() < 1e-12);
        if report.gain_se > 0.0 {
            assert!((report.z_score() - report.gain / report.gain_se).abs() < 1e-12);
        }
    }

    #[test]
    fn overbidding_not_profitable() {
        let (rit, job, tree, asks, costs) = world();
        // A user with a mid-range cost: deviations have room to matter.
        let user = (0..asks.len())
            .find(|&j| asks[j].unit_price() < 5.0 && asks[j].quantity() >= 3)
            .unwrap();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user,
            unit_cost: costs[user],
        };
        let report = scenario.price_deviation(1.5, 60, 11).unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "overbid wins: {report:?}"
        );
    }

    #[test]
    fn underclaiming_not_profitable() {
        let (rit, job, tree, asks, costs) = world();
        let user = (0..asks.len()).find(|&j| asks[j].quantity() >= 4).unwrap();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user,
            unit_cost: costs[user],
        };
        let report = scenario.quantity_deviation(1, 60, 13).unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "under-claim wins: {report:?}"
        );
    }

    #[test]
    fn sybil_probe_not_profitable() {
        let (rit, job, tree, asks, costs) = world();
        let user = (0..asks.len()).find(|&j| asks[j].quantity() >= 4).unwrap();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user,
            unit_cost: costs[user],
        };
        let report = scenario
            .sybil_deviation(&SybilPlan::random(3), asks[user].unit_price(), 60, 17)
            .unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "sybil wins: {report:?}"
        );
    }

    #[test]
    fn invalid_rewrites_surface_as_model_errors() {
        let (rit, job, tree, asks, costs) = world();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user: 0,
            unit_cost: costs[0],
        };
        assert!(matches!(
            scenario.price_deviation(-1.0, 4, 5),
            Err(RitError::Model(_))
        ));
        assert!(matches!(
            scenario.quantity_deviation(0, 4, 5),
            Err(RitError::Model(_))
        ));
    }

    #[test]
    fn round_activity_counts_match_tracing() {
        let (rit, job, tree, asks, costs) = world();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user: 0,
            unit_cost: costs[0],
        };
        let act = scenario.round_activity(5, 3).unwrap();
        assert_eq!(act.types, 5 * job.num_types() as u64);
        assert!(act.rounds > 0);
        assert!(act.empty_rounds <= act.rounds);
        assert!((0.0..=1.0).contains(&act.empty_share()));
        // Replication r = 0 uses seed 3 directly; the traced entry point on
        // that seed must see the same rounds the aggregate counted.
        let (_, traces) = rit
            .run_auction_phase_traced(&job, &asks, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        let traced_rounds: u64 = traces.iter().map(|t| t.rounds.len() as u64).sum();
        let single = scenario.round_activity(1, 3).unwrap();
        assert_eq!(single.rounds, traced_rounds);
        assert_eq!(
            single.empty_rounds,
            traces.iter().map(|t| t.empty_rounds() as u64).sum::<u64>()
        );
    }

    #[test]
    fn degenerate_report_statistics() {
        let r = ProbeReport::from_paired_samples(&[1.0], &[1.0]);
        assert_eq!(r.gain, 0.0);
        assert_eq!(r.gain_se, 0.0);
        assert_eq!(r.z_score(), 0.0);
        assert!(r.deviation_not_profitable(3.0));
    }
}
