//! Empirical property probes: structured Monte-Carlo checks of the paper's
//! theorems against a concrete scenario.
//!
//! RIT's guarantees are probabilistic, so "does this deployment actually
//! resist manipulation?" is an empirical question about a *distribution* of
//! outcomes. Each probe runs an honest arm and a deviating arm over paired
//! seeds and reports a [`ProbeReport`] with the estimated gain and its
//! standard error, so callers (tests, experiments, operators) can apply
//! whatever significance threshold they need instead of re-deriving the
//! statistics.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use rit_model::{Ask, TaskTypeId};
use rit_tree::sybil::SybilPlan;
use rit_tree::IncentiveTree;

use crate::observer::AuctionObserver;
use crate::trace::RoundTrace;
use crate::workspace::RitWorkspace;
use crate::{sybil_exec, Rit, RitError};

/// Result of comparing a deviation against honesty over `runs` paired
/// replications.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeReport {
    /// Mean utility of the honest arm.
    pub honest_mean: f64,
    /// Mean utility of the deviating arm.
    pub deviant_mean: f64,
    /// `deviant_mean − honest_mean`.
    pub gain: f64,
    /// Standard error of the gain (independent-arm approximation).
    pub gain_se: f64,
    /// Number of replications per arm.
    pub runs: usize,
}

impl ProbeReport {
    /// The z-score of the gain (0 when the standard error vanishes).
    #[must_use]
    pub fn z_score(&self) -> f64 {
        if self.gain_se > 0.0 {
            self.gain / self.gain_se
        } else {
            0.0
        }
    }

    /// Whether the deviation shows **no significant advantage** at `z_max`
    /// standard errors (typical choice: 3.0).
    #[must_use]
    pub fn deviation_not_profitable(&self, z_max: f64) -> bool {
        self.gain <= z_max * self.gain_se.max(f64::EPSILON)
    }

    fn from_samples(honest: &[f64], deviant: &[f64]) -> Self {
        let runs = honest.len();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let var = |xs: &[f64], m: f64| {
            if xs.len() < 2 {
                0.0
            } else {
                xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
            }
        };
        let hm = mean(honest);
        let dm = mean(deviant);
        let se = ((var(honest, hm) + var(deviant, dm)) / runs.max(1) as f64).sqrt();
        Self {
            honest_mean: hm,
            deviant_mean: dm,
            gain: dm - hm,
            gain_se: se,
            runs,
        }
    }
}

/// A scenario under probe: mechanism, job, tree, asks, and the probed user's
/// true unit cost.
#[derive(Clone, Debug)]
pub struct ProbeScenario<'a> {
    /// The mechanism under test.
    pub rit: &'a Rit,
    /// The job.
    pub job: &'a rit_model::Job,
    /// The honest incentive tree.
    pub tree: &'a IncentiveTree,
    /// The honest ask vector.
    pub asks: &'a [Ask],
    /// The probed user.
    pub user: usize,
    /// The probed user's true unit cost.
    pub unit_cost: f64,
}

/// Aggregate round pressure observed across one or more auction-phase runs:
/// an [`AuctionObserver`] counting types, rounds, and zero-winner rounds.
///
/// Much lighter than full tracing — three counters instead of a
/// [`crate::trace::TypeTrace`] per type — so it suits large Monte-Carlo
/// sweeps where only "how hard did the auction work" matters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundActivity {
    /// Task types entered (summed over replications).
    pub types: u64,
    /// CRA rounds executed.
    pub rounds: u64,
    /// Rounds that selected no winner (the stall signal of
    /// [`crate::RoundLimit::UntilStall`]).
    pub empty_rounds: u64,
}

impl RoundActivity {
    /// Share of rounds that allocated nothing (0 when no rounds ran).
    #[must_use]
    pub fn empty_share(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.empty_rounds as f64 / self.rounds as f64
        }
    }
}

impl AuctionObserver for RoundActivity {
    fn type_start(&mut self, _task_type: TaskTypeId, _tasks: u64, _budget: Option<u32>) {
        self.types += 1;
    }

    fn round(&mut self, round: &RoundTrace) {
        self.rounds += 1;
        if round.winners == 0 {
            self.empty_rounds += 1;
        }
    }
}

impl ProbeScenario<'_> {
    fn honest_utilities(&self, runs: usize, seed: u64) -> Result<Vec<f64>, RitError> {
        let mut ws = RitWorkspace::new();
        (0..runs)
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37));
                let out = self
                    .rit
                    .run_with_workspace(self.job, self.tree, self.asks, &mut ws, &mut rng)?;
                Ok(out.utility(self.user, self.unit_cost))
            })
            .collect()
    }

    /// Measures the auction-phase round pressure of the honest scenario
    /// across `runs` replications (same seed schedule as the deviation
    /// probes): how many CRA rounds the job needs and how often a round
    /// stalls. Useful when tuning [`crate::RoundLimit`] budgets.
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors.
    pub fn round_activity(&self, runs: usize, seed: u64) -> Result<RoundActivity, RitError> {
        let mut ws = RitWorkspace::new();
        let mut activity = RoundActivity::default();
        for r in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37));
            self.rit.run_auction_phase_with(
                self.job,
                self.asks,
                &mut ws,
                &mut activity,
                &mut rng,
            )?;
        }
        Ok(activity)
    }

    /// Probes a **price misreport**: the user bids `price_factor ×` its ask
    /// value (Lemma 6.3 says this should not pay, with probability ≥ H).
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors.
    ///
    /// # Panics
    ///
    /// Panics if the scaled price is invalid (non-positive factor).
    pub fn price_deviation(
        &self,
        price_factor: f64,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        let honest = self.honest_utilities(runs, seed)?;
        let mut asks = self.asks.to_vec();
        asks[self.user] = asks[self.user]
            .with_unit_price(asks[self.user].unit_price() * price_factor)
            .expect("positive factor yields a valid price");
        let mut ws = RitWorkspace::new();
        let deviant: Vec<f64> = (0..runs)
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37));
                let out = self
                    .rit
                    .run_with_workspace(self.job, self.tree, &asks, &mut ws, &mut rng)?;
                Ok::<f64, RitError>(out.utility(self.user, self.unit_cost))
            })
            .collect::<Result<_, _>>()?;
        Ok(ProbeReport::from_samples(&honest, &deviant))
    }

    /// Probes a **quantity under-claim**: the user claims only `quantity`
    /// tasks instead of its full capacity (the design goal says revealing
    /// `Kⱼ` should be weakly best).
    ///
    /// # Errors
    ///
    /// Propagates mechanism errors.
    ///
    /// # Panics
    ///
    /// Panics if `quantity` is zero.
    pub fn quantity_deviation(
        &self,
        quantity: u64,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        let honest = self.honest_utilities(runs, seed)?;
        let mut asks = self.asks.to_vec();
        asks[self.user] = asks[self.user]
            .with_quantity(quantity)
            .expect("positive quantity");
        let mut ws = RitWorkspace::new();
        let deviant: Vec<f64> = (0..runs)
            .map(|r| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37));
                let out = self
                    .rit
                    .run_with_workspace(self.job, self.tree, &asks, &mut ws, &mut rng)?;
                Ok::<f64, RitError>(out.utility(self.user, self.unit_cost))
            })
            .collect::<Result<_, _>>()?;
        Ok(ProbeReport::from_samples(&honest, &deviant))
    }

    /// Probes a **sybil attack**: the user splits into `plan.num_identities`
    /// identities, all asking `identity_price`, with its claimed quantity
    /// divided uniformly among them (Theorem 2's attack class).
    ///
    /// # Errors
    ///
    /// Propagates mechanism and tree errors.
    pub fn sybil_deviation(
        &self,
        plan: &SybilPlan,
        identity_price: f64,
        runs: usize,
        seed: u64,
    ) -> Result<ProbeReport, RitError> {
        let honest = self.honest_utilities(runs, seed)?;
        let mut ws = RitWorkspace::new();
        let mut deviant = Vec::with_capacity(runs);
        for r in 0..runs {
            let mut rng = SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37));
            let identity_asks = sybil_exec::uniform_identity_asks(
                self.asks[self.user].task_type(),
                self.asks[self.user]
                    .quantity()
                    .max(plan.num_identities as u64),
                plan.num_identities,
                identity_price,
                &mut rng,
            );
            let sc = sybil_exec::apply_attack(
                self.tree,
                self.asks,
                self.user,
                &identity_asks,
                plan,
                &mut rng,
            )?;
            let out = self
                .rit
                .run_with_workspace(self.job, &sc.tree, &sc.asks, &mut ws, &mut rng)?;
            deviant.push(sc.attacker_utility(&out, self.unit_cost));
        }
        Ok(ProbeReport::from_samples(&honest, &deviant))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RitConfig, RoundLimit};
    use rit_model::workload::WorkloadConfig;
    use rit_model::Job;
    use rit_tree::generate;

    fn world() -> (Rit, Job, IncentiveTree, Vec<Ask>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(77);
        let config = WorkloadConfig {
            num_types: 3,
            capacity_max: 6,
            cost_max: 10.0,
        };
        let pop = config.sample_population(900, &mut rng).unwrap();
        let tree = generate::preferential(900, &mut rng);
        let asks = pop.truthful_asks().into_vec();
        let costs = pop.iter().map(|u| u.unit_cost()).collect();
        let job = Job::uniform(3, 150).unwrap();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        (rit, job, tree, asks, costs)
    }

    #[test]
    fn probe_reports_are_internally_consistent() {
        let (rit, job, tree, asks, costs) = world();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user: 3,
            unit_cost: costs[3],
        };
        let report = scenario.price_deviation(1.3, 30, 5).unwrap();
        assert_eq!(report.runs, 30);
        assert!((report.gain - (report.deviant_mean - report.honest_mean)).abs() < 1e-12);
        if report.gain_se > 0.0 {
            assert!((report.z_score() - report.gain / report.gain_se).abs() < 1e-12);
        }
    }

    #[test]
    fn overbidding_not_profitable() {
        let (rit, job, tree, asks, costs) = world();
        // A user with a mid-range cost: deviations have room to matter.
        let user = (0..asks.len())
            .find(|&j| asks[j].unit_price() < 5.0 && asks[j].quantity() >= 3)
            .unwrap();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user,
            unit_cost: costs[user],
        };
        let report = scenario.price_deviation(1.5, 60, 11).unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "overbid wins: {report:?}"
        );
    }

    #[test]
    fn underclaiming_not_profitable() {
        let (rit, job, tree, asks, costs) = world();
        let user = (0..asks.len()).find(|&j| asks[j].quantity() >= 4).unwrap();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user,
            unit_cost: costs[user],
        };
        let report = scenario.quantity_deviation(1, 60, 13).unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "under-claim wins: {report:?}"
        );
    }

    #[test]
    fn sybil_probe_not_profitable() {
        let (rit, job, tree, asks, costs) = world();
        let user = (0..asks.len()).find(|&j| asks[j].quantity() >= 4).unwrap();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user,
            unit_cost: costs[user],
        };
        let report = scenario
            .sybil_deviation(&SybilPlan::random(3), asks[user].unit_price(), 60, 17)
            .unwrap();
        assert!(
            report.deviation_not_profitable(3.0),
            "sybil wins: {report:?}"
        );
    }

    #[test]
    fn round_activity_counts_match_tracing() {
        let (rit, job, tree, asks, costs) = world();
        let scenario = ProbeScenario {
            rit: &rit,
            job: &job,
            tree: &tree,
            asks: &asks,
            user: 0,
            unit_cost: costs[0],
        };
        let act = scenario.round_activity(5, 3).unwrap();
        assert_eq!(act.types, 5 * job.num_types() as u64);
        assert!(act.rounds > 0);
        assert!(act.empty_rounds <= act.rounds);
        assert!((0.0..=1.0).contains(&act.empty_share()));
        // Replication r = 0 uses seed 3 directly; the traced entry point on
        // that seed must see the same rounds the aggregate counted.
        let (_, traces) = rit
            .run_auction_phase_traced(&job, &asks, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        let traced_rounds: u64 = traces.iter().map(|t| t.rounds.len() as u64).sum();
        let single = scenario.round_activity(1, 3).unwrap();
        assert_eq!(single.rounds, traced_rounds);
        assert_eq!(
            single.empty_rounds,
            traces.iter().map(|t| t.empty_rounds() as u64).sum::<u64>()
        );
    }

    #[test]
    fn degenerate_report_statistics() {
        let r = ProbeReport::from_samples(&[1.0], &[1.0]);
        assert_eq!(r.gain, 0.0);
        assert_eq!(r.gain_se, 0.0);
        assert_eq!(r.z_score(), 0.0);
        assert!(r.deviation_not_profitable(3.0));
    }
}
