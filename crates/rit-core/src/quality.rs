//! Quality screening — a minimal instantiation of the paper's deferred
//! "data quality guarantee" direction (§3-C).
//!
//! The paper's model pays for task *count*; it explicitly defers data
//! quality to future work. The lightest extension that preserves every
//! proven property is **pre-auction screening**: the platform holds a
//! quality score per user (from past jobs, device attestation, …) and
//! excludes users below a threshold from *task allocation* before any ask
//! is opened. Because eligibility depends only on exogenous scores — never
//! on the submitted asks — the screening is bid-independent:
//!
//! * truthfulness and sybil-proofness arguments are unchanged (a user
//!   cannot alter its eligibility by misreporting, and fresh sybil
//!   identities have no history, so a sensible policy gives them the
//!   *default* score — making identity-splitting strictly unattractive
//!   when the attacker's earned score exceeds the default);
//! * individual rationality is unchanged (screened users simply don't
//!   participate in the auction);
//! * screened users still earn solicitation rewards for their recruits —
//!   quality gates *sensing*, not *recruiting*.

use rand::Rng;

use rit_model::{Ask, Job};
use rit_tree::IncentiveTree;

use crate::{Rit, RitError, RitOutcome};

/// A quality-screening policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityPolicy {
    /// Minimum score required to receive tasks.
    pub min_quality: f64,
    /// Score assigned to users with no history (e.g. fresh identities).
    pub default_quality: f64,
}

impl QualityPolicy {
    /// A permissive default: everything ≥ 0 passes, newcomers score 0.5.
    #[must_use]
    pub const fn permissive() -> Self {
        Self {
            min_quality: 0.0,
            default_quality: 0.5,
        }
    }

    /// The eligibility mask for a population. `scores[j] = None` means no
    /// history; the default score applies.
    #[must_use]
    pub fn eligibility(&self, scores: &[Option<f64>]) -> Vec<bool> {
        scores
            .iter()
            .map(|s| s.unwrap_or(self.default_quality) >= self.min_quality)
            .collect()
    }
}

impl Rit {
    /// Runs RIT with a quality-eligibility mask: ineligible users submit no
    /// unit asks (their claimed quantity is treated as zero in every
    /// `Extract`), but they remain tree members and collect solicitation
    /// rewards for eligible descendants as usual.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run`]; additionally rejects a mask whose
    /// length differs from the ask vector.
    pub fn run_screened<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        eligible: &[bool],
        rng: &mut R,
    ) -> Result<RitOutcome, RitError> {
        if asks.len() != tree.num_users() || eligible.len() != asks.len() {
            return Err(RitError::AskCountMismatch {
                asks: asks.len().min(eligible.len()),
                users: tree.num_users(),
            });
        }
        // Screening = remaining-quantity zeroing inside the auction phase:
        // the asks themselves are untouched (they still carry each user's
        // task type for the payment phase), but ineligible users contribute
        // zero unit asks to every Extract.
        let phase = self.auction_phase_screened(job, asks, eligible, rng)?;
        Ok(self.determine_final_payments(tree, asks, phase))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RitConfig, RoundLimit};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_model::workload::WorkloadConfig;
    use rit_tree::generate;

    fn world(n: usize) -> (Job, IncentiveTree, Vec<Ask>, Rit) {
        let mut rng = SmallRng::seed_from_u64(5);
        let config = WorkloadConfig {
            num_types: 2,
            capacity_max: 5,
            cost_max: 10.0,
        };
        let pop = config.sample_population(n, &mut rng).unwrap();
        let tree = generate::preferential(n, &mut rng);
        let asks = pop.truthful_asks().into_vec();
        let job = Job::uniform(2, 80).unwrap();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        (job, tree, asks, rit)
    }

    #[test]
    fn policy_eligibility_mask() {
        let policy = QualityPolicy {
            min_quality: 0.6,
            default_quality: 0.5,
        };
        let scores = vec![Some(0.9), Some(0.2), None, Some(0.6)];
        assert_eq!(policy.eligibility(&scores), vec![true, false, false, true]);
        let permissive = QualityPolicy::permissive();
        assert!(permissive.eligibility(&scores).iter().all(|&e| e));
    }

    #[test]
    fn screened_users_win_nothing_but_still_recruit() {
        let (job, tree, asks, rit) = world(800);
        // Screen out every third user.
        let eligible: Vec<bool> = (0..asks.len()).map(|j| j % 3 != 0).collect();
        let mut rng = SmallRng::seed_from_u64(9);
        let out = rit
            .run_screened(&job, &tree, &asks, &eligible, &mut rng)
            .unwrap();
        for (j, &e) in eligible.iter().enumerate() {
            if !e {
                assert_eq!(out.allocation()[j], 0, "screened user {j} won tasks");
                assert_eq!(out.auction_payments()[j], 0.0);
            }
        }
        if out.completed() {
            // Some screened user with eligible descendants earns solicitation.
            let rewards = out.solicitation_rewards();
            let screened_with_reward = (0..asks.len())
                .filter(|&j| !eligible[j] && rewards[j] > 1e-9)
                .count();
            assert!(
                screened_with_reward > 0,
                "quality gating should not cancel recruiting rewards"
            );
        }
    }

    #[test]
    fn all_eligible_matches_plain_run() {
        let (job, tree, asks, rit) = world(500);
        let eligible = vec![true; asks.len()];
        let a = rit
            .run_screened(
                &job,
                &tree,
                &asks,
                &eligible,
                &mut SmallRng::seed_from_u64(3),
            )
            .unwrap();
        let b = rit
            .run(&job, &tree, &asks, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn screening_out_a_whole_type_voids_the_job() {
        let (job, tree, asks, rit) = world(500);
        // Screen everyone of type τ0.
        let eligible: Vec<bool> = asks.iter().map(|a| a.task_type().index() != 0).collect();
        let mut rng = SmallRng::seed_from_u64(4);
        let out = rit
            .run_screened(&job, &tree, &asks, &eligible, &mut rng)
            .unwrap();
        assert!(!out.completed());
        assert_eq!(out.total_payment(), 0.0);
    }

    #[test]
    fn mask_length_mismatch_rejected() {
        let (job, tree, asks, rit) = world(100);
        let eligible = vec![true; 50];
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            rit.run_screened(&job, &tree, &asks, &eligible, &mut rng),
            Err(RitError::AskCountMismatch { .. })
        ));
    }
}
