//! Choosing the solicitation threshold `N` (paper Remark 6.1).
//!
//! The incentive tree stops growing once `N` users joined. Remark 6.1 ties
//! `N` to the mechanism's needs: to select `q + mᵢ` potential winners, CRA
//! needs at least `2mᵢ` unit asks per type, so solicitation must continue
//! until the recruited users can jointly complete at least `2mᵢ` tasks in
//! every type `τᵢ`.
//!
//! Two forms are provided:
//!
//! * [`capacity_satisfied`] — the exact check against a concrete ask
//!   profile: "can the platform stop recruiting *now*?"
//! * [`estimate_threshold`] — an a-priori estimate under the §7-A workload
//!   distribution, for capacity planning before any user joins: with types
//!   drawn uniformly among `m` and capacity uniform on `{1..K}`, a user
//!   contributes `(K+1)/(2m)` expected tasks per type, so
//!   `N ≈ 2·maxᵢ(mᵢ)·2m/(K+1)` scaled by a safety factor.

use rit_model::{Ask, Job, TaskTypeId};

/// Checks Remark 6.1's stopping rule against a concrete ask profile: every
/// type of the job must have claimed capacity at least `2·mᵢ`.
///
/// Returns the first deficient type and its shortfall, or `Ok(())`.
///
/// ```
/// use rit_core::recruitment::capacity_satisfied;
/// use rit_model::{Ask, Job, TaskTypeId};
///
/// let job = Job::from_counts(vec![3])?; // needs 2·3 = 6 claimed tasks
/// let asks = vec![Ask::new(TaskTypeId::new(0), 5, 1.0)?];
/// assert_eq!(capacity_satisfied(&job, &asks), Err((TaskTypeId::new(0), 1)));
/// # Ok::<(), rit_model::ModelError>(())
/// ```
///
/// # Errors
///
/// Returns `Err((τᵢ, shortfall))` for the lowest-indexed deficient type.
pub fn capacity_satisfied(job: &Job, asks: &[Ask]) -> Result<(), (TaskTypeId, u64)> {
    let mut claimed = vec![0u64; job.num_types()];
    for ask in asks {
        if let Some(slot) = claimed.get_mut(ask.task_type().index()) {
            *slot += ask.quantity();
        }
    }
    for (task_type, m_i) in job.iter() {
        let need = 2 * m_i;
        let have = claimed[task_type.index()];
        if have < need {
            return Err((task_type, need - have));
        }
    }
    Ok(())
}

/// A-priori estimate of the recruitment threshold `N` under a uniform
/// workload: types uniform over `m`, capacities uniform over `{1..=k_max}`.
///
/// `safety` inflates the estimate to cover sampling variance (1.0 = exactly
/// the expectation; the default used by callers is typically 1.2–1.5).
///
/// # Panics
///
/// Panics if `k_max == 0`, the job is empty, or `safety < 1.0`.
#[must_use]
pub fn estimate_threshold(job: &Job, k_max: u64, safety: f64) -> usize {
    assert!(k_max > 0, "capacity bound must be positive");
    assert!(safety >= 1.0, "safety factor must be at least 1");
    let m = job.num_types();
    let max_tasks = job.iter().map(|(_, c)| c).max().unwrap_or(0);
    assert!(max_tasks > 0, "job requests no tasks");
    // Expected per-type capacity contributed by one user.
    let per_user = (k_max as f64 + 1.0) / 2.0 / m as f64;
    ((2.0 * max_tasks as f64 / per_user) * safety).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_model::workload::WorkloadConfig;

    fn t(i: u32) -> TaskTypeId {
        TaskTypeId::new(i)
    }

    #[test]
    fn capacity_check_exact_boundary() {
        let job = Job::from_counts(vec![3]).unwrap();
        // Need 2·3 = 6 units of type τ0.
        let five = vec![Ask::new(t(0), 5, 1.0).unwrap()];
        assert_eq!(capacity_satisfied(&job, &five), Err((t(0), 1)));
        let six = vec![Ask::new(t(0), 6, 1.0).unwrap()];
        assert_eq!(capacity_satisfied(&job, &six), Ok(()));
    }

    #[test]
    fn capacity_check_reports_first_deficient_type() {
        let job = Job::from_counts(vec![1, 5, 1]).unwrap();
        let asks = vec![
            Ask::new(t(0), 2, 1.0).unwrap(),
            Ask::new(t(2), 2, 1.0).unwrap(),
        ];
        assert_eq!(capacity_satisfied(&job, &asks), Err((t(1), 10)));
    }

    #[test]
    fn zero_task_types_need_nothing() {
        let job = Job::from_counts(vec![0, 2]).unwrap();
        let asks = vec![Ask::new(t(1), 4, 1.0).unwrap()];
        assert_eq!(capacity_satisfied(&job, &asks), Ok(()));
    }

    #[test]
    fn out_of_job_types_are_ignored() {
        let job = Job::from_counts(vec![1]).unwrap();
        let asks = vec![
            Ask::new(t(0), 2, 1.0).unwrap(),
            Ask::new(t(9), 50, 1.0).unwrap(), // no such type in the job
        ];
        assert_eq!(capacity_satisfied(&job, &asks), Ok(()));
    }

    #[test]
    fn estimate_is_calibrated_against_sampled_populations() {
        // The estimated N (with a modest safety factor) should satisfy the
        // capacity rule for most sampled populations of that size.
        let job = Job::uniform(10, 500).unwrap();
        let n = estimate_threshold(&job, 20, 1.3);
        let config = WorkloadConfig::paper();
        let mut satisfied = 0;
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let pop = config.sample_population(n, &mut rng).unwrap();
            let asks = pop.truthful_asks().into_vec();
            if capacity_satisfied(&job, &asks).is_ok() {
                satisfied += 1;
            }
        }
        assert!(
            satisfied >= 18,
            "threshold too small: {satisfied}/20 satisfied"
        );
    }

    #[test]
    fn estimate_scales_with_job_and_capacity() {
        let small = Job::uniform(10, 100).unwrap();
        let large = Job::uniform(10, 1000).unwrap();
        assert!(estimate_threshold(&large, 20, 1.0) > estimate_threshold(&small, 20, 1.0));
        // Higher capacities need fewer users.
        assert!(estimate_threshold(&small, 40, 1.0) < estimate_threshold(&small, 10, 1.0));
    }

    #[test]
    #[should_panic(expected = "no tasks")]
    fn estimate_rejects_trivial_job() {
        let job = Job::from_counts(vec![0]).unwrap();
        let _ = estimate_threshold(&job, 20, 1.0);
    }
}
