//! A small framework for referral-reward rules over incentive trees.
//!
//! The paper positions RIT inside a design space of *contribution-based*
//! incentive trees (§2, §4): every rule maps each user's own contribution
//! (here: its auction payment) plus the tree structure to a final payment.
//! This module gives that space a common interface so the rules implemented
//! across this crate — RIT's own depth-anchored weights, the DARPA-style
//! distance decay, and the §4 subtree-log bonus — can be compared head to
//! head, and so new rules can be prototyped and screened with the same
//! sybil tests.
//!
//! The decisive design axis, demonstrated by the tests here and by
//! `examples/darpa_challenge.rs`:
//!
//! * [`GeometricDistance`] pays ancestors by `β^distance` — *relative*
//!   geometry. Inserting fake intermediate identities creates new paid
//!   positions: **not sybil-proof** (the paper's Bob/Alice story).
//! * [`GeometricDepth`] (RIT's rule) pays by `(1/2)^depth` of the
//!   *contributor* — *absolute* geometry. Splitting can only push
//!   contributors deeper and shrink every share (Lemma 6.4):
//!   **split-proof**.
//! * [`SubtreeLogBonus`] (the §4 strawman) is sybil-proof in isolation but
//!   amplifies the contribution itself (`2·p + …`), which breaks
//!   truthfulness once the contribution is an auction payment.

use rit_model::Ask;
use rit_tree::{IncentiveTree, NodeId};

/// A rule turning per-user contributions into final payments over an
/// incentive tree.
///
/// `asks[j]` and `contributions[j]` belong to tree node `j + 1`; the rule
/// returns one payment per user. Implementations must be *pure*: no
/// randomness, no state.
pub trait ReferralReward {
    /// Human-readable rule name (for tables and reports).
    fn name(&self) -> &'static str;

    /// Computes the payment vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the slice lengths disagree with the
    /// tree's user count.
    fn payments(&self, tree: &IncentiveTree, asks: &[Ask], contributions: &[f64]) -> Vec<f64>;
}

/// RIT's payment-determination rule (Algorithm 3, Line 24): own contribution
/// plus `(1/2)^{rᵢ}·cᵢ` for every *different-type* descendant `i` at depth
/// `rᵢ`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeometricDepth;

impl ReferralReward for GeometricDepth {
    fn name(&self) -> &'static str {
        "geometric-depth (RIT)"
    }

    fn payments(&self, tree: &IncentiveTree, asks: &[Ask], contributions: &[f64]) -> Vec<f64> {
        crate::payment::determine_payments(tree, asks, contributions)
    }
}

/// DARPA-style distance decay: own contribution plus `β^d·cᵢ` for every
/// descendant at tree distance `d`, regardless of task type (the MIT
/// Network Challenge scheme is `β = 1/2` with contributions = balloon
/// rewards).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeometricDistance {
    /// Per-edge decay `β ∈ (0, 1)`.
    pub beta: f64,
}

impl Default for GeometricDistance {
    fn default() -> Self {
        Self { beta: 0.5 }
    }
}

impl ReferralReward for GeometricDistance {
    fn name(&self) -> &'static str {
        "geometric-distance (DARPA)"
    }

    fn payments(&self, tree: &IncentiveTree, asks: &[Ask], contributions: &[f64]) -> Vec<f64> {
        let n = tree.num_users();
        assert_eq!(asks.len(), n, "asks must align with tree users");
        assert_eq!(contributions.len(), n, "contributions must align");
        assert!(
            self.beta > 0.0 && self.beta < 1.0,
            "decay must be in (0, 1)"
        );
        // S(v) = c_v + β·Σ_children S(c); payment = S(v). Reverse preorder
        // processes children before parents.
        let mut s = contributions.to_vec();
        for &node in tree.preorder().iter().rev() {
            let Some(u) = node.user_index() else { continue };
            if let Some(parent) = tree.parent(node) {
                if let Some(pu) = parent.user_index() {
                    s[pu] += self.beta * s[u];
                }
            }
        }
        s
    }
}

/// The §4 strawman: `pⱼ = 2·cⱼ + ln(1 − cⱼ/Sⱼ)` with `Sⱼ` the subtree
/// contribution (see [`crate::naive::tree_reward`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SubtreeLogBonus;

impl ReferralReward for SubtreeLogBonus {
    fn name(&self) -> &'static str {
        "subtree-log bonus (§4 strawman)"
    }

    fn payments(&self, tree: &IncentiveTree, asks: &[Ask], contributions: &[f64]) -> Vec<f64> {
        assert_eq!(asks.len(), tree.num_users(), "asks must align");
        crate::naive::tree_reward(tree, contributions)
    }
}

/// Outcome of a [`split_resistance`] screening.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitScreen {
    /// The attacker's payment without splitting.
    pub honest: f64,
    /// The attacker's best total payment over the probed splits.
    pub best_attack: f64,
}

impl SplitScreen {
    /// Whether no probed split strictly beat honesty (tolerance 1e-9).
    #[must_use]
    pub fn resistant(&self) -> bool {
        self.best_attack <= self.honest + 1e-9
    }
}

/// Screens a reward rule against the Lemma 6.4 attack class on the payment
/// side: the victim splits into a chain of `delta` identities (contribution
/// carried by the deepest identity; original children re-homed below it) —
/// the rewiring that defeats distance-based schemes.
///
/// This is a *deterministic necessary check*, not a proof: rules failing it
/// are certainly not sybil-proof; rules passing it still need the full
/// probabilistic analysis.
///
/// # Panics
///
/// Panics if inputs misalign or `victim` is out of range.
#[must_use]
pub fn split_resistance<R: ReferralReward + ?Sized>(
    rule: &R,
    tree: &IncentiveTree,
    asks: &[Ask],
    contributions: &[f64],
    victim: usize,
    max_delta: usize,
) -> SplitScreen {
    use rit_tree::sybil::{self, SybilPlan};
    let honest = rule.payments(tree, asks, contributions)[victim];
    let mut best_attack = f64::NEG_INFINITY;
    for delta in 2..=max_delta.max(2) {
        // Chain split is deterministic; the RNG is never consulted for it.
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let out = sybil::apply(
            &SybilPlan::chain(delta),
            tree,
            NodeId::from_user_index(victim),
            &mut rng,
        )
        .expect("valid victim");
        let mut new_asks = asks.to_vec();
        let mut new_contrib = contributions.to_vec();
        for _ in 1..delta {
            new_asks.push(asks[victim]);
            new_contrib.push(0.0);
        }
        // The deepest identity carries the whole contribution.
        let identity_users: Vec<usize> = out
            .identities
            .iter()
            .map(|id| id.user_index().expect("user node"))
            .collect();
        new_contrib[identity_users[0]] = 0.0;
        new_contrib[*identity_users.last().expect("δ ≥ 2")] = contributions[victim];
        let payments = rule.payments(&out.tree, &new_asks, &new_contrib);
        let total: f64 = identity_users.iter().map(|&u| payments[u]).sum();
        best_attack = best_attack.max(total);
    }
    SplitScreen {
        honest,
        best_attack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rit_model::TaskTypeId;
    use rit_tree::generate;

    fn ask(t: u32) -> Ask {
        Ask::new(TaskTypeId::new(t), 1, 1.0).unwrap()
    }

    /// root ─ P1(τ0) ─ P2(τ1, contributes) ─ P3(τ2)
    fn fixture() -> (IncentiveTree, Vec<Ask>, Vec<f64>) {
        (
            generate::path(3),
            vec![ask(0), ask(1), ask(2)],
            vec![0.0, 8.0, 4.0],
        )
    }

    #[test]
    fn geometric_depth_matches_payment_module() {
        let (tree, asks, c) = fixture();
        let p = GeometricDepth.payments(&tree, &asks, &c);
        // P1: ¼·8 + ⅛·4 = 2.5; P2: 8 + ⅛·4 = 8.5; P3: 4.
        assert_eq!(p, vec![2.5, 8.5, 4.0]);
    }

    #[test]
    fn geometric_distance_matches_darpa_module() {
        let (tree, asks, c) = fixture();
        let p = GeometricDistance::default().payments(&tree, &asks, &c);
        let d = crate::darpa::referral_payments(&tree, &c);
        assert_eq!(p, d);
    }

    #[test]
    fn geometric_distance_beta_shapes_decay() {
        let tree = generate::path(2);
        let asks = vec![ask(0), ask(1)];
        let c = vec![0.0, 10.0];
        let steep = GeometricDistance { beta: 0.1 }.payments(&tree, &asks, &c);
        let shallow = GeometricDistance { beta: 0.9 }.payments(&tree, &asks, &c);
        assert_eq!(steep[0], 1.0);
        assert_eq!(shallow[0], 9.0);
    }

    #[test]
    fn darpa_rule_fails_the_split_screen() {
        // The Bob/Alice attack, through the generic screen: Bob's chain split
        // strictly increases his take under distance decay.
        let tree = generate::path(2); // Alice ─ Bob
        let asks = vec![ask(0), ask(1)];
        let c = vec![0.0, 2000.0];
        let screen = split_resistance(&GeometricDistance::default(), &tree, &asks, &c, 1, 4);
        assert!(!screen.resistant());
        assert_eq!(screen.honest, 2000.0);
        // δ = 4 chain: 2000 + 1000 + 500 + 250.
        assert_eq!(screen.best_attack, 3750.0);
    }

    #[test]
    fn rit_rule_passes_the_split_screen_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..25 {
            let n = rng.gen_range(3..40);
            let tree = generate::uniform_recursive(n, &mut rng);
            let asks: Vec<Ask> = (0..n).map(|_| ask(rng.gen_range(0..4))).collect();
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
            let victim = rng.gen_range(0..n);
            let screen = split_resistance(&GeometricDepth, &tree, &asks, &c, victim, 5);
            assert!(
                screen.resistant(),
                "RIT rule broken: {} > {}",
                screen.best_attack,
                screen.honest
            );
        }
    }

    #[test]
    fn subtree_log_passes_the_split_screen_but_amplifies() {
        // The §4 rule is split-resistant on the tree side…
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..25 {
            let n = rng.gen_range(3..30);
            let tree = generate::uniform_recursive(n, &mut rng);
            let asks: Vec<Ask> = (0..n).map(|_| ask(0)).collect();
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
            let victim = rng.gen_range(0..n);
            let screen = split_resistance(&SubtreeLogBonus, &tree, &asks, &c, victim, 4);
            assert!(screen.resistant(), "unexpected split gain");
        }
        // …but it amplifies contributions (2·c − ε), which is what lets a
        // manipulated auction payment pay double (§4-B).
        let tree = generate::path(2);
        let asks = vec![ask(0), ask(0)];
        let p = SubtreeLogBonus.payments(&tree, &asks, &[4.0, 4.0]);
        assert!(p[0] > 4.0 * 1.5, "no amplification: {}", p[0]);
    }

    #[test]
    fn rule_names_are_distinct() {
        let names = [
            GeometricDepth.name(),
            GeometricDistance::default().name(),
            SubtreeLogBonus.name(),
        ];
        let set: std::collections::HashSet<&str> = names.into_iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn trait_is_object_safe() {
        let rules: Vec<Box<dyn ReferralReward>> = vec![
            Box::new(GeometricDepth),
            Box::new(GeometricDistance::default()),
            Box::new(SubtreeLogBonus),
        ];
        let (tree, asks, c) = fixture();
        for r in &rules {
            assert_eq!(r.payments(&tree, &asks, &c).len(), 3);
        }
    }
}
