//! The RIT mechanism (paper Algorithm 3).
//!
//! `RIT(J, A, T, H)` runs in two phases:
//!
//! **Auction phase.** Build the run-length unit-ask table
//! ([`rit_auction::engine::CompactAsks`]) once, then for each task type
//! `τᵢ` repeatedly run a CRA round ([`rit_auction::engine::run_round`])
//! over the not-yet-won units to allocate the remaining `q` tasks, up to
//! the per-type round budget (see [`crate::RoundLimit`]). Each winning unit
//! allocates one task to its owner and adds the round's clearing price to
//! the owner's auction payment `p^Aⱼ`. This is outcome- and draw-for-draw
//! RNG-equivalent to the paper's materializing `Extract` + CRA loop (the
//! `engine_equivalence` integration tests pin this), but touches only
//! per-user state per round and allocates nothing once a
//! [`crate::RitWorkspace`] is warm.
//!
//! **Payment determination phase.** If *every* task of the job was
//! allocated, final payments are computed by [`crate::payment`]; otherwise
//! the run is void — no tasks, no payments (Line 27) — because a partial
//! allocation cannot honor the design goals.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use rit_auction::bounds::{self, WorstCaseQ};
use rit_auction::engine::{self, AuctionWorkspace, TypeAsksView};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::IncentiveTree;

use crate::observer::{AuctionObserver, NoopObserver};
use crate::streams::{self, RngMode};
use crate::trace::{RoundTrace, TraceObserver, TypeTrace};
use crate::workspace::{RitWorkspace, WorkspacePool};
use crate::{payment, RitConfig, RitError, RitOutcome, RoundLimit};

/// Per-type inputs of the auction phase, resolved up front so worker
/// threads are infallible and errors surface in type order.
struct TypePlan {
    task_type: TaskTypeId,
    m_i: u64,
    budget: Option<u32>,
}

/// Everything one task type's round loop produces, merged back onto users
/// (and replayed to the observer) in type order after all types finish.
struct TypeRun {
    rounds: Vec<RoundTrace>,
    rounds_used: u32,
    unallocated: u64,
    /// `(user, tasks won, auction payment)` — sparse winner deltas.
    deltas: Vec<(u32, u64, f64)>,
}

/// The Robust Incentive Tree mechanism.
///
/// See the [crate-level documentation](crate) for a quickstart; construction
/// validates the configuration once so `run` can be called repeatedly.
#[derive(Clone, Debug, PartialEq)]
pub struct Rit {
    config: RitConfig,
}

/// Result of the auction phase alone (Algorithm 3, Lines 1–21): the
/// allocation and auction payments before any solicitation reward. The
/// evaluation's "auction phase" series (Figs 6–8) compares this against the
/// full mechanism.
#[derive(Clone, Debug, PartialEq)]
pub struct AuctionPhaseResult {
    /// Tasks allocated per user.
    pub allocation: Vec<u64>,
    /// Auction payments `p^A` per user.
    pub auction_payments: Vec<f64>,
    /// CRA rounds run per task type.
    pub rounds_used: Vec<u32>,
    /// Tasks left unallocated per task type.
    pub unallocated: Vec<u64>,
}

impl AuctionPhaseResult {
    /// Whether every task of the job was allocated.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.unallocated.iter().all(|&q| q == 0)
    }
}

impl Rit {
    /// Creates the mechanism with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`RitError::InvalidProbability`] if `config.h ∉ (0, 1)`.
    pub fn new(config: RitConfig) -> Result<Self, RitError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RitConfig {
        &self.config
    }

    /// Runs `RIT(J, A, T, H)`: allocates the job `J` among the users of the
    /// incentive tree `T` according to their sealed asks `A`, and computes
    /// the final payment for every user.
    ///
    /// `asks[j]` is the ask of tree node `j + 1`
    /// ([`rit_tree::NodeId::from_user_index`]).
    ///
    /// # Errors
    ///
    /// * [`RitError::AskCountMismatch`] if `asks.len() != tree.num_users()`;
    /// * [`RitError::GuaranteeInfeasible`] if a [`RoundLimit::Paper`] budget
    ///   is unattainable for some type (job too small for `K_max`).
    pub fn run<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        rng: &mut R,
    ) -> Result<RitOutcome, RitError> {
        let mut ws = RitWorkspace::new();
        self.run_with_workspace(job, tree, asks, &mut ws, rng)
    }

    /// Like [`Rit::run`], reusing the scratch buffers in `ws`. Repeated runs
    /// through the same workspace allocate nothing in the auction phase once
    /// the buffers are warm; outcomes are bit-identical to [`Rit::run`] for
    /// the same RNG state, regardless of what the workspace ran before.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run`].
    pub fn run_with_workspace<R: Rng + ?Sized>(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        ws: &mut RitWorkspace,
        rng: &mut R,
    ) -> Result<RitOutcome, RitError> {
        let n = tree.num_users();
        if asks.len() != n {
            return Err(RitError::AskCountMismatch {
                asks: asks.len(),
                users: n,
            });
        }
        let phase = self.auction_phase_with(job, asks, None, ws, &mut NoopObserver, rng)?;
        Ok(self.determine_final_payments_with(tree, asks, phase, ws))
    }

    /// Runs only the auction phase (Algorithm 3, Lines 1–21). The incentive
    /// tree plays no role here — solicitation enters in
    /// [`Rit::determine_final_payments`].
    ///
    /// # Errors
    ///
    /// Returns [`RitError::GuaranteeInfeasible`] if a [`RoundLimit::Paper`]
    /// budget is unattainable for some type.
    pub fn run_auction_phase<R: Rng + ?Sized>(
        &self,
        job: &Job,
        asks: &[Ask],
        rng: &mut R,
    ) -> Result<AuctionPhaseResult, RitError> {
        let mut ws = RitWorkspace::new();
        self.auction_phase_with(job, asks, None, &mut ws, &mut NoopObserver, rng)
    }

    /// Auction phase with a caller-provided workspace and
    /// [`AuctionObserver`] — the fully general entry point the others wrap.
    /// The observer receives type boundaries and per-round results as they
    /// happen; it never affects the outcome (observers draw no randomness).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run_auction_phase`].
    pub fn run_auction_phase_with<R: Rng + ?Sized, O: AuctionObserver>(
        &self,
        job: &Job,
        asks: &[Ask],
        ws: &mut RitWorkspace,
        observer: &mut O,
        rng: &mut R,
    ) -> Result<AuctionPhaseResult, RitError> {
        self.auction_phase_with(job, asks, None, ws, observer, rng)
    }

    /// Auction phase with a quality-eligibility mask (see
    /// [`crate::quality`]): ineligible users contribute no unit asks.
    pub(crate) fn auction_phase_screened<R: Rng + ?Sized>(
        &self,
        job: &Job,
        asks: &[Ask],
        eligible: &[bool],
        rng: &mut R,
    ) -> Result<AuctionPhaseResult, RitError> {
        let mut ws = RitWorkspace::new();
        self.auction_phase_with(job, asks, Some(eligible), &mut ws, &mut NoopObserver, rng)
    }

    /// Like [`Rit::run_auction_phase`], additionally recording one
    /// [`crate::trace::TypeTrace`] per task type with per-round CRA
    /// diagnostics — see [`crate::trace`]. Sugar for
    /// [`Rit::run_auction_phase_with`] and a [`TraceObserver`].
    ///
    /// The traced and untraced entry points consume randomness identically:
    /// given the same RNG state they produce the same
    /// [`AuctionPhaseResult`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run_auction_phase`].
    pub fn run_auction_phase_traced<R: Rng + ?Sized>(
        &self,
        job: &Job,
        asks: &[Ask],
        rng: &mut R,
    ) -> Result<(AuctionPhaseResult, Vec<TypeTrace>), RitError> {
        let mut ws = RitWorkspace::new();
        let mut observer = TraceObserver::with_capacity(job.num_types());
        let result = self.auction_phase_with(job, asks, None, &mut ws, &mut observer, rng)?;
        Ok((result, observer.into_traces()))
    }

    /// Runs the full mechanism from a master seed under the given
    /// [`RngMode`].
    ///
    /// * [`RngMode::SharedLegacy`] seeds one [`SmallRng`] and delegates to
    ///   [`Rit::run`] — bit-identical to every historical trace.
    /// * [`RngMode::PerTypeStreams`] derives one RNG stream per task type
    ///   ([`streams::stream_seed`]) and runs the types on
    ///   [`streams::default_threads`] worker threads; the outcome is
    ///   independent of the thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run`].
    pub fn run_seeded(
        &self,
        job: &Job,
        tree: &IncentiveTree,
        asks: &[Ask],
        mode: RngMode,
        master_seed: u64,
    ) -> Result<RitOutcome, RitError> {
        match mode {
            RngMode::SharedLegacy => {
                let mut rng = SmallRng::seed_from_u64(master_seed);
                self.run(job, tree, asks, &mut rng)
            }
            RngMode::PerTypeStreams => {
                let n = tree.num_users();
                if asks.len() != n {
                    return Err(RitError::AskCountMismatch {
                        asks: asks.len(),
                        users: n,
                    });
                }
                let phase = self.run_auction_phase_streams(job, asks, master_seed)?;
                Ok(self.determine_final_payments(tree, asks, phase))
            }
        }
    }

    /// Auction phase under [`RngMode::PerTypeStreams`], with the thread
    /// count resolved from the environment ([`streams::default_threads`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run_auction_phase`].
    pub fn run_auction_phase_streams(
        &self,
        job: &Job,
        asks: &[Ask],
        master_seed: u64,
    ) -> Result<AuctionPhaseResult, RitError> {
        let mut ws = RitWorkspace::new();
        let pool = WorkspacePool::new();
        self.run_auction_phase_streams_with(
            job,
            asks,
            master_seed,
            streams::default_threads(),
            &mut ws,
            &pool,
            &mut NoopObserver,
        )
    }

    /// The fully general per-type-streams auction phase: caller-provided
    /// thread count, primary workspace, per-worker [`WorkspacePool`], and
    /// [`AuctionObserver`].
    ///
    /// Task types draw from independent RNG streams
    /// ([`streams::stream_seed`]) and run on up to `threads` worker threads
    /// (`threads <= 1` runs them on the calling thread). **The outcome and
    /// the observed event sequence are bit-identical for every thread
    /// count**: workers buffer their per-type round traces, and the merge
    /// step replays them to `observer` in strict type order, exactly as the
    /// serial loop would have emitted them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Rit::run_auction_phase`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_auction_phase_streams_with<O: AuctionObserver>(
        &self,
        job: &Job,
        asks: &[Ask],
        master_seed: u64,
        threads: usize,
        ws: &mut RitWorkspace,
        pool: &WorkspacePool,
        observer: &mut O,
    ) -> Result<AuctionPhaseResult, RitError> {
        let n = asks.len();
        let k_max = self
            .config
            .k_max_override
            .unwrap_or_else(|| asks.iter().map(Ask::quantity).max().unwrap_or(1))
            .max(1);
        let num_types = job.num_types();
        let eta = bounds::per_type_target(self.config.h, num_types.max(1));

        // Budgets resolve serially so a GuaranteeInfeasible error surfaces
        // for the same (first) type regardless of thread count.
        let mut plans = Vec::with_capacity(num_types);
        for (task_type, m_i) in job.iter() {
            let budget = if m_i == 0 {
                None
            } else {
                self.round_budget(task_type, m_i, k_max, eta)?
            };
            plans.push(TypePlan {
                task_type,
                m_i,
                budget,
            });
        }

        // The phase bracket surrounds the real (possibly parallel)
        // execution below, not the later per-type replay of buffered
        // events, so timing observers see actual wall-clock.
        observer.phase_start(num_types);

        let RitWorkspace {
            compact, auction, ..
        } = ws;
        compact.rebuild(num_types, asks, None);
        let views = compact.split_types();

        let workers = threads.max(1).min(num_types.max(1));
        let runs: Vec<TypeRun> = if workers <= 1 {
            views
                .into_iter()
                .zip(&plans)
                .map(|(mut view, plan)| {
                    let seed = streams::stream_seed(master_seed, view.type_index());
                    let mut rng = SmallRng::seed_from_u64(seed);
                    self.run_type_stream(&mut view, plan, auction, &mut rng)
                })
                .collect()
        } else {
            let slots: Vec<Mutex<Option<TypeAsksView<'_>>>> =
                views.into_iter().map(|v| Mutex::new(Some(v))).collect();
            let results: Vec<Mutex<Option<TypeRun>>> =
                (0..num_types).map(|_| Mutex::new(None)).collect();
            let next = AtomicUsize::new(0);
            let (slots_ref, results_ref, next_ref, plans_ref) = (&slots, &results, &next, &plans);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move || {
                        let mut pooled = pool.acquire();
                        loop {
                            let t = next_ref.fetch_add(1, Ordering::Relaxed);
                            if t >= num_types {
                                break;
                            }
                            let mut view = slots_ref[t]
                                .lock()
                                .expect("view slot poisoned")
                                .take()
                                .expect("each view is claimed exactly once");
                            let seed = streams::stream_seed(master_seed, t);
                            let mut rng = SmallRng::seed_from_u64(seed);
                            let run = self.run_type_stream(
                                &mut view,
                                &plans_ref[t],
                                &mut pooled.auction,
                                &mut rng,
                            );
                            *results_ref[t].lock().expect("result slot poisoned") = Some(run);
                        }
                    });
                }
            });
            results
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("result slot poisoned")
                        .expect("workers fill every slot")
                })
                .collect()
        };

        // Merge in type order: scatter winner deltas onto users and replay
        // the buffered observer events exactly as a serial loop would.
        let mut allocation = vec![0u64; n];
        let mut auction_payments = vec![0.0f64; n];
        let mut rounds_used = Vec::with_capacity(num_types);
        let mut unallocated = Vec::with_capacity(num_types);
        for (plan, run) in plans.iter().zip(&runs) {
            if plan.m_i == 0 {
                observer.type_start(plan.task_type, 0, None);
                observer.type_end();
                rounds_used.push(0);
                unallocated.push(0);
                continue;
            }
            observer.type_start(plan.task_type, plan.m_i, plan.budget);
            for round in &run.rounds {
                observer.round(round);
            }
            observer.type_end();
            for &(j, alloc, pay) in &run.deltas {
                allocation[j as usize] += alloc;
                auction_payments[j as usize] += pay;
            }
            rounds_used.push(run.rounds_used);
            unallocated.push(run.unallocated);
        }
        observer.phase_end();

        Ok(AuctionPhaseResult {
            allocation,
            auction_payments,
            rounds_used,
            unallocated,
        })
    }

    /// One task type's round loop over its own [`TypeAsksView`] and RNG
    /// stream — the unit of work both the serial reference path and the
    /// worker threads execute, so the two are identical by construction.
    fn run_type_stream(
        &self,
        view: &mut TypeAsksView<'_>,
        plan: &TypePlan,
        aws: &mut AuctionWorkspace,
        rng: &mut SmallRng,
    ) -> TypeRun {
        if plan.m_i == 0 {
            return TypeRun {
                rounds: Vec::new(),
                rounds_used: 0,
                unallocated: 0,
                deltas: Vec::new(),
            };
        }
        let range = view.run_range();
        let seg_len = range.len();
        let mut alloc = vec![0u64; seg_len];
        let mut pay = vec![0.0f64; seg_len];
        let mut rounds_vec = Vec::new();
        let mut q = plan.m_i;
        let mut rounds = 0u32;
        let mut stall = 0u32;
        while q > 0 && self.may_continue(plan.budget, rounds, stall) {
            if view.active_units() == 0 {
                break;
            }
            let q_before = q;
            let report =
                engine::run_round_type(view, q, plan.m_i, self.config.selection_rule, aws, rng);
            let price = report.clearing_price;
            for &r in aws.winners() {
                let i = (r - range.start) as usize;
                alloc[i] += 1;
                pay[i] += price;
                view.consume(r);
                q -= 1;
            }
            rounds_vec.push(RoundTrace {
                round: rounds,
                q_before,
                unit_asks: usize::try_from(report.unit_asks).unwrap_or(usize::MAX),
                winners: report.num_winners,
                clearing_price: price,
                diagnostics: report.diagnostics,
            });
            rounds += 1;
            stall = if report.num_winners > 0 { 0 } else { stall + 1 };
        }
        let mut deltas = Vec::new();
        for (i, (&a, &p)) in alloc.iter().zip(&pay).enumerate() {
            if a > 0 {
                let user = view.owner(range.start + i as u32) as u32;
                deltas.push((user, a, p));
            }
        }
        TypeRun {
            rounds: rounds_vec,
            rounds_used: rounds,
            unallocated: q,
            deltas,
        }
    }

    /// The single auction-phase implementation: builds the run-length ask
    /// table once, then drives [`engine::run_round`] per type, folding
    /// winners back onto users in place (no per-round re-extraction).
    pub(crate) fn auction_phase_with<R: Rng + ?Sized, O: AuctionObserver>(
        &self,
        job: &Job,
        asks: &[Ask],
        eligible: Option<&[bool]>,
        ws: &mut RitWorkspace,
        observer: &mut O,
        rng: &mut R,
    ) -> Result<AuctionPhaseResult, RitError> {
        let n = asks.len();
        let k_max = self
            .config
            .k_max_override
            .unwrap_or_else(|| asks.iter().map(Ask::quantity).max().unwrap_or(1))
            .max(1);
        let num_types = job.num_types();
        let eta = bounds::per_type_target(self.config.h, num_types.max(1));

        observer.phase_start(num_types);

        // One pass over the asks; afterwards rounds only decrement the
        // per-run `remaining` counters.
        ws.compact.rebuild(num_types, asks, eligible);

        let mut allocation = vec![0u64; n];
        let mut auction_payments = vec![0.0f64; n];
        let mut rounds_used = Vec::with_capacity(num_types);
        let mut unallocated = Vec::with_capacity(num_types);

        for (t, (task_type, m_i)) in job.iter().enumerate() {
            if m_i == 0 {
                observer.type_start(task_type, 0, None);
                observer.type_end();
                rounds_used.push(0);
                unallocated.push(0);
                continue;
            }
            let budget = self.round_budget(task_type, m_i, k_max, eta)?;
            observer.type_start(task_type, m_i, budget);

            let mut q = m_i;
            let mut rounds = 0u32;
            let mut stall = 0u32;
            while q > 0 && self.may_continue(budget, rounds, stall) {
                if ws.compact.active_units(t) == 0 {
                    break;
                }
                let q_before = q;
                let report = engine::run_round(
                    &ws.compact,
                    t,
                    q,
                    m_i,
                    self.config.selection_rule,
                    &mut ws.auction,
                    rng,
                );
                let price = report.clearing_price;
                for &r in ws.auction.winners() {
                    let j = ws.compact.owner(r);
                    allocation[j] += 1;
                    auction_payments[j] += price;
                    ws.compact.consume(t, r);
                    q -= 1;
                }
                observer.round(&RoundTrace {
                    round: rounds,
                    q_before,
                    unit_asks: usize::try_from(report.unit_asks).unwrap_or(usize::MAX),
                    winners: report.num_winners,
                    clearing_price: price,
                    diagnostics: report.diagnostics,
                });
                rounds += 1;
                stall = if report.num_winners > 0 { 0 } else { stall + 1 };
            }
            observer.type_end();
            rounds_used.push(rounds);
            unallocated.push(q);
        }
        observer.phase_end();

        Ok(AuctionPhaseResult {
            allocation,
            auction_payments,
            rounds_used,
            unallocated,
        })
    }

    /// Runs the payment-determination phase (Algorithm 3, Lines 22–28) on an
    /// auction-phase result: on completion, final payments add the weighted
    /// solicitation rewards; otherwise the run is void (Line 27).
    ///
    /// # Panics
    ///
    /// Panics if `asks`/`phase` do not align with the tree's user count.
    #[must_use]
    pub fn determine_final_payments(
        &self,
        tree: &IncentiveTree,
        asks: &[Ask],
        phase: AuctionPhaseResult,
    ) -> RitOutcome {
        let mut ws = RitWorkspace::new();
        self.determine_final_payments_with(tree, asks, phase, &mut ws)
    }

    /// [`Rit::determine_final_payments`] with caller-provided scratch:
    /// identical output, but a warm [`RitWorkspace`] makes the payment
    /// phase allocate only the outcome's own vectors.
    ///
    /// # Panics
    ///
    /// Panics if `asks`/`phase` do not align with the tree's user count.
    #[must_use]
    pub fn determine_final_payments_with(
        &self,
        tree: &IncentiveTree,
        asks: &[Ask],
        phase: AuctionPhaseResult,
        ws: &mut RitWorkspace,
    ) -> RitOutcome {
        let n = tree.num_users();
        assert_eq!(asks.len(), n, "asks must align with tree users");
        assert_eq!(
            phase.auction_payments.len(),
            n,
            "auction phase must align with tree users"
        );
        let completed = phase.completed();
        let AuctionPhaseResult {
            mut allocation,
            auction_payments,
            rounds_used,
            unallocated,
        } = phase;
        let payments = if completed {
            payment::determine_payments_with(tree, asks, &auction_payments, &mut ws.payment)
        } else {
            // Line 27: the job cannot be finished under the desired
            // properties — void the run.
            allocation = vec![0; n];
            vec![0.0; n]
        };
        RitOutcome {
            completed,
            allocation,
            auction_payments,
            payments,
            rounds_used,
            unallocated,
        }
    }

    /// Resolves the per-type round budget according to the configured
    /// [`RoundLimit`]. `None` means "no a-priori budget" (until-stall mode).
    fn round_budget(
        &self,
        task_type: rit_model::TaskTypeId,
        m_i: u64,
        k_max: u64,
        eta: f64,
    ) -> Result<Option<u32>, RitError> {
        match self.config.round_limit {
            RoundLimit::Paper(worst_case) => {
                let q = match worst_case {
                    WorstCaseQ::Zero => 0,
                    WorstCaseQ::FirstRound => m_i,
                };
                let beta = bounds::cra_truthfulness_bound(q, m_i, k_max, self.config.log_base);
                match bounds::max_rounds(beta, eta) {
                    None => Err(RitError::GuaranteeInfeasible {
                        task_type,
                        tasks: m_i,
                        k_max,
                    }),
                    Some(max) => Ok(Some(max)),
                }
            }
            RoundLimit::Fixed(max) => Ok(Some(max)),
            RoundLimit::UntilStall { .. } => Ok(None),
        }
    }

    fn may_continue(&self, budget: Option<u32>, rounds: u32, stall: u32) -> bool {
        match (self.config.round_limit, budget) {
            (
                RoundLimit::UntilStall {
                    max_rounds,
                    max_stall,
                },
                _,
            ) => rounds < max_rounds && stall < max_stall,
            (_, Some(max)) => rounds < max,
            (_, None) => unreachable!("paper/fixed limits always produce a budget"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_model::{TaskTypeId, UserProfile};
    use rit_tree::generate;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    /// A scenario large enough for the paper budget to be positive:
    /// one type, mᵢ tasks, `n` users of capacity ≤ k each.
    fn scenario(n: usize, m_i: u64, seed: u64) -> (Job, IncentiveTree, Vec<Ask>, Vec<UserProfile>) {
        let mut r = rng(seed);
        let job = Job::from_counts(vec![m_i]).unwrap();
        let tree = generate::uniform_recursive(n, &mut r);
        let config = rit_model::workload::WorkloadConfig {
            num_types: 1,
            capacity_max: 5,
            cost_max: 10.0,
        };
        let pop = config.sample_population(n, &mut r).unwrap();
        let asks = pop.truthful_asks().into_vec();
        (job, tree, asks, pop.as_slice().to_vec())
    }

    #[test]
    fn rejects_bad_h() {
        assert!(Rit::new(RitConfig {
            h: 0.0,
            ..RitConfig::default()
        })
        .is_err());
    }

    #[test]
    fn rejects_ask_mismatch() {
        let rit = Rit::new(RitConfig::default()).unwrap();
        let job = Job::from_counts(vec![1]).unwrap();
        let tree = generate::star(3);
        let asks = vec![Ask::new(TaskTypeId::new(0), 1, 1.0).unwrap()];
        assert!(matches!(
            rit.run(&job, &tree, &asks, &mut rng(1)),
            Err(RitError::AskCountMismatch { asks: 1, users: 3 })
        ));
    }

    #[test]
    fn infeasible_guarantee_reported() {
        // 10 tasks, K_max = 20 ⇒ 2K ≥ q + mᵢ under the strict reading.
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::Paper(WorstCaseQ::Zero),
            ..RitConfig::default()
        })
        .unwrap();
        let job = Job::from_counts(vec![10]).unwrap();
        let tree = generate::star(2);
        let asks = vec![
            Ask::new(TaskTypeId::new(0), 20, 1.0).unwrap(),
            Ask::new(TaskTypeId::new(0), 5, 1.0).unwrap(),
        ];
        assert!(matches!(
            rit.run(&job, &tree, &asks, &mut rng(1)),
            Err(RitError::GuaranteeInfeasible { k_max: 20, .. })
        ));
    }

    #[test]
    fn completed_run_allocates_exactly_the_job() {
        let (job, tree, asks, _) = scenario(2000, 500, 42);
        let rit = Rit::new(RitConfig::default()).unwrap();
        let mut completed_runs = 0;
        for seed in 0..20 {
            let out = rit.run(&job, &tree, &asks, &mut rng(seed)).unwrap();
            if out.completed() {
                completed_runs += 1;
                assert_eq!(out.total_allocated(), 500);
                assert_eq!(out.unallocated(), &[0]);
            } else {
                assert_eq!(out.total_allocated(), 0);
                assert_eq!(out.total_payment(), 0.0);
            }
        }
        assert!(completed_runs > 0, "expected at least one completed run");
    }

    #[test]
    fn winners_never_exceed_claimed_quantity() {
        let (job, tree, asks, _) = scenario(1500, 400, 7);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let out = rit.run(&job, &tree, &asks, &mut rng(3)).unwrap();
        if out.completed() {
            for (j, &x) in out.allocation().iter().enumerate() {
                assert!(x <= asks[j].quantity());
            }
        }
    }

    #[test]
    fn individual_rationality_on_completion() {
        // Theorem 1: with truthful asks, every user's utility is ≥ 0.
        let (job, tree, asks, profiles) = scenario(1500, 300, 11);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        for seed in 0..10 {
            let out = rit.run(&job, &tree, &asks, &mut rng(seed)).unwrap();
            for (j, p) in profiles.iter().enumerate() {
                assert!(
                    out.utility(j, p.unit_cost()) >= -1e-9,
                    "user {j} has negative utility"
                );
            }
        }
    }

    #[test]
    fn auction_payment_covers_cost_per_user() {
        // Lemma 6.1: p^Aⱼ ≥ xⱼ·aⱼ for truthful asks.
        let (job, tree, asks, _) = scenario(1200, 250, 13);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let out = rit.run(&job, &tree, &asks, &mut rng(5)).unwrap();
        if out.completed() {
            #[allow(clippy::needless_range_loop)]
            for j in 0..asks.len() {
                let cost = out.allocation()[j] as f64 * asks[j].unit_price();
                assert!(
                    out.auction_payments()[j] >= cost - 1e-9,
                    "user {j}: p^A {} < cost {cost}",
                    out.auction_payments()[j]
                );
            }
        }
    }

    #[test]
    fn multi_type_jobs_allocate_per_type() {
        let mut r = rng(17);
        let job = Job::from_counts(vec![200, 300, 0]).unwrap();
        let tree = generate::uniform_recursive(3000, &mut r);
        let config = rit_model::workload::WorkloadConfig {
            num_types: 3,
            capacity_max: 4,
            cost_max: 10.0,
        };
        let pop = config.sample_population(3000, &mut r).unwrap();
        let asks = pop.truthful_asks().into_vec();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let out = rit.run(&job, &tree, &asks, &mut r).unwrap();
        assert_eq!(out.rounds_used().len(), 3);
        assert_eq!(out.unallocated().len(), 3);
        assert_eq!(out.rounds_used()[2], 0, "empty type runs no rounds");
        if out.completed() {
            // Per-type totals match the job exactly.
            let mut per_type = vec![0u64; 3];
            for (j, &x) in out.allocation().iter().enumerate() {
                per_type[asks[j].task_type().index()] += x;
            }
            assert_eq!(per_type, vec![200, 300, 0]);
        }
    }

    #[test]
    fn failed_run_is_void() {
        // Demand exceeds total capacity: can never complete.
        let job = Job::from_counts(vec![100]).unwrap();
        let tree = generate::star(3);
        let asks: Vec<Ask> = (0..3)
            .map(|_| Ask::new(TaskTypeId::new(0), 2, 1.0).unwrap())
            .collect();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let out = rit.run(&job, &tree, &asks, &mut rng(1)).unwrap();
        assert!(!out.completed());
        assert_eq!(out.total_allocated(), 0);
        assert_eq!(out.total_payment(), 0.0);
        assert!(out.unallocated()[0] > 0);
    }

    #[test]
    fn fixed_round_limit_respected() {
        let (job, tree, asks, _) = scenario(800, 200, 23);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::Fixed(1),
            ..RitConfig::default()
        })
        .unwrap();
        let out = rit.run(&job, &tree, &asks, &mut rng(2)).unwrap();
        assert!(out.rounds_used().iter().all(|&r| r <= 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let (job, tree, asks, _) = scenario(600, 150, 29);
        let rit = Rit::new(RitConfig::default()).unwrap();
        let a = rit.run(&job, &tree, &asks, &mut rng(9)).unwrap();
        let b = rit.run(&job, &tree, &asks, &mut rng(9)).unwrap();
        assert_eq!(a, b);
        // A caller-provided workspace is pure capacity: same outcome.
        let mut ws = crate::RitWorkspace::new();
        let c = rit
            .run_with_workspace(&job, &tree, &asks, &mut ws, &mut rng(9))
            .unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        // Run scenario A, a differently shaped B, then A again through ONE
        // workspace; every outcome must equal a fresh-workspace run.
        let (job_a, tree_a, asks_a, _) = scenario(500, 120, 41);
        let mut r = rng(43);
        let job_b = Job::from_counts(vec![40, 0, 60]).unwrap();
        let tree_b = generate::uniform_recursive(300, &mut r);
        let config = rit_model::workload::WorkloadConfig {
            num_types: 3,
            capacity_max: 3,
            cost_max: 8.0,
        };
        let asks_b = config
            .sample_population(300, &mut r)
            .unwrap()
            .truthful_asks()
            .into_vec();

        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let mut ws = crate::RitWorkspace::new();
        for (seed, (job, tree, asks)) in [
            (51u64, (&job_a, &tree_a, &asks_a)),
            (52, (&job_b, &tree_b, &asks_b)),
            (53, (&job_a, &tree_a, &asks_a)),
        ] {
            let warm = rit
                .run_with_workspace(job, tree, asks, &mut ws, &mut rng(seed))
                .unwrap();
            let fresh = rit.run(job, tree, asks, &mut rng(seed)).unwrap();
            assert_eq!(warm, fresh, "dirty workspace perturbed seed {seed}");
        }
    }

    #[test]
    fn traced_run_matches_untraced_and_is_coherent() {
        let (job, _tree, asks, _) = scenario(900, 200, 37);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let plain = rit.run_auction_phase(&job, &asks, &mut rng(6)).unwrap();
        let (traced, traces) = rit
            .run_auction_phase_traced(&job, &asks, &mut rng(6))
            .unwrap();
        assert_eq!(plain, traced, "tracing must not perturb randomness");
        assert_eq!(traces.len(), job.num_types());
        for (trace, (&rounds, &unalloc)) in traces
            .iter()
            .zip(traced.rounds_used.iter().zip(&traced.unallocated))
        {
            assert_eq!(trace.rounds.len() as u32, rounds);
            assert_eq!(trace.allocated(), trace.tasks - unalloc);
            // Expenditure per type sums to the users' auction payments.
        }
        let total_expenditure: f64 = traces.iter().map(|t| t.expenditure()).sum();
        let total_payments: f64 = traced.auction_payments.iter().sum();
        assert!((total_expenditure - total_payments).abs() < 1e-6);
        // Round indices increase and q decreases monotonically.
        for t in &traces {
            for (i, r) in t.rounds.iter().enumerate() {
                assert_eq!(r.round as usize, i);
            }
            for w in t.rounds.windows(2) {
                assert!(w[1].q_before <= w[0].q_before);
            }
        }
    }

    #[test]
    fn streams_phase_is_thread_count_invariant() {
        let mut r = rng(61);
        let job = Job::from_counts(vec![120, 0, 180, 90]).unwrap();
        let config = rit_model::workload::WorkloadConfig {
            num_types: 4,
            capacity_max: 4,
            cost_max: 10.0,
        };
        let asks = config
            .sample_population(2500, &mut r)
            .unwrap()
            .truthful_asks()
            .into_vec();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let pool = WorkspacePool::new();
        let mut obs_serial = TraceObserver::new();
        let mut ws = crate::RitWorkspace::new();
        let serial = rit
            .run_auction_phase_streams_with(&job, &asks, 77, 1, &mut ws, &pool, &mut obs_serial)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let mut obs = TraceObserver::new();
            let mut ws = crate::RitWorkspace::new();
            let parallel = rit
                .run_auction_phase_streams_with(&job, &asks, 77, threads, &mut ws, &pool, &mut obs)
                .unwrap();
            assert_eq!(serial, parallel, "{threads} threads diverged from serial");
            assert_eq!(
                obs_serial.traces(),
                obs.traces(),
                "{threads}-thread observer stream diverged"
            );
        }
        // Zero-task type produced an empty trace in position 1.
        assert_eq!(obs_serial.traces()[1].tasks, 0);
        assert!(obs_serial.traces()[1].rounds.is_empty());
    }

    #[test]
    fn run_seeded_legacy_matches_run() {
        let (job, tree, asks, _) = scenario(700, 150, 67);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let legacy = rit
            .run_seeded(&job, &tree, &asks, RngMode::SharedLegacy, 9)
            .unwrap();
        let direct = rit.run(&job, &tree, &asks, &mut rng(9)).unwrap();
        assert_eq!(legacy, direct);
        // The streams mode completes and is reproducible (but is a
        // different, equally valid draw sequence).
        let s1 = rit
            .run_seeded(&job, &tree, &asks, RngMode::PerTypeStreams, 9)
            .unwrap();
        let s2 = rit
            .run_seeded(&job, &tree, &asks, RngMode::PerTypeStreams, 9)
            .unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn streams_phase_respects_budgets_and_guarantee_errors() {
        // Infeasible paper budget surfaces identically in streams mode.
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::Paper(WorstCaseQ::Zero),
            ..RitConfig::default()
        })
        .unwrap();
        let job = Job::from_counts(vec![10]).unwrap();
        let asks = vec![
            Ask::new(TaskTypeId::new(0), 20, 1.0).unwrap(),
            Ask::new(TaskTypeId::new(0), 5, 1.0).unwrap(),
        ];
        assert!(matches!(
            rit.run_auction_phase_streams(&job, &asks, 1),
            Err(RitError::GuaranteeInfeasible { k_max: 20, .. })
        ));
    }

    #[test]
    fn payment_sums_auction_plus_solicitation() {
        let (job, tree, asks, _) = scenario(1000, 200, 31);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let out = rit.run(&job, &tree, &asks, &mut rng(4)).unwrap();
        if out.completed() {
            // p = p^A + solicitation, and the §7 bound Σ(p−p^A) ≤ Σ p^A.
            let extra: f64 = out.solicitation_rewards().iter().sum();
            assert!(extra >= -1e-9);
            assert!(extra <= out.total_auction_payment() + 1e-9);
            // Single-type job ⇒ all descendants share the type ⇒ no rewards.
            assert!(extra < 1e-9);
        }
    }
}
