//! RNG stream derivation for the scaled-out auction phase.
//!
//! The auction phase's type loop is embarrassingly parallel — the paper's
//! per-type round budget (Algorithm 3, Line 7) is computed type-locally and
//! [`rit_auction::engine::CompactAsks::split_types`] hands each type a
//! disjoint mutable view — *except* for the single shared RNG, whose draw
//! order serializes the types. This module removes that coupling:
//! [`RngMode::PerTypeStreams`] gives every task type its own deterministic
//! [`rand::rngs::SmallRng`] stream, seeded by [`stream_seed`] from the
//! master seed and the type index. Streams never interact, so running the
//! types on 1 thread or 8 produces **bit-identical** outcomes — the
//! determinism contract the `parallel_equivalence` tests pin.
//!
//! [`RngMode::SharedLegacy`] keeps the original single-stream draw order
//! (types served sequentially from one RNG), so every committed golden
//! trace and equivalence test is untouched. The two modes intentionally
//! produce *different* (both valid) outcomes for the same master seed;
//! bit-identity is guaranteed within a mode, never across modes.
//!
//! Seed derivation uses the same FNV-1a 64-bit hash as
//! `rit_telemetry::manifest` (duplicated here because the dependency points
//! the other way; reference-vector tests pin the two implementations to
//! each other).

use std::fmt;
use std::num::NonZeroUsize;
use std::str::FromStr;

/// Environment variable overriding the worker-thread count of the
/// per-type-streams auction phase (same variable the simulation harness
/// honors for replication-level parallelism).
pub const THREADS_ENV: &str = "RIT_THREADS";

/// How the auction phase consumes randomness across task types.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RngMode {
    /// One RNG shared by all types, drawn in type order — the original
    /// serial draw order. Reproduces every historical trace; cannot run
    /// types concurrently.
    #[default]
    SharedLegacy,
    /// One derived RNG stream per task type ([`stream_seed`]). Outcomes are
    /// independent of the thread count, enabling the parallel phase.
    PerTypeStreams,
}

impl RngMode {
    /// Every mode, in CLI listing order.
    pub const ALL: [RngMode; 2] = [RngMode::SharedLegacy, RngMode::PerTypeStreams];

    /// The CLI token for this mode (`legacy` / `streams`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RngMode::SharedLegacy => "legacy",
            RngMode::PerTypeStreams => "streams",
        }
    }
}

impl fmt::Display for RngMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for RngMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy" | "shared" => Ok(RngMode::SharedLegacy),
            "streams" | "per-type" => Ok(RngMode::PerTypeStreams),
            other => Err(format!(
                "unknown rng mode '{other}' (expected 'legacy' or 'streams')"
            )),
        }
    }
}

/// FNV-1a 64-bit — the same hash `rit_telemetry::manifest` uses for config
/// hashing, duplicated because `rit-core` sits below the telemetry crate.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The RNG seed of task type `type_index` under
/// [`RngMode::PerTypeStreams`]: FNV-1a over the little-endian bytes of the
/// master seed followed by those of the type index.
#[must_use]
pub fn stream_seed(master_seed: u64, type_index: usize) -> u64 {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&master_seed.to_le_bytes());
    bytes[8..].copy_from_slice(&(type_index as u64).to_le_bytes());
    fnv1a64(&bytes)
}

/// Process-wide thread-count override (0 = unset). Set by CLI `--threads`
/// flags; takes precedence over [`THREADS_ENV`].
static THREAD_OVERRIDE: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Installs (or with `0` clears) a process-wide worker-thread override that
/// wins over [`THREADS_ENV`] in [`default_threads`]. CLI `--threads` flags
/// call this so an explicit flag beats an inherited environment variable.
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, std::sync::atomic::Ordering::Relaxed);
}

/// The worker-thread count the per-type-streams phase uses when the caller
/// does not pass one explicitly: a [`set_thread_override`] value if
/// installed, else a positive integer in [`THREADS_ENV`] if set, otherwise
/// the machine's available parallelism.
///
/// Thread count never affects outcomes in
/// [`RngMode::PerTypeStreams`] — only wall-clock time.
#[must_use]
pub fn default_threads() -> usize {
    match THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => {}
        n => return n,
    }
    match std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        Some(n) => n,
        None => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_reference_vectors() {
        // Pins this copy to `rit_telemetry::manifest::fnv1a64` (same
        // vectors tested there).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let s0 = stream_seed(42, 0);
        let s1 = stream_seed(42, 1);
        let t0 = stream_seed(43, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, t0);
        assert_eq!(s0, stream_seed(42, 0));
        // The derivation is part of the persisted determinism contract:
        // pin one value so it cannot drift silently.
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&42u64.to_le_bytes());
        bytes[8..].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(s0, fnv1a64(&bytes));
    }

    #[test]
    fn rng_mode_round_trips_through_strings() {
        for mode in RngMode::ALL {
            assert_eq!(mode.to_string().parse::<RngMode>().unwrap(), mode);
        }
        assert_eq!("shared".parse::<RngMode>().unwrap(), RngMode::SharedLegacy);
        assert_eq!(
            "per-type".parse::<RngMode>().unwrap(),
            RngMode::PerTypeStreams
        );
        assert!("turbo".parse::<RngMode>().is_err());
        assert_eq!(RngMode::default(), RngMode::SharedLegacy);
    }
}
