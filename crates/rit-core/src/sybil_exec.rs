//! Executing §3-B sybil attacks against a full mechanism scenario.
//!
//! The ask-rewriting itself lives in [`rit_adversary`] (shared by every
//! attack experiment); this module keeps the mechanism-facing view: a
//! drop-in `(tree, asks)` pair for [`crate::Rit::run`] plus the bookkeeping
//! needed to total the attacker's utility across its identities under a
//! [`RitOutcome`].

use rand::Rng;

use rit_model::Ask;
use rit_tree::sybil::SybilPlan;
use rit_tree::IncentiveTree;

use crate::{RitError, RitOutcome};

/// A scenario after a sybil attack: the transformed tree, the full ask
/// vector, and which user indices belong to the attacker.
#[derive(Clone, Debug)]
pub struct AttackScenario {
    /// The post-attack incentive tree.
    pub tree: IncentiveTree,
    /// The post-attack ask vector (aligned with `tree`'s user nodes).
    pub asks: Vec<Ask>,
    /// User indices of the attacker's identities.
    pub identity_users: Vec<usize>,
}

impl AttackScenario {
    /// Total utility the attacker collects across all identities under
    /// `outcome`, given the attacker's true unit cost
    /// (`Σ_l p_{j_l} − Σ_l x_{j_l}·cⱼ`, §3-B).
    #[must_use]
    pub fn attacker_utility(&self, outcome: &RitOutcome, unit_cost: f64) -> f64 {
        self.identity_users
            .iter()
            .map(|&u| outcome.utility(u, unit_cost))
            .sum()
    }

    /// Total tasks allocated to the attacker across identities.
    #[must_use]
    pub fn attacker_allocation(&self, outcome: &RitOutcome) -> u64 {
        self.identity_users
            .iter()
            .map(|&u| outcome.allocation()[u])
            .sum()
    }
}

/// Applies a sybil attack to a `(tree, asks)` scenario.
///
/// `victim_user` is the attacker's user index; `identity_asks` are the asks
/// its `δ` identities will submit (all must share the victim's task type —
/// the paper's `t_{j_l} = t_j` assumption — and there must be exactly
/// `plan.num_identities` of them). The *caller* is responsible for keeping
/// `Σ k_{j_l}` within the attacker's true capacity, which the platform
/// cannot observe.
///
/// # Errors
///
/// Propagates tree-transformation errors ([`RitError::Tree`]).
///
/// # Panics
///
/// Panics if `identity_asks.len() != plan.num_identities`, if any identity
/// ask changes task type, or if `victim_user` is out of range.
pub fn apply_attack<R: Rng + ?Sized>(
    tree: &IncentiveTree,
    asks: &[Ask],
    victim_user: usize,
    identity_asks: &[Ask],
    plan: &SybilPlan,
    rng: &mut R,
) -> Result<AttackScenario, RitError> {
    let sc = rit_adversary::apply_sybil_attack(tree, asks, victim_user, identity_asks, plan, rng)
        .map_err(RitError::from)?;
    Ok(AttackScenario {
        tree: sc.tree,
        asks: sc.asks,
        identity_users: sc.identity_users,
    })
}

/// Builds `δ` identity asks that split `total_quantity` uniformly at random
/// into positive parts, all at the same `unit_price` — the Lemma 6.4
/// equal-ask attack and the Fig 9 generator.
///
/// # Panics
///
/// Panics if `delta == 0`, `total_quantity < delta`, or `unit_price` is
/// invalid.
#[must_use]
pub fn uniform_identity_asks<R: Rng + ?Sized>(
    task_type: rit_model::TaskTypeId,
    total_quantity: u64,
    delta: usize,
    unit_price: f64,
    rng: &mut R,
) -> Vec<Ask> {
    rit_adversary::uniform_identity_asks(task_type, total_quantity, delta, unit_price, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_model::TaskTypeId;
    use rit_tree::generate;

    fn t0() -> TaskTypeId {
        TaskTypeId::new(0)
    }

    fn base() -> (IncentiveTree, Vec<Ask>) {
        let tree = generate::path(4);
        let asks = vec![
            Ask::new(t0(), 3, 2.0).unwrap(),
            Ask::new(t0(), 4, 3.0).unwrap(),
            Ask::new(TaskTypeId::new(1), 2, 1.0).unwrap(),
            Ask::new(t0(), 1, 5.0).unwrap(),
        ];
        (tree, asks)
    }

    #[test]
    fn attack_rewrites_tree_and_asks() {
        let (tree, asks) = base();
        let mut rng = SmallRng::seed_from_u64(1);
        let identity_asks = vec![
            Ask::new(t0(), 2, 3.0).unwrap(),
            Ask::new(t0(), 2, 6.0).unwrap(),
        ];
        let sc = apply_attack(
            &tree,
            &asks,
            1,
            &identity_asks,
            &SybilPlan::chain(2),
            &mut rng,
        )
        .unwrap();
        assert_eq!(sc.tree.num_users(), 5);
        assert_eq!(sc.asks.len(), 5);
        // Victim slot holds the first identity's ask; appended slot the second.
        assert_eq!(sc.asks[1].quantity(), 2);
        assert_eq!(sc.asks[1].unit_price(), 3.0);
        assert_eq!(sc.asks[4].unit_price(), 6.0);
        assert_eq!(sc.identity_users, vec![1, 4]);
        // Non-victims untouched.
        assert_eq!(sc.asks[0], asks[0]);
        assert_eq!(sc.asks[2], asks[2]);
        assert_eq!(sc.asks[3], asks[3]);
    }

    #[test]
    fn attacker_utility_sums_identities() {
        let (tree, asks) = base();
        let mut rng = SmallRng::seed_from_u64(2);
        let identity_asks = uniform_identity_asks(t0(), 4, 2, 3.0, &mut rng);
        let sc = apply_attack(
            &tree,
            &asks,
            1,
            &identity_asks,
            &SybilPlan::star(2),
            &mut rng,
        )
        .unwrap();
        let outcome = RitOutcome {
            completed: true,
            allocation: vec![0, 2, 0, 0, 1],
            auction_payments: vec![0.0, 8.0, 0.0, 0.0, 4.0],
            payments: vec![0.0, 9.0, 0.0, 0.0, 4.0],
            rounds_used: vec![1],
            unallocated: vec![0],
        };
        // Identities are users 1 and 4: (9 − 2·3) + (4 − 1·3) = 3 + 1 = 4.
        assert_eq!(sc.attacker_utility(&outcome, 3.0), 4.0);
        assert_eq!(sc.attacker_allocation(&outcome), 3);
    }

    #[test]
    #[should_panic(expected = "task type")]
    fn identities_cannot_switch_type() {
        let (tree, asks) = base();
        let mut rng = SmallRng::seed_from_u64(3);
        let bad = vec![
            Ask::new(TaskTypeId::new(1), 1, 3.0).unwrap(),
            Ask::new(t0(), 1, 3.0).unwrap(),
        ];
        let _ = apply_attack(&tree, &asks, 1, &bad, &SybilPlan::star(2), &mut rng);
    }

    #[test]
    fn uniform_identity_asks_conserve_quantity() {
        let mut rng = SmallRng::seed_from_u64(4);
        for delta in 1..=6 {
            let asks = uniform_identity_asks(t0(), 12, delta, 2.5, &mut rng);
            assert_eq!(asks.len(), delta);
            assert_eq!(asks.iter().map(Ask::quantity).sum::<u64>(), 12);
            assert!(asks.iter().all(|a| a.unit_price() == 2.5));
        }
    }
}
