//! Execution tracing of the auction phase.
//!
//! Researchers tuning `H`, the round budget, or the recruitment threshold
//! (Remark 6.1) need to see *why* a run allocated what it did: how many
//! rounds each type used, the per-round consensus counts, clearing prices,
//! and where allocation stalled. [`crate::Rit::run_auction_phase_traced`]
//! records one [`RoundTrace`] per CRA invocation; under the hood it is the
//! [`TraceObserver`] attached to the engine loop via
//! [`crate::observer::AuctionObserver`].

use rit_auction::cra::CraDiagnostics;
use rit_model::TaskTypeId;

use crate::observer::AuctionObserver;

/// One CRA round within the auction phase.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundTrace {
    /// Round index within this task type (0-based).
    pub round: u32,
    /// Unallocated tasks `q` before this round.
    pub q_before: u64,
    /// Number of unit asks extracted for this round.
    pub unit_asks: usize,
    /// Winners selected this round.
    pub winners: usize,
    /// Uniform clearing price paid this round (0 if no winners).
    pub clearing_price: f64,
    /// CRA internals (sample, threshold, consensus count).
    pub diagnostics: CraDiagnostics,
}

/// The auction-phase history of one task type.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeTrace {
    /// The task type.
    pub task_type: TaskTypeId,
    /// Tasks requested (`mᵢ`).
    pub tasks: u64,
    /// The a-priori round budget (`None` in until-stall mode).
    pub budget: Option<u32>,
    /// Per-round records, in execution order.
    pub rounds: Vec<RoundTrace>,
}

impl TypeTrace {
    /// Tasks allocated across all rounds.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.rounds.iter().map(|r| r.winners as u64).sum()
    }

    /// Whether this type was fully allocated.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.allocated() == self.tasks
    }

    /// Rounds that selected no winner (empty sample or consensus rounding
    /// to zero) — the "stall" signal of [`crate::RoundLimit::UntilStall`].
    #[must_use]
    pub fn empty_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.winners == 0).count()
    }

    /// Total auction expenditure within this type.
    #[must_use]
    pub fn expenditure(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.winners as f64 * r.clearing_price)
            .sum()
    }
}

/// An [`AuctionObserver`] that records the full auction-phase history: one
/// [`TypeTrace`] per task type, each with its per-round [`RoundTrace`]s.
///
/// [`crate::Rit::run_auction_phase_traced`] is sugar for attaching a fresh
/// `TraceObserver` to [`crate::Rit::run_auction_phase_with`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceObserver {
    traces: Vec<TypeTrace>,
}

impl TraceObserver {
    /// Creates an empty observer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an observer with capacity for `num_types` type traces.
    #[must_use]
    pub fn with_capacity(num_types: usize) -> Self {
        Self {
            traces: Vec::with_capacity(num_types),
        }
    }

    /// The traces recorded so far, one per observed task type.
    #[must_use]
    pub fn traces(&self) -> &[TypeTrace] {
        &self.traces
    }

    /// Consumes the observer, yielding the recorded traces.
    #[must_use]
    pub fn into_traces(self) -> Vec<TypeTrace> {
        self.traces
    }
}

impl AuctionObserver for TraceObserver {
    fn type_start(&mut self, task_type: TaskTypeId, tasks: u64, budget: Option<u32>) {
        self.traces.push(TypeTrace {
            task_type,
            tasks,
            budget,
            rounds: Vec::new(),
        });
    }

    fn round(&mut self, round: &RoundTrace) {
        self.traces
            .last_mut()
            .expect("type_start precedes every round")
            .rounds
            .push(round.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(winners: usize, price: f64) -> RoundTrace {
        RoundTrace {
            round: 0,
            q_before: 10,
            unit_asks: 100,
            winners,
            clearing_price: price,
            diagnostics: CraDiagnostics::default(),
        }
    }

    #[test]
    fn type_trace_aggregates() {
        let t = TypeTrace {
            task_type: TaskTypeId::new(1),
            tasks: 7,
            budget: Some(3),
            rounds: vec![round(5, 2.0), round(0, 0.0), round(2, 3.0)],
        };
        assert_eq!(t.allocated(), 7);
        assert!(t.completed());
        assert_eq!(t.empty_rounds(), 1);
        assert_eq!(t.expenditure(), 16.0);
    }

    #[test]
    fn trace_observer_groups_rounds_under_types() {
        let mut obs = TraceObserver::with_capacity(2);
        obs.type_start(TaskTypeId::new(0), 5, Some(4));
        obs.round(&round(3, 2.0));
        obs.round(&round(2, 1.5));
        obs.type_end();
        obs.type_start(TaskTypeId::new(1), 0, None);
        obs.type_end();
        assert_eq!(obs.traces().len(), 2);
        assert_eq!(obs.traces()[0].rounds.len(), 2);
        assert_eq!(obs.traces()[0].allocated(), 5);
        assert!(obs.traces()[1].rounds.is_empty());
        let traces = obs.into_traces();
        assert_eq!(traces[1].task_type, TaskTypeId::new(1));
    }

    #[test]
    fn incomplete_trace() {
        let t = TypeTrace {
            task_type: TaskTypeId::new(0),
            tasks: 9,
            budget: None,
            rounds: vec![round(4, 1.0)],
        };
        assert!(!t.completed());
        assert_eq!(t.allocated(), 4);
    }
}
