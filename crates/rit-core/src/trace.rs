//! Execution tracing of the auction phase.
//!
//! Researchers tuning `H`, the round budget, or the recruitment threshold
//! (Remark 6.1) need to see *why* a run allocated what it did: how many
//! rounds each type used, the per-round consensus counts, clearing prices,
//! and where allocation stalled. [`crate::Rit::run_auction_phase_traced`]
//! records one [`RoundTrace`] per CRA invocation.

use rit_auction::cra::CraDiagnostics;
use rit_model::TaskTypeId;

/// One CRA round within the auction phase.
#[derive(Clone, Debug, PartialEq)]
pub struct RoundTrace {
    /// Round index within this task type (0-based).
    pub round: u32,
    /// Unallocated tasks `q` before this round.
    pub q_before: u64,
    /// Number of unit asks extracted for this round.
    pub unit_asks: usize,
    /// Winners selected this round.
    pub winners: usize,
    /// Uniform clearing price paid this round (0 if no winners).
    pub clearing_price: f64,
    /// CRA internals (sample, threshold, consensus count).
    pub diagnostics: CraDiagnostics,
}

/// The auction-phase history of one task type.
#[derive(Clone, Debug, PartialEq)]
pub struct TypeTrace {
    /// The task type.
    pub task_type: TaskTypeId,
    /// Tasks requested (`mᵢ`).
    pub tasks: u64,
    /// The a-priori round budget (`None` in until-stall mode).
    pub budget: Option<u32>,
    /// Per-round records, in execution order.
    pub rounds: Vec<RoundTrace>,
}

impl TypeTrace {
    /// Tasks allocated across all rounds.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.rounds.iter().map(|r| r.winners as u64).sum()
    }

    /// Whether this type was fully allocated.
    #[must_use]
    pub fn completed(&self) -> bool {
        self.allocated() == self.tasks
    }

    /// Rounds that selected no winner (empty sample or consensus rounding
    /// to zero) — the "stall" signal of [`crate::RoundLimit::UntilStall`].
    #[must_use]
    pub fn empty_rounds(&self) -> usize {
        self.rounds.iter().filter(|r| r.winners == 0).count()
    }

    /// Total auction expenditure within this type.
    #[must_use]
    pub fn expenditure(&self) -> f64 {
        self.rounds
            .iter()
            .map(|r| r.winners as f64 * r.clearing_price)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round(winners: usize, price: f64) -> RoundTrace {
        RoundTrace {
            round: 0,
            q_before: 10,
            unit_asks: 100,
            winners,
            clearing_price: price,
            diagnostics: CraDiagnostics::default(),
        }
    }

    #[test]
    fn type_trace_aggregates() {
        let t = TypeTrace {
            task_type: TaskTypeId::new(1),
            tasks: 7,
            budget: Some(3),
            rounds: vec![round(5, 2.0), round(0, 0.0), round(2, 3.0)],
        };
        assert_eq!(t.allocated(), 7);
        assert!(t.completed());
        assert_eq!(t.empty_rounds(), 1);
        assert_eq!(t.expenditure(), 16.0);
    }

    #[test]
    fn incomplete_trace() {
        let t = TypeTrace {
            task_type: TaskTypeId::new(0),
            tasks: 9,
            budget: None,
            rounds: vec![round(4, 1.0)],
        };
        assert!(!t.completed());
        assert_eq!(t.allocated(), 4);
    }
}
