//! Reusable scratch state for repeated RIT runs.
//!
//! A [`RitWorkspace`] owns the engine's run-length ask table
//! ([`rit_auction::engine::CompactAsks`]), per-round scratch buffers
//! ([`rit_auction::engine::AuctionWorkspace`]), and the payment phase's
//! Euler-tour scratch ([`crate::payment::PaymentWorkspace`]). Passing the
//! same workspace to [`crate::Rit::run_with_workspace`] across replications
//! (the `R`-loop of every experiment) keeps the buffers warm: after the
//! first run of a scenario shape, the auction phase performs **zero heap
//! allocations per CRA round** and the payment phase allocates only its
//! output vector (both pinned by the `alloc_counting` integration test).
//!
//! Workspaces carry no results — only capacity. Reusing one across
//! different jobs, ask vectors, or eligibility masks is always correct
//! (every run rebuilds the table) and produces bit-identical outcomes to a
//! fresh workspace.
//!
//! When the set of concurrent runners is dynamic (thread pools, request
//! handlers) a [`WorkspacePool`] keeps warm workspaces checked in between
//! runs: [`WorkspacePool::acquire`] hands out a guard that returns its
//! workspace — capacity intact — when dropped.

use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

use rit_auction::engine::{AuctionWorkspace, CompactAsks};

use crate::payment::PaymentWorkspace;

/// Scratch buffers threaded through one mechanism run.
#[derive(Clone, Debug, Default)]
pub struct RitWorkspace {
    /// The run-length unit-ask table, rebuilt at the start of each run.
    pub(crate) compact: CompactAsks,
    /// Per-round CRA scratch (eligible/chosen unit buffers).
    pub(crate) auction: AuctionWorkspace,
    /// Euler-tour query buckets and running-sum snapshots for the
    /// payment-determination phase.
    pub(crate) payment: PaymentWorkspace,
}

impl RitWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A checkout/checkin pool of warm [`RitWorkspace`]s for dynamic sets of
/// concurrent runners. Workspaces carry only capacity, so any checked-in
/// workspace is as good as any other; the pool grows on demand and never
/// shrinks.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    free: Mutex<Vec<RitWorkspace>>,
}

impl WorkspacePool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a workspace (a warm one when available, a fresh one
    /// otherwise). The guard checks it back in on drop.
    ///
    /// # Panics
    ///
    /// Panics if the pool's lock was poisoned by a panicking holder.
    #[must_use]
    pub fn acquire(&self) -> PooledWorkspace<'_> {
        let ws = self
            .free
            .lock()
            .expect("workspace pool poisoned")
            .pop()
            .unwrap_or_default();
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }

    /// Number of workspaces currently checked in.
    ///
    /// # Panics
    ///
    /// Panics if the pool's lock was poisoned by a panicking holder.
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.lock().expect("workspace pool poisoned").len()
    }

    fn release(&self, ws: RitWorkspace) {
        self.free.lock().expect("workspace pool poisoned").push(ws);
    }
}

/// A checked-out workspace; derefs to [`RitWorkspace`] and checks itself
/// back into its [`WorkspacePool`] on drop.
#[derive(Debug)]
pub struct PooledWorkspace<'a> {
    pool: &'a WorkspacePool,
    ws: Option<RitWorkspace>,
}

impl Deref for PooledWorkspace<'_> {
    type Target = RitWorkspace;

    fn deref(&self) -> &RitWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl DerefMut for PooledWorkspace<'_> {
    fn deref_mut(&mut self) -> &mut RitWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl Drop for PooledWorkspace<'_> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.release(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_checked_in_workspaces() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.idle(), 0);
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            assert_eq!(pool.idle(), 0);
        }
        assert_eq!(pool.idle(), 2);
        {
            let _c = pool.acquire();
            assert_eq!(pool.idle(), 1);
        }
        assert_eq!(pool.idle(), 2);
    }
}
