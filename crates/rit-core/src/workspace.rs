//! Reusable scratch state for repeated RIT runs.
//!
//! A [`RitWorkspace`] owns the engine's run-length ask table
//! ([`rit_auction::engine::CompactAsks`]) and per-round scratch buffers
//! ([`rit_auction::engine::AuctionWorkspace`]). Passing the same workspace
//! to [`crate::Rit::run_with_workspace`] across replications (the `R`-loop
//! of every experiment) keeps the buffers warm: after the first run of a
//! scenario shape, the auction phase performs **zero heap allocations per
//! CRA round** (pinned by the `alloc_counting` integration test).
//!
//! Workspaces carry no results — only capacity. Reusing one across
//! different jobs, ask vectors, or eligibility masks is always correct
//! (every run rebuilds the table) and produces bit-identical outcomes to a
//! fresh workspace.

use rit_auction::engine::{AuctionWorkspace, CompactAsks};

/// Scratch buffers threaded through one mechanism run.
#[derive(Clone, Debug, Default)]
pub struct RitWorkspace {
    /// The run-length unit-ask table, rebuilt at the start of each run.
    pub(crate) compact: CompactAsks,
    /// Per-round CRA scratch (eligible/chosen unit buffers).
    pub(crate) auction: AuctionWorkspace,
}

impl RitWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}
