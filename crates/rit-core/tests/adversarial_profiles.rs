//! Failure-injection tests: the mechanism must stay well-behaved on
//! adversarial and degenerate ask profiles — identical prices everywhere,
//! extreme magnitudes, single monopolist sellers, capacity cliffs.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{Rit, RitConfig, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::generate;

fn best_effort() -> Rit {
    Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap()
}

fn t0() -> TaskTypeId {
    TaskTypeId::new(0)
}

#[test]
fn all_identical_prices() {
    // 200 users, all asking exactly 1.0 for 2 tasks each; 100 tasks wanted.
    let n = 200;
    let tree = generate::star(n);
    let asks: Vec<Ask> = (0..n).map(|_| Ask::new(t0(), 2, 1.0).unwrap()).collect();
    let job = Job::from_counts(vec![100]).unwrap();
    let rit = best_effort();
    let mut completed = 0;
    for seed in 0..10 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = rit.run(&job, &tree, &asks, &mut rng).unwrap();
        if out.completed() {
            completed += 1;
            // Uniform price 1.0: payment per task must be exactly 1.0.
            for j in 0..n {
                let x = out.allocation()[j];
                assert!(
                    (out.auction_payments()[j] - x as f64).abs() < 1e-9,
                    "user {j}: paid {} for {x} tasks at unit price 1",
                    out.auction_payments()[j]
                );
            }
        }
    }
    assert!(completed >= 5, "tie-heavy market should mostly complete");
}

#[test]
fn extreme_price_magnitudes() {
    // Prices spanning 12 orders of magnitude must not produce NaN/negative
    // payments or broken totals.
    let n = 120;
    let tree = generate::star(n);
    let asks: Vec<Ask> = (0..n)
        .map(|j| {
            let price = 1e-6 * 10f64.powi((j % 13) as i32);
            Ask::new(t0(), 3, price).unwrap()
        })
        .collect();
    let job = Job::from_counts(vec![60]).unwrap();
    let rit = best_effort();
    let mut rng = SmallRng::seed_from_u64(7);
    let out = rit.run(&job, &tree, &asks, &mut rng).unwrap();
    for j in 0..n {
        assert!(out.payments()[j].is_finite());
        assert!(out.payments()[j] >= 0.0);
        assert!(out.auction_payments()[j].is_finite());
    }
    if out.completed() {
        assert!(out.total_payment().is_finite());
        assert!(out.total_payment() >= 0.0);
    }
}

#[test]
fn monopolist_single_seller() {
    // One user holds the entire supply of τ1; the job needs it.
    let tree = generate::star(50);
    let mut asks: Vec<Ask> = (0..49).map(|_| Ask::new(t0(), 4, 2.0).unwrap()).collect();
    asks.push(Ask::new(TaskTypeId::new(1), 10, 3.0).unwrap());
    let job = Job::from_counts(vec![40, 5]).unwrap();
    let rit = best_effort();
    let mut any_completed = false;
    for seed in 0..30 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = rit.run(&job, &tree, &asks, &mut rng).unwrap();
        if out.completed() {
            any_completed = true;
            // The monopolist supplied all 5 τ1 tasks and is paid ≥ its ask.
            assert_eq!(out.allocation()[49], 5);
            assert!(out.auction_payments()[49] >= 5.0 * 3.0 - 1e-9);
        } else {
            assert_eq!(out.total_payment(), 0.0);
        }
    }
    // A thin single-seller market completes rarely (the consensus count of
    // a 10-ask market often rounds low) — but it must never misallocate.
    let _ = any_completed;
}

#[test]
fn capacity_exactly_at_remark_boundary() {
    // Claimed capacity exactly 2·mᵢ — the Remark 6.1 boundary.
    let n = 40;
    let tree = generate::star(n);
    let asks: Vec<Ask> = (0..n).map(|_| Ask::new(t0(), 2, 1.5).unwrap()).collect();
    let job = Job::from_counts(vec![40]).unwrap(); // claimed = 80 = 2·40
    assert_eq!(
        rit_core::recruitment::capacity_satisfied(&job, &asks),
        Ok(())
    );
    let rit = best_effort();
    let mut rng = SmallRng::seed_from_u64(3);
    let out = rit.run(&job, &tree, &asks, &mut rng).unwrap();
    // Whatever the outcome, invariants hold.
    for j in 0..n {
        assert!(out.allocation()[j] <= 2);
    }
}

#[test]
fn deep_pathological_tree_with_payments() {
    // A 30k-node chain with alternating types: payment determination must
    // neither overflow the stack nor produce NaN from 0.5^30000 underflow.
    let n = 30_000;
    let tree = generate::path(n);
    let asks: Vec<Ask> = (0..n)
        .map(|j| Ask::new(TaskTypeId::new((j % 2) as u32), 1, 1.0).unwrap())
        .collect();
    let pa: Vec<f64> = (0..n).map(|j| (j % 3) as f64).collect();
    let p = rit_core::payment::determine_payments(&tree, &asks, &pa);
    assert_eq!(p.len(), n);
    for (j, &x) in p.iter().enumerate() {
        assert!(x.is_finite(), "payment {j} not finite");
        assert!(x >= pa[j] - 1e-9);
    }
    // Deep contributors' influence underflows to zero, not to NaN: compare
    // the head user against an independent evaluation of the formula
    // (approximately — summation order differs).
    // User 0 has type 0; its contributing descendants are the odd-indexed
    // users (type 1), each at depth j + 1 with weight (1/2)^(j+1).
    let mut expected = pa[0];
    for (j, &c) in pa.iter().enumerate().skip(1) {
        if j % 2 == 1 {
            expected += 0.5f64.powi(j as i32 + 1) * c;
        }
    }
    assert!(
        (p[0] - expected).abs() < 1e-9,
        "head payment {} vs expected {expected}",
        p[0]
    );
}

#[test]
fn job_with_many_zero_types() {
    // 50 types, only two of which request tasks.
    let mut counts = vec![0u64; 50];
    counts[7] = 20;
    counts[31] = 10;
    let job = Job::from_counts(counts).unwrap();
    let n = 300;
    let tree = generate::star(n);
    let asks: Vec<Ask> = (0..n)
        .map(|j| Ask::new(TaskTypeId::new((j % 50) as u32), 5, 1.0 + j as f64 * 0.01).unwrap())
        .collect();
    let rit = best_effort();
    let mut rng = SmallRng::seed_from_u64(11);
    let out = rit.run(&job, &tree, &asks, &mut rng).unwrap();
    assert_eq!(out.rounds_used().len(), 50);
    // Zero-task types run zero rounds.
    for (t, &r) in out.rounds_used().iter().enumerate() {
        if t != 7 && t != 31 {
            assert_eq!(r, 0, "type {t} ran rounds for zero tasks");
        }
    }
}
