//! Equivalence of the adversary-layer probes with the legacy hand-rolled
//! loops, plus property tests of sybil-proofness through the new framework.
//!
//! The probe entry points in `rit_core::probes` are now adapters over
//! `rit_adversary::ProbeRunner`. These tests pin the refactor: the loops
//! this file hand-rolls are verbatim transcriptions of the pre-refactor
//! implementations (fresh reseed per arm, attack randomness drawn before
//! the mechanism continues on the same generator), and the adapter outputs
//! must match them **exactly** — same means, same paired-difference
//! standard error, same verdicts — on fixed seeds.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_adversary::{
    AttackSuite, BaseScenario, GainReport, NoopAttackObserver, ProbeRunner, SeedSchedule,
};
use rit_core::probes::{ProbeReport, ProbeScenario};
use rit_core::{sybil_exec, Rit, RitConfig, RitError, RitWorkspace, RoundLimit};
use rit_model::workload::WorkloadConfig;
use rit_model::{Ask, Job};
use rit_tree::generate;
use rit_tree::sybil::SybilPlan;

struct World {
    rit: Rit,
    job: Job,
    tree: rit_tree::IncentiveTree,
    asks: Vec<Ask>,
    costs: Vec<f64>,
}

fn world(n: usize, m_i: u64, seed: u64) -> World {
    let mut rng = SmallRng::seed_from_u64(seed);
    let config = WorkloadConfig {
        num_types: 3,
        capacity_max: 6,
        cost_max: 10.0,
    };
    let pop = config.sample_population(n, &mut rng).unwrap();
    let tree = generate::preferential(n, &mut rng);
    let asks = pop.truthful_asks().into_vec();
    let costs = pop.iter().map(|u| u.unit_cost()).collect();
    let job = Job::uniform(3, m_i).unwrap();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();
    World {
        rit,
        job,
        tree,
        asks,
        costs,
    }
}

/// The legacy probe seed schedule, transcribed.
fn legacy_rng(seed: u64, r: usize) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ (r as u64).wrapping_mul(0x9E37))
}

/// The legacy honest arm, transcribed: fresh reseed per replication, one
/// reused workspace.
fn legacy_honest(w: &World, user: usize, runs: usize, seed: u64) -> Vec<f64> {
    let mut ws = RitWorkspace::new();
    (0..runs)
        .map(|r| {
            let mut rng = legacy_rng(seed, r);
            let out = w
                .rit
                .run_with_workspace(&w.job, &w.tree, &w.asks, &mut ws, &mut rng)
                .unwrap();
            out.utility(user, w.costs[user])
        })
        .collect()
}

#[test]
fn price_probe_matches_legacy_loop_exactly() {
    let w = world(300, 50, 41);
    let user = (0..w.asks.len())
        .find(|&j| w.asks[j].quantity() >= 3)
        .unwrap();
    let (runs, seed, factor) = (10, 5, 1.4);

    // Legacy deviant arm: rewrite the ask up front, reseed per replication.
    let honest = legacy_honest(&w, user, runs, seed);
    let mut asks = w.asks.clone();
    asks[user] = asks[user]
        .with_unit_price(asks[user].unit_price() * factor)
        .unwrap();
    let mut ws = RitWorkspace::new();
    let deviant: Vec<f64> = (0..runs)
        .map(|r| {
            let mut rng = legacy_rng(seed, r);
            let out = w
                .rit
                .run_with_workspace(&w.job, &w.tree, &asks, &mut ws, &mut rng)
                .unwrap();
            out.utility(user, w.costs[user])
        })
        .collect();
    let expected = ProbeReport::from_paired_samples(&honest, &deviant);

    let scenario = ProbeScenario {
        rit: &w.rit,
        job: &w.job,
        tree: &w.tree,
        asks: &w.asks,
        user,
        unit_cost: w.costs[user],
    };
    let got = scenario.price_deviation(factor, runs, seed).unwrap();
    assert_eq!(got, expected);
}

#[test]
fn quantity_probe_matches_legacy_loop_exactly() {
    let w = world(300, 50, 43);
    let user = (0..w.asks.len())
        .find(|&j| w.asks[j].quantity() >= 4)
        .unwrap();
    let (runs, seed) = (10, 13);

    let honest = legacy_honest(&w, user, runs, seed);
    let mut asks = w.asks.clone();
    asks[user] = asks[user].with_quantity(1).unwrap();
    let mut ws = RitWorkspace::new();
    let deviant: Vec<f64> = (0..runs)
        .map(|r| {
            let mut rng = legacy_rng(seed, r);
            let out = w
                .rit
                .run_with_workspace(&w.job, &w.tree, &asks, &mut ws, &mut rng)
                .unwrap();
            out.utility(user, w.costs[user])
        })
        .collect();
    let expected = ProbeReport::from_paired_samples(&honest, &deviant);

    let scenario = ProbeScenario {
        rit: &w.rit,
        job: &w.job,
        tree: &w.tree,
        asks: &w.asks,
        user,
        unit_cost: w.costs[user],
    };
    let got = scenario.quantity_deviation(1, runs, seed).unwrap();
    assert_eq!(got, expected);
}

#[test]
fn sybil_probe_matches_legacy_loop_exactly() {
    let w = world(300, 50, 47);
    let user = (0..w.asks.len())
        .find(|&j| w.asks[j].quantity() >= 4)
        .unwrap();
    let (runs, seed) = (10, 17);
    let plan = SybilPlan::random(3);
    let price = w.asks[user].unit_price();

    // Legacy deviant arm: per replication reseed, draw the quantity split,
    // then the tree rewiring, then run the mechanism — all on one stream.
    let honest = legacy_honest(&w, user, runs, seed);
    let mut ws = RitWorkspace::new();
    let deviant: Vec<f64> = (0..runs)
        .map(|r| {
            let mut rng = legacy_rng(seed, r);
            let identity_asks = sybil_exec::uniform_identity_asks(
                w.asks[user].task_type(),
                w.asks[user].quantity().max(plan.num_identities as u64),
                plan.num_identities,
                price,
                &mut rng,
            );
            let sc =
                sybil_exec::apply_attack(&w.tree, &w.asks, user, &identity_asks, &plan, &mut rng)
                    .unwrap();
            let out = w
                .rit
                .run_with_workspace(&w.job, &sc.tree, &sc.asks, &mut ws, &mut rng)
                .unwrap();
            sc.attacker_utility(&out, w.costs[user])
        })
        .collect();
    let expected = ProbeReport::from_paired_samples(&honest, &deviant);

    let scenario = ProbeScenario {
        rit: &w.rit,
        job: &w.job,
        tree: &w.tree,
        asks: &w.asks,
        user,
        unit_cost: w.costs[user],
    };
    let got = scenario.sybil_deviation(&plan, price, runs, seed).unwrap();
    assert_eq!(got, expected);
}

#[test]
fn suite_verdicts_match_individual_probes_on_fixed_seeds() {
    // The batched AttackSuite pass must reproduce the one-at-a-time probe
    // reports bit for bit: same seeds, same arms, shared honest run.
    let w = world(300, 50, 53);
    let suite = AttackSuite::standard(&w.asks).unwrap();
    let base = BaseScenario {
        tree: &w.tree,
        asks: &w.asks,
        costs: &w.costs,
    };
    let runner = ProbeRunner::new(base, SeedSchedule::Xor { seed: 23 }, 8);
    let mut ws = RitWorkspace::new();
    let mut eval = |view: rit_adversary::ScenarioView<'_>,
                    rng: &mut SmallRng|
     -> Result<rit_adversary::Evaluation, RitError> {
        let out = w
            .rit
            .run_with_workspace(&w.job, view.tree, view.asks, &mut ws, rng)?;
        Ok(out.into())
    };
    let batched = suite
        .run::<RitError, _, _>(&runner, &mut eval, &mut NoopAttackObserver)
        .unwrap();
    assert!(batched.len() >= 4);
    for (di, deviation) in suite.deviations().iter().enumerate() {
        let alone: GainReport = runner.run(deviation.as_ref(), &mut eval).unwrap();
        assert_eq!(batched[di].report, alone, "attack {}", batched[di].name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sybil-proofness through the adversary framework: across random
    /// worlds, identity counts and arrangements, a sybil split never shows
    /// a statistically significant gain (z ≤ 4).
    #[test]
    fn sybil_split_not_profitable_through_framework(
        world_seed in any::<u64>(),
        probe_seed in any::<u64>(),
        delta in 2usize..5,
        arrangement in 0u8..3,
    ) {
        let w = world(200, 40, world_seed);
        let Some(user) = (0..w.asks.len()).find(|&j| w.asks[j].quantity() >= delta as u64)
        else {
            return Ok(());
        };
        let plan = match arrangement {
            0 => SybilPlan::chain(delta),
            1 => SybilPlan::star(delta),
            _ => SybilPlan::random(delta),
        };
        let scenario = ProbeScenario {
            rit: &w.rit,
            job: &w.job,
            tree: &w.tree,
            asks: &w.asks,
            user,
            unit_cost: w.costs[user],
        };
        let report = scenario
            .sybil_deviation(&plan, w.asks[user].unit_price(), 24, probe_seed)
            .unwrap();
        prop_assert!(
            report.deviation_not_profitable(4.0),
            "sybil split won: {report:?}"
        );
    }
}
