//! Pins the engine's allocation discipline: once a [`RitWorkspace`] has run
//! a scenario shape, further auction phases through it perform **no heap
//! allocation per CRA round** — only the handful of output vectors of the
//! phase result itself — and the warm payment phase allocates only its
//! output vector.
//!
//! A counting global allocator wraps the system allocator; the test warms a
//! workspace, then compares the allocation count of a multi-round phase
//! against a small constant that does not scale with the number of rounds.
//! This file deliberately contains a single test so no concurrent test
//! thread pollutes the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::payment::{determine_payments_with, PaymentWorkspace};
use rit_core::{NoopObserver, Rit, RitConfig, RitWorkspace, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::{IncentiveTreeBuilder, NodeId};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_auction_phase_allocates_only_its_outputs() {
    // A deliberately round-heavy scenario: many users, small per-user
    // capacity, a job large enough that allocation takes dozens of rounds.
    //
    // How many rounds a given job size takes depends on the RNG driving the
    // per-round sampling, so a hardcoded (size, seed) pair is brittle: a
    // different `rand` implementation (e.g. the offline stub used in
    // hermetic containers) can clear the same job in a handful of rounds.
    // Instead, *probe* candidate configurations with real (uncounted) runs
    // and pick the first that is demonstrably round-heavy; the counted run
    // then replays that exact configuration.
    let n = 3000usize;
    let make_asks = || -> Vec<Ask> {
        (0..n)
            .map(|j| {
                let k = 1 + (j as u64 * 5) % 3;
                let price = 1.0 + ((j * 17) % 89) as f64 * 0.1;
                Ask::new(TaskTypeId::new(0), k, price).unwrap()
            })
            .collect()
    };
    let asks = make_asks();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();

    let mut probe_ws = RitWorkspace::new();
    let mut probe_rounds = |m: u64, seed: u64| -> u32 {
        let job = Job::from_counts(vec![m]).unwrap();
        let phase = rit
            .run_auction_phase_with(
                &job,
                &asks,
                &mut probe_ws,
                &mut NoopObserver,
                &mut rng(seed),
            )
            .unwrap();
        phase.rounds_used.iter().sum()
    };
    let mut chosen = (600u64, 7u64, 0u32);
    'probe: for m in [600, 1_200, 2_400, 4_000, 5_400] {
        for seed in [7, 0, 1, 2, 3, 4, 5, 6] {
            let rounds = probe_rounds(m, seed);
            if rounds > chosen.2 {
                chosen = (m, seed, rounds);
            }
            if rounds >= 10 {
                break 'probe;
            }
        }
    }
    let (m, seed, expected_rounds) = chosen;
    assert!(
        expected_rounds >= 10,
        "no probed configuration is round-heavy under this RNG: best was \
         {expected_rounds} rounds at job size {m}, seed {seed}"
    );
    let job = Job::from_counts(vec![m]).unwrap();

    // Warm the workspace: first contact with this shape sizes every buffer.
    let mut ws = RitWorkspace::new();
    for warm_seed in 0..2 {
        rit.run_auction_phase_with(&job, &asks, &mut ws, &mut NoopObserver, &mut rng(warm_seed))
            .unwrap();
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let phase = rit
        .run_auction_phase_with(&job, &asks, &mut ws, &mut NoopObserver, &mut rng(seed))
        .unwrap();
    let delta = ALLOCS.load(Ordering::SeqCst) - before;

    let rounds: u32 = phase.rounds_used.iter().sum();
    assert_eq!(
        rounds, expected_rounds,
        "counted run diverged from its own probe replay"
    );
    // The phase result owns 4 vectors (allocation, payments, rounds_used,
    // unallocated). Everything else — sampling, consensus, selection,
    // thinning, winner folding — must reuse workspace memory. Small slack
    // for allocator-internal bookkeeping differences across platforms.
    assert!(
        delta <= 16,
        "warm run allocated {delta} times over {rounds} rounds; engine is leaking per-round allocations"
    );

    // Payment determination over the same phase result: a solicitation tree
    // with mixed depths, warmed once. The warm call owns exactly one vector
    // (the payments themselves); the Euler-tour buckets and running-sum
    // snapshots must come from the workspace.
    let tree = {
        let mut b = IncentiveTreeBuilder::new();
        let mut parent = NodeId::ROOT;
        for j in 0..n {
            let node = b.add_child(parent);
            if j % 3 == 0 {
                parent = node;
            }
        }
        b.build()
    };
    let mut pws = PaymentWorkspace::new();
    let warm = determine_payments_with(&tree, &asks, &phase.auction_payments, &mut pws);

    let before = ALLOCS.load(Ordering::SeqCst);
    let payments = determine_payments_with(&tree, &asks, &phase.auction_payments, &mut pws);
    let delta = ALLOCS.load(Ordering::SeqCst) - before;

    assert_eq!(payments, warm);
    assert!(
        delta <= 4,
        "warm payment determination allocated {delta} times; scratch buffers are not being reused"
    );
}

fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}
