//! Re-pins the allocation discipline *through the generic [`Mechanism`]
//! pipeline*: driving RIT via `Mechanism::evaluate_in` with a warm workspace
//! must allocate only the outcome's own output vectors plus the payment
//! phase's constant scratch — nothing per CRA round. This is the guarantee
//! that lets the sim layers go generic (monomorphized) without giving up the
//! allocation-free hot path.
//!
//! Separate file from `alloc_counting.rs`: each integration-test binary gets
//! its own `#[global_allocator]`, and a single test per file keeps the
//! counter unpolluted.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{Mechanism, Rit, RitConfig, RitWorkspace, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::generate;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_generic_pipeline_allocates_a_round_independent_constant() {
    let n = 3000usize;
    let job = Job::from_counts(vec![600]).unwrap();
    let mut tree_rng = SmallRng::seed_from_u64(0xF00D);
    let tree = generate::uniform_recursive(n, &mut tree_rng);
    let asks: Vec<Ask> = (0..n)
        .map(|j| {
            let k = 1 + (j as u64 * 5) % 3;
            let price = 1.0 + ((j * 17) % 89) as f64 * 0.1;
            Ask::new(TaskTypeId::new(0), k, price).unwrap()
        })
        .collect();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();

    // Warm the workspace through the generic entry point.
    let mut ws = RitWorkspace::new();
    for seed in 0..2 {
        rit.evaluate_in(
            &job,
            &tree,
            &asks,
            None,
            &mut ws,
            &mut SmallRng::seed_from_u64(seed),
        )
        .unwrap();
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let outcome = rit
        .evaluate_in(
            &job,
            &tree,
            &asks,
            None,
            &mut ws,
            &mut SmallRng::seed_from_u64(7),
        )
        .unwrap();
    let delta = ALLOCS.load(Ordering::SeqCst) - before;

    assert!(outcome.total_allocated() > 0, "degenerate run");
    // Budget: the auction phase's 4 output vectors, the final-payment vector,
    // and the payment phase's constant CSR scratch (tree-sized, not
    // round-scaling). The exact count varies a little with allocator
    // bookkeeping; what matters is that it is a small constant independent
    // of how many CRA rounds the auction took.
    assert!(
        delta <= 32,
        "warm generic run allocated {delta} times; the Mechanism layer is \
         leaking per-round allocations"
    );
}
