//! Property test of the §7 budget bound, generically over every
//! [`Mechanism`] implementation: the platform's total payout never exceeds
//! **2×** the total auction payment. For RIT this is the paper's §7
//! observation (solicitation weights sum to < 1 per contributor); for the
//! naive §4 combination it follows from `pⱼ = 2·p^Aⱼ + ln(·)` with the log
//! term ≤ 0; for the DARPA scheme from the geometric halving up the chain.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{DarpaReferral, Mechanism, NaiveKthPriceTree, Rit, RitConfig, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::{IncentiveTree, NodeId};

#[derive(Clone, Debug)]
struct ArbScenario {
    job: Job,
    tree: IncentiveTree,
    asks: Vec<Ask>,
}

fn arb_scenario() -> impl Strategy<Value = ArbScenario> {
    let users = prop::collection::vec((0u32..3, 1u64..6, 0.01f64..10.0, any::<u32>()), 1..60);
    let job = prop::collection::vec(0u64..30, 1..4);
    (users, job).prop_map(|(users, counts)| {
        let parents: Vec<NodeId> = users
            .iter()
            .enumerate()
            .map(|(i, &(_, _, _, p))| NodeId::new(p % (i as u32 + 1)))
            .collect();
        let tree = IncentiveTree::from_parents(&parents).expect("valid parents");
        let asks: Vec<Ask> = users
            .iter()
            .map(|&(t, k, a, _)| Ask::new(TaskTypeId::new(t), k, a).expect("valid ask"))
            .collect();
        ArbScenario {
            job: Job::from_counts(counts).expect("non-empty"),
            tree,
            asks,
        }
    })
}

fn assert_budget_bound<M: Mechanism>(
    mech: &M,
    scenario: &ArbScenario,
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut ws = M::Workspace::default();
    let out = mech
        .evaluate_in(
            &scenario.job,
            &scenario.tree,
            &scenario.asks,
            None,
            &mut ws,
            &mut SmallRng::seed_from_u64(seed),
        )
        .expect("aligned inputs never error in best-effort mode");
    let total = out.total_payment();
    let auction = out.total_auction_payment();
    prop_assert!(
        total.is_finite() && auction.is_finite(),
        "{}: non-finite totals",
        mech.kind()
    );
    // RIT voids failed runs (payments zero while the diagnostic auction
    // payments may not be); the bound is claimed for what is actually paid.
    prop_assert!(
        total <= 2.0 * auction + 1e-9,
        "{}: payout {} exceeds twice the auction total {}",
        mech.kind(),
        total,
        auction
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn payout_at_most_twice_auction_total_for_every_mechanism(
        scenario in arb_scenario(),
        seed in any::<u64>(),
    ) {
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        assert_budget_bound(&rit, &scenario, seed)?;
        assert_budget_bound(&NaiveKthPriceTree::new(), &scenario, seed)?;
        assert_budget_bound(&DarpaReferral::new(), &scenario, seed)?;
    }
}
