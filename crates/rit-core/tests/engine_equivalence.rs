//! The run-length auction engine must be indistinguishable — outcome *and*
//! RNG draw order — from the paper-literal loop it replaced.
//!
//! The reference implementation here re-extracts the flat unit-ask vector
//! every round via the public [`rit_auction::extract`] + [`rit_auction::cra`]
//! APIs (the pre-engine shape of `Rit`'s auction phase). The mechanism now
//! runs [`rit_auction::engine::run_round`] over a run-length table instead;
//! both must produce bit-identical allocations, payments, round counts, and
//! leftover tasks for every seed. A golden regression test additionally pins
//! one full `Rit::run` outcome on a fixed seed across refactors.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_auction::cra::{self, SelectionRule};
use rit_auction::extract;
use rit_core::{Rit, RitConfig, RitWorkspace, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::{IncentiveTree, NodeId};

/// The pre-engine auction phase: per round, materialize the remaining unit
/// asks of the type and hand them to the CRA wrapper. Mirrors
/// `RoundLimit::UntilStall { max_rounds, max_stall }` semantics.
fn legacy_auction_phase<R: Rng + ?Sized>(
    job: &Job,
    asks: &[Ask],
    rule: SelectionRule,
    max_rounds: u32,
    max_stall: u32,
    rng: &mut R,
) -> (Vec<u64>, Vec<f64>, Vec<u32>, Vec<u64>) {
    let n = asks.len();
    let mut allocation = vec![0u64; n];
    let mut payments = vec![0.0f64; n];
    let mut remaining: Vec<u64> = asks.iter().map(Ask::quantity).collect();
    let mut rounds_used = Vec::new();
    let mut unallocated = Vec::new();

    for (task_type, m_i) in job.iter() {
        if m_i == 0 {
            rounds_used.push(0);
            unallocated.push(0);
            continue;
        }
        let mut q = m_i;
        let mut rounds = 0u32;
        let mut stall = 0u32;
        while q > 0 && rounds < max_rounds && stall < max_stall {
            let alpha = extract::extract_with_quantities(task_type, asks, &remaining);
            if alpha.is_empty() {
                break;
            }
            let out = cra::run_with_rule(alpha.values(), q, m_i, rule, rng);
            let price = out.clearing_price();
            let mut progressed = false;
            for omega in out.winner_indices() {
                let j = alpha.owner(omega);
                allocation[j] += 1;
                payments[j] += price;
                remaining[j] -= 1;
                q -= 1;
                progressed = true;
            }
            rounds += 1;
            stall = if progressed { 0 } else { stall + 1 };
        }
        rounds_used.push(rounds);
        unallocated.push(q);
    }
    (allocation, payments, rounds_used, unallocated)
}

fn arb_profile() -> impl Strategy<Value = (Job, Vec<Ask>)> {
    let users = prop::collection::vec((0u32..4, 1u64..6, 1u32..50), 1..50);
    let job = prop::collection::vec(0u64..25, 1..4);
    (users, job).prop_map(|(users, counts)| {
        let asks: Vec<Ask> = users
            .iter()
            // Prices on a coarse 0.1 grid so equal-value tie-breaking between
            // different owners is exercised constantly.
            .map(|&(t, k, tenths)| {
                Ask::new(TaskTypeId::new(t), k, f64::from(tenths) * 0.1).expect("valid ask")
            })
            .collect();
        (Job::from_counts(counts).expect("non-empty"), asks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_loop_matches_legacy_reference_loop(
        (job, asks) in arb_profile(),
        uniform in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let rule = if uniform {
            SelectionRule::UniformEligible
        } else {
            SelectionRule::SmallestFirst
        };
        let (max_rounds, max_stall) = (64, 4);
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::UntilStall { max_rounds, max_stall },
            selection_rule: rule,
            ..RitConfig::default()
        })
        .unwrap();

        let mut rng_engine = SmallRng::seed_from_u64(seed);
        let phase = rit.run_auction_phase(&job, &asks, &mut rng_engine).unwrap();

        let mut rng_legacy = SmallRng::seed_from_u64(seed);
        let (allocation, payments, rounds_used, unallocated) =
            legacy_auction_phase(&job, &asks, rule, max_rounds, max_stall, &mut rng_legacy);

        prop_assert_eq!(&phase.allocation, &allocation);
        // Bit-identical, not approximately equal: both paths add the same
        // clearing price to the same accumulators the same number of times.
        prop_assert_eq!(&phase.auction_payments, &payments);
        prop_assert_eq!(&phase.rounds_used, &rounds_used);
        prop_assert_eq!(&phase.unallocated, &unallocated);
        // The RNG streams stay in lockstep through the whole phase.
        prop_assert_eq!(rng_engine.gen::<u64>(), rng_legacy.gen::<u64>());
    }

    #[test]
    fn warm_workspace_never_perturbs_outcomes(
        (job_a, asks_a) in arb_profile(),
        (job_b, asks_b) in arb_profile(),
        seed in any::<u64>(),
    ) {
        // Alternate two arbitrary scenario shapes through one workspace; every
        // run must equal the fresh-workspace run of the same seed.
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let mut ws = RitWorkspace::new();
        for (s, (job, asks)) in [
            (seed, (&job_a, &asks_a)),
            (seed ^ 1, (&job_b, &asks_b)),
            (seed ^ 2, (&job_a, &asks_a)),
        ] {
            let mut observer = rit_core::NoopObserver;
            let warm = rit
                .run_auction_phase_with(job, asks, &mut ws, &mut observer, &mut SmallRng::seed_from_u64(s))
                .unwrap();
            let fresh = rit
                .run_auction_phase(job, asks, &mut SmallRng::seed_from_u64(s))
                .unwrap();
            prop_assert_eq!(warm, fresh);
        }
    }
}

/// Pins the complete outcome of one `Rit::run` on a fixed seed. Runs compare
/// against the local `tests/golden/rit_run_fixed_seed.txt`, so any
/// refactor that shifts a single RNG draw or payment bit fails loudly.
///
/// The golden file is gitignored, never committed: its bytes depend on the
/// exact `rand` build, so each toolchain (CI included) mints its own
/// reference with `RIT_BLESS=1` before comparing — see
/// `tests/golden/README.md` and the same pattern in
/// `crates/sim/tests/golden/`.
///
/// (Re)blessing is explicit: the file is only (over)written when the
/// `RIT_BLESS=1` environment variable is set. A silent first-run bless would
/// let a behavior change mint its own reference and pass, so a missing
/// golden without `RIT_BLESS=1` is a hard failure.
#[test]
fn golden_run_on_fixed_seed() {
    use std::fmt::Write as _;

    // Deterministic scenario, no sampling helpers: a 3-type job over a
    // 400-user chain-with-branches tree and hand-rolled asks.
    let n = 400usize;
    let job = Job::from_counts(vec![60, 0, 45]).unwrap();
    let parents: Vec<NodeId> = (0..n).map(|i| NodeId::new((i as u32) / 3)).collect();
    let tree = IncentiveTree::from_parents(&parents).unwrap();
    let asks: Vec<Ask> = (0..n)
        .map(|j| {
            let t = TaskTypeId::new((j % 3) as u32);
            let k = 1 + (j as u64 * 7) % 4;
            let price = 0.5 + ((j * 13) % 97) as f64 * 0.1;
            Ask::new(t, k, price).unwrap()
        })
        .collect();
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();
    let out = rit
        .run(&job, &tree, &asks, &mut SmallRng::seed_from_u64(0xF1C5))
        .unwrap();

    let mut got = String::new();
    writeln!(got, "completed {}", out.completed()).unwrap();
    writeln!(got, "rounds_used {:?}", out.rounds_used()).unwrap();
    writeln!(got, "unallocated {:?}", out.unallocated()).unwrap();
    for j in 0..n {
        if out.allocation()[j] > 0 || out.payment(j) != 0.0 {
            writeln!(
                got,
                "user {j} x {} pA {:.17e} p {:.17e}",
                out.allocation()[j],
                out.auction_payments()[j],
                out.payment(j)
            )
            .unwrap();
        }
    }

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden/rit_run_fixed_seed.txt");
    let blessing = std::env::var("RIT_BLESS").is_ok_and(|v| v == "1");
    if blessing {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("blessed golden file at {}", path.display());
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(want) => want,
        Err(e) => panic!(
            "missing golden file {}: {e}\n\
             run `RIT_BLESS=1 cargo test -p rit-core --test engine_equivalence \
             golden_run_on_fixed_seed` and keep the generated file for the \
             comparison run",
            path.display()
        ),
    };
    assert_eq!(
        got,
        want,
        "golden mismatch — if the change is intentional, re-bless {} with \
         RIT_BLESS=1",
        path.display()
    );
}
