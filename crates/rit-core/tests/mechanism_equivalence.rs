//! Pins the `Mechanism`-trait RIT path to the inherent engine entry point:
//! for the same RNG state, `<Rit as Mechanism>::run_in` with no screening
//! mask must produce the **bit-identical** outcome of
//! [`Rit::run_with_workspace`] *and* leave the RNG in the same state (same
//! draw count), so generic drivers can replace direct calls with no behavior
//! change whatsoever.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_core::{Mechanism, MechanismKind, Rit, RitConfig, RitWorkspace, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::{generate, IncentiveTree};

fn scenario(n: usize, num_types: usize, tasks_per_type: u64) -> (Job, IncentiveTree, Vec<Ask>) {
    let job = Job::from_counts(vec![tasks_per_type; num_types]).unwrap();
    let mut rng = SmallRng::seed_from_u64(0x5EED);
    let tree = generate::uniform_recursive(n, &mut rng);
    let asks: Vec<Ask> = (0..n)
        .map(|j| {
            let t = TaskTypeId::new((j % num_types) as u32);
            let k = 1 + (j as u64 * 7) % 4;
            let price = 1.0 + ((j * 31) % 97) as f64 * 0.25;
            Ask::new(t, k, price).unwrap()
        })
        .collect();
    (job, tree, asks)
}

fn mechanism() -> Rit {
    Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap()
}

#[test]
fn trait_path_is_bit_identical_to_run_with_workspace() {
    let (job, tree, asks) = scenario(400, 3, 40);
    let rit = mechanism();
    assert_eq!(rit.kind(), MechanismKind::Rit);

    let mut direct_ws = RitWorkspace::new();
    let mut trait_ws = RitWorkspace::new();
    for seed in [1u64, 7, 42, 1337] {
        let mut direct_rng = SmallRng::seed_from_u64(seed);
        let mut trait_rng = SmallRng::seed_from_u64(seed);

        let direct = rit
            .run_with_workspace(&job, &tree, &asks, &mut direct_ws, &mut direct_rng)
            .unwrap();
        let via_trait = rit
            .run_in(&job, &tree, &asks, None, &mut trait_ws, &mut trait_rng)
            .unwrap();

        // Same outcome, field for field (RitOutcome: PartialEq).
        assert_eq!(via_trait, direct, "seed {seed}: outcomes diverged");

        // Same RNG stream position afterwards: the trait layer must not
        // consume (or skip) a single extra draw.
        assert_eq!(
            direct_rng.gen::<u64>(),
            trait_rng.gen::<u64>(),
            "seed {seed}: RNG streams diverged"
        );
    }
}

#[test]
fn normalized_view_preserves_every_economic_quantity() {
    let (job, tree, asks) = scenario(300, 2, 30);
    let rit = mechanism();
    let mut ws = RitWorkspace::new();
    let direct = rit
        .run_with_workspace(&job, &tree, &asks, &mut ws, &mut SmallRng::seed_from_u64(9))
        .unwrap();
    let normalized = rit.normalize(direct.clone());

    assert_eq!(normalized.completed(), direct.completed());
    assert_eq!(normalized.allocation(), direct.allocation());
    assert_eq!(normalized.auction_payments(), direct.auction_payments());
    assert_eq!(normalized.payments(), direct.payments());
    assert_eq!(normalized.total_payment(), direct.total_payment());
    assert_eq!(
        normalized.total_auction_payment(),
        direct.total_auction_payment()
    );
    assert_eq!(
        normalized.solicitation_rewards(),
        direct.solicitation_rewards()
    );
    for j in 0..asks.len() {
        assert_eq!(normalized.utility(j, 2.5), direct.utility(j, 2.5));
    }
}

#[test]
fn evaluate_in_warm_workspace_matches_fresh() {
    let (job, tree, asks) = scenario(250, 2, 25);
    let rit = mechanism();
    let mut warm = RitWorkspace::new();
    for seed in [3u64, 4, 5] {
        let a = rit
            .evaluate_in(
                &job,
                &tree,
                &asks,
                None,
                &mut warm,
                &mut SmallRng::seed_from_u64(seed),
            )
            .unwrap();
        let b = rit
            .evaluate(&job, &tree, &asks, &mut SmallRng::seed_from_u64(seed))
            .unwrap();
        assert_eq!(a, b, "seed {seed}: warm workspace changed the outcome");
    }
}
