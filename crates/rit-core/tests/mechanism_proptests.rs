//! Property-based tests of full-mechanism invariants on arbitrary small
//! scenarios: random jobs, capacities, prices, and tree shapes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{Rit, RitConfig, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::{IncentiveTree, NodeId};

#[derive(Clone, Debug)]
struct ArbScenario {
    job: Job,
    tree: IncentiveTree,
    asks: Vec<Ask>,
}

fn arb_scenario() -> impl Strategy<Value = ArbScenario> {
    let users = prop::collection::vec((0u32..3, 1u64..6, 0.01f64..10.0, any::<u32>()), 1..60);
    let job = prop::collection::vec(0u64..30, 1..4);
    (users, job).prop_map(|(users, counts)| {
        let parents: Vec<NodeId> = users
            .iter()
            .enumerate()
            .map(|(i, &(_, _, _, p))| NodeId::new(p % (i as u32 + 1)))
            .collect();
        let tree = IncentiveTree::from_parents(&parents).expect("valid parents");
        let asks: Vec<Ask> = users
            .iter()
            .map(|&(t, k, a, _)| Ask::new(TaskTypeId::new(t), k, a).expect("valid ask"))
            .collect();
        ArbScenario {
            job: Job::from_counts(counts).expect("non-empty"),
            tree,
            asks,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mechanism_invariants_hold_on_arbitrary_scenarios(
        scenario in arb_scenario(),
        seed in any::<u64>(),
    ) {
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let out = rit
            .run(&scenario.job, &scenario.tree, &scenario.asks, &mut rng)
            .expect("aligned inputs never error in best-effort mode");

        let n = scenario.asks.len();
        prop_assert_eq!(out.allocation().len(), n);
        prop_assert_eq!(out.payments().len(), n);
        prop_assert_eq!(out.rounds_used().len(), scenario.job.num_types());

        if out.completed() {
            // Per-type allocation equals the job exactly.
            let mut per_type = vec![0u64; scenario.job.num_types()];
            for (j, &x) in out.allocation().iter().enumerate() {
                prop_assert!(x <= scenario.asks[j].quantity());
                if x > 0 {
                    let t = scenario.asks[j].task_type().index();
                    prop_assert!(t < per_type.len(), "allocated an out-of-job type");
                    per_type[t] += x;
                }
            }
            for (t, &got) in per_type.iter().enumerate() {
                prop_assert_eq!(got, scenario.job.tasks_of(TaskTypeId::new(t as u32)));
            }
            // Payments: IR at the ask level, solicitation non-negative,
            // and the §7 total bound.
            for j in 0..n {
                let floor = out.allocation()[j] as f64 * scenario.asks[j].unit_price();
                prop_assert!(out.auction_payments()[j] >= floor - 1e-9);
                prop_assert!(out.payment(j) >= out.auction_payments()[j] - 1e-9);
                prop_assert!(out.payment(j).is_finite());
            }
            prop_assert!(out.total_payment() <= 2.0 * out.total_auction_payment() + 1e-9);
        } else {
            // Void: everything zero.
            prop_assert_eq!(out.total_allocated(), 0);
            prop_assert_eq!(out.total_payment(), 0.0);
            prop_assert!(out.unallocated().iter().any(|&q| q > 0));
        }
    }

    #[test]
    fn traced_and_untraced_agree_on_arbitrary_scenarios(
        scenario in arb_scenario(),
        seed in any::<u64>(),
    ) {
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let plain = rit
            .run_auction_phase(&scenario.job, &scenario.asks, &mut SmallRng::seed_from_u64(seed))
            .unwrap();
        let (traced, traces) = rit
            .run_auction_phase_traced(
                &scenario.job,
                &scenario.asks,
                &mut SmallRng::seed_from_u64(seed),
            )
            .unwrap();
        prop_assert_eq!(&plain, &traced);
        prop_assert_eq!(traces.len(), scenario.job.num_types());
        let traced_total: f64 = traces.iter().map(|t| t.expenditure()).sum();
        let phase_total: f64 = plain.auction_payments.iter().sum();
        prop_assert!((traced_total - phase_total).abs() < 1e-6);
    }

    #[test]
    fn strict_budget_never_panics(
        scenario in arb_scenario(),
        seed in any::<u64>(),
    ) {
        // The paper budget may reject tiny jobs — but must never panic.
        let rit = Rit::new(RitConfig::default()).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let _ = rit.run(&scenario.job, &scenario.tree, &scenario.asks, &mut rng);
    }
}
