//! Determinism contracts of the scaled-out auction phase.
//!
//! * Under [`RngMode::PerTypeStreams`] the outcome — and the full observer
//!   event stream — is **bit-identical for every worker-thread count**: each
//!   task type draws from its own derived RNG stream over a disjoint view of
//!   the ask table, so scheduling cannot leak into results.
//! * [`RngMode::SharedLegacy`] reproduces [`Rit::run`] with a single
//!   [`SmallRng`] exactly, pinning every historical trace.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{
    NoopObserver, Rit, RitConfig, RitWorkspace, RngMode, RoundLimit, TraceObserver, WorkspacePool,
};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::{generate, IncentiveTree};

/// A scenario drawn from compact proptest inputs: `counts[i]` tasks of type
/// `i`, and one user per entry of `profiles` (type selector, capacity
/// selector, price selector).
fn build(counts: &[u64], profiles: &[(u8, u8, u16)]) -> (Job, Vec<Ask>, IncentiveTree) {
    let num_types = counts.len() as u32;
    let job = Job::from_counts(counts.to_vec()).expect("non-empty job");
    let asks: Vec<Ask> = profiles
        .iter()
        .map(|&(t, k, c)| {
            let task_type = TaskTypeId::new(u32::from(t) % num_types);
            let quantity = 1 + u64::from(k) % 5;
            let price = 0.5 + f64::from(c) * 0.01;
            Ask::new(task_type, quantity, price).expect("valid ask")
        })
        .collect();
    let mut tree_rng = SmallRng::seed_from_u64(counts.iter().sum::<u64>() ^ 0x5eed);
    let tree = generate::preferential(asks.len(), &mut tree_rng);
    (job, asks, tree)
}

fn rit() -> Rit {
    Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The per-type-streams phase result and trace are independent of the
    /// worker-thread count (1 through 8), including jobs with zero-task
    /// types and types no user asks for.
    #[test]
    fn streams_phase_is_identical_across_thread_counts(
        counts in prop::collection::vec(0u64..40, 1..5),
        profiles in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 30..200),
        master_seed in any::<u64>(),
    ) {
        let (job, asks, _tree) = build(&counts, &profiles);
        let rit = rit();

        let reference = {
            let mut ws = RitWorkspace::new();
            let pool = WorkspacePool::new();
            let mut observer = TraceObserver::with_capacity(job.num_types());
            let phase = rit
                .run_auction_phase_streams_with(
                    &job, &asks, master_seed, 1, &mut ws, &pool, &mut observer,
                )
                .unwrap();
            (phase, observer.into_traces())
        };

        for threads in 2..=8 {
            let mut ws = RitWorkspace::new();
            let pool = WorkspacePool::new();
            let mut observer = TraceObserver::with_capacity(job.num_types());
            let phase = rit
                .run_auction_phase_streams_with(
                    &job, &asks, master_seed, threads, &mut ws, &pool, &mut observer,
                )
                .unwrap();
            prop_assert_eq!(&phase, &reference.0, "phase diverged at {} threads", threads);
            prop_assert_eq!(
                &observer.into_traces(),
                &reference.1,
                "trace diverged at {} threads",
                threads
            );
        }
    }

    /// Workspace reuse across scenarios never changes per-type-streams
    /// outcomes: a warm workspace+pool pair matches fresh ones.
    #[test]
    fn streams_phase_warm_workspace_matches_fresh(
        counts in prop::collection::vec(0u64..30, 1..4),
        profiles in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 20..120),
        master_seed in any::<u64>(),
    ) {
        let (job, asks, _tree) = build(&counts, &profiles);
        let rit = rit();
        let mut warm_ws = RitWorkspace::new();
        let warm_pool = WorkspacePool::new();
        // Dirty the buffers with an unrelated scenario first.
        let other_job = Job::from_counts(vec![7, 9]).unwrap();
        let other_asks: Vec<Ask> = (0..50)
            .map(|j| Ask::new(TaskTypeId::new(j % 2), 1 + j as u64 % 3, 1.0 + f64::from(j)).unwrap())
            .collect();
        let _ = rit
            .run_auction_phase_streams_with(
                &other_job, &other_asks, 3, 4, &mut warm_ws, &warm_pool, &mut NoopObserver,
            )
            .unwrap();

        let warm = rit
            .run_auction_phase_streams_with(
                &job, &asks, master_seed, 4, &mut warm_ws, &warm_pool, &mut NoopObserver,
            )
            .unwrap();
        let mut fresh_ws = RitWorkspace::new();
        let fresh_pool = WorkspacePool::new();
        let fresh = rit
            .run_auction_phase_streams_with(
                &job, &asks, master_seed, 4, &mut fresh_ws, &fresh_pool, &mut NoopObserver,
            )
            .unwrap();
        prop_assert_eq!(warm, fresh);
    }

    /// `RngMode::SharedLegacy` is the original mechanism verbatim: the same
    /// master seed reproduces `Rit::run` with one `SmallRng` bit-for-bit.
    #[test]
    fn shared_legacy_reproduces_direct_run(
        counts in prop::collection::vec(0u64..30, 1..4),
        profiles in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 20..120),
        master_seed in any::<u64>(),
    ) {
        let (job, asks, tree) = build(&counts, &profiles);
        let rit = rit();
        let seeded = rit
            .run_seeded(&job, &tree, &asks, RngMode::SharedLegacy, master_seed)
            .unwrap();
        let mut rng = SmallRng::seed_from_u64(master_seed);
        let direct = rit.run(&job, &tree, &asks, &mut rng).unwrap();
        prop_assert_eq!(seeded, direct);
    }

    /// The full seeded mechanism run under `PerTypeStreams` equals composing
    /// the streams auction phase with payment determination by hand.
    #[test]
    fn run_seeded_streams_composes_phase_and_payments(
        counts in prop::collection::vec(0u64..30, 1..4),
        profiles in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u16>()), 20..120),
        master_seed in any::<u64>(),
    ) {
        let (job, asks, tree) = build(&counts, &profiles);
        let rit = rit();
        let seeded = rit
            .run_seeded(&job, &tree, &asks, RngMode::PerTypeStreams, master_seed)
            .unwrap();
        let phase = rit.run_auction_phase_streams(&job, &asks, master_seed).unwrap();
        let composed = rit.determine_final_payments(&tree, &asks, phase);
        prop_assert_eq!(seeded, composed);
    }
}
