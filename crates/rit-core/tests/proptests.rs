//! Property-based tests of RIT's mechanism-level invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{payment, Rit, RitConfig, RoundLimit};
use rit_model::{Ask, Job, TaskTypeId};
use rit_tree::sybil::SybilPlan;
use rit_tree::{generate, IncentiveTree, NodeId};

fn arb_tree(max_users: usize) -> impl Strategy<Value = IncentiveTree> {
    prop::collection::vec(any::<u32>(), 1..max_users).prop_map(|choices| {
        let parents: Vec<NodeId> = choices
            .iter()
            .enumerate()
            .map(|(i, &c)| NodeId::new(c % (i as u32 + 1)))
            .collect();
        IncentiveTree::from_parents(&parents).expect("valid parents")
    })
}

proptest! {
    /// Lemma 6.4, payment-determination half, checked *exactly*: when the
    /// auction side is held fixed (same total auction payment, split
    /// arbitrarily among identities; every other user's payment unchanged),
    /// a sybil split can never increase the attacker's total tree payment.
    #[test]
    fn sybil_split_never_raises_tree_payment(
        tree in arb_tree(40),
        types in prop::collection::vec(0u32..4, 40),
        pays in prop::collection::vec(0.0f64..20.0, 40),
        victim_sel in any::<usize>(),
        delta in 2usize..6,
        split_sel in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let n = tree.num_users();
        let victim = victim_sel % n;
        let asks: Vec<Ask> = (0..n)
            .map(|j| Ask::new(TaskTypeId::new(types[j]), 1, 1.0).unwrap())
            .collect();
        let pa: Vec<f64> = pays[..n].to_vec();

        let honest = payment::determine_payments(&tree, &asks, &pa);
        let honest_payment = honest[victim];

        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = SybilPlan::random(delta);
        let out = rit_tree::sybil::apply(&plan, &tree, NodeId::from_user_index(victim), &mut rng)
            .unwrap();

        // Post-attack asks: identities keep the victim's type.
        let mut new_asks = asks.clone();
        let mut new_pa = pa.clone();
        for _ in 1..delta {
            new_asks.push(asks[victim]);
            new_pa.push(0.0);
        }
        // Split the victim's auction payment arbitrarily among identities.
        let identity_users: Vec<usize> = out
            .identities
            .iter()
            .map(|id| id.user_index().unwrap())
            .collect();
        let share = split_sel as f64 / u64::MAX as f64;
        new_pa[identity_users[0]] = pa[victim] * share;
        new_pa[identity_users[1]] = pa[victim] * (1.0 - share);
        for &u in &identity_users[2..] {
            new_pa[u] = 0.0;
        }

        let attacked = payment::determine_payments(&out.tree, &new_asks, &new_pa);
        let attacker_total: f64 = identity_users.iter().map(|&u| attacked[u]).sum();
        prop_assert!(
            attacker_total <= honest_payment + 1e-9,
            "sybil split raised tree payment: {attacker_total} > {honest_payment}"
        );
    }

    /// Everyone else's payment never *increases* when someone sybils
    /// (descendants of the victim can only sink deeper).
    #[test]
    fn sybil_split_never_helps_bystanders(
        tree in arb_tree(30),
        types in prop::collection::vec(0u32..3, 30),
        pays in prop::collection::vec(0.0f64..20.0, 30),
        victim_sel in any::<usize>(),
        seed in any::<u64>(),
    ) {
        let n = tree.num_users();
        let victim = victim_sel % n;
        let asks: Vec<Ask> = (0..n)
            .map(|j| Ask::new(TaskTypeId::new(types[j]), 1, 1.0).unwrap())
            .collect();
        let pa: Vec<f64> = pays[..n].to_vec();
        let honest = payment::determine_payments(&tree, &asks, &pa);

        let mut rng = SmallRng::seed_from_u64(seed);
        let out = rit_tree::sybil::apply(
            &SybilPlan::chain(3),
            &tree,
            NodeId::from_user_index(victim),
            &mut rng,
        )
        .unwrap();
        let mut new_asks = asks.clone();
        let mut new_pa = pa.clone();
        for _ in 1..3 {
            new_asks.push(asks[victim]);
            new_pa.push(0.0);
        }
        let attacked = payment::determine_payments(&out.tree, &new_asks, &new_pa);
        for j in 0..n {
            if j == victim {
                continue;
            }
            prop_assert!(
                attacked[j] <= honest[j] + 1e-9,
                "bystander {j} gained from the attack: {} > {}",
                attacked[j],
                honest[j]
            );
        }
    }

    /// Solicitation incentive (Theorem 4), tree-payment side: adding a new
    /// contributor as OUR child helps us at least as much as the same
    /// contributor joining under anyone else.
    #[test]
    fn new_child_is_weakly_best(
        tree in arb_tree(25),
        types in prop::collection::vec(0u32..3, 26),
        pays in prop::collection::vec(0.0f64..20.0, 26),
        host_sel in any::<usize>(),
        other_sel in any::<usize>(),
    ) {
        let n = tree.num_users();
        let host = host_sel % n;
        let other = other_sel % n;
        let asks: Vec<Ask> = (0..n)
            .map(|j| Ask::new(TaskTypeId::new(types[j]), 1, 1.0).unwrap())
            .collect();
        let pa: Vec<f64> = pays[..n].to_vec();
        let newcomer_ask = Ask::new(TaskTypeId::new(types[n]), 1, 1.0).unwrap();
        let newcomer_pa = pays[n];

        let extend = |parent: NodeId| {
            let mut parents = tree.to_parents();
            parents.push(parent);
            let t2 = IncentiveTree::from_parents(&parents).unwrap();
            let mut a2 = asks.clone();
            a2.push(newcomer_ask);
            let mut p2 = pa.clone();
            p2.push(newcomer_pa);
            payment::determine_payments(&t2, &a2, &p2)[host]
        };

        let as_my_child = extend(NodeId::from_user_index(host));
        let under_other = extend(NodeId::from_user_index(other));
        let under_root = extend(NodeId::ROOT);
        prop_assert!(as_my_child >= under_other - 1e-9);
        prop_assert!(as_my_child >= under_root - 1e-9);
    }
}

/// Full-mechanism statistical check of Lemma 6.4: with equal ask values and
/// a quantity-preserving split, the attacker's mean utility over many seeds
/// does not rise.
#[test]
fn full_rit_sybil_attack_not_profitable_on_average() {
    let mut setup_rng = SmallRng::seed_from_u64(2024);
    let n = 800;
    let job = Job::from_counts(vec![150, 150]).unwrap();
    let tree = generate::preferential(n, &mut setup_rng);
    let config = rit_model::workload::WorkloadConfig {
        num_types: 2,
        capacity_max: 6,
        cost_max: 10.0,
    };
    let pop = config.sample_population(n, &mut setup_rng).unwrap();
    let asks = pop.truthful_asks().into_vec();

    // Pick an attacker with capacity ≥ 3 and a recruiter role.
    let victim = (0..n)
        .find(|&j| pop[j].capacity() >= 3 && !tree.children(NodeId::from_user_index(j)).is_empty())
        .expect("some recruiter with capacity exists");
    let cost = pop[victim].unit_cost();

    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .unwrap();

    let runs = 60;
    let mut honest_total = 0.0;
    let mut attack_total = 0.0;
    for seed in 0..runs {
        let mut rng = SmallRng::seed_from_u64(seed);
        let honest = rit.run(&job, &tree, &asks, &mut rng).unwrap();
        honest_total += honest.utility(victim, cost);

        let mut rng = SmallRng::seed_from_u64(10_000 + seed);
        let identity_asks = rit_core::sybil_exec::uniform_identity_asks(
            asks[victim].task_type(),
            asks[victim].quantity().max(2),
            2,
            asks[victim].unit_price(),
            &mut rng,
        );
        let sc = rit_core::sybil_exec::apply_attack(
            &tree,
            &asks,
            victim,
            &identity_asks,
            &SybilPlan::chain(2),
            &mut rng,
        )
        .unwrap();
        let attacked = rit.run(&job, &sc.tree, &sc.asks, &mut rng).unwrap();
        attack_total += sc.attacker_utility(&attacked, cost);
    }
    let honest_mean = honest_total / runs as f64;
    let attack_mean = attack_total / runs as f64;
    // Allow sampling noise: the attack must not win by a clear margin.
    assert!(
        attack_mean <= honest_mean + 0.35 * honest_mean.abs().max(1.0),
        "sybil attack profitable on average: {attack_mean:.3} vs honest {honest_mean:.3}"
    );
}
