//! Distributional analysis of mechanism outcomes.
//!
//! Beyond the paper's aggregate metrics, platform operators care about how
//! payments *distribute*: does the mechanism concentrate earnings on a few
//! super-recruiters (a pyramid-scheme smell), and what does each task type
//! actually clear at? This module computes the standard summaries.

use rit_core::RitOutcome;
use rit_model::Ask;

/// Distributional summary of one outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct PaymentSummary {
    /// Total platform expenditure.
    pub total: f64,
    /// Users with a positive final payment.
    pub paid_users: usize,
    /// Gini coefficient of the final payments over all users (0 = equal,
    /// → 1 = concentrated).
    pub gini: f64,
    /// Share of the total collected by the best-paid 10 % of users.
    pub top_decile_share: f64,
    /// Mean realized unit price per task type (`Σ p^A / Σ x` among that
    /// type's users; `None` where nothing was allocated).
    pub mean_unit_price: Vec<Option<f64>>,
}

/// The Gini coefficient of a set of non-negative values
/// (0 for perfectly equal, approaching 1 for total concentration).
/// Returns 0 for empty input or an all-zero vector.
///
/// ```
/// use rit_sim::analysis::gini;
///
/// assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
/// assert!(gini(&[0.0, 0.0, 0.0, 12.0]) > 0.7);
/// ```
#[must_use]
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2·Σ i·x_i) / (n·Σ x) − (n + 1)/n, with 1-based ranks i.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Summarizes one outcome against its ask vector.
///
/// # Panics
///
/// Panics if `asks` does not align with the outcome's user count.
#[must_use]
pub fn summarize(asks: &[Ask], outcome: &RitOutcome) -> PaymentSummary {
    let n = asks.len();
    assert_eq!(n, outcome.payments().len(), "asks must align with outcome");
    let payments = outcome.payments();
    let total: f64 = payments.iter().sum();
    let paid_users = payments.iter().filter(|&&p| p > 1e-12).count();

    // Top-decile share.
    let mut sorted: Vec<f64> = payments.to_vec();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let decile = n.div_ceil(10);
    let top: f64 = sorted.iter().take(decile).sum();
    let top_decile_share = if total > 0.0 { top / total } else { 0.0 };

    // Per-type realized unit prices.
    let num_types = asks
        .iter()
        .map(|a| a.task_type().index() + 1)
        .max()
        .unwrap_or(0);
    let mut pay_by_type = vec![0.0f64; num_types];
    let mut tasks_by_type = vec![0u64; num_types];
    for (j, a) in asks.iter().enumerate() {
        let t = a.task_type().index();
        pay_by_type[t] += outcome.auction_payments()[j];
        tasks_by_type[t] += outcome.allocation()[j];
    }
    let mean_unit_price = pay_by_type
        .iter()
        .zip(&tasks_by_type)
        .map(|(&p, &x)| if x > 0 { Some(p / x as f64) } else { None })
        .collect();

    PaymentSummary {
        total,
        paid_users,
        gini: gini(payments),
        top_decile_share,
        mean_unit_price,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rit_core::{Rit, RitConfig, RoundLimit};
    use rit_model::Job;

    #[test]
    fn gini_known_values() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert_eq!(gini(&[3.0]), 0.0);
        assert!((gini(&[1.0, 1.0, 1.0, 1.0])).abs() < 1e-12);
        // Two users, one takes all: G = 1/2 exactly.
        assert!((gini(&[0.0, 10.0]) - 0.5).abs() < 1e-12);
        // Monotone under concentration.
        assert!(gini(&[1.0, 9.0]) > gini(&[4.0, 6.0]));
    }

    #[test]
    fn gini_is_scale_invariant() {
        let base = [1.0, 2.0, 3.0, 10.0];
        let scaled: Vec<f64> = base.iter().map(|x| x * 7.5).collect();
        assert!((gini(&base) - gini(&scaled)).abs() < 1e-12);
    }

    #[test]
    fn summary_on_a_real_outcome() {
        let mut config = ScenarioConfig::paper(800);
        config.workload.num_types = 3;
        let scenario = Scenario::generate(&config, 3);
        let job = Job::uniform(3, 100).unwrap();
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let mut rng = SmallRng::seed_from_u64(4);
        let outcome = rit
            .run(&job, &scenario.tree, &scenario.asks, &mut rng)
            .unwrap();
        let s = summarize(&scenario.asks, &outcome);
        if outcome.completed() {
            assert!(s.total > 0.0);
            assert!(s.paid_users > 0 && s.paid_users <= 800);
            assert!(s.gini > 0.0 && s.gini < 1.0);
            assert!(s.top_decile_share > 0.1 && s.top_decile_share <= 1.0);
            assert_eq!(s.mean_unit_price.len(), 3);
            for (t, price) in s.mean_unit_price.iter().enumerate() {
                let p = price.unwrap_or_else(|| panic!("type {t} allocated nothing"));
                assert!(p > 0.0 && p <= 10.0 * 3.0, "implausible unit price {p}");
            }
        } else {
            assert_eq!(s.total, 0.0);
        }
    }

    #[test]
    fn empty_outcome_summary() {
        let outcome = {
            // Void outcome from an impossible job.
            let tree = rit_tree::generate::star(2);
            let asks = vec![
                rit_model::Ask::new(rit_model::TaskTypeId::new(0), 1, 1.0).unwrap(),
                rit_model::Ask::new(rit_model::TaskTypeId::new(0), 1, 1.0).unwrap(),
            ];
            let job = Job::from_counts(vec![50]).unwrap();
            let rit = Rit::new(RitConfig {
                round_limit: RoundLimit::until_stall(),
                ..RitConfig::default()
            })
            .unwrap();
            let mut rng = SmallRng::seed_from_u64(1);
            let out = rit.run(&job, &tree, &asks, &mut rng).unwrap();
            (asks, out)
        };
        let s = summarize(&outcome.0, &outcome.1);
        assert_eq!(s.total, 0.0);
        assert_eq!(s.paid_users, 0);
        assert_eq!(s.gini, 0.0);
    }
}
