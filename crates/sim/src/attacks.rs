//! Batched attack-suite evaluation: many deviations against one scenario.
//!
//! This is the simulation-side driver of the adversary layer: it builds a
//! paper-style scenario, resolves an [`AttackSuite`] (the standard
//! four-attack battery or a declarative spec, see
//! [`rit_adversary::DeviationSpec`]), and evaluates every attack over
//! paired seeds in one batched pass — per replication the honest run
//! happens **once** and is shared across all deviations
//! ([`ProbeRunner::suite_replication`]), fanned out over CPU cores with
//! per-worker [`Mechanism::Workspace`] reuse. Results render as a Markdown
//! table and a CSV of per-attack gain / z-score rows.
//!
//! The driver is generic over the [`Mechanism`] trait: [`evaluate_with`] and
//! [`run_with_mechanism`] fire the same battery against the §4 naive
//! combination and the §1 DARPA baseline that [`evaluate`]/[`run`] fire
//! against RIT.

use std::path::Path;

use rit_adversary::{
    AttackObserver, AttackResult, AttackSuite, BaseScenario, GainReport, PairedOutcome,
    ProbeRunner, SeedSchedule,
};
use rit_core::{Mechanism, RitError, RoundLimit};
use rit_model::Job;

use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::{Table, Value};
use crate::runner::derive_seed;
use crate::scenario::{Scenario, ScenarioConfig};
use crate::substrate::SubstrateCache;

/// Salt separating the suite's scenario substrate from its mechanism seeds.
const SUBSTRATE_STREAM: u64 = 0xA77A_C4ED;

/// The significance threshold used for the table's verdict column: an
/// attack "wins" when its gain exceeds `Z_MAX` standard errors.
pub const Z_MAX: f64 = 3.0;

/// Configuration of an attack-suite evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttackSuiteConfig {
    /// Problem size (population and job mirror the screening sweep).
    pub scale: Scale,
    /// Paired replications per attack.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

/// The evaluated suite: one [`AttackResult`] per attack, in suite order.
#[derive(Clone, Debug, PartialEq)]
pub struct SuiteReport {
    /// Per-attack gain statistics.
    pub results: Vec<AttackResult>,
    /// Replications per attack.
    pub runs: usize,
}

impl SuiteReport {
    /// Whether every attack in the suite was resisted at [`Z_MAX`].
    #[must_use]
    pub fn all_resisted(&self) -> bool {
        self.results
            .iter()
            .all(|r| r.report.deviation_not_profitable(Z_MAX))
    }

    /// Renders the suite as a Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## attack suite\n\n");
        out.push_str("| attack | honest mean | deviant mean | gain | se | z | verdict |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for r in &self.results {
            let g = &r.report;
            out.push_str(&format!(
                "| {} | {:.4} | {:.4} | {:.4} | {:.4} | {:.2} | {} |\n",
                r.name,
                g.honest_mean,
                g.deviant_mean,
                g.gain,
                g.gain_se,
                g.z_score(),
                verdict(g),
            ));
        }
        out
    }

    /// Writes the suite as CSV
    /// (`attack,honest_mean,deviant_mean,gain,gain_se,z,runs,verdict`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_table().to_csv())
    }

    /// The suite as the shared [`Table`] emitter's representation.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "attack",
            "honest_mean",
            "deviant_mean",
            "gain",
            "gain_se",
            "z",
            "runs",
            "verdict",
        ]);
        for r in &self.results {
            let g = &r.report;
            table.push_row(vec![
                Value::Str(r.name.clone()),
                Value::F64(g.honest_mean),
                Value::F64(g.deviant_mean),
                Value::F64(g.gain),
                Value::F64(g.gain_se),
                Value::F64(g.z_score()),
                Value::U64(g.runs as u64),
                Value::Str(verdict(g).to_string()),
            ]);
        }
        table
    }
}

fn verdict(g: &GainReport) -> &'static str {
    if g.deviation_not_profitable(Z_MAX) {
        "resisted"
    } else {
        "PROFITABLE"
    }
}

/// Builds the suite's scenario (screening-sweep sizing: 4 task types, the
/// paper's workload priors).
#[must_use]
pub fn scenario(config: &AttackSuiteConfig) -> Scenario {
    let (n, _) = dimensions(config.scale);
    let mut scen_config = ScenarioConfig::paper(n);
    scen_config.workload.num_types = 4;
    Scenario::generate(&scen_config, derive_seed(config.seed, SUBSTRATE_STREAM, 0))
}

/// [`scenario`] through a caller-owned [`SubstrateCache`]: the same
/// substrate seed, but generated at most once per cache — callers that fire
/// several batteries (or mechanisms) against one configuration share the
/// generation.
#[must_use]
pub fn scenario_with(
    config: &AttackSuiteConfig,
    cache: &SubstrateCache,
) -> std::sync::Arc<Scenario> {
    let (n, _) = dimensions(config.scale);
    let mut scen_config = ScenarioConfig::paper(n);
    scen_config.workload.num_types = 4;
    cache.scenario(&scen_config, derive_seed(config.seed, SUBSTRATE_STREAM, 0))
}

fn dimensions(scale: Scale) -> (usize, u64) {
    match scale {
        Scale::Smoke => (1_200, 80),
        Scale::Default | Scale::Paper => (8_000, 400),
    }
}

/// Per-type job size `mᵢ` at the given scale (shared with the mechanism
/// comparison so its economics and attack verdicts describe one workload).
#[must_use]
pub fn job_size(scale: Scale) -> u64 {
    dimensions(scale).1
}

/// Evaluates `suite` against the scenario over `config.runs` paired
/// replications, parallelized over replications with per-worker workspace
/// reuse. The honest evaluation of each replication is shared across all
/// attacks in the suite.
///
/// # Errors
///
/// Propagates mechanism and deviation errors.
pub fn evaluate(
    config: &AttackSuiteConfig,
    scenario: &Scenario,
    suite: &AttackSuite,
) -> Result<SuiteReport, RitError> {
    evaluate_with(
        config,
        scenario,
        suite,
        &paper_mechanism(RoundLimit::until_stall()),
    )
}

/// [`evaluate`] against an arbitrary [`Mechanism`] — how the §4 and §1
/// counterexamples become machine-checked verdicts: the same battery that
/// RIT resists reports strictly positive gains against the naive and DARPA
/// baselines. Deviations that impose a screening mask are honored through
/// the mechanism's eligibility hook.
///
/// # Errors
///
/// Propagates mechanism and deviation errors.
pub fn evaluate_with<M: Mechanism + Sync>(
    config: &AttackSuiteConfig,
    scenario: &Scenario,
    suite: &AttackSuite,
    mechanism: &M,
) -> Result<SuiteReport, RitError> {
    let (_, m_i) = dimensions(config.scale);
    let job = Job::uniform(4, m_i).expect("positive types");
    evaluate_job_with(config, scenario, &job, suite, mechanism)
}

/// [`evaluate_with`] against an explicit job instead of the scale's default
/// workload (the mechanism comparison runs a heavier job, see
/// [`crate::experiments::compare`]).
///
/// # Errors
///
/// Propagates mechanism and deviation errors.
pub fn evaluate_job_with<M: Mechanism + Sync>(
    config: &AttackSuiteConfig,
    scenario: &Scenario,
    job: &Job,
    suite: &AttackSuite,
    mechanism: &M,
) -> Result<SuiteReport, RitError> {
    let _probe_span = rit_telemetry::span(rit_telemetry::SpanKind::AttackProbe);
    /// Grid adapter: one paired suite replication. Replication seeds come
    /// from the [`ProbeRunner`]'s own schedule, so the grid's derived seed
    /// is deliberately unused.
    struct SuiteRun<'a, M: Mechanism> {
        runner: &'a ProbeRunner<'a>,
        suite: &'a AttackSuite,
        mechanism: &'a M,
        job: &'a Job,
    }

    impl<M: Mechanism + Sync> CellRun for SuiteRun<'_, M> {
        type Cell = ();
        type Workspace = M::Workspace;
        type Record = Result<Vec<PairedOutcome>, RitError>;

        fn workspace(&self) -> M::Workspace {
            M::Workspace::default()
        }

        fn salt(&self, _cell_index: usize, (): &()) -> u64 {
            0
        }

        fn run(
            &self,
            ctx: &CellCtx<'_, ()>,
            ws: &mut M::Workspace,
        ) -> Result<Vec<PairedOutcome>, RitError> {
            let mechanism = self.mechanism;
            let job = self.job;
            self.runner.suite_replication::<RitError, _>(
                ctx.replication,
                self.suite.deviations(),
                &mut |view, rng| {
                    let out =
                        mechanism.evaluate_in(job, view.tree, view.asks, view.eligible, ws, rng)?;
                    Ok(out.into())
                },
            )
        }
    }

    let costs: Vec<f64> = scenario.population.iter().map(|u| u.unit_cost()).collect();
    let base = BaseScenario {
        tree: &scenario.tree,
        asks: &scenario.asks,
        costs: &costs,
    };
    let runner = ProbeRunner::new(
        base,
        SeedSchedule::Derived {
            master: config.seed,
            point: 0,
        },
        config.runs,
    );

    let spec = GridSpec::new("attack_suite", config.runs, config.seed);
    let per_replication = run_grid(
        &spec,
        &[()],
        &SuiteRun {
            runner: &runner,
            suite,
            mechanism,
            job,
        },
        &SubstrateCache::passthrough(),
    )
    .pop()
    .expect("one cell");

    let mut samples = vec![Vec::with_capacity(config.runs); suite.len()];
    for rep in per_replication {
        for (di, outcome) in rep?.into_iter().enumerate() {
            samples[di].push(outcome);
        }
    }
    let results: Vec<AttackResult> = suite
        .deviations()
        .iter()
        .zip(&samples)
        .map(|(d, s)| AttackResult {
            name: d.name().to_string(),
            report: GainReport::from_paired(s),
        })
        .collect();

    // Replay the merged per-replication outcomes through the global
    // telemetry's attack observer (the parallel pass above cannot carry a
    // `&mut` observer across workers): per-attack gain distributions land
    // in the registry, one `attack` summary event per deviation.
    if let Some(t) = rit_telemetry::active() {
        let mut observer = rit_telemetry::TelemetryAttackObserver::new(t);
        observer.suite_start(suite.len(), config.runs);
        for (di, (d, s)) in suite.deviations().iter().zip(&samples).enumerate() {
            for (r, outcome) in s.iter().enumerate() {
                observer.replication(di, d.name(), r, outcome);
            }
        }
        for (di, result) in results.iter().enumerate() {
            observer.attack_summary(di, &result.name, &result.report);
        }
        observer.suite_end();
    }

    Ok(SuiteReport {
        results,
        runs: config.runs,
    })
}

/// Runs the full pipeline: build the scenario, resolve the suite (`spec`
/// text, or the standard battery when `None`), evaluate.
///
/// # Errors
///
/// Propagates spec parse/resolution errors and mechanism errors.
pub fn run(config: &AttackSuiteConfig, spec: Option<&str>) -> Result<SuiteReport, RitError> {
    let scenario = scenario(config);
    let suite = match spec {
        Some(text) => AttackSuite::from_spec(text, &scenario.asks)?,
        None => AttackSuite::standard(&scenario.asks)?,
    };
    evaluate(config, &scenario, &suite)
}

/// [`run`] against an arbitrary [`Mechanism`] (the `--mechanism` flag of the
/// `attack-suite` subcommand).
///
/// # Errors
///
/// Propagates spec parse/resolution errors and mechanism errors.
pub fn run_with_mechanism<M: Mechanism + Sync>(
    config: &AttackSuiteConfig,
    spec: Option<&str>,
    mechanism: &M,
) -> Result<SuiteReport, RitError> {
    let scenario = scenario(config);
    let suite = match spec {
        Some(text) => AttackSuite::from_spec(text, &scenario.asks)?,
        None => AttackSuite::standard(&scenario.asks)?,
    };
    evaluate_with(config, &scenario, &suite, mechanism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rit_adversary::{NoopAttackObserver, ScenarioView};
    use rit_core::RitWorkspace;

    fn cfg() -> AttackSuiteConfig {
        AttackSuiteConfig {
            scale: Scale::Smoke,
            runs: 4,
            seed: 11,
        }
    }

    #[test]
    fn standard_suite_runs_end_to_end_and_renders() {
        let report = run(&cfg(), None).unwrap();
        assert!(report.results.len() >= 4);
        assert!(report.results.iter().all(|r| r.report.runs == 4));
        let md = report.to_markdown();
        assert!(md.contains("| attack |"));
        assert!(md.contains("sybil("));
        assert!(md.contains("coalition("));
    }

    #[test]
    fn spec_driven_suite_resolves_against_scenario() {
        let spec = "misreport factor=2.0 user=0\nscreening fraction=0.5\n";
        let report = run(&cfg(), Some(spec)).unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(report.results[0].name, "misreport(factor=2,user=0)");
        // Screening is attacker-free: both arms' utilities are zero, so the
        // gain is exactly zero.
        assert_eq!(report.results[1].report.gain, 0.0);
    }

    #[test]
    fn parallel_evaluation_matches_sequential_run_suite() {
        // The parallel fan-out merges per-replication batches in index
        // order, so it must agree exactly with the runner's sequential
        // observer-carrying path.
        let config = cfg();
        let scenario = scenario(&config);
        let suite = AttackSuite::standard(&scenario.asks).unwrap();
        let parallel = evaluate(&config, &scenario, &suite).unwrap();

        let (_, m_i) = dimensions(config.scale);
        let job = Job::uniform(4, m_i).unwrap();
        let rit = paper_mechanism(RoundLimit::until_stall());
        let costs: Vec<f64> = scenario.population.iter().map(|u| u.unit_cost()).collect();
        let runner = ProbeRunner::new(
            BaseScenario {
                tree: &scenario.tree,
                asks: &scenario.asks,
                costs: &costs,
            },
            SeedSchedule::Derived {
                master: config.seed,
                point: 0,
            },
            config.runs,
        );
        #[derive(Default)]
        struct Count(usize, usize);
        impl AttackObserver for Count {
            fn replication(
                &mut self,
                _a: usize,
                _n: &str,
                _r: usize,
                _o: &rit_adversary::PairedOutcome,
            ) {
                self.0 += 1;
            }
            fn attack_summary(&mut self, _a: usize, _n: &str, _g: &GainReport) {
                self.1 += 1;
            }
        }
        let mut observer = Count::default();
        let mut ws = RitWorkspace::new();
        let sequential = suite
            .run::<RitError, _, _>(
                &runner,
                &mut |view: ScenarioView<'_>, rng: &mut SmallRng| {
                    let out = rit.run_with_workspace(&job, view.tree, view.asks, &mut ws, rng)?;
                    Ok(out.into())
                },
                &mut observer,
            )
            .unwrap();
        assert_eq!(parallel.results, sequential);
        assert_eq!(observer.0, config.runs * suite.len());
        assert_eq!(observer.1, suite.len());
        let _ = NoopAttackObserver;
    }

    #[test]
    fn csv_has_schema_header_and_one_row_per_attack() {
        let report = run(&cfg(), Some("withholding quantity=1\n")).unwrap();
        let dir = std::env::temp_dir().join("rit_attacks_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("attack_suite.csv");
        report.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "attack,honest_mean,deviant_mean,gain,gain_se,z,runs,verdict"
        );
        assert_eq!(lines.count(), report.results.len());
    }
}
