//! Command-line harness regenerating every figure of the paper's §7
//! evaluation.
//!
//! ```text
//! experiments [--figure all|fig6a|fig6b|fig7a|fig7b|fig8a|fig8b|fig9]
//!             [--scale smoke|default|paper] [--runs N] [--seed S]
//!             [--substrates K] [--threads N] [--quick] [--out DIR]
//!             [--telemetry FILE] [--checkpoint FILE] [--resume]
//!             [--fail-fast]
//! experiments attack-suite [--spec FILE] [--mechanism rit|naive|darpa]
//!             [--scale smoke|default|paper] [--runs N] [--seed S]
//!             [--threads N] [--quick] [--out DIR] [--telemetry FILE]
//! experiments compare [--scale smoke|default|paper] [--runs N] [--seed S]
//!             [--quick] [--threads N] [--out DIR] [--telemetry FILE]
//! ```
//!
//! The `attack-suite` subcommand evaluates a battery of deviations (the
//! standard four-attack suite, or a declarative spec file — one
//! `kind key=value…` line per attack) against one scenario in a single
//! batched pass and writes the per-attack gain/z-score table to
//! `--out/attack_suite.csv`. `--mechanism` aims the same battery at the §4
//! naive combination or the §1 DARPA referral baseline instead of RIT.
//!
//! The `compare` subcommand runs all three mechanisms over one scenario —
//! honest economics plus a targeted sybil/misreport/withholding battery —
//! and writes the per-mechanism table to `--out/compare.csv`. `--quick` is
//! the CI smoke shape (smoke scale, 4 replications).
//!
//! `--substrates K` switches the sweep/ablation/screening experiments from
//! per-replication scenario generation (paper fidelity, the default) to `K`
//! rotating substrates served from a shared [`rit_sim::substrate::SubstrateCache`],
//! amortizing graph/tree/profile construction across replications.
//!
//! `--threads N` pins the worker-thread count of the grid scheduler and the
//! streams-mode auction phase (overriding the `RIT_THREADS` environment
//! variable); thread count never changes results, only wall-clock time.
//! `--quick` is the CI smoke shape: smoke scale with 3 replications (4 for
//! `attack-suite`, where z-scores need one more sample).
//!
//! `--telemetry FILE` (or the `RIT_TELEMETRY` env var — the flag wins)
//! streams structured JSONL telemetry to `FILE`: a run manifest first, then
//! per-epoch / per-attack events as they happen, then counter / gauge /
//! histogram-summary lines at exit. Without it the run is bit-identical and
//! records nothing.
//!
//! `--checkpoint FILE` appends each completed grid item to `FILE` as one
//! JSONL line; `--resume` additionally loads the file first and skips every
//! item already recorded, producing byte-identical outputs after a crash or
//! kill (see EXPERIMENTS.md, "Interrupting and resuming runs"). A panicking
//! cell item is retried once, then quarantined: the run completes, reports
//! the failed cell on stderr (and as a `cell_failure` telemetry event), and
//! still exits zero. `--fail-fast` aborts on the first quarantine instead,
//! re-raising the original panic. The `RIT_FAULTS` environment variable
//! injects deterministic faults (`panic@grid/cell[:once]`, `delay@cell:ms`,
//! `exit@cell`) for testing exactly these paths.
//!
//! Prints each figure as a Markdown table and writes a CSV per figure into
//! `--out` (default `results/`). `--scale default --runs 20` reproduces the
//! paper's curve shapes in minutes; `--scale paper --runs 1000` is the
//! full-fidelity grid (hours).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use rit_core::{DarpaReferral, MechanismKind, NaiveKthPriceTree};
use rit_sim::experiments::{
    ablation, bound_check, compare, fig9, quality_screening, robustness, sweeps, tree_shape,
    truthfulness_profile, Scale,
};
use rit_sim::metrics::Figure;
use rit_sim::substrate::SubstrateMode;
use rit_telemetry::{RunManifest, Telemetry};

#[derive(Clone, Debug)]
struct Args {
    figures: Vec<String>,
    scale: Scale,
    runs: usize,
    seed: u64,
    substrate: SubstrateMode,
    out: PathBuf,
    report: Option<PathBuf>,
    telemetry: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    fail_fast: bool,
}

/// The telemetry output path: the explicit flag, else the `RIT_TELEMETRY`
/// environment variable, else none.
fn telemetry_path(flag: Option<PathBuf>) -> Option<PathBuf> {
    flag.or_else(|| {
        std::env::var(rit_telemetry::TELEMETRY_ENV)
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from)
    })
}

/// Installs the process-global telemetry streaming to `path`. The config
/// description hashed into the manifest covers everything that determines
/// the run's numbers — and deliberately excludes output paths, so two runs
/// into different files carry the same `config_hash` (CI pins this).
fn install_telemetry(
    path: &Path,
    config_desc: &str,
    seed: u64,
    mechanism: MechanismKind,
) -> Option<&'static Telemetry> {
    let manifest = RunManifest::new(
        "experiments",
        env!("CARGO_PKG_VERSION"),
        config_desc,
        seed,
        rit_sim::runner::default_threads(),
    )
    .with_mechanism(mechanism.label());
    match Telemetry::with_sink(manifest, path) {
        Ok(t) => match rit_telemetry::install(t) {
            Ok(installed) => Some(installed),
            Err(_) => {
                eprintln!("warning: telemetry already installed; ignoring --telemetry");
                None
            }
        },
        Err(e) => {
            eprintln!(
                "warning: cannot open telemetry sink {}: {e}",
                path.display()
            );
            None
        }
    }
}

fn flush_telemetry(installed: Option<&'static Telemetry>) {
    if let Some(t) = installed {
        if let Err(e) = t.flush() {
            eprintln!("warning: telemetry flush failed: {e}");
        }
    }
}

/// Validates `--threads N` and installs the process-wide worker-thread
/// override (the flag wins over the `RIT_THREADS` environment variable)
/// for both the grid scheduler and the streams-mode auction phase.
fn apply_threads(value: &str) -> Result<(), String> {
    let threads: usize = value.parse().map_err(|e| format!("bad --threads: {e}"))?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    rit_sim::runner::set_thread_override(threads);
    rit_core::streams::set_thread_override(threads);
    Ok(())
}

const ALL_FIGURES: [&str; 15] = [
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "fig8a",
    "fig8b",
    "fig9",
    "ablation_collusion",
    "ablation_rounds",
    "bound_check",
    "robustness",
    "tree_shape",
    "truthfulness_profile",
    "quality_screening",
    "campaign",
];

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        figures: ALL_FIGURES.iter().map(|s| (*s).to_string()).collect(),
        scale: Scale::Default,
        runs: 10,
        seed: 2017,
        substrate: SubstrateMode::PerReplication,
        out: PathBuf::from("results"),
        report: None,
        telemetry: None,
        checkpoint: None,
        resume: false,
        fail_fast: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--figure" => {
                let v = value("--figure")?;
                if v == "all" {
                    args.figures = ALL_FIGURES.iter().map(|s| (*s).to_string()).collect();
                } else if ALL_FIGURES.contains(&v.as_str()) {
                    args.figures = vec![v];
                } else {
                    return Err(format!("unknown figure {v}; expected all|{ALL_FIGURES:?}"));
                }
            }
            "--scale" => {
                args.scale = match value("--scale")?.as_str() {
                    "smoke" => Scale::Smoke,
                    "default" => Scale::Default,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale {other}")),
                };
            }
            "--runs" => {
                args.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--substrates" => {
                let k: usize = value("--substrates")?
                    .parse()
                    .map_err(|e| format!("bad --substrates: {e}"))?;
                if k == 0 {
                    return Err("--substrates must be at least 1".into());
                }
                args.substrate = SubstrateMode::Rotating(k);
            }
            "--threads" => apply_threads(&value("--threads")?)?,
            "--quick" => {
                args.scale = Scale::Smoke;
                args.runs = 3;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--telemetry" => args.telemetry = Some(PathBuf::from(value("--telemetry")?)),
            "--checkpoint" => args.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--resume" => args.resume = true,
            "--fail-fast" => args.fail_fast = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--figure all|fig6a|...|fig9] \
                     [--scale smoke|default|paper] [--runs N] [--seed S] \
                     [--substrates K] [--threads N] [--quick] [--out DIR] \
                     [--report FILE] [--telemetry FILE] \
                     [--checkpoint FILE] [--resume] [--fail-fast]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.resume && args.checkpoint.is_none() {
        return Err("--resume requires --checkpoint FILE".into());
    }
    Ok(args)
}

fn emit(figure: &Figure, out: &Path, report: &mut String) {
    let md = figure.to_markdown();
    println!("{md}");
    report.push_str(&md);
    report.push('\n');
    let path = out.join(format!("{}.csv", figure.id));
    match figure.write_csv(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    let gp_path = out.join(format!("{}.gp", figure.id));
    let gp = figure.to_gnuplot(&format!("{}.csv", figure.id));
    match std::fs::write(&gp_path, gp) {
        Ok(()) => println!("wrote {}\n", gp_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}\n", gp_path.display()),
    }
}

fn parse_scale(value: &str) -> Result<Scale, String> {
    match value {
        "smoke" => Ok(Scale::Smoke),
        "default" => Ok(Scale::Default),
        "paper" => Ok(Scale::Paper),
        other => Err(format!("unknown scale {other}")),
    }
}

fn run_attack_suite(mut it: std::env::Args) -> Result<(), String> {
    let mut config = rit_sim::attacks::AttackSuiteConfig {
        scale: Scale::Default,
        runs: 40,
        seed: 2017,
    };
    let mut mechanism = MechanismKind::Rit;
    let mut spec_path: Option<PathBuf> = None;
    let mut out = PathBuf::from("results");
    let mut telemetry_flag: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--spec" => spec_path = Some(PathBuf::from(value("--spec")?)),
            "--mechanism" => mechanism = value("--mechanism")?.parse()?,
            "--scale" => config.scale = parse_scale(&value("--scale")?)?,
            "--runs" => {
                config.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => apply_threads(&value("--threads")?)?,
            "--quick" => {
                config.scale = Scale::Smoke;
                config.runs = 4;
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--telemetry" => telemetry_flag = Some(PathBuf::from(value("--telemetry")?)),
            "--help" | "-h" => {
                println!(
                    "usage: experiments attack-suite [--spec FILE] \
                     [--mechanism rit|naive|darpa] \
                     [--scale smoke|default|paper] [--runs N] [--seed S] \
                     [--threads N] [--quick] [--out DIR] [--telemetry FILE]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let spec_text = match &spec_path {
        Some(p) => Some(
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?,
        ),
        None => None,
    };
    let installed = telemetry_path(telemetry_flag).and_then(|path| {
        let config_desc = format!(
            "attack-suite mechanism={mechanism} scale={:?} runs={} seed={} spec={}",
            config.scale,
            config.runs,
            config.seed,
            spec_text.as_deref().unwrap_or("standard"),
        );
        install_telemetry(&path, &config_desc, config.seed, mechanism)
    });
    eprintln!(
        "running attack suite vs {mechanism} ({} runs/attack, scale {:?}, {})…",
        config.runs,
        config.scale,
        spec_path
            .as_deref()
            .map_or("standard battery".to_string(), |p| p.display().to_string()),
    );
    // Monomorphized dispatch: each arm instantiates the generic driver with
    // its concrete mechanism type, keeping RIT's allocation-free hot path.
    let report = match mechanism {
        MechanismKind::Rit => rit_sim::attacks::run(&config, spec_text.as_deref()),
        MechanismKind::Naive => rit_sim::attacks::run_with_mechanism(
            &config,
            spec_text.as_deref(),
            &NaiveKthPriceTree::new(),
        ),
        MechanismKind::Darpa => rit_sim::attacks::run_with_mechanism(
            &config,
            spec_text.as_deref(),
            &DarpaReferral::new(),
        ),
    }
    .map_err(|e| format!("attack suite failed: {e}"))?;
    flush_telemetry(installed);
    println!("{}", report.to_markdown());
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let csv = out.join("attack_suite.csv");
    report
        .write_csv(&csv)
        .map_err(|e| format!("cannot write {}: {e}", csv.display()))?;
    println!("wrote {}", csv.display());
    if !report.all_resisted() {
        eprintln!(
            "warning: at least one deviation beat the {}σ threshold",
            rit_sim::attacks::Z_MAX
        );
    }
    Ok(())
}

fn run_compare(mut it: std::env::Args) -> Result<(), String> {
    let mut config = compare::CompareConfig {
        scale: Scale::Default,
        runs: 20,
        seed: 2017,
    };
    let mut out = PathBuf::from("results");
    let mut telemetry_flag: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--quick" => config = compare::CompareConfig::quick(config.seed),
            "--scale" => config.scale = parse_scale(&value("--scale")?)?,
            "--runs" => {
                config.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?;
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--threads" => apply_threads(&value("--threads")?)?,
            "--out" => out = PathBuf::from(value("--out")?),
            "--telemetry" => telemetry_flag = Some(PathBuf::from(value("--telemetry")?)),
            "--help" | "-h" => {
                println!(
                    "usage: experiments compare [--scale smoke|default|paper] \
                     [--runs N] [--seed S] [--quick] [--threads N] [--out DIR] \
                     [--telemetry FILE]"
                );
                return Ok(());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    let installed = telemetry_path(telemetry_flag).and_then(|path| {
        let config_desc = format!(
            "compare scale={:?} runs={} seed={}",
            config.scale, config.runs, config.seed,
        );
        install_telemetry(&path, &config_desc, config.seed, MechanismKind::Rit)
    });
    eprintln!(
        "comparing mechanisms ({} runs each, scale {:?})…",
        config.runs, config.scale
    );
    let report = compare::run(&config).map_err(|e| format!("comparison failed: {e}"))?;
    flush_telemetry(installed);
    println!("{}", report.to_markdown());
    std::fs::create_dir_all(&out).map_err(|e| format!("cannot create {}: {e}", out.display()))?;
    let csv = out.join("compare.csv");
    report
        .write_csv(&csv)
        .map_err(|e| format!("cannot write {}: {e}", csv.display()))?;
    println!("wrote {}", csv.display());
    for row in &report.rows {
        if !row.all_resisted() {
            eprintln!(
                "note: {} lost at least one attack (the paper's §4/§1 counterexamples)",
                row.kind
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    // Interactive harness: show per-cell grid progress on stderr. Library
    // users and tests keep the silent default.
    rit_sim::grid::set_progress(true);
    // Deterministic fault injection (RIT_FAULTS env), honored by every
    // subcommand: a malformed plan is a hard error, not a silent no-op.
    match rit_sim::faults::install_from_env() {
        Ok(false) => {}
        Ok(true) => eprintln!("fault injection active ({})", rit_sim::faults::FAULTS_ENV),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let mut raw = std::env::args();
    let _argv0 = raw.next();
    if let Some(first) = std::env::args().nth(1) {
        if first == "attack-suite" || first == "compare" {
            raw.next(); // consume the subcommand
            let result = if first == "attack-suite" {
                run_attack_suite(raw)
            } else {
                run_compare(raw)
            };
            return match result {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            };
        }
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("error: cannot create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }
    rit_sim::grid::set_fail_fast(args.fail_fast);
    if let Some(path) = &args.checkpoint {
        match rit_sim::checkpoint::set_checkpoint(path, args.resume) {
            Ok(restored) => {
                if args.resume {
                    eprintln!(
                        "resuming from {}: {restored} completed item(s) restored",
                        path.display()
                    );
                } else {
                    eprintln!("checkpointing to {}", path.display());
                }
            }
            Err(e) => {
                eprintln!("error: cannot open checkpoint {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    let installed = telemetry_path(args.telemetry.clone()).and_then(|path| {
        let config_desc = format!(
            "experiments figures={:?} scale={:?} runs={} seed={} substrate={:?}",
            args.figures, args.scale, args.runs, args.seed, args.substrate,
        );
        install_telemetry(&path, &config_desc, args.seed, MechanismKind::Rit)
    });

    let wants = |id: &str| args.figures.iter().any(|f| f == id);
    let mut report = format!(
        "# RIT experiment report\n\nscale {:?}, {} runs/point, seed {}\n\n",
        args.scale, args.runs, args.seed
    );
    let mut sweep_config = sweeps::SweepConfig::new(args.scale, args.runs, args.seed);
    sweep_config.substrate = args.substrate;

    if wants("fig6a") || wants("fig7a") || wants("fig8a") {
        eprintln!(
            "running user sweep ({} runs/point, scale {:?})…",
            args.runs, args.scale
        );
        let data = sweeps::user_sweep(&sweep_config);
        report_completion(&data);
        if wants("fig6a") {
            emit(&sweeps::utility_figure(&data), &args.out, &mut report);
        }
        if wants("fig7a") {
            emit(&sweeps::payment_figure(&data), &args.out, &mut report);
        }
        if wants("fig8a") {
            emit(&sweeps::runtime_figure(&data), &args.out, &mut report);
        }
    }
    if wants("fig6b") || wants("fig7b") || wants("fig8b") {
        eprintln!(
            "running task sweep ({} runs/point, scale {:?})…",
            args.runs, args.scale
        );
        let data = sweeps::task_sweep(&sweep_config);
        report_completion(&data);
        if wants("fig6b") {
            emit(&sweeps::utility_figure(&data), &args.out, &mut report);
        }
        if wants("fig7b") {
            emit(&sweeps::payment_figure(&data), &args.out, &mut report);
        }
        if wants("fig8b") {
            emit(&sweeps::runtime_figure(&data), &args.out, &mut report);
        }
    }
    let mut ablation_config = ablation::AblationConfig::new(args.scale, args.runs, args.seed);
    ablation_config.substrate = args.substrate;
    if wants("ablation_collusion") {
        eprintln!("running collusion ablation ({} runs/cell)…", args.runs);
        emit(
            &ablation::collusion(&ablation_config),
            &args.out,
            &mut report,
        );
    }
    if wants("ablation_rounds") {
        eprintln!("running round-budget ablation ({} runs/cell)…", args.runs);
        emit(
            &ablation::round_budget(&ablation_config),
            &args.out,
            &mut report,
        );
    }
    if wants("bound_check") {
        eprintln!(
            "running Lemma 6.2 bound check ({} markets/cell)…",
            args.runs
        );
        emit(
            &bound_check::run(&bound_check::BoundCheckConfig {
                scale: args.scale,
                runs: args.runs,
                inner_runs: 32,
                seed: args.seed,
                k: 10,
            }),
            &args.out,
            &mut report,
        );
    }
    if wants("robustness") {
        eprintln!(
            "running cost-distribution robustness sweep ({} runs/cell)…",
            args.runs
        );
        emit(
            &robustness::run(&robustness::RobustnessConfig {
                scale: args.scale,
                runs: args.runs,
                seed: args.seed,
            }),
            &args.out,
            &mut report,
        );
    }
    if wants("tree_shape") {
        eprintln!(
            "running tree-shape sensitivity sweep ({} runs/model)…",
            args.runs
        );
        emit(
            &tree_shape::run(&tree_shape::TreeShapeConfig {
                scale: args.scale,
                runs: args.runs,
                seed: args.seed,
            }),
            &args.out,
            &mut report,
        );
    }
    if wants("truthfulness_profile") {
        eprintln!("running truthfulness profile ({} runs/factor)…", args.runs);
        emit(
            &truthfulness_profile::run(&truthfulness_profile::ProfileConfig {
                scale: args.scale,
                runs: args.runs,
                seed: args.seed,
            }),
            &args.out,
            &mut report,
        );
    }
    if wants("quality_screening") {
        eprintln!(
            "running quality-screening sweep ({} runs/level)…",
            args.runs
        );
        let mut screening_config =
            quality_screening::ScreeningConfig::new(args.scale, args.runs, args.seed);
        screening_config.substrate = args.substrate;
        emit(
            &quality_screening::run(&screening_config),
            &args.out,
            &mut report,
        );
    }
    if wants("campaign") {
        eprintln!("running campaign lifecycle (8 epochs)…");
        let mut config = rit_sim::campaign::CampaignConfig::small();
        config.num_jobs = 8;
        match rit_sim::campaign::run(&config, args.seed) {
            Ok(campaign_report) => emit(
                &rit_sim::campaign::to_figure(&campaign_report),
                &args.out,
                &mut report,
            ),
            Err(e) => eprintln!("campaign failed: {e}"),
        }
    }
    if wants("fig9") {
        eprintln!(
            "running fig9 sybil/truthfulness probe ({} runs/cell, scale {:?})…",
            args.runs, args.scale
        );
        let figure = fig9::run(&fig9::Fig9Config {
            scale: args.scale,
            runs: args.runs,
            seed: args.seed,
        });
        emit(&figure, &args.out, &mut report);
    }
    if let Some(path) = &args.report {
        match std::fs::write(path, &report) {
            Ok(()) => eprintln!("wrote combined report {}", path.display()),
            Err(e) => eprintln!("warning: could not write report {}: {e}", path.display()),
        }
    }
    flush_telemetry(installed);
    // Quarantined cells are reported, not fatal: every other cell's output
    // is intact, so the exit code stays zero unless --fail-fast aborted the
    // run (which panics with the original payload before reaching here).
    let failures = rit_sim::grid::take_failures();
    if !failures.is_empty() {
        eprintln!(
            "\n{} cell item(s) quarantined after panics:",
            failures.len()
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!("figures averaging a quarantined cell are missing those samples");
    }
    ExitCode::SUCCESS
}

fn report_completion(data: &sweeps::SweepData) {
    for p in &data.points {
        eprintln!(
            "  {} = {}: completion rate {:.0}%",
            data.kind,
            p.x,
            100.0 * p.completion_rate
        );
    }
}
