//! Campaigns: a sequence of jobs over a persistent, growing membership.
//!
//! The paper analyzes one job over one solicitation tree. A real platform
//! posts jobs repeatedly: the tree persists, recruitment continues between
//! jobs (driven by the rewards the last job paid out), and users accumulate
//! earnings. This module simulates that lifecycle with the pieces already
//! in the workspace — diffusion-based recruitment over a fixed social
//! graph, fresh §7-A profiles for newcomers, and one RIT run per epoch —
//! so longitudinal questions ("does early joining pay?", "how fast does the
//! platform's per-task cost settle?") become measurable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_core::{Mechanism, Rit, RitConfig, RitError, RoundLimit};
use rit_model::workload::WorkloadConfig;
use rit_model::{Ask, Job, UserProfile};
use rit_socialgraph::diffusion::{self, DiffusionConfig, DiffusionState};
use rit_socialgraph::{generators, SocialGraph};
use rit_tree::IncentiveTree;

/// How the per-epoch recruitment cascade is advanced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecruitmentMode {
    /// Checkpoint a [`DiffusionState`] and extend it to each epoch's target:
    /// O(new joins) per epoch. The default.
    #[default]
    Incremental,
    /// Replay the full cascade from round 0 every epoch (the pre-cache
    /// behavior): O(total cascade) per epoch. Kept as the equivalence
    /// baseline — both modes produce bit-identical [`CampaignReport`]s.
    Replay,
}

/// Configuration of a campaign.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CampaignConfig {
    /// Number of jobs (epochs) to run.
    pub num_jobs: usize,
    /// Size of the underlying social graph (the recruitable universe).
    pub universe: usize,
    /// Membership target for the first epoch.
    pub initial_target: usize,
    /// Additional membership target per subsequent epoch.
    pub growth_per_epoch: usize,
    /// Per-neighbor invitation success probability during recruitment.
    pub invite_prob: f64,
    /// User-profile distribution.
    pub workload: WorkloadConfig,
    /// Tasks per type of each posted job.
    pub tasks_per_type: u64,
}

impl CampaignConfig {
    /// A small default campaign: 6 jobs over a 6,000-user universe.
    #[must_use]
    pub fn small() -> Self {
        Self {
            num_jobs: 6,
            universe: 6_000,
            initial_target: 1_500,
            growth_per_epoch: 500,
            invite_prob: 0.6,
            workload: WorkloadConfig {
                num_types: 4,
                capacity_max: 8,
                cost_max: 10.0,
            },
            tasks_per_type: 150,
        }
    }
}

/// Per-epoch record.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochReport {
    /// Members at the time the job ran.
    pub members: usize,
    /// Whether the job completed.
    pub completed: bool,
    /// Total platform payment this epoch.
    pub total_payment: f64,
    /// Platform cost per task (`total_payment / |J|`), 0 if incomplete.
    pub cost_per_task: f64,
    /// Solicitation share of the payment.
    pub solicitation_share: f64,
}

/// Full campaign outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// One record per epoch, in order.
    pub epochs: Vec<EpochReport>,
    /// Lifetime earnings per member (indexed by final membership order).
    pub lifetime_earnings: Vec<f64>,
    /// Join epoch of each member (0-based).
    pub join_epoch: Vec<usize>,
}

impl CampaignReport {
    /// Mean lifetime earnings of members who joined in `epoch`.
    #[must_use]
    pub fn mean_earnings_by_join_epoch(&self, epoch: usize) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for (j, &e) in self.join_epoch.iter().enumerate() {
            if e == epoch {
                sum += self.lifetime_earnings[j];
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }
}

/// Runs a campaign with incremental recruitment (see [`RecruitmentMode`]).
///
/// # Errors
///
/// Propagates mechanism errors (the campaign runs best-effort rounds, so
/// only alignment bugs can surface).
///
/// # Panics
///
/// Panics on invalid configuration (zero universe, bad probabilities) or on
/// a cascade that fails to embed the previous epoch's membership (a
/// determinism bug — see [`run_with_mode`]).
pub fn run(config: &CampaignConfig, seed: u64) -> Result<CampaignReport, RitError> {
    run_with_mode(config, seed, RecruitmentMode::Incremental)
}

/// Runs a campaign with an explicit [`RecruitmentMode`]. Both modes are
/// bit-identical in every reported number (pinned by the
/// `campaign_equivalence` proptest); they differ only in per-epoch cost.
///
/// # Errors
///
/// See [`run`].
///
/// # Panics
///
/// See [`run`]. The membership-embedding guards are hard asserts (not
/// `debug_assert!`): a release-mode cascade divergence would silently
/// misalign `lifetime_earnings` with the member list, so it must abort.
pub fn run_with_mode(
    config: &CampaignConfig,
    seed: u64,
    mode: RecruitmentMode,
) -> Result<CampaignReport, RitError> {
    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })?;
    run_with_mechanism(config, seed, mode, &rit)
}

/// Runs a campaign under any [`Mechanism`] — the generic core of
/// [`run_with_mode`]. With the paper's RIT instance this is bit-identical
/// to the historical RIT-only driver (the mechanism is monomorphized and
/// the RIT path delegates to `run_with_workspace` draw-for-draw); with a
/// baseline it answers "what would the same campaign have cost under the
/// naive §4 or DARPA scheme?".
///
/// # Errors
///
/// See [`run`].
///
/// # Panics
///
/// See [`run_with_mode`].
pub fn run_with_mechanism<M: Mechanism>(
    config: &CampaignConfig,
    seed: u64,
    mode: RecruitmentMode,
    mechanism: &M,
) -> Result<CampaignReport, RitError> {
    assert!(config.universe > 2, "universe too small");
    let _campaign_span = rit_telemetry::span(rit_telemetry::SpanKind::Campaign);
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph: SocialGraph = generators::barabasi_albert(config.universe, 2, &mut rng);
    let job =
        Job::uniform(config.workload.num_types, config.tasks_per_type).expect("workload has types");

    // Incremental mode: one cascade state and one dedicated RNG live across
    // all epochs; each epoch extends the cascade to its target instead of
    // replaying it from round 0.
    let mut cascade = DiffusionState::new(&graph, &[0]);
    let mut cascade_rng = SmallRng::seed_from_u64(seed ^ 0xCAFE);

    let mut ws = M::Workspace::default(); // auction scratch, reused across epochs
    let mut joined: Vec<u32> = Vec::new(); // graph node per member
    let mut profiles: Vec<UserProfile> = Vec::new();
    let mut asks: Vec<Ask> = Vec::new();
    let mut lifetime_earnings: Vec<f64> = Vec::new();
    let mut join_epoch: Vec<usize> = Vec::new();
    let mut epochs = Vec::with_capacity(config.num_jobs);

    for epoch in 0..config.num_jobs {
        let _epoch_span = rit_telemetry::span(rit_telemetry::SpanKind::Epoch);
        let epoch_start = std::time::Instant::now();
        // Recruitment to the new target. Members keep their position: the
        // cascade is deterministic and strictly extends epoch over epoch,
        // so we extend our bookkeeping only for the newcomers.
        let target = config.initial_target + epoch * config.growth_per_epoch;
        let diffusion_config = DiffusionConfig {
            invite_prob: config.invite_prob,
            target: Some(target.min(config.universe)),
            max_rounds: 64,
        };
        let tree: IncentiveTree = match mode {
            RecruitmentMode::Incremental => {
                cascade.extend(&graph, &diffusion_config, &mut cascade_rng);
                assert!(
                    cascade.joined()[..joined.len()] == joined[..],
                    "incremental cascade mutated the existing membership"
                );
                joined.extend_from_slice(&cascade.joined()[joined.len()..]);
                cascade.tree()
            }
            RecruitmentMode::Replay => {
                // Pre-cache behavior: regrow the whole cascade, re-seeded
                // from the same origin so previously joined users re-appear
                // first in the same order.
                let outcome = diffusion::simulate(
                    &graph,
                    &[0],
                    &diffusion_config,
                    &mut SmallRng::seed_from_u64(seed ^ 0xCAFE), // same cascade each epoch
                );
                assert!(
                    outcome.joined.len() >= joined.len()
                        && outcome.joined[..joined.len()] == joined[..],
                    "replayed cascade failed to embed the previous membership"
                );
                joined.extend_from_slice(&outcome.joined[joined.len()..]);
                outcome.tree
            }
        };
        for _ in profiles.len()..joined.len() {
            let profile = config
                .workload
                .sample_user(&mut rng)
                .expect("valid workload");
            profiles.push(profile);
            asks.push(profile.truthful_ask());
            lifetime_earnings.push(0.0);
            join_epoch.push(epoch);
        }
        // Guard: the cascade must embed the previous membership exactly —
        // a divergence here would misalign `lifetime_earnings`.
        assert_eq!(
            tree.num_users(),
            joined.len(),
            "cascade tree diverged from the accumulated membership"
        );

        // Run the job.
        let run_seed = rng.gen::<u64>();
        let outcome = mechanism.evaluate_in(
            &job,
            &tree,
            &asks,
            None,
            &mut ws,
            &mut SmallRng::seed_from_u64(run_seed),
        )?;
        let total_payment = outcome.total_payment();
        let solicitation: f64 = outcome.solicitation_rewards().iter().sum();
        for j in 0..joined.len() {
            lifetime_earnings[j] += outcome.utility(j, profiles[j].unit_cost());
        }
        epochs.push(EpochReport {
            members: joined.len(),
            completed: outcome.completed(),
            total_payment,
            cost_per_task: if outcome.completed() {
                total_payment / job.total_tasks() as f64
            } else {
                0.0
            },
            solicitation_share: if total_payment > 0.0 {
                solicitation / total_payment
            } else {
                0.0
            },
        });
        if let Some(t) = rit_telemetry::active() {
            let m = t.metrics();
            let wall_micros = u64::try_from(epoch_start.elapsed().as_micros()).unwrap_or(u64::MAX);
            t.add(m.campaign_epochs, 1);
            t.record(m.campaign_epoch_micros, wall_micros);
            if t.has_sink() {
                let e = epochs.last().expect("epoch just pushed");
                t.emit(
                    &rit_telemetry::JsonObject::new("epoch")
                        .str_field("mechanism", mechanism.kind().label())
                        .u64_field("epoch", epoch as u64)
                        .u64_field("members", e.members as u64)
                        .bool_field("completed", e.completed)
                        .f64_field("total_payment", e.total_payment)
                        .f64_field("cost_per_task", e.cost_per_task)
                        .u64_field("wall_micros", wall_micros)
                        .finish(),
                );
            }
        }
    }

    Ok(CampaignReport {
        epochs,
        lifetime_earnings,
        join_epoch,
    })
}

/// Renders a campaign as a figure: per-epoch membership, cost per task,
/// and solicitation share (x = epoch index).
#[must_use]
pub fn to_figure(report: &CampaignReport) -> crate::metrics::Figure {
    use crate::metrics::{Figure, Point, Series};
    let point = |i: usize, y: f64| Point {
        x: i as f64,
        y,
        y_std: 0.0,
    };
    Figure {
        id: "campaign",
        title: "campaign lifecycle: membership, per-task cost, solicitation share".into(),
        x_label: "epoch",
        y_label: "members / cost per task / share",
        series: vec![
            Series {
                name: "members".into(),
                points: report
                    .epochs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| point(i, e.members as f64))
                    .collect(),
            },
            Series {
                name: "cost per task".into(),
                points: report
                    .epochs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| point(i, e.cost_per_task))
                    .collect(),
            },
            Series {
                name: "solicitation share".into(),
                points: report
                    .epochs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| point(i, e.solicitation_share))
                    .collect(),
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_grows_and_accumulates() {
        let report = run(&CampaignConfig::small(), 11).unwrap();
        assert_eq!(report.epochs.len(), 6);
        // Membership is non-decreasing and actually grows.
        for w in report.epochs.windows(2) {
            assert!(w[1].members >= w[0].members);
        }
        assert!(report.epochs.last().unwrap().members > report.epochs[0].members);
        // Most epochs complete at this scale.
        let completed = report.epochs.iter().filter(|e| e.completed).count();
        assert!(completed >= 4, "only {completed}/6 epochs completed");
        // Earnings vectors align with the final membership.
        assert_eq!(report.lifetime_earnings.len(), report.join_epoch.len());
        assert_eq!(
            report.lifetime_earnings.len(),
            report.epochs.last().unwrap().members
        );
        // Nobody is underwater across a truthful lifetime (IR per epoch).
        assert!(report.lifetime_earnings.iter().all(|&e| e >= -1e-9));
    }

    #[test]
    fn early_joiners_do_not_earn_less_on_average() {
        let report = run(&CampaignConfig::small(), 13).unwrap();
        let first = report.mean_earnings_by_join_epoch(0);
        let last_epoch = report.epochs.len() - 1;
        let late = report.mean_earnings_by_join_epoch(last_epoch);
        // Early joiners played more auctions and sit higher in the tree.
        assert!(
            first >= late,
            "early joiners earned {first:.3} < late joiners {late:.3}"
        );
    }

    #[test]
    fn incremental_recruitment_matches_full_replay() {
        for seed in [11u64, 17, 23] {
            let incremental =
                run_with_mode(&CampaignConfig::small(), seed, RecruitmentMode::Incremental)
                    .unwrap();
            let replay =
                run_with_mode(&CampaignConfig::small(), seed, RecruitmentMode::Replay).unwrap();
            assert_eq!(incremental, replay, "modes diverged at seed {seed}");
        }
    }

    #[test]
    fn generic_rit_campaign_is_bit_identical_to_default_driver() {
        let rit = Rit::new(RitConfig {
            round_limit: RoundLimit::until_stall(),
            ..RitConfig::default()
        })
        .unwrap();
        let generic = run_with_mechanism(
            &CampaignConfig::small(),
            11,
            RecruitmentMode::Incremental,
            &rit,
        )
        .unwrap();
        let direct = run(&CampaignConfig::small(), 11).unwrap();
        assert_eq!(generic, direct);
    }

    #[test]
    fn baseline_campaigns_run_end_to_end() {
        use rit_core::{DarpaReferral, NaiveKthPriceTree};
        let config = CampaignConfig::small();
        for report in [
            run_with_mechanism(
                &config,
                11,
                RecruitmentMode::Incremental,
                &NaiveKthPriceTree::new(),
            )
            .unwrap(),
            run_with_mechanism(
                &config,
                11,
                RecruitmentMode::Incremental,
                &DarpaReferral::new(),
            )
            .unwrap(),
        ] {
            assert_eq!(report.epochs.len(), config.num_jobs);
            // The k-th-price allocation fills these small jobs every epoch,
            // and partial or not, the baselines always pay their winners.
            assert!(report.epochs.iter().all(|e| e.total_payment > 0.0));
        }
    }

    #[test]
    fn campaign_deterministic_per_seed() {
        let a = run(&CampaignConfig::small(), 17).unwrap();
        let b = run(&CampaignConfig::small(), 17).unwrap();
        assert_eq!(a, b);
        let c = run(&CampaignConfig::small(), 18).unwrap();
        assert_ne!(a.lifetime_earnings, c.lifetime_earnings);
    }

    #[test]
    fn figure_rendering_covers_epochs() {
        let report = run(&CampaignConfig::small(), 23).unwrap();
        let fig = to_figure(&report);
        assert_eq!(fig.id, "campaign");
        assert_eq!(fig.series.len(), 3);
        for s in &fig.series {
            assert_eq!(s.points.len(), report.epochs.len());
        }
        assert!(!fig.to_markdown().is_empty());
    }

    #[test]
    fn solicitation_share_is_bounded() {
        let report = run(&CampaignConfig::small(), 19).unwrap();
        for e in &report.epochs {
            assert!(e.solicitation_share >= 0.0);
            assert!(
                e.solicitation_share <= 0.5 + 1e-9,
                "share {}",
                e.solicitation_share
            );
        }
    }
}
