//! JSONL checkpoint/resume for the experiment grid engine.
//!
//! A long grid run should survive preemption the way a training job
//! survives a node loss: everything computed before the kill is kept,
//! everything after resumes exactly where it stopped, and the final
//! output is byte-identical to an uninterrupted run. This module is the
//! persistence half of that contract (the engine half lives in
//! [`crate::grid`]).
//!
//! # Format
//!
//! The checkpoint is a JSONL file routed through the same
//! [`Table`](crate::io::Table) emitter as every other artifact: one
//! object per completed `(grid, cell, replication)` item, three header
//! fields followed by the adapter's record fields in its declared
//! [`checkpoint_columns`](crate::grid::CellRun::checkpoint_columns)
//! order:
//!
//! ```text
//! {"grid":"users","cell":3,"replication":1,"avg_utility_auction":12.5,...}
//! ```
//!
//! Lines are appended and flushed as items land, so a hard kill loses at
//! most the in-flight items. Floats go through
//! [`fmt_f64`](crate::io::fmt_f64)'s shortest-round-trip rendering and
//! come back bit-identical through [`rit_telemetry::JsonValue`], which is
//! what makes resumed CSVs byte-identical: a restored record is
//! indistinguishable from the freshly computed one. (`NaN` renders as
//! `null` and restores as `NaN`; non-finite values other than `NaN` do
//! not survive JSON and cause the item to re-run.)
//!
//! # Robustness
//!
//! Loading is lenient: malformed lines (e.g. a torn final write), lines
//! with unexpected header fields, and records whose field shape no longer
//! matches the adapter are skipped — the affected items simply re-run.
//! Failed (quarantined) items are never checkpointed, so a resume retries
//! them. Append errors disable further appends with a warning rather than
//! killing the run: a broken checkpoint must never take the results with
//! it.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use rit_telemetry::JsonValue;

use crate::io::{Table, Value};

struct CheckpointState {
    /// Append handle; dropped (with a warning) on the first write error.
    file: Option<File>,
    /// Restored records from a previous run, keyed by
    /// `(grid, cell, replication)`.
    completed: HashMap<(String, u64, u64), Vec<Value>>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<CheckpointState>> = Mutex::new(None);

fn lock() -> std::sync::MutexGuard<'static, Option<CheckpointState>> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Activates checkpointing to `path` for every subsequent grid run in
/// this process. With `resume`, previously completed records are loaded
/// first (leniently — unreadable lines are skipped) and their items will
/// be restored instead of re-run; without it the file is truncated.
/// Returns the number of restored records.
///
/// # Errors
///
/// Propagates file creation/read errors. Malformed *content* is never an
/// error, only malformed I/O.
pub fn set_checkpoint(path: &Path, resume: bool) -> io::Result<usize> {
    let mut completed = HashMap::new();
    if resume {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                for line in text.lines() {
                    if let Some((key, fields)) = parse_line(line) {
                        completed.insert(key, fields);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    let file = OpenOptions::new()
        .create(true)
        .append(resume)
        .write(true)
        .truncate(!resume)
        .open(path)?;
    let restored = completed.len();
    let mut slot = lock();
    *slot = Some(CheckpointState {
        file: Some(file),
        completed,
    });
    ACTIVE.store(true, Ordering::Relaxed);
    Ok(restored)
}

/// Deactivates checkpointing and drops the file handle and restored
/// records.
pub fn clear_checkpoint() {
    let mut slot = lock();
    ACTIVE.store(false, Ordering::Relaxed);
    *slot = None;
}

/// Whether a checkpoint is currently active.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The restored record fields for one item, if the active checkpoint has
/// them. A single relaxed load when no checkpoint is active.
pub(crate) fn restore(grid: &str, cell: usize, replication: usize) -> Option<Vec<Value>> {
    if !is_active() {
        return None;
    }
    let slot = lock();
    slot.as_ref()?
        .completed
        .get(&(grid.to_string(), cell as u64, replication as u64))
        .cloned()
}

/// Appends one completed item to the active checkpoint and flushes it.
/// No-op when inactive; on a write error, warns once and stops appending
/// (restores keep working).
pub(crate) fn append(
    grid: &str,
    cell: usize,
    replication: usize,
    columns: &[&'static str],
    fields: &[Value],
) {
    if !is_active() {
        return;
    }
    let mut header: Vec<String> = vec!["grid".into(), "cell".into(), "replication".into()];
    header.extend(columns.iter().map(|c| (*c).to_string()));
    let mut table = Table::new(header);
    let mut row = vec![
        Value::Str(grid.to_string()),
        Value::U64(cell as u64),
        Value::U64(replication as u64),
    ];
    row.extend_from_slice(fields);
    table.push_row(row);
    let line = table.to_json_lines();

    let mut slot = lock();
    let Some(state) = slot.as_mut() else { return };
    let Some(file) = state.file.as_mut() else {
        return;
    };
    let result = file.write_all(line.as_bytes()).and_then(|()| file.flush());
    if let Err(e) = result {
        eprintln!(
            "warning: checkpoint append failed ({e}); further cells will not be checkpointed"
        );
        state.file = None;
    }
}

/// Parses one checkpoint line into its key and record fields; `None` for
/// anything that does not look like a checkpoint record.
fn parse_line(line: &str) -> Option<((String, u64, u64), Vec<Value>)> {
    let parsed = JsonValue::parse(line.trim()).ok()?;
    let entries = parsed.entries()?;
    if entries.len() < 3 {
        return None;
    }
    let (grid_key, grid) = &entries[0];
    let (cell_key, cell) = &entries[1];
    let (rep_key, rep) = &entries[2];
    if grid_key != "grid" || cell_key != "cell" || rep_key != "replication" {
        return None;
    }
    let key = (grid.as_str()?.to_string(), cell.as_u64()?, rep.as_u64()?);
    let mut fields = Vec::with_capacity(entries.len() - 3);
    for (_, value) in &entries[3..] {
        fields.push(match value {
            JsonValue::String(s) => Value::Str(s.clone()),
            JsonValue::Bool(b) => Value::Bool(*b),
            JsonValue::Number(n) => Value::F64(*n),
            JsonValue::Null => Value::F64(f64::NAN),
            JsonValue::Array(_) | JsonValue::Object(_) => return None,
        });
    }
    Some((key, fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checkpoint state is process-global; every test that activates it
    /// serializes through this lock (and clears on the way out).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rit_checkpoint_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_records_including_nan_and_exact_floats() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let path = tmp("roundtrip.jsonl");
        set_checkpoint(&path, false).unwrap();
        let fields = vec![
            Value::F64(0.1 + 0.2), // not representable exactly in decimal
            Value::F64(f64::NAN),
            Value::Bool(true),
            Value::Str("a \"quoted\" label".to_string()),
        ];
        append("users", 3, 1, &["x", "y", "ok", "label"], &fields);
        clear_checkpoint();

        let restored = set_checkpoint(&path, true).unwrap();
        assert_eq!(restored, 1);
        assert!(restore("users", 0, 0).is_none());
        assert!(restore("tasks", 3, 1).is_none());
        let got = restore("users", 3, 1).unwrap();
        assert_eq!(got.len(), 4);
        match (&got[0], &fields[0]) {
            (Value::F64(a), Value::F64(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "floats restore bit-identically");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&got[1], Value::F64(v) if v.is_nan()));
        assert_eq!(got[2], Value::Bool(true));
        assert_eq!(got[3], Value::Str("a \"quoted\" label".to_string()));
        clear_checkpoint();
        assert!(!is_active());
        assert!(
            restore("users", 3, 1).is_none(),
            "inactive restores nothing"
        );
    }

    #[test]
    fn lenient_load_skips_torn_and_foreign_lines() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let path = tmp("lenient.jsonl");
        std::fs::write(
            &path,
            concat!(
                "{\"grid\":\"g\",\"cell\":0,\"replication\":0,\"v\":1.5}\n",
                "{\"grid\":\"g\",\"cell\":1,\"repl", // torn mid-write
                "\n",
                "not json at all\n",
                "{\"event\":\"manifest\",\"seed\":7}\n", // wrong header fields
                "{\"grid\":\"g\",\"cell\":2,\"replication\":0,\"v\":null}\n",
            ),
        )
        .unwrap();
        let restored = set_checkpoint(&path, true).unwrap();
        assert_eq!(restored, 2);
        assert_eq!(restore("g", 0, 0).unwrap(), vec![Value::F64(1.5)]);
        assert!(matches!(restore("g", 2, 0).unwrap()[0], Value::F64(v) if v.is_nan()));
        assert!(restore("g", 1, 0).is_none());
        clear_checkpoint();
    }

    #[test]
    fn fresh_checkpoint_truncates_and_resume_appends() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let path = tmp("truncate.jsonl");
        set_checkpoint(&path, false).unwrap();
        append("g", 0, 0, &["v"], &[Value::F64(1.0)]);
        clear_checkpoint();

        // Resume keeps the old line and appends new ones.
        assert_eq!(set_checkpoint(&path, true).unwrap(), 1);
        append("g", 1, 0, &["v"], &[Value::F64(2.0)]);
        clear_checkpoint();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);

        // A non-resume open truncates.
        set_checkpoint(&path, false).unwrap();
        clear_checkpoint();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");

        // Resuming from a missing file is an empty checkpoint, not an error.
        let missing = tmp("does_not_exist.jsonl");
        let _ = std::fs::remove_file(&missing);
        assert_eq!(set_checkpoint(&missing, true).unwrap(), 0);
        clear_checkpoint();
    }
}
