//! Ablations of RIT's design choices.
//!
//! * [`collusion`] — *why consensus rounding?* The best single-user
//!   withhold-and-decoy manipulation is computed against the naive `k`-th
//!   price combination (where it is deterministic and often profitable in
//!   thin markets), then replayed against RIT's CRA. Expected shape: the
//!   naive gain is positive and shrinks as the market thickens; the CRA
//!   gain hovers at zero everywhere.
//! * [`round_budget`] — *why the first-round reading of Algorithm 3's
//!   `max`?* Completion rate of the auction phase under the three
//!   [`RoundLimit`] policies as the per-type job size grows. The strict
//!   `q = 0` reading yields a zero budget below `mᵢ ≈ 1600` (at
//!   `K_max = 20`, `H = 0.8`, `m = 10`) and therefore a 0% completion rate
//!   there — evidence that the paper's own evaluation cannot have used it
//!   (see DESIGN.md).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_adversary::{BaseScenario, ProbeRunner, SeedSchedule, SybilPricing, SybilSplit};
use rit_auction::bounds::WorstCaseQ;
use rit_auction::extract;
use rit_core::sybil_exec;
use rit_core::{naive, Rit, RitConfig, RitError, RoundLimit};
use rit_model::{Ask, Job};
use rit_tree::sybil::SybilPlan;

use crate::experiments::Scale;
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::Value;
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::runner::derive_seed;
use crate::scenario::{Scenario, ScenarioConfig};
use crate::substrate::{SubstrateCache, SubstrateMode};

/// Configuration shared by the ablations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AblationConfig {
    /// Problem size.
    pub scale: Scale,
    /// Replications per cell for the randomized mechanism.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Substrate sourcing for the round-budget ablation (the collusion
    /// ablation scans adversarial market draws, so it always generates).
    pub substrate: SubstrateMode,
}

impl AblationConfig {
    /// An ablation configuration with per-replication substrates.
    #[must_use]
    pub fn new(scale: Scale, runs: usize, seed: u64) -> Self {
        Self {
            scale,
            runs,
            seed,
            substrate: SubstrateMode::PerReplication,
        }
    }
}

/// Salt separating freshly generated substrates from the round-budget
/// ablation's mechanism seeds.
const FRESH_SALT: u64 = 0x5A5A;
/// Salt separating substrate seeds from the ablation's mechanism seeds.
const SUBSTRATE_STREAM: u64 = 0x5A5A_F00D;

/// The best withhold-and-decoy manipulation available to any single user
/// against the naive mechanism, as `(attacker, decoy_price, estimated_gain)`.
/// Returns `None` when no strictly profitable manipulation exists.
fn best_decoy(job: &Job, scenario: &Scenario) -> Option<(usize, f64, f64)> {
    let honest = naive::run(job, &scenario.tree, &scenario.asks);
    let mut best: Option<(usize, f64, f64)> = None;
    for (task_type, m_i) in job.iter() {
        let alpha = extract::extract(task_type, &scenario.asks);
        let mut values: Vec<f64> = alpha.values().to_vec();
        values.sort_by(f64::total_cmp);
        let slots = m_i as usize;
        if values.len() < slots + 2 || values[slots + 1] <= values[slots] {
            continue;
        }
        let clearing = values[slots];
        let decoy = values[slots + 1] - 1e-9;
        for j in 0..scenario.num_users() {
            if scenario.asks[j].task_type() != task_type || honest.allocation[j] < 2 {
                continue;
            }
            let units = honest.allocation[j] as f64;
            let est =
                (units - 1.0) * (decoy - clearing) - (clearing - scenario.asks[j].unit_price());
            if est > best.map_or(0.0, |(_, _, g)| g) {
                best = Some((j, decoy, est));
            }
        }
    }
    best
}

fn decoy_asks(scenario: &Scenario, attacker: usize, decoy: f64) -> Vec<Ask> {
    let base = scenario.asks[attacker];
    vec![
        base.with_quantity(base.quantity().max(2) - 1)
            .expect("quantity ≥ 1"),
        Ask::new(base.task_type(), 1, decoy).expect("valid decoy price"),
    ]
}

/// One manipulable market: everything a replication needs to replay the
/// best decoy attack against the CRA.
struct CollusionCell {
    scenario: Scenario,
    costs: Vec<f64>,
    deviation: SybilSplit,
    job: Job,
    /// `ProbeRunner` seed point (`1000 + pi`), preserving the pre-engine
    /// per-size schedule even when some sizes resolve to no manipulation.
    point: u64,
}

/// Grid adapter: one CRA replication of the chosen attack in one market
/// size. The replication seed comes from the cell's own [`ProbeRunner`]
/// schedule (master/point/replication), so the grid's derived seed is
/// deliberately unused here.
struct CollusionRun {
    rit: Rit,
    runs: usize,
}

impl CellRun for CollusionRun {
    type Cell = CollusionCell;
    type Workspace = ();
    type Record = f64;

    fn workspace(&self) {}

    fn salt(&self, cell_index: usize, _cell: &CollusionCell) -> u64 {
        cell_index as u64
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&["gain"])
    }

    fn encode_record(&self, record: &f64) -> Vec<Value> {
        vec![Value::F64(*record)]
    }

    fn decode_record(&self, fields: &[Value]) -> Option<f64> {
        match fields {
            [Value::F64(v)] => Some(*v),
            _ => None,
        }
    }

    fn run(&self, ctx: &CellCtx<'_, CollusionCell>, (): &mut ()) -> f64 {
        let cell = ctx.cell;
        let base = BaseScenario {
            tree: &cell.scenario.tree,
            asks: &cell.scenario.asks,
            costs: &cell.costs,
        };
        let runner = ProbeRunner::new(
            base,
            SeedSchedule::Derived {
                master: ctx.master_seed(),
                point: cell.point,
            },
            self.runs,
        );
        let rit = &self.rit;
        let job = &cell.job;
        runner
            .replication::<RitError, _>(ctx.replication, &cell.deviation, &mut |view, rng| {
                let out = rit.run(job, view.tree, view.asks, rng)?;
                Ok(out.into())
            })
            .expect("aligned")
            .gain()
    }
}

/// The collusion ablation: exact naive gain vs mean CRA gain of the same
/// attack, swept over market size (single-type jobs, `n = 12·mᵢ / K̄`).
#[must_use]
pub fn collusion(config: &AblationConfig) -> Figure {
    let sizes: Vec<u64> = match config.scale {
        Scale::Smoke => vec![20, 40],
        Scale::Default | Scale::Paper => vec![20, 50, 100, 200, 400],
    };
    let mut naive_series = Vec::with_capacity(sizes.len());
    // One slot per size: the naive point index, plus the grid cell when the
    // size admits a manipulation.
    let mut cells: Vec<CollusionCell> = Vec::new();
    let mut cell_for_size: Vec<Option<usize>> = Vec::with_capacity(sizes.len());

    for (pi, &m_i) in sizes.iter().enumerate() {
        // Thin-ish single-type market: expected unit supply ≈ 3× demand.
        let mut scen_config = ScenarioConfig::paper((m_i as usize * 12 / 5).max(20));
        scen_config.workload.num_types = 1;
        scen_config.workload.capacity_max = 4;
        let job = Job::from_counts(vec![m_i]).expect("non-empty job");

        // Scan market draws and keep the one admitting the most profitable
        // manipulation — the adversary's best case against the naive design.
        let mut chosen: Option<(Scenario, usize, f64, f64)> = None;
        for s in 0..100u64 {
            let scenario = Scenario::generate(&scen_config, derive_seed(config.seed, pi as u64, s));
            if let Some((attacker, decoy, est)) = best_decoy(&job, &scenario) {
                if est > chosen.as_ref().map_or(0.0, |&(_, _, _, g)| g) {
                    chosen = Some((scenario, attacker, decoy, est));
                }
            }
        }
        let Some((scenario, attacker, decoy, _)) = chosen else {
            // No manipulable draw found (thick-market regime): record zero gain.
            naive_series.push(Point {
                x: m_i as f64,
                y: 0.0,
                y_std: 0.0,
            });
            cell_for_size.push(None);
            continue;
        };
        let cost = scenario.population[attacker].unit_cost();
        let identity_asks = decoy_asks(&scenario, attacker, decoy);

        // Exact naive gain.
        let honest_naive = naive::run(&job, &scenario.tree, &scenario.asks);
        let mut rng = SmallRng::seed_from_u64(derive_seed(config.seed, pi as u64, 999));
        let sc = sybil_exec::apply_attack(
            &scenario.tree,
            &scenario.asks,
            attacker,
            &identity_asks,
            &SybilPlan::chain(2),
            &mut rng,
        )
        .expect("valid attack");
        let attacked_naive = naive::run(&job, &sc.tree, &sc.asks);
        let naive_gain: f64 = sc
            .identity_users
            .iter()
            .map(|&u| attacked_naive.utility(u, cost))
            .sum::<f64>()
            - honest_naive.utility(attacker, cost);
        naive_series.push(Point {
            x: m_i as f64,
            y: naive_gain,
            y_std: 0.0,
        });

        // The CRA replay of the same attack goes through the grid: the
        // runner pairs both arms on each replication seed (cutting
        // variance) and the explicit-pricing sybil split replays the decoy
        // asks verbatim.
        let mut costs = vec![0.0; scenario.num_users()];
        costs[attacker] = cost;
        cell_for_size.push(Some(cells.len()));
        cells.push(CollusionCell {
            scenario,
            costs,
            deviation: SybilSplit {
                user: attacker,
                plan: SybilPlan::chain(2),
                pricing: SybilPricing::Explicit(identity_asks),
            },
            job,
            point: 1_000 + pi as u64,
        });
    }

    let rit = Rit::new(RitConfig {
        round_limit: RoundLimit::until_stall(),
        ..RitConfig::default()
    })
    .expect("valid config");
    let runs = config.runs * 4;
    let spec = GridSpec::new("ablation_collusion", runs, config.seed)
        .with_axis("market size", cells.len());
    let rows = run_grid(
        &spec,
        &cells,
        &CollusionRun { rit, runs },
        &SubstrateCache::passthrough(),
    );

    let cra_series = sizes
        .iter()
        .zip(&cell_for_size)
        .map(|(&m_i, slot)| {
            let (y, y_std) = match slot {
                None => (0.0, 0.0),
                Some(ci) => {
                    let mut acc = MeanStd::new();
                    acc.extend(rows[*ci].iter().copied());
                    (acc.mean(), acc.std_dev())
                }
            };
            Point {
                x: m_i as f64,
                y,
                y_std,
            }
        })
        .collect();

    Figure {
        id: "ablation_collusion",
        title: "best decoy-manipulation gain: naive k-th price vs CRA".into(),
        x_label: "tasks in the market (m_i)",
        y_label: "attacker gain over honest",
        series: vec![
            Series {
                name: "naive k-th price (exact)".into(),
                points: naive_series,
            },
            Series {
                name: "RIT/CRA (mean)".into(),
                points: cra_series,
            },
        ],
    }
}

/// One round-budget grid cell: a (job size, round-limit policy) pair. All
/// cells share one scenario configuration, so rotating substrates are
/// generated once and replayed under every cell.
struct RoundBudgetCell {
    scen_config: ScenarioConfig,
    job: Job,
    rit: Rit,
    /// Pre-engine seed stream `pi * 8 + si`.
    salt: u64,
}

/// Grid adapter: one auction-phase replication of one (size, policy) cell.
struct RoundBudgetRun;

impl CellRun for RoundBudgetRun {
    type Cell = RoundBudgetCell;
    type Workspace = ();
    type Record = u8;

    fn workspace(&self) {}

    fn salt(&self, _cell_index: usize, cell: &RoundBudgetCell) -> u64 {
        cell.salt
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&["completed"])
    }

    fn encode_record(&self, record: &u8) -> Vec<Value> {
        vec![Value::U64(u64::from(*record))]
    }

    fn decode_record(&self, fields: &[Value]) -> Option<u8> {
        // Integers come back as `F64` after the JSONL round trip.
        match fields {
            [Value::U64(v)] => u8::try_from(*v).ok(),
            [Value::F64(v)] if v.fract() == 0.0 && (0.0..=255.0).contains(v) => Some(*v as u8),
            _ => None,
        }
    }

    fn run(&self, ctx: &CellCtx<'_, RoundBudgetCell>, (): &mut ()) -> u8 {
        let cell = ctx.cell;
        let scenario = ctx.scenario(&cell.scen_config, FRESH_SALT, SUBSTRATE_STREAM);
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        match cell
            .rit
            .run_auction_phase(&cell.job, &scenario.asks, &mut rng)
        {
            Ok(phase) => u8::from(phase.completed()),
            Err(_) => 0, // infeasible guarantee counts as failure
        }
    }
}

/// The round-budget ablation: auction-phase completion rate per
/// [`RoundLimit`] policy as the per-type job size grows.
#[must_use]
pub fn round_budget(config: &AblationConfig) -> Figure {
    round_budget_with(config, &SubstrateCache::new())
}

/// [`round_budget`] against a caller-owned [`SubstrateCache`]. All policy
/// cells share a scenario configuration, so rotating substrates are
/// generated once and replayed under every round-limit policy.
#[must_use]
pub fn round_budget_with(config: &AblationConfig, cache: &SubstrateCache) -> Figure {
    let (n_users, sizes): (usize, Vec<u64>) = match config.scale {
        Scale::Smoke => (6_000, vec![600, 1_200]),
        Scale::Default | Scale::Paper => (30_000, vec![1_000, 1_400, 1_800, 2_200, 2_600, 3_000]),
    };
    let policies: [(&str, RoundLimit); 3] = [
        ("paper budget, q = 0", RoundLimit::Paper(WorstCaseQ::Zero)),
        (
            "paper budget, q = m_i",
            RoundLimit::Paper(WorstCaseQ::FirstRound),
        ),
        ("until stall", RoundLimit::until_stall()),
    ];

    let mut cells: Vec<RoundBudgetCell> = Vec::with_capacity(sizes.len() * policies.len());
    for (pi, &m_i) in sizes.iter().enumerate() {
        // The number of types is chosen so total demand stays serviceable at
        // the fixed population size.
        let num_types = 4;
        let job = Job::uniform(num_types, m_i).expect("positive types");
        let mut scen_config = ScenarioConfig::paper(n_users);
        scen_config.workload.num_types = num_types;
        for (si, (_, policy)) in policies.iter().enumerate() {
            cells.push(RoundBudgetCell {
                scen_config,
                job: job.clone(),
                rit: Rit::new(RitConfig {
                    round_limit: *policy,
                    ..RitConfig::default()
                })
                .expect("valid config"),
                salt: (pi * 8 + si) as u64,
            });
        }
    }
    let spec = GridSpec::new("ablation_rounds", config.runs, config.seed)
        .with_substrate(config.substrate)
        .with_axis("job size", sizes.len())
        .with_axis("round-limit policy", policies.len());
    let rows = run_grid(&spec, &cells, &RoundBudgetRun, cache);

    let mut series: Vec<Series> = policies
        .iter()
        .map(|(name, _)| Series {
            name: (*name).to_string(),
            points: Vec::new(),
        })
        .collect();
    for (pi, &m_i) in sizes.iter().enumerate() {
        for (si, s) in series.iter_mut().enumerate() {
            let completions = &rows[pi * policies.len() + si];
            let rate = completions.iter().map(|&c| f64::from(c)).sum::<f64>() / config.runs as f64;
            s.points.push(Point {
                x: m_i as f64,
                y: rate,
                y_std: 0.0,
            });
        }
    }

    Figure {
        id: "ablation_rounds",
        title: "auction-phase completion rate per round-budget policy".into(),
        x_label: "tasks per type (m_i)",
        y_label: "completion rate",
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AblationConfig {
        AblationConfig::new(Scale::Smoke, 4, 5)
    }

    #[test]
    fn round_budget_rotating_substrates_amortize_generation() {
        let mut config = cfg();
        config.substrate = SubstrateMode::Rotating(2);
        let cache = SubstrateCache::new();
        let fig = round_budget_with(&config, &cache);
        assert_eq!(fig.series.len(), 3);
        // 2 sizes × 3 policies × 4 runs would be 24 generations; all cells
        // share one scenario configuration, so 2 slots suffice.
        assert_eq!(cache.generations(), 2);
    }

    #[test]
    fn collusion_ablation_shapes() {
        let fig = collusion(&cfg());
        assert_eq!(fig.series.len(), 2);
        // The naive mechanism should be manipulable in at least one thin market…
        let naive_max = fig.series[0]
            .points
            .iter()
            .fold(f64::NEG_INFINITY, |a, p| a.max(p.y));
        assert!(naive_max > 0.0, "expected a profitable naive manipulation");
        // …while CRA's mean gain stays close to zero relative to the naive gain.
        for p in &fig.series[1].points {
            assert!(p.y.abs() < naive_max.max(1.0) * 3.0);
        }
    }

    #[test]
    fn round_budget_ablation_orders_policies() {
        let fig = round_budget(&cfg());
        assert_eq!(fig.series.len(), 3);
        // Until-stall completes at least as often as the strict paper budget.
        for (strict, loose) in fig.series[0].points.iter().zip(&fig.series[2].points) {
            assert!(loose.y >= strict.y - 1e-9);
        }
        // The strict q = 0 budget yields zero rounds at small mᵢ ⇒ 0% completion.
        assert_eq!(fig.series[0].points[0].y, 0.0);
    }
}
