//! Validating the Lemma 6.2 truthfulness bound empirically.
//!
//! Lemma 6.2 lower-bounds the probability that one CRA round is
//! `k`-truthful by `β(q, mᵢ, k)`. This experiment measures the practical
//! counterpart: how much can a coalition of `k` unit asks (one user of
//! capacity `k`) actually *gain in expectation* by misreporting its price?
//! For each market size we draw outer markets, estimate the coalition's
//! expected utility truthfully and under a grid of price misreports (each
//! averaged over inner mechanism coins), and record the best relative gain,
//! with the analytic allowance `1 − β` plotted alongside.
//!
//! Running this check surfaced a real property of Algorithm 1 as written:
//! its Line 7 — *"choose the smallest `n_s` asks"* — is **rank-based**, so
//! a coalition already below the sampled threshold can shade its bids
//! *down* to climb the ranking and win more units at the unchanged clearing
//! price. Measured out-of-sample, the shading gain is small (a few
//! hundredths of a unit of utility per coalition unit) but *weakly positive
//! at every market size* — unlike the consensus failure events, it does not
//! shrink as the market grows. The experiment therefore also runs
//! [`SelectionRule::UniformEligible`] — a bid-independent variant drawing
//! the `n_s` winners uniformly among all below-threshold asks — under which
//! every probed misreport measures as strictly losing (see EXPERIMENTS.md).
//!
//! This is not a paper figure; it is the validation an implementer wants
//! before trusting the round-budget arithmetic built on top of `β`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_auction::bounds::{cra_truthfulness_bound, LogBase};
use rit_auction::cra::{self, SelectionRule};

use crate::experiments::Scale;
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::Value;
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::substrate::SubstrateCache;

/// Configuration of the bound check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundCheckConfig {
    /// Problem sizes.
    pub scale: Scale,
    /// Outer market draws per size.
    pub runs: usize,
    /// Inner mechanism replications per (market, price) cell.
    pub inner_runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Coalition size `k` (Remark 6.1's example uses 10).
    pub k: u64,
}

const PRICE_FACTORS: [f64; 6] = [0.25, 0.5, 0.8, 1.25, 2.0, 4.0];

/// One outer market: the coalition's **out-of-sample** expected misreport
/// gain per coalition unit, under a given selection rule. The best price
/// factor is chosen on one half of the mechanism coins and its gain is
/// evaluated on the other half, eliminating the max-selection bias that a
/// naive "best of K noisy estimates" would inject.
fn best_gain_per_unit(m_i: u64, k: u64, inner_runs: usize, rule: SelectionRule, seed: u64) -> f64 {
    let mut setup = SmallRng::seed_from_u64(seed);
    let outsiders: Vec<f64> = (0..4 * m_i).map(|_| setup.gen_range(0.01..10.0)).collect();
    let coalition_cost = setup.gen_range(0.5..5.0);

    // `half` = 0 selects, `half` = 1 evaluates; disjoint coin streams.
    let expected_utility = |price: f64, half: u64| -> f64 {
        let mut asks = outsiders.clone();
        let start = asks.len();
        asks.extend(std::iter::repeat_n(price, k as usize));
        let mut total = 0.0;
        for r in 0..inner_runs {
            let stream =
                half.wrapping_mul(0xABCD_EF12) ^ (r as u64).wrapping_mul(0x517C_C1B7_2722_0A95);
            let mut rng = SmallRng::seed_from_u64(seed ^ stream);
            let out = cra::run_with_rule(&asks, m_i, m_i, rule, &mut rng);
            total += (start..asks.len())
                .filter(|&i| out.is_winner(i))
                .map(|_| out.clearing_price() - coalition_cost)
                .sum::<f64>();
        }
        total / inner_runs as f64
    };

    // Precompute per-factor selection utilities (half 0), then argmax.
    let selection_scores: Vec<f64> = PRICE_FACTORS
        .iter()
        .map(|f| expected_utility(coalition_cost * f, 0))
        .collect();
    let best_idx = selection_scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("non-empty factor grid");
    let best_factor = PRICE_FACTORS[best_idx];
    let truthful = expected_utility(coalition_cost, 1);
    let deviant = expected_utility(coalition_cost * best_factor, 1);
    (deviant - truthful) / k as f64
}

/// One bound-check grid cell: a (market size, selection rule) pair. Both
/// rules at one size share the salt `pi`, replaying the *same* outer market
/// draws under each rule — the pre-engine pairing.
struct BoundCheckCell {
    m_i: u64,
    rule: SelectionRule,
    salt: u64,
}

/// Grid adapter: one outer market draw of one (size, rule) cell. Markets
/// are drawn inline from the item seed, so the cell never touches a
/// substrate cache.
struct BoundCheckRun {
    k: u64,
    inner_runs: usize,
}

impl CellRun for BoundCheckRun {
    type Cell = BoundCheckCell;
    type Workspace = ();
    type Record = f64;

    fn workspace(&self) {}

    fn salt(&self, _cell_index: usize, cell: &BoundCheckCell) -> u64 {
        cell.salt
    }

    fn run(&self, ctx: &CellCtx<'_, BoundCheckCell>, (): &mut ()) -> f64 {
        best_gain_per_unit(
            ctx.cell.m_i,
            self.k,
            self.inner_runs,
            ctx.cell.rule,
            ctx.seed,
        )
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&["gain_per_unit"])
    }

    fn encode_record(&self, record: &f64) -> Vec<Value> {
        vec![Value::F64(*record)]
    }

    fn decode_record(&self, fields: &[Value]) -> Option<f64> {
        match fields {
            [Value::F64(v)] => Some(*v),
            _ => None,
        }
    }
}

/// Runs the bound check over a grid of per-type market sizes.
#[must_use]
pub fn run(config: &BoundCheckConfig) -> Figure {
    run_with(config, &SubstrateCache::passthrough())
}

/// [`run`] against a caller-owned [`SubstrateCache`]. Outer markets are
/// bare ask vectors drawn inline per replication, so the cache is threaded
/// through the engine but never populated.
#[must_use]
pub fn run_with(config: &BoundCheckConfig, cache: &SubstrateCache) -> Figure {
    let sizes: Vec<u64> = match config.scale {
        Scale::Smoke => vec![100, 400],
        Scale::Default | Scale::Paper => vec![100, 250, 500, 1_000, 2_500],
    };
    let rules = [SelectionRule::SmallestFirst, SelectionRule::UniformEligible];
    let mut cells = Vec::with_capacity(sizes.len() * rules.len());
    for (pi, &m_i) in sizes.iter().enumerate() {
        for rule in rules {
            cells.push(BoundCheckCell {
                m_i,
                rule,
                salt: pi as u64,
            });
        }
    }
    let spec = GridSpec::new("bound_check", config.runs, config.seed)
        .with_axis("market size", sizes.len())
        .with_axis("selection rule", rules.len());
    let rows = run_grid(
        &spec,
        &cells,
        &BoundCheckRun {
            k: config.k,
            inner_runs: config.inner_runs,
        },
        cache,
    );

    let mut rank = Vec::with_capacity(sizes.len());
    let mut uniform = Vec::with_capacity(sizes.len());
    let mut analytic = Vec::with_capacity(sizes.len());
    for (pi, &m_i) in sizes.iter().enumerate() {
        for (ri, out) in [&mut rank, &mut uniform].into_iter().enumerate() {
            let mut acc = MeanStd::new();
            acc.extend(rows[pi * rules.len() + ri].iter().copied());
            out.push(Point {
                x: m_i as f64,
                y: acc.mean(),
                y_std: acc.std_dev(),
            });
        }
        // q = mᵢ: CRA is invoked here with a full task budget.
        let beta = cra_truthfulness_bound(m_i, m_i, config.k, LogBase::Ten);
        analytic.push(Point {
            x: m_i as f64,
            y: (1.0 - beta).max(0.0),
            y_std: 0.0,
        });
    }
    Figure {
        id: "bound_check",
        title: format!(
            "coalition (k = {}) expected misreport gain vs Lemma 6.2 allowance",
            config.k
        ),
        x_label: "tasks in the market (m_i)",
        y_label: "expected gain per coalition unit / probability",
        series: vec![
            Series {
                name: "gain, rank selection (paper Line 7)".into(),
                points: rank,
            },
            Series {
                name: "gain, uniform-eligible selection".into(),
                points: uniform,
            },
            Series {
                name: "analytic allowance 1 − β".into(),
                points: analytic,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BoundCheckConfig {
        BoundCheckConfig {
            scale: Scale::Smoke,
            runs: 24,
            inner_runs: 24,
            seed: 3,
            k: 10,
        }
    }

    #[test]
    fn out_of_sample_gains_are_statistically_small() {
        let fig = run(&cfg());
        let ana = &fig.series[2].points;
        // With the selection bias removed, neither rule should show a gain
        // beyond a few standard errors of zero.
        for series in &fig.series[..2] {
            for p in &series.points {
                let se = p.y_std / (cfg().runs as f64).sqrt();
                assert!(
                    p.y <= 4.0 * se.max(0.01),
                    "{}: gain {:.4} (se {:.4}) at mᵢ = {}",
                    series.name,
                    p.y,
                    se,
                    p.x
                );
            }
        }
        // The analytic allowance shrinks with market size.
        assert!(ana[0].y > ana[1].y);
    }

    #[test]
    fn figure_shape() {
        let fig = run(&BoundCheckConfig {
            runs: 4,
            inner_runs: 8,
            ..cfg()
        });
        assert_eq!(fig.id, "bound_check");
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].points.len(), fig.series[2].points.len());
    }

    #[test]
    fn inline_markets_never_touch_the_cache() {
        let cache = SubstrateCache::new();
        let _ = run_with(
            &BoundCheckConfig {
                runs: 2,
                inner_runs: 4,
                ..cfg()
            },
            &cache,
        );
        assert_eq!(cache.generations(), 0);
    }
}
