//! Cross-mechanism comparison: the same scenario, jobs and attack battery
//! against RIT and both baselines.
//!
//! The paper's argument is comparative — §4 shows the naive `k`-th-price +
//! contribution-tree combination is neither truthful nor sybil-proof, §1
//! recalls that the DARPA referral scheme invites identity splits, and §6
//! proves RIT resists both. This driver turns that argument into one table:
//! for each mechanism it measures the honest economics (completion, mean
//! utility, payout split) over paired replications, then fires a targeted
//! three-attack battery — a chain sybil split at the top honest winner
//! (Fig 2 / the §1 Bob story), a **under**-bid misreport at the marginal
//! loser (Fig 3: factor < 1 is the §4 counterexample; overbids are what the
//! standard battery probes), and a withholding probe — and reports the
//! attacker's gain with paired-difference significance.
//!
//! The baselines draw no randomness, so their attack verdicts are exact
//! (standard error ≈ 0 up to the deviation's own quantity-split draws);
//! RIT's verdicts carry the usual Monte-Carlo error bars.

use std::path::Path;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_adversary::AttackResult;
use rit_core::{DarpaReferral, Mechanism, MechanismKind, NaiveKthPriceTree, RitError, RoundLimit};
use rit_model::Job;
use rit_tree::NodeId;

use crate::attacks::{self, AttackSuiteConfig, SuiteReport, Z_MAX};
use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::{Table, Value};
use crate::scenario::Scenario;
use crate::substrate::SubstrateCache;

/// Salt separating honest-replication seeds from the attack batteries.
const HONEST_STREAM: u64 = 0xC0_ABA7ED;

/// The Fig 3 underbid factor used by the targeted battery.
const MISREPORT_FACTOR: f64 = 0.7;

/// Configuration of a comparison run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompareConfig {
    /// Problem size (shared with the attack suite's sizing).
    pub scale: Scale,
    /// Honest replications and paired attack replications per mechanism.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

impl CompareConfig {
    /// The `--quick` shape: smoke scale, few replications (CI smoke arm).
    #[must_use]
    pub fn quick(seed: u64) -> Self {
        Self {
            scale: Scale::Smoke,
            runs: 4,
            seed,
        }
    }
}

/// Honest-run economics of one mechanism, averaged over replications.
#[derive(Clone, Debug, PartialEq)]
pub struct MechanismRow {
    /// Which mechanism.
    pub kind: MechanismKind,
    /// Fraction of replications that fully allocated the job.
    pub completion_rate: f64,
    /// Mean over replications of the population-mean utility.
    pub avg_utility: f64,
    /// Mean total platform payout.
    pub total_payment: f64,
    /// Mean total auction payment.
    pub auction_payment: f64,
    /// Mean solicitation share of the payout (0 when nothing was paid).
    pub solicitation_share: f64,
    /// The targeted attack battery's results (suite order: sybil,
    /// misreport, withholding).
    pub attacks: Vec<AttackResult>,
}

impl MechanismRow {
    /// Whether every attack in the row's battery was resisted at
    /// [`Z_MAX`].
    #[must_use]
    pub fn all_resisted(&self) -> bool {
        self.attacks
            .iter()
            .all(|r| r.report.deviation_not_profitable(Z_MAX))
    }

    fn attack(&self, prefix: &str) -> Option<&AttackResult> {
        self.attacks.iter().find(|r| r.name.starts_with(prefix))
    }
}

/// The full comparison: one row per mechanism, in [`MechanismKind::ALL`]
/// order.
#[derive(Clone, Debug, PartialEq)]
pub struct CompareReport {
    /// Per-mechanism rows.
    pub rows: Vec<MechanismRow>,
    /// Replications per figure.
    pub runs: usize,
}

impl CompareReport {
    /// Renders the comparison as two Markdown tables (economics, attacks).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## mechanism comparison\n\n");
        out.push_str("### honest economics\n\n");
        out.push_str(
            "| mechanism | completion | avg utility | total payout | auction payment | solicitation share |\n",
        );
        out.push_str("|---|---|---|---|---|---|\n");
        for row in &self.rows {
            out.push_str(&format!(
                "| {} | {:.2} | {:.4} | {:.2} | {:.2} | {:.3} |\n",
                row.kind,
                row.completion_rate,
                row.avg_utility,
                row.total_payment,
                row.auction_payment,
                row.solicitation_share,
            ));
        }
        out.push_str("\n### attack gains (targeted battery)\n\n");
        out.push_str("| mechanism | attack | gain | se | z | verdict |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for row in &self.rows {
            for r in &row.attacks {
                let g = &r.report;
                let verdict = if g.deviation_not_profitable(Z_MAX) {
                    "resisted"
                } else {
                    "PROFITABLE"
                };
                out.push_str(&format!(
                    "| {} | {} | {:.4} | {:.4} | {:.2} | {} |\n",
                    row.kind,
                    r.name,
                    g.gain,
                    g.gain_se,
                    g.z_score(),
                    verdict,
                ));
            }
        }
        out
    }

    /// Writes the comparison as CSV, one row per mechanism:
    ///
    /// ```csv
    /// mechanism,completion_rate,avg_utility,total_payment,auction_payment,solicitation_share,sybil_gain,sybil_z,misreport_gain,misreport_z,withholding_gain,withholding_z,resisted_all
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_table().to_csv())
    }

    /// The comparison as the shared [`Table`] emitter's representation.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut table = Table::new(vec![
            "mechanism",
            "completion_rate",
            "avg_utility",
            "total_payment",
            "auction_payment",
            "solicitation_share",
            "sybil_gain",
            "sybil_z",
            "misreport_gain",
            "misreport_z",
            "withholding_gain",
            "withholding_z",
            "resisted_all",
        ]);
        for row in &self.rows {
            let stat = |prefix: &str| -> (f64, f64) {
                row.attack(prefix)
                    .map_or((0.0, 0.0), |r| (r.report.gain, r.report.z_score()))
            };
            let (sg, sz) = stat("sybil(");
            let (mg, mz) = stat("misreport(");
            let (wg, wz) = stat("withholding(");
            table.push_row(vec![
                Value::Str(row.kind.to_string()),
                Value::F64(row.completion_rate),
                Value::F64(row.avg_utility),
                Value::F64(row.total_payment),
                Value::F64(row.auction_payment),
                Value::F64(row.solicitation_share),
                Value::F64(sg),
                Value::F64(sz),
                Value::F64(mg),
                Value::F64(mz),
                Value::F64(wg),
                Value::F64(wz),
                Value::Bool(row.all_resisted()),
            ]);
        }
        table
    }
}

/// The targeted attack spec for a scenario: the Fig 2 / §1 chain sybil at a
/// carefully chosen winner, the Fig 3 underbid at a carefully chosen loser,
/// and a withholding probe. Victims are read off the *naive* honest outcome
/// (it is deterministic and its `k`-th-price allocation coincides with the
/// DARPA baseline's; RIT's randomized allocation concentrates on the same
/// cheap users).
///
/// Targeting matters because the §4 reward telescopes: a chain split of a
/// winner **with** descendant contribution gains exactly zero under the
/// naive scheme (`Σ 2·p^Aᵢ + ln(·)` over the chain collapses back to the
/// honest reward), so the sybil victim must be a winner whose subtree holds
/// no other contribution — then splitting turns the bare leaf reward
/// `p^A` into `≈ 2·p^A − p^A₃`, the Fig 2 counterexample. Dually, the Fig 3
/// underbid is only profitable for a loser **with** descendant contribution
/// (the doubled payment `2·p^A` must dominate the true cost, and the log
/// penalty must stay bounded), so the misreport victim maximizes the
/// estimated §4 gain over near-marginal losers.
#[must_use]
pub fn targeted_spec(scenario: &Scenario, job: &Job) -> String {
    let honest = rit_core::naive::run(job, &scenario.tree, &scenario.asks);
    let n = scenario.asks.len();

    // Descendant contribution `Dⱼ` (subtree auction payment excluding j's
    // own) via an ancestor walk from every contributor.
    let mut desc = vec![0.0f64; n];
    for j in 0..n {
        let own = honest.auction_payments[j];
        if own <= 0.0 {
            continue;
        }
        let mut node = NodeId::new(j as u32 + 1);
        while let Some(parent) = scenario.tree.parent(node) {
            if let Some(pu) = parent.user_index() {
                desc[pu] += own;
            }
            node = parent;
        }
    }

    // Per-type clearing price, as observed by the honest winners.
    let types = job.iter().count();
    let mut clearing = vec![0.0f64; types];
    for (j, ask) in scenario.asks.iter().enumerate() {
        if honest.allocation[j] > 0 {
            let per_unit = honest.auction_payments[j] / honest.allocation[j] as f64;
            let t = ask.task_type().index();
            if t < types && per_unit > clearing[t] {
                clearing[t] = per_unit;
            }
        }
    }

    // Sybil victim: richest winner with an empty subtree below it;
    // fallback: richest winner outright.
    let richest = |candidates: &mut dyn Iterator<Item = usize>| {
        candidates.max_by(|&a, &b| {
            honest.auction_payments[a]
                .total_cmp(&honest.auction_payments[b])
                .then(b.cmp(&a))
        })
    };
    let winner =
        richest(&mut (0..n).filter(|&j| honest.auction_payments[j] > 0.0 && desc[j] == 0.0))
            .or_else(|| richest(&mut (0..n).filter(|&j| honest.auction_payments[j] > 0.0)))
            .unwrap_or(0);

    // Misreport victim: the loser whose §4 underbid-gain estimate
    // `k·(2·clearing − a) + ln(D/(k·clearing + D))` is largest, over losers
    // whose discounted ask actually beats the clearing price.
    let loser = (0..n)
        .filter_map(|j| {
            if honest.allocation[j] != 0 {
                return None;
            }
            let ask = &scenario.asks[j];
            let t = ask.task_type().index();
            let c = clearing.get(t).copied().unwrap_or(0.0);
            if c <= 0.0 || MISREPORT_FACTOR * ask.unit_price() >= c || desc[j] <= 0.0 {
                return None;
            }
            let k = ask.quantity() as f64;
            let own = k * c;
            let estimate = k * (2.0 * c - ask.unit_price()) + (desc[j] / (own + desc[j])).ln();
            (estimate > 0.0).then_some((j, estimate))
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(j, _)| j);
    let misreport = match loser {
        Some(l) => format!("misreport factor={MISREPORT_FACTOR} user={l}"),
        None => format!("misreport factor={MISREPORT_FACTOR} user=auto"),
    };
    format!(
        "sybil identities=3 arrangement=chain user={winner}\n\
         {misreport}\n\
         withholding quantity=1 user=auto\n"
    )
}

fn honest_row<M: Mechanism + Sync>(
    config: &CompareConfig,
    scenario: &Scenario,
    job: &Job,
    mechanism: &M,
) -> Result<(f64, f64, f64, f64, f64), RitError> {
    /// Grid adapter: one honest replication of one mechanism. The salt is
    /// [`HONEST_STREAM`], preserving the pre-engine
    /// `derive_seed(seed, HONEST_STREAM, r)` stream.
    struct HonestRun<'a, M: Mechanism> {
        scenario: &'a Scenario,
        job: &'a Job,
        mechanism: &'a M,
    }

    impl<M: Mechanism + Sync> CellRun for HonestRun<'_, M> {
        type Cell = ();
        type Workspace = M::Workspace;
        type Record = Result<rit_core::MechanismOutcome, RitError>;

        fn workspace(&self) -> M::Workspace {
            M::Workspace::default()
        }

        fn salt(&self, _cell_index: usize, (): &()) -> u64 {
            HONEST_STREAM
        }

        fn run(
            &self,
            ctx: &CellCtx<'_, ()>,
            ws: &mut M::Workspace,
        ) -> Result<rit_core::MechanismOutcome, RitError> {
            self.mechanism.evaluate_in(
                self.job,
                &self.scenario.tree,
                &self.scenario.asks,
                None,
                ws,
                &mut SmallRng::seed_from_u64(ctx.seed),
            )
        }
    }

    let n = scenario.num_users().max(1) as f64;
    let spec = GridSpec::new("compare", config.runs, config.seed);
    let outcomes = run_grid(
        &spec,
        &[()],
        &HonestRun {
            scenario,
            job,
            mechanism,
        },
        &SubstrateCache::passthrough(),
    )
    .pop()
    .expect("one cell");
    let mut completed = 0usize;
    let mut utility = 0.0;
    let mut payment = 0.0;
    let mut auction = 0.0;
    let mut share = 0.0;
    let runs = outcomes.len().max(1) as f64;
    for out in outcomes {
        let out = out?;
        completed += usize::from(out.completed());
        let total = out.total_payment();
        utility += out
            .utilities(scenario.population.as_slice())
            .iter()
            .sum::<f64>()
            / n;
        payment += total;
        auction += out.total_auction_payment();
        if total > 0.0 {
            share += out.solicitation_rewards().iter().sum::<f64>() / total;
        }
    }
    Ok((
        completed as f64 / runs,
        utility / runs,
        payment / runs,
        auction / runs,
        share / runs,
    ))
}

fn row<M: Mechanism + Sync>(
    config: &CompareConfig,
    scenario: &Scenario,
    job: &Job,
    spec: &str,
    mechanism: &M,
) -> Result<MechanismRow, RitError> {
    let (completion_rate, avg_utility, total_payment, auction_payment, solicitation_share) =
        honest_row(config, scenario, job, mechanism)?;
    let suite_config = AttackSuiteConfig {
        scale: config.scale,
        runs: config.runs,
        seed: config.seed,
    };
    let suite = rit_adversary::AttackSuite::from_spec(spec, &scenario.asks)?;
    let SuiteReport { results, .. } =
        attacks::evaluate_job_with(&suite_config, scenario, job, &suite, mechanism)?;
    let row = MechanismRow {
        kind: mechanism.kind(),
        completion_rate,
        avg_utility,
        total_payment,
        auction_payment,
        solicitation_share,
        attacks: results,
    };
    if let Some(t) = rit_telemetry::active() {
        if t.has_sink() {
            t.emit(
                &rit_telemetry::JsonObject::new("compare")
                    .str_field("mechanism", row.kind.label())
                    .f64_field("completion_rate", row.completion_rate)
                    .f64_field("avg_utility", row.avg_utility)
                    .f64_field("total_payment", row.total_payment)
                    .f64_field("auction_payment", row.auction_payment)
                    .f64_field("solicitation_share", row.solicitation_share)
                    .bool_field("resisted_all", row.all_resisted())
                    .finish(),
            );
        }
    }
    Ok(row)
}

/// Runs the full comparison: one scenario, three mechanisms, honest
/// economics plus the targeted attack battery each.
///
/// # Errors
///
/// Propagates mechanism and deviation errors.
pub fn run(config: &CompareConfig) -> Result<CompareReport, RitError> {
    run_with(config, &SubstrateCache::new())
}

/// [`run`] against a caller-owned [`SubstrateCache`]. The three mechanism
/// rows share one scenario; a warm cache (e.g. one already holding the
/// attack suite's substrate) skips the generation entirely.
///
/// # Errors
///
/// Propagates mechanism and deviation errors.
pub fn run_with(config: &CompareConfig, cache: &SubstrateCache) -> Result<CompareReport, RitError> {
    let suite_config = AttackSuiteConfig {
        scale: config.scale,
        runs: config.runs,
        seed: config.seed,
    };
    let scenario = attacks::scenario_with(&suite_config, cache);
    // Twice the probe suite's per-type workload: with the clearing price at
    // the cheap tail of the cost distribution the §4 underbid has no room
    // (it is only profitable for a loser whose true cost is below twice the
    // clearing price); the heavier job pushes the clearing price into the
    // body of the distribution, where the paper's counterexamples live.
    let job = Job::uniform(4, 2 * attacks::job_size(config.scale)).expect("positive types");
    let spec = targeted_spec(&scenario, &job);

    let rows = vec![
        row(
            config,
            &scenario,
            &job,
            &spec,
            &paper_mechanism(RoundLimit::until_stall()),
        )?,
        row(config, &scenario, &job, &spec, &NaiveKthPriceTree::new())?,
        row(config, &scenario, &job, &spec, &DarpaReferral::new())?,
    ];
    Ok(CompareReport {
        rows,
        runs: config.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CompareConfig {
        CompareConfig {
            scale: Scale::Smoke,
            runs: 4,
            seed: 11,
        }
    }

    #[test]
    fn comparison_demonstrates_the_papers_counterexamples() {
        let report = run(&cfg()).unwrap();
        assert_eq!(report.rows.len(), 3);
        let by_kind = |k: MechanismKind| {
            report
                .rows
                .iter()
                .find(|r| r.kind == k)
                .expect("row present")
        };

        // RIT: completes, stays within the §7 budget bound, resists the
        // whole battery (Theorem 2).
        let rit = by_kind(MechanismKind::Rit);
        assert!(rit.completion_rate > 0.99);
        assert!(rit.total_payment <= 2.0 * rit.auction_payment + 1e-9);
        assert!(
            rit.all_resisted(),
            "RIT must resist the targeted battery: {:?}",
            rit.attacks
        );

        // Naive §4 combination: the Fig 2 chain split and the Fig 3
        // underbid are both strictly profitable.
        let naive = by_kind(MechanismKind::Naive);
        let sybil = naive.attack("sybil(").unwrap();
        let misreport = naive.attack("misreport(").unwrap();
        assert!(
            sybil.report.gain > 0.0 && !sybil.report.deviation_not_profitable(Z_MAX),
            "naive sybil gain should be strictly positive: {:?}",
            sybil.report
        );
        assert!(
            misreport.report.gain > 0.0 && !misreport.report.deviation_not_profitable(Z_MAX),
            "naive misreport (underbid) gain should be strictly positive: {:?}",
            misreport.report
        );

        // DARPA referral: the §1 Bob split pays.
        let darpa = by_kind(MechanismKind::Darpa);
        let sybil = darpa.attack("sybil(").unwrap();
        assert!(
            sybil.report.gain > 0.0 && !sybil.report.deviation_not_profitable(Z_MAX),
            "darpa sybil gain should be strictly positive: {:?}",
            sybil.report
        );
    }

    #[test]
    fn shared_cache_generates_the_scenario_once_and_then_hits() {
        let cache = SubstrateCache::new();
        let first = run_with(&cfg(), &cache).unwrap();
        assert_eq!(cache.generations(), 1, "one shared scenario substrate");
        let second = run_with(&cfg(), &cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.generations, 1, "second run must reuse the substrate");
        assert!(stats.hits >= 1, "second run must hit the cache");
        assert_eq!(first, second, "cached substrate must not change results");
    }

    #[test]
    fn report_renders_markdown_and_csv() {
        let report = run(&cfg()).unwrap();
        let md = report.to_markdown();
        assert!(md.contains("### honest economics"));
        assert!(md.contains("| rit |"));
        assert!(md.contains("| naive |"));
        assert!(md.contains("| darpa |"));

        let dir = std::env::temp_dir().join("rit_compare_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compare.csv");
        report.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "mechanism,completion_rate,avg_utility,total_payment,auction_payment,\
             solicitation_share,sybil_gain,sybil_z,misreport_gain,misreport_z,\
             withholding_gain,withholding_z,resisted_all"
        );
        assert_eq!(lines.count(), 3);
    }
}
