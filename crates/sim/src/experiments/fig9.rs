//! Fig 9 — sybil-proofness and truthfulness of RIT.
//!
//! The paper fixes `n = 10,000` users, draws `mᵢ ~ U{100..500}` per type,
//! picks a user (`P₂₉`) whose truthful auction payment is non-zero
//! (`c₂₉ = 5.5`, `K₂₉ = 17`), and sweeps the number of fake identities
//! `δ = 2 … 17`, plotting the attacker's total utility for three identity
//! ask values: the true cost 5.5, and the deviations 6.25 and 6.5.
//!
//! Expected shape (paper §7-C): the utility *decreases* with more
//! identities (sybil-proofness) and is highest at the truthful ask value
//! (truthfulness).
//!
//! Note: at these job sizes the paper's own round-budget formula yields zero
//! rounds (see DESIGN.md), so this driver — like, evidently, the paper's
//! simulator — runs the auction phase best-effort.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::sybil_exec::{self};
use rit_core::{Rit, RoundLimit};
use rit_model::workload::{sample_uniform_job, WorkloadConfig};
use rit_model::{Ask, Job, UserProfile};
use rit_tree::sybil::SybilPlan;

use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::Value;
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::substrate::SubstrateCache;

/// Configuration of the Fig 9 experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig9Config {
    /// Problem size.
    pub scale: Scale,
    /// Replications per (ask value, δ) cell (the paper averaged 1000).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

/// The attacker's forced profile, per the paper: cost 5.5, capacity 17.
const ATTACKER_COST: f64 = 5.5;
const ATTACKER_CAPACITY: u64 = 17;
/// The probed identity ask values (truthful, +0.75, +1.0).
const ASK_VALUES: [f64; 3] = [5.5, 6.25, 6.5];

struct Setup {
    scenario: Scenario,
    job: Job,
    attacker: usize,
    rit: Rit,
}

fn build_setup(config: &Fig9Config) -> Setup {
    let (n, m_lo, m_hi) = match config.scale {
        Scale::Paper | Scale::Default => (10_000, 100, 500),
        Scale::Smoke => (800, 30, 80),
    };
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let scenario_config = ScenarioConfig {
        num_users: n,
        workload: WorkloadConfig::paper(),
        ..ScenarioConfig::paper(n)
    };
    let mut scenario = Scenario::generate_with(&scenario_config, &mut rng);
    let job = sample_uniform_job(10, m_lo, m_hi, &mut rng).expect("10 types is valid");
    let rit = paper_mechanism(RoundLimit::until_stall());

    // Find a user whose truthful auction payment is non-zero, like the
    // paper's P29, then force its profile to (c = 5.5, K = 17). Among the
    // qualifying users prefer one with a real solicitation stake (several
    // descendants), so the attack has both auction and referral surface —
    // a leaf attacker would make the identity count nearly irrelevant.
    let mut probe_rng = SmallRng::seed_from_u64(config.seed ^ 0xDEAD_BEEF);
    let phase = rit
        .run_auction_phase(&job, &scenario.asks, &mut probe_rng)
        .expect("best-effort phase cannot fail");
    let qualifies = |j: &usize| phase.auction_payments[*j] > 0.0;
    let attacker = (0..n)
        .filter(qualifies)
        .find(|&j| {
            scenario
                .tree
                .subtree_size(rit_tree::NodeId::from_user_index(j))
                > 5
        })
        .or_else(|| (0..n).find(qualifies))
        .expect("some user wins with a large job");

    let task_type = scenario.population[attacker].task_type();
    let forced = UserProfile::new(task_type, ATTACKER_CAPACITY, ATTACKER_COST)
        .expect("forced profile is valid");
    let mut profiles = scenario.population.as_slice().to_vec();
    profiles[attacker] = forced;
    scenario.population = rit_model::Population::from_vec(profiles);
    scenario.asks[attacker] = forced.truthful_ask();

    Setup {
        scenario,
        job,
        attacker,
        rit,
    }
}

/// One Fig 9 grid cell: the truthful reference, or one `(ask value, δ)`
/// attack combination. The salt reproduces the pre-engine seed streams:
/// stream 0 for the reference, `1 + (ai * 64 + di)` for attack cells.
enum Fig9Cell {
    Honest,
    Attack {
        ask_value: f64,
        delta: usize,
        salt: u64,
    },
}

struct Fig9Run<'a> {
    setup: &'a Setup,
}

impl CellRun for Fig9Run<'_> {
    type Cell = Fig9Cell;
    type Workspace = ();
    type Record = f64;

    fn workspace(&self) {}

    fn salt(&self, _cell_index: usize, cell: &Fig9Cell) -> u64 {
        match cell {
            Fig9Cell::Honest => 0,
            Fig9Cell::Attack { salt, .. } => *salt,
        }
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&["utility"])
    }

    fn encode_record(&self, record: &f64) -> Vec<Value> {
        vec![Value::F64(*record)]
    }

    fn decode_record(&self, fields: &[Value]) -> Option<f64> {
        match fields {
            [Value::F64(v)] => Some(*v),
            _ => None,
        }
    }

    fn run(&self, ctx: &CellCtx<'_, Fig9Cell>, (): &mut ()) -> f64 {
        let setup = self.setup;
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        match *ctx.cell {
            // Reference: truthful ask, no sybil attack.
            Fig9Cell::Honest => {
                let outcome = setup
                    .rit
                    .run(
                        &setup.job,
                        &setup.scenario.tree,
                        &setup.scenario.asks,
                        &mut rng,
                    )
                    .expect("aligned scenario");
                outcome.utility(setup.attacker, ATTACKER_COST)
            }
            Fig9Cell::Attack {
                ask_value, delta, ..
            } => attack_utility(setup, ask_value, delta, &mut rng),
        }
    }
}

/// Runs the Fig 9 experiment: attacker utility vs number of identities, one
/// series per probed ask value, plus a truthful-no-attack reference line.
#[must_use]
pub fn run(config: &Fig9Config) -> Figure {
    let setup = build_setup(config);
    let deltas: Vec<usize> = match config.scale {
        Scale::Paper | Scale::Default => (2..=ATTACKER_CAPACITY as usize).collect(),
        Scale::Smoke => vec![2, 4, 6],
    };

    // One grid over every cell — the honest reference plus all
    // (ask value, δ) combinations — so stragglers in one cell never idle
    // workers that could be running another.
    let mut cells: Vec<Fig9Cell> = Vec::with_capacity(1 + ASK_VALUES.len() * deltas.len());
    cells.push(Fig9Cell::Honest);
    for (ai, &ask_value) in ASK_VALUES.iter().enumerate() {
        for (di, &delta) in deltas.iter().enumerate() {
            cells.push(Fig9Cell::Attack {
                ask_value,
                delta,
                salt: 1 + (ai * 64 + di) as u64,
            });
        }
    }
    let spec = GridSpec::new("fig9", config.runs, config.seed);
    let rows = run_grid(
        &spec,
        &cells,
        &Fig9Run { setup: &setup },
        &SubstrateCache::passthrough(),
    );

    let mut honest = MeanStd::new();
    honest.extend(rows[0].iter().copied());

    let mut series: Vec<Series> = Vec::with_capacity(ASK_VALUES.len() + 1);
    for (ai, &ask_value) in ASK_VALUES.iter().enumerate() {
        let mut points = Vec::with_capacity(deltas.len());
        for (di, &delta) in deltas.iter().enumerate() {
            let mut acc = MeanStd::new();
            acc.extend(rows[1 + ai * deltas.len() + di].iter().copied());
            points.push(Point {
                x: delta as f64,
                y: acc.mean(),
                y_std: acc.std_dev(),
            });
        }
        series.push(Series {
            name: format!("a29 = {ask_value}"),
            points,
        });
    }
    series.push(Series {
        name: "truthful, no attack".into(),
        points: deltas
            .iter()
            .map(|&d| Point {
                x: d as f64,
                y: honest.mean(),
                y_std: honest.std_dev(),
            })
            .collect(),
    });

    Figure {
        id: "fig9",
        title: format!(
            "sybil attacker's total utility (c = {ATTACKER_COST}, K = {ATTACKER_CAPACITY})"
        ),
        x_label: "number of identities",
        y_label: "attacker total utility",
        series,
    }
}

/// One attacked replication: random identity arrangement, capacity split
/// uniformly among identities, all identities asking `ask_value`.
fn attack_utility(setup: &Setup, ask_value: f64, delta: usize, rng: &mut SmallRng) -> f64 {
    let task_type = setup.scenario.asks[setup.attacker].task_type();
    let identity_asks: Vec<Ask> =
        sybil_exec::uniform_identity_asks(task_type, ATTACKER_CAPACITY, delta, ask_value, rng);
    let attacked = sybil_exec::apply_attack(
        &setup.scenario.tree,
        &setup.scenario.asks,
        setup.attacker,
        &identity_asks,
        &SybilPlan::random(delta),
        rng,
    )
    .expect("attacker is a valid non-root user");
    let outcome = setup
        .rit
        .run(&setup.job, &attacked.tree, &attacked.asks, rng)
        .expect("aligned attack scenario");
    attacked.attacker_utility(&outcome, ATTACKER_COST)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_figure_has_expected_shape() {
        let fig = run(&Fig9Config {
            scale: Scale::Smoke,
            runs: 4,
            seed: 3,
        });
        assert_eq!(fig.id, "fig9");
        assert_eq!(fig.series.len(), 4); // 3 ask values + honest reference
        for s in &fig.series[..3] {
            assert_eq!(s.points.len(), 3);
        }
        // The honest reference is a horizontal line.
        let honest = &fig.series[3].points;
        assert!(honest.windows(2).all(|w| w[0].y == w[1].y));
    }

    #[test]
    fn setup_is_deterministic() {
        let c = Fig9Config {
            scale: Scale::Smoke,
            runs: 2,
            seed: 9,
        };
        let a = run(&c);
        let b = run(&c);
        assert_eq!(a, b);
    }
}
