//! Drivers regenerating each figure of the paper's §7 evaluation.
//!
//! Figures 6, 7 and 8 plot three metrics of the *same* two sweeps (over the
//! user count and over the per-type job size), so [`sweeps`] runs each sweep
//! once and slices it into the three figures. [`fig9`] runs the
//! sybil/truthfulness probe.
//!
//! Every driver accepts a [`Scale`]:
//!
//! * [`Scale::Paper`] — the paper's exact sweep grids (n = 40k–80k step 1k,
//!   `mᵢ` = 1k–3k step 100, 1000 runs is up to the caller) — hours of CPU;
//! * [`Scale::Default`] — same ranges, coarser grids; minutes;
//! * [`Scale::Smoke`] — tiny populations for tests and CI; the job sizes are
//!   far below Remark 6.1's requirement, so the mechanism runs in
//!   best-effort mode and only the qualitative shape survives.

pub mod ablation;
pub mod bound_check;
pub mod compare;
pub mod fig9;
pub mod quality_screening;
pub mod robustness;
pub mod sweeps;
pub mod tree_shape;
pub mod truthfulness_profile;

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{NoopObserver, Rit, RitConfig, RitOutcome, RitWorkspace, RoundLimit};
use rit_model::Job;

use crate::io::Value;
use crate::scenario::Scenario;

/// Sweep granularity / problem size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny: seconds, shape only (best-effort round budget).
    Smoke,
    /// The paper's ranges on a coarse grid: minutes.
    Default,
    /// The paper's exact grid: hours at the paper's run counts.
    Paper,
}

/// Metrics of one mechanism run — the raw material of Figs 6–8.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunMetrics {
    /// Mean over users of the auction-phase utility `p^Aⱼ − xⱼcⱼ`.
    pub avg_utility_auction: f64,
    /// Mean over users of the final utility `pⱼ − xⱼcⱼ`.
    pub avg_utility_rit: f64,
    /// `Σⱼ p^Aⱼ` — what the platform would pay with no solicitation rewards.
    pub total_payment_auction: f64,
    /// `Σⱼ pⱼ` — the platform's actual expenditure.
    pub total_payment_rit: f64,
    /// Auction-phase wall time in seconds.
    pub runtime_auction_s: f64,
    /// Full-mechanism wall time in seconds (auction + payment phases).
    pub runtime_rit_s: f64,
    /// Whether the job was fully allocated.
    pub completed: bool,
}

impl RunMetrics {
    /// Checkpoint column names, in [`RunMetrics::to_values`] order.
    pub const CHECKPOINT_COLUMNS: [&'static str; 7] = [
        "avg_utility_auction",
        "avg_utility_rit",
        "total_payment_auction",
        "total_payment_rit",
        "runtime_auction_s",
        "runtime_rit_s",
        "completed",
    ];

    /// Encodes the record as checkpoint fields (see
    /// [`crate::grid::CellRun::encode_record`]).
    #[must_use]
    pub fn to_values(&self) -> Vec<Value> {
        vec![
            Value::F64(self.avg_utility_auction),
            Value::F64(self.avg_utility_rit),
            Value::F64(self.total_payment_auction),
            Value::F64(self.total_payment_rit),
            Value::F64(self.runtime_auction_s),
            Value::F64(self.runtime_rit_s),
            Value::Bool(self.completed),
        ]
    }

    /// Decodes [`RunMetrics::to_values`] output; `None` on any shape
    /// mismatch (the grid then re-runs the item instead of restoring it).
    #[must_use]
    pub fn from_values(fields: &[Value]) -> Option<Self> {
        match fields {
            [Value::F64(avg_utility_auction), Value::F64(avg_utility_rit), Value::F64(total_payment_auction), Value::F64(total_payment_rit), Value::F64(runtime_auction_s), Value::F64(runtime_rit_s), Value::Bool(completed)] => {
                Some(Self {
                    avg_utility_auction: *avg_utility_auction,
                    avg_utility_rit: *avg_utility_rit,
                    total_payment_auction: *total_payment_auction,
                    total_payment_rit: *total_payment_rit,
                    runtime_auction_s: *runtime_auction_s,
                    runtime_rit_s: *runtime_rit_s,
                    completed: *completed,
                })
            }
            _ => None,
        }
    }
}

/// Runs RIT once on a scenario, timing the two phases separately.
///
/// On an incomplete run the paper voids all payments (Line 27), so both
/// payment/utility metrics are zero and only the runtimes and the
/// `completed` flag carry information.
///
/// # Panics
///
/// Panics if the mechanism rejects the scenario (the driver configures a
/// feasible round limit for the chosen scale).
#[must_use]
pub fn run_once(rit: &Rit, job: &Job, scenario: &Scenario, seed: u64) -> RunMetrics {
    let mut ws = RitWorkspace::new();
    run_once_in(rit, job, scenario, &mut ws, seed)
}

/// Like [`run_once`], reusing the auction scratch in `ws`. Outcomes are
/// bit-identical to [`run_once`] for the same seed; per-worker workspace
/// reuse (see [`crate::grid::CellRun::workspace`]) keeps the auction
/// phase allocation-free across a sweep's replications.
///
/// # Panics
///
/// See [`run_once`].
#[must_use]
pub fn run_once_in(
    rit: &Rit,
    job: &Job,
    scenario: &Scenario,
    ws: &mut RitWorkspace,
    seed: u64,
) -> RunMetrics {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = scenario.num_users().max(1) as f64;

    // Observers draw no randomness, so both branches produce bit-identical
    // outcomes for the same seed (pinned by `rit_telemetry`'s
    // chain-equivalence test); the untelemetered branch is the exact
    // pre-telemetry code path.
    let t0 = Instant::now();
    let phase = match rit_telemetry::active() {
        Some(t) => rit.run_auction_phase_with(
            job,
            &scenario.asks,
            ws,
            &mut rit_telemetry::TelemetryObserver::new(t),
            &mut rng,
        ),
        None => rit.run_auction_phase_with(job, &scenario.asks, ws, &mut NoopObserver, &mut rng),
    }
    .expect("driver-selected round limit must be feasible");
    let runtime_auction_s = t0.elapsed().as_secs_f64();

    // Auction-only metrics, under the same all-or-nothing rule as RIT so the
    // two series are comparable.
    let completed = phase.completed();
    let (avg_utility_auction, total_payment_auction) = if completed {
        let mut util_sum = 0.0;
        let mut pay_sum = 0.0;
        for j in 0..scenario.asks.len() {
            let pa = phase.auction_payments[j];
            util_sum += pa - phase.allocation[j] as f64 * scenario.population[j].unit_cost();
            pay_sum += pa;
        }
        (util_sum / n, pay_sum)
    } else {
        (0.0, 0.0)
    };

    let t1 = Instant::now();
    let outcome: RitOutcome = rit.determine_final_payments(&scenario.tree, &scenario.asks, phase);
    let payment_s = t1.elapsed().as_secs_f64();

    let (avg_utility_rit, total_payment_rit) = if outcome.completed() {
        let utils = outcome.utilities(scenario.population.as_slice());
        (utils.iter().sum::<f64>() / n, outcome.total_payment())
    } else {
        (0.0, 0.0)
    };

    RunMetrics {
        avg_utility_auction,
        avg_utility_rit,
        total_payment_auction,
        total_payment_rit,
        runtime_auction_s,
        runtime_rit_s: runtime_auction_s + payment_s,
        completed,
    }
}

/// The round limit appropriate for a sweep whose smallest per-type job size
/// is `min_m_i`: the paper budget where it is positive, best-effort
/// otherwise (tiny smoke scenarios).
#[must_use]
pub fn round_limit_for(min_m_i: u64, k_max: u64, h: f64, num_types: usize) -> RoundLimit {
    use rit_auction::bounds::{self, LogBase, WorstCaseQ};
    let budget = bounds::round_budget(
        min_m_i,
        k_max,
        h,
        num_types,
        LogBase::Ten,
        WorstCaseQ::FirstRound,
    );
    match budget {
        Some(b) if b >= 1 => RoundLimit::Paper(WorstCaseQ::FirstRound),
        _ => RoundLimit::until_stall(),
    }
}

/// The mechanism instance used by the drivers, with the paper's `H = 0.8`.
///
/// # Panics
///
/// Never: the embedded configuration is valid.
#[must_use]
pub fn paper_mechanism(round_limit: RoundLimit) -> Rit {
    Rit::new(RitConfig {
        round_limit,
        ..RitConfig::default()
    })
    .expect("paper configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;
    use rit_auction::bounds::WorstCaseQ;

    #[test]
    fn round_limit_picks_paper_when_feasible() {
        assert_eq!(
            round_limit_for(5000, 20, 0.8, 10),
            RoundLimit::Paper(WorstCaseQ::FirstRound)
        );
        assert_eq!(round_limit_for(100, 20, 0.8, 10), RoundLimit::until_stall());
    }

    #[test]
    fn run_once_produces_consistent_metrics() {
        let mut config = ScenarioConfig::paper(600);
        config.workload.num_types = 2;
        config.workload.capacity_max = 6;
        let scenario = Scenario::generate(&config, 3);
        let job = Job::from_counts(vec![100, 100]).unwrap();
        let rit = paper_mechanism(RoundLimit::until_stall());
        let m = run_once(&rit, &job, &scenario, 42);
        assert!(m.runtime_rit_s >= m.runtime_auction_s);
        if m.completed {
            // RIT pays at least the auction (solicitation rewards ≥ 0)…
            assert!(m.total_payment_rit >= m.total_payment_auction - 1e-9);
            // …but no more than twice it (§7 bound).
            assert!(m.total_payment_rit <= 2.0 * m.total_payment_auction + 1e-9);
            assert!(m.avg_utility_rit >= m.avg_utility_auction - 1e-12);
        } else {
            assert_eq!(m.total_payment_rit, 0.0);
        }
    }

    #[test]
    fn run_once_deterministic_modulo_time() {
        let scenario = Scenario::generate(&ScenarioConfig::paper(300), 5);
        let job = Job::from_counts(vec![50; 10]).unwrap();
        let rit = paper_mechanism(RoundLimit::until_stall());
        let a = run_once(&rit, &job, &scenario, 1);
        let b = run_once(&rit, &job, &scenario, 1);
        assert_eq!(a.avg_utility_rit, b.avg_utility_rit);
        assert_eq!(a.total_payment_rit, b.total_payment_rit);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn warm_workspace_run_matches_fresh() {
        let scenario = Scenario::generate(&ScenarioConfig::paper(300), 5);
        let job = Job::from_counts(vec![50; 10]).unwrap();
        let rit = paper_mechanism(RoundLimit::until_stall());
        let mut ws = RitWorkspace::new();
        for seed in [1u64, 2, 3] {
            let warm = run_once_in(&rit, &job, &scenario, &mut ws, seed);
            let fresh = run_once(&rit, &job, &scenario, seed);
            assert_eq!(warm.avg_utility_rit, fresh.avg_utility_rit);
            assert_eq!(warm.total_payment_rit, fresh.total_payment_rit);
            assert_eq!(warm.completed, fresh.completed);
        }
    }
}
