//! Effect of quality screening on completion and platform cost.
//!
//! [`rit_core::quality`] instantiates the paper's deferred "data quality"
//! direction as bid-independent pre-auction screening. Screening shrinks
//! the eligible supply, so it trades quality for price: as the screened
//! fraction grows, the surviving (smaller) ask pool clears at higher
//! prices, and past the Remark 6.1 threshold the job stops completing.
//! This experiment traces that trade-off: completion rate and per-task
//! platform cost vs the fraction of users screened out.

use rit_adversary::{BaseScenario, ProbeRunner, Screening, SeedSchedule};
use rit_core::{Rit, RitError, RoundLimit};
use rit_model::Job;

use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::scenario::ScenarioConfig;
use crate::substrate::{SubstrateCache, SubstrateMode};

/// Configuration of the screening sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScreeningConfig {
    /// Problem sizes.
    pub scale: Scale,
    /// Replications per screening level.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Substrate sourcing (see [`SubstrateMode`]). Screening levels share a
    /// scenario configuration, so rotating substrates are reused across the
    /// whole sweep.
    pub substrate: SubstrateMode,
}

impl ScreeningConfig {
    /// A screening sweep with per-replication substrates.
    #[must_use]
    pub fn new(scale: Scale, runs: usize, seed: u64) -> Self {
        Self {
            scale,
            runs,
            seed,
            substrate: SubstrateMode::PerReplication,
        }
    }
}

const SCREEN_FRACTIONS: [f64; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9];

/// Salt separating freshly generated substrates from screening seeds.
const FRESH_SALT: u64 = 0x0DDB;
/// Salt separating substrate seeds from screening/mechanism seeds.
const SUBSTRATE_STREAM: u64 = 0x0DDB_F00D;

/// Grid adapter: one replication of one screening level. The salt is the
/// fraction index, preserving the pre-engine `derive_seed(seed, fi, r)`
/// stream.
struct ScreeningRun<'a> {
    scen_config: &'a ScenarioConfig,
    job: &'a Job,
    rit: &'a Rit,
    runs: usize,
}

impl CellRun for ScreeningRun<'_> {
    type Cell = f64;
    type Workspace = ();
    type Record = (f64, Option<f64>);

    fn workspace(&self) {}

    fn salt(&self, cell_index: usize, _cell: &f64) -> u64 {
        cell_index as u64
    }

    fn run(&self, ctx: &CellCtx<'_, f64>, (): &mut ()) -> (f64, Option<f64>) {
        // Screening is a platform-side, attacker-free deviation: only its
        // single (deviant) arm runs, with the exogenous quality lottery
        // drawn by the deviation before the mechanism continues on the
        // same generator.
        let deviation = Screening {
            fraction: *ctx.cell,
        };
        let scenario = ctx.scenario(self.scen_config, FRESH_SALT, SUBSTRATE_STREAM);
        let base = BaseScenario {
            tree: &scenario.tree,
            asks: &scenario.asks,
            costs: &[],
        };
        let runner = ProbeRunner::new(
            base,
            SeedSchedule::Derived {
                master: ctx.master_seed(),
                point: ctx.cell_index as u64,
            },
            self.runs,
        );
        let job = self.job;
        let rit = self.rit;
        let arm = runner
            .deviant_replication::<RitError, _>(ctx.replication, &deviation, &mut |view, rng| {
                let out = rit.run_screened(
                    job,
                    view.tree,
                    view.asks,
                    view.eligible.expect("screening sets a mask"),
                    rng,
                )?;
                Ok(out.into())
            })
            .expect("aligned scenario");
        if arm.completed {
            (1.0, Some(arm.total_payment / job.total_tasks() as f64))
        } else {
            (0.0, None)
        }
    }
}

/// Runs the screening sweep.
#[must_use]
pub fn run(config: &ScreeningConfig) -> Figure {
    run_with(config, &SubstrateCache::new())
}

/// [`run`] against a caller-owned [`SubstrateCache`].
#[must_use]
pub fn run_with(config: &ScreeningConfig, cache: &SubstrateCache) -> Figure {
    let (n, m_i) = match config.scale {
        Scale::Smoke => (1_200, 80),
        Scale::Default | Scale::Paper => (8_000, 400),
    };
    let mut scen_config = ScenarioConfig::paper(n);
    scen_config.workload.num_types = 4;
    let job = Job::uniform(4, m_i).expect("positive types");
    let rit = paper_mechanism(RoundLimit::until_stall());

    let spec = GridSpec::new("quality_screening", config.runs, config.seed)
        .with_substrate(config.substrate)
        .with_axis("screened fraction", SCREEN_FRACTIONS.len());
    let rows = run_grid(
        &spec,
        &SCREEN_FRACTIONS,
        &ScreeningRun {
            scen_config: &scen_config,
            job: &job,
            rit: &rit,
            runs: config.runs,
        },
        cache,
    );

    let mut completion_points = Vec::with_capacity(SCREEN_FRACTIONS.len());
    let mut cost_points = Vec::with_capacity(SCREEN_FRACTIONS.len());
    for (&fraction, samples) in SCREEN_FRACTIONS.iter().zip(rows) {
        let mut completion = MeanStd::new();
        let mut cost = MeanStd::new();
        for (c, p) in samples {
            completion.push(c);
            if let Some(p) = p {
                cost.push(p);
            }
        }
        completion_points.push(Point {
            x: fraction,
            y: completion.mean(),
            y_std: completion.std_dev(),
        });
        cost_points.push(Point {
            x: fraction,
            y: cost.mean(),
            y_std: cost.std_dev(),
        });
    }

    Figure {
        id: "quality_screening",
        title: "quality screening: completion and per-task cost vs screened fraction".into(),
        x_label: "fraction of users screened out",
        y_label: "completion rate / cost per task",
        series: vec![
            Series {
                name: "completion rate".into(),
                points: completion_points,
            },
            Series {
                name: "cost per task (completed runs)".into(),
                points: cost_points,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotating_substrates_amortize_generation_across_levels() {
        let mut config = ScreeningConfig::new(Scale::Smoke, 4, 21);
        config.substrate = SubstrateMode::Rotating(2);
        let cache = SubstrateCache::new();
        let _ = run_with(&config, &cache);
        // 6 screening levels × 4 runs would be 24 generations; rotating over
        // 2 shared substrates pays it twice.
        assert_eq!(cache.generations(), 2);
    }

    #[test]
    fn screening_raises_cost_and_eventually_breaks_completion() {
        let fig = run(&ScreeningConfig::new(Scale::Smoke, 6, 21));
        let completion = &fig.series[0].points;
        let cost = &fig.series[1].points;
        // Unscreened completes reliably.
        assert!(
            completion[0].y > 0.8,
            "baseline completion {}",
            completion[0].y
        );
        // Completion never improves with more screening.
        for w in completion.windows(2) {
            assert!(w[1].y <= w[0].y + 0.34, "completion should trend down");
        }
        // Cost per task rises between no screening and heavy screening
        // (comparing the completed runs only).
        let baseline = cost[0].y;
        let heavy = cost
            .iter()
            .rev()
            .find(|p| p.y > 0.0)
            .expect("some screened level completed");
        assert!(
            heavy.y >= baseline * 0.9,
            "cost should not fall with screening: {} vs {baseline}",
            heavy.y
        );
    }
}
