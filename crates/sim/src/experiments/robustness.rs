//! Robustness of the evaluation's shapes to the cost distribution.
//!
//! The paper's §7-A draws unit costs uniformly. This experiment re-runs the
//! Fig 6(b)-style sweep under four cost models (uniform, exponential,
//! bimodal, log-normal — all with comparable scale) and reports the
//! RIT-to-auction payment ratio: if the solicitation layer's behavior were
//! an artifact of uniform costs, the ratio would move materially across
//! models. Expected: the ratio stays in a narrow band (it is a property of
//! the *tree* and the `(1/2)^r` weights, not of the price distribution),
//! while absolute payments shift with the cost scale.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::RoundLimit;
use rit_model::distributions::{CostModel, HeterogeneousWorkload};
use rit_model::Job;
use rit_socialgraph::{generators, spanning};

use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::substrate::SubstrateCache;

/// Configuration of the robustness sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RobustnessConfig {
    /// Problem sizes.
    pub scale: Scale,
    /// Replications per (model, size) cell.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

fn cost_models() -> Vec<(&'static str, CostModel)> {
    vec![
        ("uniform (paper)", CostModel::paper()),
        (
            "exponential",
            CostModel::Exponential {
                mean: 5.0,
                cap: 10.0,
            },
        ),
        (
            "bimodal",
            CostModel::Bimodal {
                low: 2.0,
                high: 8.0,
                p_high: 0.5,
                jitter: 1.0,
            },
        ),
        (
            "log-normal",
            CostModel::LogNormal {
                median: 4.0,
                sigma: 0.5,
                cap: 10.0,
            },
        ),
    ]
}

/// One replication: the RIT/auction total-payment ratio (NaN-free; failed
/// runs return `None` and are dropped from the average).
fn payment_ratio(
    num_users: usize,
    num_types: usize,
    m_i: u64,
    cost: CostModel,
    seed: u64,
) -> Option<f64> {
    let workload = HeterogeneousWorkload {
        num_types,
        capacity_max: 20,
        cost,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let population = workload.sample_population(num_users, &mut rng).ok()?;
    let graph = generators::barabasi_albert(num_users, 2, &mut rng);
    let tree = spanning::spanning_forest_tree(&graph);
    let asks = population.truthful_asks().into_vec();
    let job = Job::uniform(num_types, m_i).ok()?;
    let rit = paper_mechanism(RoundLimit::until_stall());
    let outcome = rit.run(&job, &tree, &asks, &mut rng).ok()?;
    if !outcome.completed() || outcome.total_auction_payment() <= 0.0 {
        return None;
    }
    Some(outcome.total_payment() / outcome.total_auction_payment())
}

/// One robustness grid cell: a (cost model, job size) pair with its
/// pre-engine seed stream `mi_idx * 16 + pi`.
struct RobustnessCell {
    cost: CostModel,
    m_i: u64,
    salt: u64,
}

/// Grid adapter: one replication of one (model, size) cell. Substrates are
/// drawn inline on one continuous generator per replication (the cost model
/// varies per cell), so the cell deliberately bypasses [`CellCtx::scenario`]
/// and any caller-provided cache.
struct RobustnessRun {
    num_users: usize,
    num_types: usize,
}

impl CellRun for RobustnessRun {
    type Cell = RobustnessCell;
    type Workspace = ();
    type Record = Option<f64>;

    fn workspace(&self) {}

    fn salt(&self, _cell_index: usize, cell: &RobustnessCell) -> u64 {
        cell.salt
    }

    fn run(&self, ctx: &CellCtx<'_, RobustnessCell>, (): &mut ()) -> Option<f64> {
        payment_ratio(
            self.num_users,
            self.num_types,
            ctx.cell.m_i,
            ctx.cell.cost,
            ctx.seed,
        )
    }
}

/// Runs the robustness sweep: payment ratio vs per-type job size, one
/// series per cost model.
#[must_use]
pub fn run(config: &RobustnessConfig) -> Figure {
    run_with(config, &SubstrateCache::passthrough())
}

/// [`run`] against a caller-owned [`SubstrateCache`]. Each replication
/// samples its own population inline (cost models differ per cell), so the
/// cache is threaded through the engine but never populated.
#[must_use]
pub fn run_with(config: &RobustnessConfig, cache: &SubstrateCache) -> Figure {
    let (num_users, sizes): (usize, Vec<u64>) = match config.scale {
        Scale::Smoke => (1_500, vec![60, 120]),
        Scale::Default | Scale::Paper => (10_000, vec![250, 500, 1_000]),
    };
    let num_types = 4;
    let models = cost_models();
    let mut cells = Vec::with_capacity(models.len() * sizes.len());
    for (mi_idx, (_, cost)) in models.iter().enumerate() {
        for (pi, &m_i) in sizes.iter().enumerate() {
            cells.push(RobustnessCell {
                cost: *cost,
                m_i,
                salt: (mi_idx * 16 + pi) as u64,
            });
        }
    }
    let spec = GridSpec::new("robustness", config.runs, config.seed)
        .with_axis("cost model", models.len())
        .with_axis("job size", sizes.len());
    let rows = run_grid(
        &spec,
        &cells,
        &RobustnessRun {
            num_users,
            num_types,
        },
        cache,
    );

    let mut series = Vec::with_capacity(models.len());
    for (mi_idx, (name, _)) in models.iter().enumerate() {
        let mut points = Vec::with_capacity(sizes.len());
        for (pi, &m_i) in sizes.iter().enumerate() {
            let mut acc = MeanStd::new();
            acc.extend(rows[mi_idx * sizes.len() + pi].iter().flatten().copied());
            points.push(Point {
                x: m_i as f64,
                y: acc.mean(),
                y_std: acc.std_dev(),
            });
        }
        series.push(Series {
            name: (*name).into(),
            points,
        });
    }
    Figure {
        id: "robustness",
        title: "RIT/auction payment ratio across cost distributions".into(),
        x_label: "tasks per type (m_i)",
        y_label: "total payment ratio (RIT / auction phase)",
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_band_is_narrow_across_models() {
        let fig = run(&RobustnessConfig {
            scale: Scale::Smoke,
            runs: 4,
            seed: 7,
        });
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            for p in &s.points {
                // The §7 bound pins the ratio to [1, 2]; across models it
                // should stay well inside.
                assert!(
                    p.y >= 1.0 - 1e-9 && p.y <= 2.0 + 1e-9,
                    "{}: ratio {} out of the §7 band",
                    s.name,
                    p.y
                );
            }
        }
        // Cross-model spread at each size stays modest (< 0.25 absolute).
        for i in 0..fig.series[0].points.len() {
            let ys: Vec<f64> = fig.series.iter().map(|s| s.points[i].y).collect();
            let spread = ys.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
                - ys.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            assert!(spread < 0.25, "cost-model spread too wide: {ys:?}");
        }
    }

    #[test]
    fn inline_substrates_never_touch_the_cache() {
        let cache = SubstrateCache::new();
        let _ = run_with(
            &RobustnessConfig {
                scale: Scale::Smoke,
                runs: 2,
                seed: 7,
            },
            &cache,
        );
        // Populations are drawn inline per replication; the caller's cache
        // must stay cold.
        assert_eq!(cache.generations(), 0);
    }
}
