//! The two parameter sweeps behind Figures 6, 7 and 8.
//!
//! * **User sweep** (Figs 6a, 7a, 8a): `mᵢ = 5000` per type, user count
//!   swept 40,000 → 80,000.
//! * **Task sweep** (Figs 6b, 7b, 8b): `n = 30,000` users, per-type job
//!   size swept 1,000 → 3,000.
//!
//! Each sweep is one [`GridSpec`] grid — grid points × `R` seeded
//! replications flattened into the engine's global work queue — and
//! accumulates six metrics; the `figures` functions slice one sweep into the
//! three paper figures (utility / total payment / running time, each with an
//! "auction phase" and a "RIT" curve).

use rit_model::Job;

use rit_core::{Rit, RitWorkspace, RoundLimit};

use crate::experiments::{paper_mechanism, run_once_in, RunMetrics, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::Value;
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::scenario::ScenarioConfig;
use crate::substrate::{SubstrateCache, SubstrateMode};

/// Configuration of a sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepConfig {
    /// Grid/problem sizes.
    pub scale: Scale,
    /// Replications per grid point (the paper averaged 1000).
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Substrate sourcing: fresh per replication (paper fidelity) or
    /// rotated over `k` cached substrates (amortized generation).
    pub substrate: SubstrateMode,
}

impl SweepConfig {
    /// A sweep at `scale` with per-replication substrates — the paper's
    /// semantics.
    #[must_use]
    pub fn new(scale: Scale, runs: usize, seed: u64) -> Self {
        Self {
            scale,
            runs,
            seed,
            substrate: SubstrateMode::PerReplication,
        }
    }
}

/// Accumulated metrics at one grid point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PointSummary {
    /// The swept value (user count or per-type tasks).
    pub x: u64,
    /// Average user utility, auction phase only.
    pub utility_auction: MeanStd,
    /// Average user utility, full RIT.
    pub utility_rit: MeanStd,
    /// Total platform payment, auction phase only.
    pub payment_auction: MeanStd,
    /// Total platform payment, full RIT.
    pub payment_rit: MeanStd,
    /// Running time (s), auction phase only.
    pub runtime_auction: MeanStd,
    /// Running time (s), full RIT.
    pub runtime_rit: MeanStd,
    /// Fraction of replications that fully allocated the job.
    pub completion_rate: f64,
}

/// A finished sweep: one summary per grid point, plus provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepData {
    /// `"users"` or `"tasks"`.
    pub kind: &'static str,
    /// Per-point summaries in sweep order.
    pub points: Vec<PointSummary>,
    /// Replications per point.
    pub runs: usize,
}

fn accumulate(x: u64, metrics: &[RunMetrics]) -> PointSummary {
    let mut s = PointSummary {
        x,
        ..PointSummary::default()
    };
    let mut completed = 0usize;
    for m in metrics {
        s.utility_auction.push(m.avg_utility_auction);
        s.utility_rit.push(m.avg_utility_rit);
        s.payment_auction.push(m.total_payment_auction);
        s.payment_rit.push(m.total_payment_rit);
        s.runtime_auction.push(m.runtime_auction_s);
        s.runtime_rit.push(m.runtime_rit_s);
        if m.completed {
            completed += 1;
        }
    }
    s.completion_rate = if metrics.is_empty() {
        0.0
    } else {
        completed as f64 / metrics.len() as f64
    };
    s
}

/// Salt separating the rotating-substrate seed stream from the
/// per-replication mechanism seeds.
const SUBSTRATE_STREAM: u64 = 0xF00D_CAFE;

/// Salt decorrelating a fresh per-replication substrate's seed from the
/// mechanism seed consuming the same `(point, replication)` stream.
const FRESH_SALT: u64 = 0xA5A5_5A5A;

/// One resolved sweep point: the swept value plus everything a
/// replication needs.
struct SweepCell {
    x: u64,
    scenario_config: ScenarioConfig,
    job: Job,
    rit: Rit,
}

/// Grid adapter: one replication of one sweep point. The salt is the
/// point index, preserving the pre-engine `derive_seed(seed, pi, r)`
/// stream bit-for-bit.
struct SweepRun;

impl CellRun for SweepRun {
    type Cell = SweepCell;
    type Workspace = RitWorkspace;
    type Record = RunMetrics;

    fn workspace(&self) -> RitWorkspace {
        RitWorkspace::new()
    }

    fn salt(&self, cell_index: usize, _cell: &SweepCell) -> u64 {
        cell_index as u64
    }

    fn run(&self, ctx: &CellCtx<'_, SweepCell>, ws: &mut RitWorkspace) -> RunMetrics {
        let cell = ctx.cell;
        let scenario = ctx.scenario(&cell.scenario_config, FRESH_SALT, SUBSTRATE_STREAM);
        run_once_in(&cell.rit, &cell.job, &scenario, ws, ctx.seed)
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&RunMetrics::CHECKPOINT_COLUMNS)
    }

    fn encode_record(&self, record: &RunMetrics) -> Vec<Value> {
        record.to_values()
    }

    fn decode_record(&self, fields: &[Value]) -> Option<RunMetrics> {
        RunMetrics::from_values(fields)
    }
}

fn sweep(
    kind: &'static str,
    grid: Vec<(u64, usize, u64)>, // (x, num_users, m_i)
    config: &SweepConfig,
    cache: &SubstrateCache,
) -> SweepData {
    let num_types = 10;
    let cells: Vec<SweepCell> = grid
        .into_iter()
        .map(|(x, num_users, m_i)| SweepCell {
            x,
            scenario_config: ScenarioConfig::paper(num_users),
            job: Job::uniform(num_types, m_i).expect("positive type count"),
            // Completion must hold across all 10 types simultaneously; under
            // the paper's own round budget that probability collapses at the
            // small end of the Fig 6(b) sweep (see the `ablation_rounds`
            // figure and DESIGN.md), so the published curves can only have
            // been produced best-effort — which is what we run here.
            rit: paper_mechanism(RoundLimit::until_stall()),
        })
        .collect();
    let spec = GridSpec::new(kind, config.runs, config.seed)
        .with_substrate(config.substrate)
        .with_axis(kind, cells.len());
    let rows = run_grid(&spec, &cells, &SweepRun, cache);
    let points = cells
        .iter()
        .zip(rows)
        .map(|(cell, metrics)| accumulate(cell.x, &metrics))
        .collect();
    SweepData {
        kind,
        points,
        runs: config.runs,
    }
}

/// The Fig 6(a)/7(a)/8(a) sweep: vary the user count at `mᵢ = 5000`.
#[must_use]
pub fn user_sweep(config: &SweepConfig) -> SweepData {
    user_sweep_with(config, &SubstrateCache::new())
}

/// [`user_sweep`] against a caller-owned [`SubstrateCache`], so multiple
/// sweeps (or bench arms) can share substrates and read the cache's
/// generation counters afterwards.
#[must_use]
pub fn user_sweep_with(config: &SweepConfig, cache: &SubstrateCache) -> SweepData {
    let grid: Vec<(u64, usize, u64)> = match config.scale {
        Scale::Paper => (40_000..=80_000)
            .step_by(1_000)
            .map(|n| (n as u64, n, 5_000))
            .collect(),
        Scale::Default => (40_000..=80_000)
            .step_by(10_000)
            .map(|n| (n as u64, n, 5_000))
            .collect(),
        Scale::Smoke => [1_500usize, 2_250, 3_000]
            .into_iter()
            .map(|n| (n as u64, n, 120))
            .collect(),
    };
    sweep("users", grid, config, cache)
}

/// The Fig 6(b)/7(b)/8(b) sweep: vary the per-type job size at `n = 30,000`.
#[must_use]
pub fn task_sweep(config: &SweepConfig) -> SweepData {
    task_sweep_with(config, &SubstrateCache::new())
}

/// [`task_sweep`] against a caller-owned [`SubstrateCache`] — every grid
/// point here shares one population size, so in rotating mode the whole
/// sweep reuses the same `k` substrates.
#[must_use]
pub fn task_sweep_with(config: &SweepConfig, cache: &SubstrateCache) -> SweepData {
    let grid: Vec<(u64, usize, u64)> = match config.scale {
        Scale::Paper => (1_000..=3_000)
            .step_by(100)
            .map(|m| (m as u64, 30_000, m as u64))
            .collect(),
        Scale::Default => (1_000..=3_000)
            .step_by(500)
            .map(|m| (m as u64, 30_000, m as u64))
            .collect(),
        Scale::Smoke => [60u64, 100, 140]
            .into_iter()
            .map(|m| (m, 2_000, m))
            .collect(),
    };
    sweep("tasks", grid, config, cache)
}

fn two_series(
    data: &SweepData,
    pick_auction: impl Fn(&PointSummary) -> &MeanStd,
    pick_rit: impl Fn(&PointSummary) -> &MeanStd,
) -> Vec<Series> {
    let to_points = |pick: &dyn Fn(&PointSummary) -> &MeanStd| {
        data.points
            .iter()
            .map(|p| {
                let m = pick(p);
                Point {
                    x: p.x as f64,
                    y: m.mean(),
                    y_std: m.std_dev(),
                }
            })
            .collect()
    };
    vec![
        Series {
            name: "auction phase".into(),
            points: to_points(&pick_auction),
        },
        Series {
            name: "RIT".into(),
            points: to_points(&pick_rit),
        },
    ]
}

fn x_label(data: &SweepData) -> &'static str {
    if data.kind == "users" {
        "number of users"
    } else {
        "tasks per type (m_i)"
    }
}

/// Slices a sweep into the utility figure (Fig 6a or 6b).
#[must_use]
pub fn utility_figure(data: &SweepData) -> Figure {
    let (id, title) = if data.kind == "users" {
        ("fig6a", "average user utility vs number of users")
    } else {
        ("fig6b", "average user utility vs job size")
    };
    Figure {
        id,
        title: title.into(),
        x_label: x_label(data),
        y_label: "average user utility",
        series: two_series(data, |p| &p.utility_auction, |p| &p.utility_rit),
    }
}

/// Slices a sweep into the total-payment figure (Fig 7a or 7b).
#[must_use]
pub fn payment_figure(data: &SweepData) -> Figure {
    let (id, title) = if data.kind == "users" {
        ("fig7a", "total payment vs number of users")
    } else {
        ("fig7b", "total payment vs job size")
    };
    Figure {
        id,
        title: title.into(),
        x_label: x_label(data),
        y_label: "total platform payment",
        series: two_series(data, |p| &p.payment_auction, |p| &p.payment_rit),
    }
}

/// Slices a sweep into the running-time figure (Fig 8a or 8b).
#[must_use]
pub fn runtime_figure(data: &SweepData) -> Figure {
    let (id, title) = if data.kind == "users" {
        ("fig8a", "running time vs number of users")
    } else {
        ("fig8b", "running time vs job size")
    };
    Figure {
        id,
        title: title.into(),
        x_label: x_label(data),
        y_label: "running time (s)",
        series: two_series(data, |p| &p.runtime_auction, |p| &p.runtime_rit),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> SweepConfig {
        SweepConfig::new(Scale::Smoke, 3, 11)
    }

    #[test]
    fn user_sweep_smoke_produces_figures() {
        let data = user_sweep(&smoke_config());
        assert_eq!(data.points.len(), 3);
        assert!(data.points.iter().any(|p| p.completion_rate > 0.0));
        let f6 = utility_figure(&data);
        let f7 = payment_figure(&data);
        let f8 = runtime_figure(&data);
        assert_eq!(f6.id, "fig6a");
        assert_eq!(f7.id, "fig7a");
        assert_eq!(f8.id, "fig8a");
        for f in [&f6, &f7, &f8] {
            assert_eq!(f.series.len(), 2);
            assert_eq!(f.series[0].points.len(), 3);
        }
        // RIT utility and payment dominate the auction phase pointwise.
        for (a, r) in f6.series[0].points.iter().zip(&f6.series[1].points) {
            assert!(r.y >= a.y - 1e-9);
        }
        for (a, r) in f7.series[0].points.iter().zip(&f7.series[1].points) {
            assert!(r.y >= a.y - 1e-9);
            assert!(r.y <= 2.0 * a.y + 1e-9, "§7 bound: RIT ≤ 2× auction total");
        }
        // Runtime includes the payment phase.
        for (a, r) in f8.series[0].points.iter().zip(&f8.series[1].points) {
            assert!(r.y >= a.y);
        }
    }

    #[test]
    fn rotating_substrates_generate_once_per_key_not_per_replication() {
        let mut config = smoke_config();
        config.substrate = SubstrateMode::Rotating(2);
        let cache = SubstrateCache::new();
        let data = user_sweep_with(&config, &cache);
        assert_eq!(data.points.len(), 3);
        // 3 grid points with distinct user counts × 2 substrate slots:
        // exactly 6 generations, not points × runs = 9.
        assert_eq!(cache.generations(), 6);
        assert_eq!(cache.len(), 6);
        // With runs = 3 over 2 slots, each point replays one substrate.
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn task_sweep_shares_substrates_across_grid_points() {
        // Every task-sweep point has the same population size, so in
        // rotating mode the whole sweep shares one substrate per slot.
        let mut config = smoke_config();
        config.substrate = SubstrateMode::Rotating(2);
        let cache = SubstrateCache::new();
        let data = task_sweep_with(&config, &cache);
        assert_eq!(data.points.len(), 3);
        assert_eq!(cache.generations(), 2);
    }

    #[test]
    fn cached_and_passthrough_rotating_arms_agree() {
        let mut config = smoke_config();
        config.substrate = SubstrateMode::Rotating(2);
        let cached = user_sweep_with(&config, &SubstrateCache::new());
        let passthrough = SubstrateCache::passthrough();
        let uncached = user_sweep_with(&config, &passthrough);
        // The passthrough arm regenerated per replication…
        assert_eq!(passthrough.generations(), 9);
        // …but the results are bit-identical to the memoized arm.
        for (a, b) in cached.points.iter().zip(&uncached.points) {
            assert_eq!(a.utility_auction, b.utility_auction);
            assert_eq!(a.utility_rit, b.utility_rit);
            assert_eq!(a.payment_auction, b.payment_auction);
            assert_eq!(a.payment_rit, b.payment_rit);
            assert_eq!(a.completion_rate, b.completion_rate);
        }
    }

    #[test]
    fn task_sweep_smoke_shapes() {
        let data = task_sweep(&smoke_config());
        assert_eq!(data.points.len(), 3);
        let f6 = utility_figure(&data);
        assert_eq!(f6.id, "fig6b");
        // Fig 6(b): more tasks ⇒ higher average utility (first vs last point,
        // RIT curve) — allow equality for noisy smoke runs.
        let rit = &f6.series[1].points;
        assert!(
            rit.last().unwrap().y >= rit.first().unwrap().y - 1e-9,
            "utility should not decrease with job size"
        );
    }
}
