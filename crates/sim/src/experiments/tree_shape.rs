//! Sensitivity of the solicitation layer to the social-graph model.
//!
//! The paper's incentive tree comes from one Twitter trace; ours are
//! synthetic, so it matters whether the solicitation economics depend on
//! the generator. This experiment fixes the §7-A workload and job and swaps
//! the graph: Barabási–Albert (heavy-tailed, shallow), Erdős–Rényi
//! (homogeneous), Watts–Strogatz (clustered ring, deep trees). Reported per
//! model: the RIT/auction payment ratio and the mean recruiter depth of the
//! resulting tree.
//!
//! Expected: deeper trees shift solicitation mass down the `(1/2)^r`
//! weights and *lower* the ratio; the §7 bound (ratio ≤ 2) holds
//! everywhere.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::RoundLimit;
use rit_model::Job;
use rit_tree::stats::TreeStats;

use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::scenario::{GraphModel, Scenario, ScenarioConfig};
use crate::substrate::SubstrateCache;

/// Configuration of the tree-shape sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TreeShapeConfig {
    /// Problem sizes.
    pub scale: Scale,
    /// Replications per graph model.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

fn graph_models() -> Vec<(&'static str, GraphModel)> {
    vec![
        ("barabasi-albert", GraphModel::BarabasiAlbert { m: 2 }),
        ("erdos-renyi", GraphModel::ErdosRenyi { p: 0.0 }), // p filled per n below
        (
            "watts-strogatz",
            GraphModel::WattsStrogatz { k: 4, beta: 0.1 },
        ),
    ]
}

struct ModelOutcome {
    ratio: Option<f64>,
    mean_depth: f64,
}

fn one_run(num_users: usize, m_i: u64, graph: GraphModel, seed: u64) -> ModelOutcome {
    let mut config = ScenarioConfig::paper(num_users);
    config.workload.num_types = 4;
    config.graph = graph;
    let scenario = Scenario::generate(&config, seed);
    let depth = TreeStats::compute(&scenario.tree).mean_depth;
    let job = Job::uniform(4, m_i).expect("positive types");
    let rit = paper_mechanism(RoundLimit::until_stall());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
    let outcome = rit
        .run(&job, &scenario.tree, &scenario.asks, &mut rng)
        .expect("aligned scenario");
    let ratio = if outcome.completed() && outcome.total_auction_payment() > 0.0 {
        Some(outcome.total_payment() / outcome.total_auction_payment())
    } else {
        None
    };
    ModelOutcome {
        ratio,
        mean_depth: depth,
    }
}

/// Grid adapter: one replication of one graph model. The salt is the
/// model index (0 = BA, 1 = ER, 2 = WS), preserving the pre-engine
/// `derive_seed(seed, gi, r)` stream.
struct TreeShapeRun {
    num_users: usize,
    m_i: u64,
}

impl CellRun for TreeShapeRun {
    type Cell = GraphModel;
    type Workspace = ();
    type Record = ModelOutcome;

    fn workspace(&self) {}

    fn salt(&self, cell_index: usize, _cell: &GraphModel) -> u64 {
        cell_index as u64
    }

    fn run(&self, ctx: &CellCtx<'_, GraphModel>, (): &mut ()) -> ModelOutcome {
        one_run(self.num_users, self.m_i, *ctx.cell, ctx.seed)
    }
}

/// Runs the tree-shape sweep. The x axis indexes the graph models (0 = BA,
/// 1 = ER, 2 = WS); two series report the payment ratio and the mean
/// recruiter depth.
#[must_use]
pub fn run(config: &TreeShapeConfig) -> Figure {
    let (num_users, m_i) = match config.scale {
        Scale::Smoke => (1_200, 80),
        Scale::Default | Scale::Paper => (10_000, 500),
    };
    let cells: Vec<GraphModel> = graph_models()
        .into_iter()
        .map(|(_, mut graph)| {
            if let GraphModel::ErdosRenyi { ref mut p } = graph {
                // Match BA's mean degree (≈ 4).
                *p = 4.0 / (num_users as f64 - 1.0);
            }
            graph
        })
        .collect();
    let spec =
        GridSpec::new("tree_shape", config.runs, config.seed).with_axis("graph model", cells.len());
    let rows = run_grid(
        &spec,
        &cells,
        &TreeShapeRun { num_users, m_i },
        &SubstrateCache::passthrough(),
    );
    let mut ratio_points = Vec::new();
    let mut depth_points = Vec::new();
    for (gi, outcomes) in rows.iter().enumerate() {
        let mut ratio = MeanStd::new();
        let mut depth = MeanStd::new();
        for o in outcomes {
            if let Some(x) = o.ratio {
                ratio.push(x);
            }
            depth.push(o.mean_depth);
        }
        ratio_points.push(Point {
            x: gi as f64,
            y: ratio.mean(),
            y_std: ratio.std_dev(),
        });
        depth_points.push(Point {
            x: gi as f64,
            y: depth.mean(),
            y_std: depth.std_dev(),
        });
    }
    Figure {
        id: "tree_shape",
        title: "solicitation economics vs social-graph model (0 = BA, 1 = ER, 2 = WS)".into(),
        x_label: "graph model index",
        y_label: "payment ratio / mean depth",
        series: vec![
            Series {
                name: "payment ratio (RIT / auction)".into(),
                points: ratio_points,
            },
            Series {
                name: "mean user depth".into(),
                points: depth_points,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_bounded_and_depth_orders_models() {
        let fig = run(&TreeShapeConfig {
            scale: Scale::Smoke,
            runs: 3,
            seed: 5,
        });
        let ratios = &fig.series[0].points;
        let depths = &fig.series[1].points;
        for p in ratios {
            assert!(
                p.y >= 1.0 - 1e-9 && p.y <= 2.0 + 1e-9,
                "ratio {} outside the §7 band",
                p.y
            );
        }
        // Watts–Strogatz rings grow much deeper spanning trees than BA.
        assert!(
            depths[2].y > 2.0 * depths[0].y,
            "WS depth {} not ≫ BA depth {}",
            depths[2].y,
            depths[0].y
        );
    }
}
