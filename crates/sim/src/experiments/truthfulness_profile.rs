//! The truthfulness profile: a winning user's expected utility as a
//! function of its reported price.
//!
//! Fig 9 probes three ask values for one attacker; this experiment traces
//! the whole curve. For a fixed scenario and a user with a non-trivial
//! truthful win rate, the reported unit price is swept from 0.5× to 2.0×
//! the true cost and the expected utility (over mechanism coins) is
//! recorded. Truthfulness predicts a plateau peaking at (or statistically
//! indistinguishable from) factor 1.0: shading down wins more but only
//! adds tasks priced near cost, shading up forfeits profitable wins.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use rit_core::{Rit, RoundLimit};
use rit_model::{Ask, Job};

use crate::experiments::{paper_mechanism, Scale};
use crate::grid::{run_grid, CellCtx, CellRun, GridSpec};
use crate::io::Value;
use crate::metrics::{Figure, MeanStd, Point, Series};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::substrate::SubstrateCache;

/// Configuration of the truthfulness profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProfileConfig {
    /// Problem sizes.
    pub scale: Scale,
    /// Replications per price factor.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
}

const FACTORS: [f64; 9] = [0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];

/// One price factor's cell: the factor plus the full ask vector with the
/// probed user's price already rescaled.
struct FactorCell {
    factor: f64,
    asks: Vec<Ask>,
}

/// Grid adapter: one replication of one price factor. The salt is the
/// factor index, preserving the pre-engine `derive_seed(seed, fi, r)`
/// stream.
struct ProfileRun<'a> {
    rit: &'a Rit,
    job: &'a Job,
    user: usize,
    cost: f64,
}

impl CellRun for ProfileRun<'_> {
    type Cell = FactorCell;
    type Workspace = ();
    type Record = (f64, f64);

    fn workspace(&self) {}

    fn salt(&self, cell_index: usize, _cell: &FactorCell) -> u64 {
        cell_index as u64
    }

    fn run(&self, ctx: &CellCtx<'_, FactorCell>, (): &mut ()) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(ctx.seed);
        // Auction-phase utility only: the solicitation term is additive
        // and independent of the user's own ask (Lemma 6.3's argument),
        // so including it would only add variance to the curve.
        let phase = self
            .rit
            .run_auction_phase(self.job, &ctx.cell.asks, &mut rng)
            .expect("aligned");
        let won = phase.allocation[self.user];
        (
            phase.auction_payments[self.user] - won as f64 * self.cost,
            won as f64,
        )
    }

    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        Some(&["utility", "won"])
    }

    fn encode_record(&self, record: &(f64, f64)) -> Vec<Value> {
        vec![Value::F64(record.0), Value::F64(record.1)]
    }

    fn decode_record(&self, fields: &[Value]) -> Option<(f64, f64)> {
        match fields {
            [Value::F64(utility), Value::F64(won)] => Some((*utility, *won)),
            _ => None,
        }
    }
}

/// Runs the profile: expected utility (and win count) vs price factor.
#[must_use]
pub fn run(config: &ProfileConfig) -> Figure {
    let (n, m_i) = match config.scale {
        Scale::Smoke => (1_000, 100),
        Scale::Default | Scale::Paper => (8_000, 500),
    };
    let mut scen_config = ScenarioConfig::paper(n);
    scen_config.workload.num_types = 4;
    let scenario = Scenario::generate(&scen_config, config.seed);
    let job = Job::uniform(4, m_i).expect("positive types");
    let rit = paper_mechanism(RoundLimit::until_stall());

    // A *marginal* user: it wins when truthful, but its cost sits high
    // enough that reporting matters — infra-marginal users (cost far below
    // the clearing region) have flat profiles because their price never
    // binds.
    let mut probe_rng = SmallRng::seed_from_u64(config.seed ^ 0xBEEF);
    let phase = rit
        .run_auction_phase(&job, &scenario.asks, &mut probe_rng)
        .expect("best-effort");
    // Estimate the market's clearing level from the probe run, then pick a
    // winner whose cost sits just below it — the price-sensitive band.
    let allocated: u64 = phase.allocation.iter().sum();
    let clearing = phase.auction_payments.iter().sum::<f64>() / allocated.max(1) as f64;
    let user = (0..n)
        .find(|&j| {
            phase.auction_payments[j] > 0.0
                && scenario.asks[j].quantity() >= 3
                && scenario.asks[j].unit_price() > 0.55 * clearing
                && scenario.asks[j].unit_price() < 0.95 * clearing
        })
        .or_else(|| (0..n).find(|&j| phase.auction_payments[j] > 0.0))
        .expect("a winner exists");
    let cost = scenario.population[user].unit_cost();

    let cells: Vec<FactorCell> = FACTORS
        .iter()
        .map(|&factor| {
            let mut asks = scenario.asks.clone();
            asks[user] = asks[user]
                .with_unit_price(cost * factor)
                .expect("positive factor");
            FactorCell { factor, asks }
        })
        .collect();
    let spec = GridSpec::new("truthfulness_profile", config.runs, config.seed)
        .with_axis("price factor", cells.len());
    let rows = run_grid(
        &spec,
        &cells,
        &ProfileRun {
            rit: &rit,
            job: &job,
            user,
            cost,
        },
        &SubstrateCache::passthrough(),
    );

    let mut utility_points = Vec::with_capacity(FACTORS.len());
    let mut allocation_points = Vec::with_capacity(FACTORS.len());
    for (cell, samples) in cells.iter().zip(rows) {
        let mut utility = MeanStd::new();
        let mut allocation = MeanStd::new();
        for (u, x) in samples {
            utility.push(u);
            allocation.push(x);
        }
        utility_points.push(Point {
            x: cell.factor,
            y: utility.mean(),
            y_std: utility.std_dev(),
        });
        allocation_points.push(Point {
            x: cell.factor,
            y: allocation.mean(),
            y_std: allocation.std_dev(),
        });
    }

    Figure {
        id: "truthfulness_profile",
        title: format!(
            "expected auction utility vs reported price (user {user}, true cost {cost:.2})"
        ),
        x_label: "reported price / true cost",
        y_label: "expected utility / expected tasks",
        series: vec![
            Series {
                name: "expected utility".into(),
                points: utility_points,
            },
            Series {
                name: "expected tasks won".into(),
                points: allocation_points,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_point_is_near_the_peak_and_wins_decline_with_price() {
        let fig = run(&ProfileConfig {
            scale: Scale::Smoke,
            runs: 24,
            seed: 9,
        });
        let utility = &fig.series[0].points;
        let tasks = &fig.series[1].points;
        let runs = 24.0f64;

        // No misreport beats truthful by a clear margin.
        let truthful = utility.iter().find(|p| p.x == 1.0).unwrap();
        for p in utility {
            let se = ((p.y_std.powi(2) + truthful.y_std.powi(2)) / runs).sqrt();
            assert!(
                p.y <= truthful.y + 3.0 * se.max(0.05),
                "factor {} beats truthful: {:.3} vs {:.3}",
                p.x,
                p.y,
                truthful.y
            );
        }
        // Expected wins are weakly decreasing in the reported price.
        let first = tasks.first().unwrap().y;
        let last = tasks.last().unwrap().y;
        assert!(
            first >= last - 0.2,
            "tasks won should not rise with price: {first:.2} → {last:.2}"
        );
    }
}
