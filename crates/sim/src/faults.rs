//! Deterministic fault injection for the experiment grid engine.
//!
//! Crash-safety code is only trustworthy if its failure paths actually
//! run, so this module lets tests and CI inject faults at exact, seeded
//! grid coordinates instead of hoping for real crashes. A [`FaultPlan`]
//! names grid items by cell index (optionally scoped to one grid) and an
//! action — panic, delay, or hard process exit — and the engine consults
//! it once per item attempt, right before the adapter runs. With no plan
//! installed the check is a single relaxed atomic load, so production
//! runs pay nothing.
//!
//! Plans are threadable through the environment ([`FAULTS_ENV`],
//! `RIT_FAULTS`) with a compact grammar, one directive per fault:
//!
//! ```text
//! RIT_FAULTS = directive[,directive ...]
//! directive  = kind '@' [grid '/'] cell [':' arg]
//! kind       = 'panic' | 'delay' | 'exit'
//! arg        = 'once'   (panic: first attempt only, retries succeed)
//!            | MILLIS   (delay: sleep that many ms, default 50)
//! ```
//!
//! Examples: `panic@3` (every attempt of cell 3, any grid),
//! `panic@users/1:once` (first attempt of cell 1 of the `users` grid),
//! `exit@tasks/0` (kill the process when the `tasks` grid reaches cell 0 —
//! the CI mid-run kill), `delay@2:250` (stretch cell 2 by 250 ms).
//!
//! Faults are deterministic by construction: they key on grid name and
//! cell index, which the engine derives from the spec alone — never from
//! scheduling. [`FaultPlan::seeded_panics`] additionally derives a
//! reproducible cell subset from a seed for property tests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use crate::runner::derive_seed;

/// Environment variable holding a fault plan for the `experiments`
/// binary (same grammar as [`FaultPlan::parse`]).
pub const FAULTS_ENV: &str = "RIT_FAULTS";

/// What an injected fault does when its coordinates match.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a recognizable message. With `once`, only the item's
    /// first attempt panics — the retry path's happy case.
    Panic {
        /// Panic only on attempt 0 (retries then succeed).
        once: bool,
    },
    /// Sleep before running the item — a straggler, not a failure.
    Delay(Duration),
    /// Terminate the process immediately (exit code 3) — simulates
    /// preemption/OOM-kill for checkpoint-resume tests.
    Exit,
}

/// One fault directive: an action pinned to a cell index, optionally
/// scoped to a single grid by name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Grid name this fault applies to; `None` matches every grid.
    pub grid: Option<String>,
    /// Target cell index within the grid.
    pub cell: usize,
    /// What happens when the cell is reached.
    pub action: FaultAction,
}

/// A deterministic set of injected faults, consulted by the grid engine
/// once per item attempt.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The directives, checked in order; the first match wins.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses the `RIT_FAULTS` grammar (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the malformed directive.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut faults = Vec::new();
        for raw in text.split(',') {
            let directive = raw.trim();
            if directive.is_empty() {
                continue;
            }
            let (kind, target) = directive
                .split_once('@')
                .ok_or_else(|| format!("fault '{directive}': expected KIND@CELL"))?;
            let (place, arg) = match target.split_once(':') {
                Some((place, arg)) => (place, Some(arg)),
                None => (target, None),
            };
            let (grid, cell_text) = match place.split_once('/') {
                Some((grid, cell)) => (Some(grid.to_string()), cell),
                None => (None, place),
            };
            let cell: usize = cell_text
                .parse()
                .map_err(|_| format!("fault '{directive}': bad cell index '{cell_text}'"))?;
            let action = match kind {
                "panic" => match arg {
                    None => FaultAction::Panic { once: false },
                    Some("once") => FaultAction::Panic { once: true },
                    Some(other) => {
                        return Err(format!("fault '{directive}': bad panic arg '{other}'"))
                    }
                },
                "delay" => {
                    let ms: u64 = match arg {
                        None => 50,
                        Some(ms) => ms
                            .parse()
                            .map_err(|_| format!("fault '{directive}': bad delay millis '{ms}'"))?,
                    };
                    FaultAction::Delay(Duration::from_millis(ms))
                }
                "exit" => {
                    if let Some(other) = arg {
                        return Err(format!(
                            "fault '{directive}': exit takes no arg, got '{other}'"
                        ));
                    }
                    FaultAction::Exit
                }
                other => return Err(format!("fault '{directive}': unknown kind '{other}'")),
            };
            faults.push(Fault { grid, cell, action });
        }
        Ok(Self { faults })
    }

    /// A seeded plan panicking (once each) on `count` distinct cells of
    /// `total_cells`, drawn reproducibly from `seed` — the property-test
    /// constructor.
    #[must_use]
    pub fn seeded_panics(seed: u64, count: usize, total_cells: usize) -> Self {
        let mut faults = Vec::new();
        let mut picked = vec![false; total_cells];
        let mut draw = 0u64;
        while faults.len() < count.min(total_cells) {
            let cell = (derive_seed(seed, 0xFA17, draw) % total_cells.max(1) as u64) as usize;
            draw += 1;
            if !picked[cell] {
                picked[cell] = true;
                faults.push(Fault {
                    grid: None,
                    cell,
                    action: FaultAction::Panic { once: true },
                });
            }
        }
        Self { faults }
    }

    /// The action (if any) for an attempt at `(grid, cell)`. `once`
    /// panics only fire on attempt 0.
    #[must_use]
    pub fn action(&self, grid: &str, cell: usize, attempt: usize) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|f| f.cell == cell && f.grid.as_deref().is_none_or(|g| g == grid))
            .map(|f| f.action)
            .filter(|a| !matches!(a, FaultAction::Panic { once: true } if attempt > 0))
    }
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<FaultPlan>> = Mutex::new(None);

/// Installs (or, with `None`, clears) the process-global fault plan
/// consulted by every subsequent grid item.
pub fn set_fault_plan(plan: Option<FaultPlan>) {
    let mut slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
    ACTIVE.store(plan.is_some(), Ordering::Relaxed);
    *slot = plan;
}

/// Installs a fault plan from [`FAULTS_ENV`] if the variable is set and
/// non-empty. Returns whether a plan was installed.
///
/// # Errors
///
/// Propagates [`FaultPlan::parse`] errors (the variable's value is left
/// uninstalled).
pub fn install_from_env() -> Result<bool, String> {
    match std::env::var(FAULTS_ENV) {
        Ok(text) if !text.trim().is_empty() => {
            let plan = FaultPlan::parse(&text)?;
            set_fault_plan(Some(plan));
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Applies any installed fault matching this item attempt: sleeps for
/// delays, panics for panics, exits the process for exits. Called by the
/// grid engine inside its `catch_unwind` envelope; a single relaxed load
/// when no plan is installed.
pub(crate) fn apply(grid: &str, cell: usize, attempt: usize) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let action = {
        let slot = PLAN.lock().unwrap_or_else(PoisonError::into_inner);
        slot.as_ref().and_then(|p| p.action(grid, cell, attempt))
    };
    match action {
        None => {}
        Some(FaultAction::Delay(dur)) => std::thread::sleep(dur),
        Some(FaultAction::Panic { .. }) => {
            panic!("injected fault: panic at grid '{grid}' cell {cell} (attempt {attempt})")
        }
        Some(FaultAction::Exit) => {
            eprintln!("injected fault: exiting at grid '{grid}' cell {cell}");
            std::process::exit(3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_directive_kind() {
        let plan =
            FaultPlan::parse("panic@3, panic@users/1:once, delay@2:250, exit@tasks/0").unwrap();
        assert_eq!(plan.faults.len(), 4);
        assert_eq!(
            plan.faults[0],
            Fault {
                grid: None,
                cell: 3,
                action: FaultAction::Panic { once: false }
            }
        );
        assert_eq!(
            plan.faults[1],
            Fault {
                grid: Some("users".into()),
                cell: 1,
                action: FaultAction::Panic { once: true }
            }
        );
        assert_eq!(
            plan.faults[2],
            Fault {
                grid: None,
                cell: 2,
                action: FaultAction::Delay(Duration::from_millis(250))
            }
        );
        assert_eq!(
            plan.faults[3],
            Fault {
                grid: Some("tasks".into()),
                cell: 0,
                action: FaultAction::Exit
            }
        );
    }

    #[test]
    fn empty_and_blank_directives_are_ignored() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" , ,").unwrap(), FaultPlan::default());
    }

    #[test]
    fn malformed_directives_name_the_problem() {
        for (text, needle) in [
            ("panic", "expected KIND@CELL"),
            ("panic@x", "bad cell index"),
            ("panic@1:twice", "bad panic arg"),
            ("delay@1:soon", "bad delay millis"),
            ("exit@1:now", "exit takes no arg"),
            ("explode@1", "unknown kind"),
        ] {
            let err = FaultPlan::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn grid_scoping_and_once_semantics() {
        let plan = FaultPlan::parse("panic@users/1:once,delay@9").unwrap();
        assert_eq!(
            plan.action("users", 1, 0),
            Some(FaultAction::Panic { once: true })
        );
        assert_eq!(plan.action("users", 1, 1), None, "once: retry succeeds");
        assert_eq!(plan.action("tasks", 1, 0), None, "scoped to users");
        assert_eq!(
            plan.action("anything", 9, 5),
            Some(FaultAction::Delay(Duration::from_millis(50)))
        );
    }

    #[test]
    fn seeded_panics_are_reproducible_and_distinct() {
        let a = FaultPlan::seeded_panics(7, 3, 10);
        let b = FaultPlan::seeded_panics(7, 3, 10);
        assert_eq!(a, b);
        let mut cells: Vec<usize> = a.faults.iter().map(|f| f.cell).collect();
        assert_eq!(cells.len(), 3);
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), 3, "cells are distinct");
        assert!(cells.iter().all(|&c| c < 10));
        // Requesting more faults than cells saturates instead of looping.
        assert_eq!(FaultPlan::seeded_panics(1, 99, 4).faults.len(), 4);
    }
}
