//! The declarative experiment grid engine.
//!
//! Every experiment in this crate has the same shape: a parameter grid of
//! *cells*, each averaged over `R` seeded *replications*. Before this
//! module each experiment hand-rolled that loop — enumerate points, derive
//! seeds, fan each point out with
//! [`parallel_map`](crate::runner::parallel_map), fold — which put a
//! synchronization barrier between grid points: a straggler replication at
//! one point idled every other worker until the point finished.
//!
//! The engine inverts that. A [`GridSpec`] declares the grid (named axes,
//! replication count, master seed, [`SubstrateMode`]); a [`CellRun`]
//! adapter maps one resolved cell + derived seed to a metrics record; and
//! [`run_grid`] flattens the *entire* `cells × replications` product into
//! one global work queue drained by `RIT_THREADS` workers. Workers reuse a
//! per-worker workspace across everything they claim and share one
//! [`SubstrateCache`], so there is no barrier anywhere between the first
//! and last item of a grid.
//!
//! # Determinism contract
//!
//! Scheduling never leaks into results:
//!
//! - the seed of item `(cell, replication)` is
//!   `derive_seed(master_seed, salt(cell), replication)` — a pure function
//!   of the spec and the adapter, independent of which worker runs it or
//!   when;
//! - records are scattered into their `(cell, replication)` slot and
//!   handed back in grid order, whatever order the queue was drained in;
//! - workspaces carry *capacity, not results*: an adapter's
//!   [`run`](CellRun::run) must produce the same record for an item
//!   regardless of the workspace's history (the
//!   replication-order proptests pin this).
//!
//! Consequently the output is bit-identical at any thread count and any
//! claim order — the same contract the per-point `parallel_map` loops
//! provided, now with one queue instead of one barrier per point.
//!
//! # Telemetry
//!
//! When a global [`rit_telemetry`] instance is installed the engine emits
//! per-cell spans: a `grid.cells` completed counter, a `grid.cell_micros`
//! wall-time histogram (first item claimed → last item finished), and a
//! `grid.straggler_micros` gauge tracking the slowest cell so far — plus a
//! `grid.cell` span (histogram + JSONL `span` event) per completed cell,
//! which the Chrome-trace exporter renders as one slice per cell. Worker
//! items continue to feed the `worker.*` metrics exactly as
//! `parallel_map` does, and each item is additionally a `worker.item`
//! span. With progress enabled, completion lines carry cells/s and an ETA
//! derived from completed-cell wall time (stderr only; `eta --` until the
//! first cell lands over measurable wall time).
//!
//! # Failure model
//!
//! One panicking item must not abort a million-item grid. Every
//! [`CellRun::run`] executes inside `catch_unwind`: a panic is caught,
//! the worker's workspace is rebuilt (a panic may have left it in an
//! arbitrary intermediate state), and the item is retried up to
//! [`set_max_retries`] times. An item that keeps panicking is
//! *quarantined* — recorded as a [`CellFailure`] (grid, cell index, axis
//! coordinates, panic message, retry count) and excluded from the cell's
//! records — while the queue keeps draining. Failures are drained with
//! [`take_failures`], counted (`grid.cell_failures` / `grid.cell_retries`)
//! and streamed as `cell_failure` events; a cell with quarantined items
//! closes its `grid.cell` span with status `"failed"`. Under
//! [`set_fail_fast`] the first quarantine instead stops the queue and
//! re-raises with the original payload's message and the cell's axes.
//! Panics *outside* items (worker machinery) always propagate, payload
//! preserved. When a [`crate::checkpoint`] is active, checkpointable
//! adapters (see [`CellRun::checkpoint_columns`]) persist each completed
//! item as it lands and restore completed items on resume instead of
//! re-running them; [`crate::faults`] can inject deterministic
//! panics/delays/exits to exercise all of the above.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use rit_telemetry::{span::trace_now_us, JsonObject, SpanKind, Telemetry};

use crate::io::Value;
use crate::runner::{default_threads, derive_seed, timed_item};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::substrate::{SubstrateCache, SubstrateMode};
use crate::{checkpoint, faults};

/// A named grid dimension — purely descriptive (progress lines, manifest
/// text); the engine only checks that the axis lengths multiply out to the
/// number of resolved cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Axis {
    /// Human-readable dimension name (`"num_users"`, `"ask_value"`, …).
    pub name: &'static str,
    /// Number of distinct values along this dimension.
    pub len: usize,
}

/// Declarative description of one experiment grid: what varies (named
/// axes), how often each cell repeats, and which seed/substrate policy the
/// replications draw from.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Grid name, used in progress lines and telemetry.
    pub name: &'static str,
    /// Replications per cell. Every cell runs exactly this many times.
    pub replications: usize,
    /// Master seed; item seeds derive from it via
    /// `derive_seed(master_seed, salt, replication)`.
    pub master_seed: u64,
    /// How replications source their scenario substrate (fresh per
    /// replication, or rotating over a cached pool).
    pub substrate: SubstrateMode,
    /// Declared dimensions. Empty means "unspecified"; non-empty lengths
    /// must multiply out to the cell count handed to [`run_grid`].
    pub axes: Vec<Axis>,
}

impl GridSpec {
    /// A spec with per-replication substrates and no declared axes.
    #[must_use]
    pub fn new(name: &'static str, replications: usize, master_seed: u64) -> Self {
        Self {
            name,
            replications,
            master_seed,
            substrate: SubstrateMode::PerReplication,
            axes: Vec::new(),
        }
    }

    /// Sets the substrate mode (builder style).
    #[must_use]
    pub fn with_substrate(mut self, substrate: SubstrateMode) -> Self {
        self.substrate = substrate;
        self
    }

    /// Declares a named axis of `len` values (builder style).
    #[must_use]
    pub fn with_axis(mut self, name: &'static str, len: usize) -> Self {
        self.axes.push(Axis { name, len });
        self
    }

    /// The cell count implied by the declared axes, or `None` when no axes
    /// were declared.
    #[must_use]
    pub fn declared_cells(&self) -> Option<usize> {
        if self.axes.is_empty() {
            None
        } else {
            Some(self.axes.iter().map(|a| a.len).product())
        }
    }
}

/// Everything the engine resolves for one work item, handed to
/// [`CellRun::run`].
#[derive(Debug)]
pub struct CellCtx<'a, C> {
    /// The resolved cell configuration.
    pub cell: &'a C,
    /// Index of the cell in the grid's cell list.
    pub cell_index: usize,
    /// Replication index within the cell, `0..spec.replications`.
    pub replication: usize,
    /// The item's derived seed:
    /// `derive_seed(master_seed, salt(cell), replication)`.
    pub seed: u64,
    spec: &'a GridSpec,
    cache: &'a SubstrateCache,
}

impl<C> CellCtx<'_, C> {
    /// The grid's master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.spec.master_seed
    }

    /// The grid's substrate mode.
    #[must_use]
    pub fn substrate_mode(&self) -> SubstrateMode {
        self.spec.substrate
    }

    /// The shared substrate cache.
    #[must_use]
    pub fn cache(&self) -> &SubstrateCache {
        self.cache
    }

    /// The item's scenario substrate under the grid's [`SubstrateMode`],
    /// preserving the seed scheme the experiments have always used:
    ///
    /// - **per-replication**: a fresh
    ///   `Scenario::generate(config, seed ^ fresh_salt)` — the xor
    ///   decorrelates the substrate stream from the mechanism stream that
    ///   consumes [`seed`](Self::seed) directly;
    /// - **rotating(k)**: substrate slot `replication % k`, served from the
    ///   shared cache under
    ///   `derive_seed(master_seed, rotating_stream, slot)` — one
    ///   generation per slot for the whole grid.
    ///
    /// `fresh_salt` and `rotating_stream` are per-experiment constants so
    /// distinct experiments never collide on a substrate seed.
    ///
    /// # Panics
    ///
    /// Propagates [`Scenario::generate`] panics (invalid configuration).
    #[must_use]
    pub fn scenario(
        &self,
        config: &ScenarioConfig,
        fresh_salt: u64,
        rotating_stream: u64,
    ) -> Arc<Scenario> {
        match self.spec.substrate.slot(self.replication) {
            None => Arc::new(Scenario::generate(config, self.seed ^ fresh_salt)),
            Some(slot) => self.cache.scenario(
                config,
                derive_seed(self.spec.master_seed, rotating_stream, slot as u64),
            ),
        }
    }
}

/// One experiment's cell executor: resolved cell + derived seed +
/// per-worker workspace → metrics record. Monomorphized per experiment —
/// no dynamic dispatch on the hot path.
pub trait CellRun: Sync {
    /// Resolved cell configuration (one grid point).
    type Cell: Sync;
    /// Per-worker scratch state, created once per worker thread and reused
    /// across every item the worker claims. Must carry capacity, not
    /// results — see the module-level determinism contract.
    type Workspace;
    /// The metrics record one `(cell, replication)` item produces.
    type Record: Send;

    /// Creates one worker's workspace (called once per worker thread).
    fn workspace(&self) -> Self::Workspace;

    /// The seed salt of a cell: item seeds are
    /// `derive_seed(master_seed, salt, replication)`. Ported experiments
    /// return exactly the point index their pre-engine loop used, keeping
    /// every output bit-identical.
    fn salt(&self, cell_index: usize, cell: &Self::Cell) -> u64;

    /// Executes one `(cell, replication)` item. Must be deterministic in
    /// `ctx` alone (not workspace history, not scheduling).
    fn run(&self, ctx: &CellCtx<'_, Self::Cell>, workspace: &mut Self::Workspace) -> Self::Record;

    /// Column names of this adapter's checkpoint encoding, or `None` (the
    /// default) when its records cannot be checkpointed. Checkpointable
    /// adapters persist every completed item through the active
    /// [`crate::checkpoint`] file as it lands, and skip items restored
    /// from it on resume.
    fn checkpoint_columns(&self) -> Option<&'static [&'static str]> {
        None
    }

    /// Encodes one record as checkpoint fields, in
    /// [`checkpoint_columns`](CellRun::checkpoint_columns) order. Called
    /// only when `checkpoint_columns` returns `Some`.
    fn encode_record(&self, _record: &Self::Record) -> Vec<Value> {
        Vec::new()
    }

    /// Decodes checkpoint fields back into a record. `None` on any shape
    /// mismatch — the item is then re-run instead of restored. Must be the
    /// exact inverse of [`encode_record`](CellRun::encode_record) (up to
    /// the JSONL round trip, which is bit-exact for finite floats and
    /// `NaN`) or resumed outputs will not be byte-identical.
    fn decode_record(&self, _fields: &[Value]) -> Option<Self::Record> {
        None
    }
}

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Enables (or disables) per-cell progress lines on stderr for every
/// subsequent grid run in this process. Off by default; the `experiments`
/// binary switches it on. Progress is stderr-only and never affects
/// results.
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Default bound on re-runs of a panicking item before it is quarantined.
pub const DEFAULT_MAX_RETRIES: usize = 1;

static FAIL_FAST: AtomicBool = AtomicBool::new(false);
static MAX_RETRIES: AtomicUsize = AtomicUsize::new(DEFAULT_MAX_RETRIES);
static FAILURES: Mutex<Vec<CellFailure>> = Mutex::new(Vec::new());

/// Makes every subsequent grid run in this process stop claiming items on
/// the first quarantined failure and re-raise it (original panic message
/// and cell axes included) instead of completing the remaining cells. Off
/// by default; the `experiments` binary switches it on under
/// `--fail-fast`.
pub fn set_fail_fast(enabled: bool) {
    FAIL_FAST.store(enabled, Ordering::Relaxed);
}

fn fail_fast_enabled() -> bool {
    FAIL_FAST.load(Ordering::Relaxed)
}

/// Sets how many times a panicking item is re-run before quarantine
/// (default [`DEFAULT_MAX_RETRIES`]). Zero quarantines on the first
/// panic.
pub fn set_max_retries(retries: usize) {
    MAX_RETRIES.store(retries, Ordering::Relaxed);
}

fn max_retries() -> usize {
    MAX_RETRIES.load(Ordering::Relaxed)
}

/// One quarantined grid item: an item that panicked through all of its
/// retries and was excluded from its cell's records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// Name of the grid the item belonged to.
    pub grid: String,
    /// Flat cell index within the grid's cell list.
    pub cell_index: usize,
    /// Replication index within the cell.
    pub replication: usize,
    /// The cell's coordinates along the spec's declared axes (name,
    /// value index), first axis slowest — `[("cell", index)]` when the
    /// spec declared none.
    pub axes: Vec<(String, usize)>,
    /// The captured panic message (`"non-string panic payload"` when the
    /// payload was neither `&str` nor `String`).
    pub message: String,
    /// How many re-runs were attempted before quarantine.
    pub retries: usize,
}

impl CellFailure {
    /// The axis coordinates as a compact `"name=i, name=j"` label.
    #[must_use]
    pub fn axes_label(&self) -> String {
        let mut out = String::new();
        for (i, (name, coord)) in self.axes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(name);
            out.push('=');
            out.push_str(&coord.to_string());
        }
        out
    }
}

impl fmt::Display for CellFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "grid '{}' cell {} ({}) replication {}: {} (after {} retr{})",
            self.grid,
            self.cell_index,
            self.axes_label(),
            self.replication,
            self.message,
            self.retries,
            if self.retries == 1 { "y" } else { "ies" },
        )
    }
}

/// Drains every failure quarantined since the last call, in the order
/// they were quarantined. The `experiments` binary prints these as its
/// end-of-run summary.
#[must_use]
pub fn take_failures() -> Vec<CellFailure> {
    std::mem::take(&mut *FAILURES.lock().unwrap_or_else(PoisonError::into_inner))
}

fn push_failure(failure: CellFailure) {
    FAILURES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(failure);
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Decomposes a flat cell index into per-axis coordinates (first declared
/// axis slowest, matching the row-major cell layout every ported
/// experiment uses). Falls back to a `("cell", index)` pseudo-axis when
/// the spec declares no axes.
fn cell_axes(spec: &GridSpec, cell_index: usize) -> Vec<(String, usize)> {
    if spec.axes.is_empty() {
        return vec![("cell".to_string(), cell_index)];
    }
    let mut coords = vec![0usize; spec.axes.len()];
    let mut rem = cell_index;
    for (k, axis) in spec.axes.iter().enumerate().rev() {
        let len = axis.len.max(1);
        coords[k] = rem % len;
        rem /= len;
    }
    spec.axes
        .iter()
        .zip(coords)
        .map(|(axis, coord)| (axis.name.to_string(), coord))
        .collect()
}

/// Runs the full `cells × replications` grid on the default worker count
/// (the `RIT_THREADS` override, else available parallelism) and returns
/// records grouped per cell, replications in order.
///
/// # Panics
///
/// Panics when the spec declares axes whose lengths do not multiply out to
/// `cells.len()`, or when a worker thread panics.
pub fn run_grid<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
) -> Vec<Vec<R::Record>> {
    run_grid_with_threads(spec, cells, runner, cache, default_threads())
}

/// [`run_grid`] with an explicit worker-thread count (clamped to
/// `[1, cells × replications]`).
///
/// # Panics
///
/// Same conditions as [`run_grid`].
pub fn run_grid_with_threads<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
    threads: usize,
) -> Vec<Vec<R::Record>> {
    check_axes(spec, cells.len());
    let reps = spec.replications;
    let total = cells.len() * reps;
    if total == 0 {
        return cells.iter().map(|_| Vec::new()).collect();
    }
    let threads = threads.max(1).min(total);
    let telemetry = rit_telemetry::active();
    if let Some(t) = telemetry {
        t.set_gauge(t.metrics().worker_threads, threads as f64);
    }
    let spans = CellSpans::new(spec.name, cells.len(), reps, telemetry);

    if threads <= 1 {
        let mut state = runner.workspace();
        let mut flat: Vec<Option<R::Record>> = Vec::with_capacity(total);
        for i in 0..total {
            if spans.aborted() {
                break;
            }
            flat.push(run_item(
                spec, cells, runner, cache, &spans, telemetry, &mut state, i,
            ));
        }
        spans.raise_fatal();
        flat.resize_with(total, || None);
        return collect_rows(flat, cells.len(), reps);
    }

    let next = AtomicUsize::new(0);
    // Worker-machinery panics (never item panics — those are caught in
    // `run_item`) propagate with their original payload instead of the
    // old static "grid worker panicked" string.
    let batches: Vec<Vec<(usize, R::Record)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut state = runner.workspace();
                    let mut batch: Vec<(usize, R::Record)> = Vec::new();
                    loop {
                        if spans.aborted() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        if let Some(record) =
                            run_item(spec, cells, runner, cache, &spans, telemetry, &mut state, i)
                        {
                            batch.push((i, record));
                        }
                    }
                    batch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    })
    .unwrap_or_else(|payload| resume_unwind(payload));
    spans.raise_fatal();

    // Single merge pass: scatter each batch into its slot by flat index.
    // Quarantined (and, under fail-fast, never-claimed) items leave their
    // slot empty.
    let mut slots: Vec<Option<R::Record>> = (0..total).map(|_| None).collect();
    for (i, value) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "item {i} claimed twice");
        slots[i] = Some(value);
    }
    collect_rows(slots, cells.len(), reps)
}

/// Processes the grid's items sequentially in an arbitrary claim order —
/// the schedule-independence test hook. `order` must be a permutation of
/// `0..cells.len() × replications`; one workspace is threaded through the
/// whole permutation (the worst case for workspace-history dependence).
/// Results come back in grid order, exactly like [`run_grid`].
///
/// # Panics
///
/// Panics when `order` is not a permutation of the grid's flat item
/// indices, or when the spec's axes disagree with `cells.len()`.
#[doc(hidden)]
pub fn run_grid_in_order<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
    order: &[usize],
) -> Vec<Vec<R::Record>> {
    check_axes(spec, cells.len());
    let reps = spec.replications;
    let total = cells.len() * reps;
    assert_eq!(order.len(), total, "order must cover every item");
    let telemetry = rit_telemetry::active();
    let spans = CellSpans::new(spec.name, cells.len(), reps, telemetry);
    let mut state = runner.workspace();
    let mut slots: Vec<Option<R::Record>> = (0..total).map(|_| None).collect();
    let mut claimed = vec![false; total];
    for &i in order {
        if spans.aborted() {
            break;
        }
        assert!(!claimed[i], "item {i} claimed twice");
        claimed[i] = true;
        slots[i] = run_item(spec, cells, runner, cache, &spans, telemetry, &mut state, i);
    }
    spans.raise_fatal();
    assert!(
        claimed.iter().all(|&c| c),
        "order must be a permutation of the flat item indices"
    );
    collect_rows(slots, cells.len(), reps)
}

/// Executes one flat work item: resolve the cell, derive the seed, account
/// the cell span, run the adapter — restoring from the active checkpoint
/// when possible, catching panics into retry/quarantine otherwise.
/// `None` means the item was quarantined.
#[allow(clippy::too_many_arguments)]
fn run_item<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
    spans: &CellSpans<'_>,
    telemetry: Option<&'static Telemetry>,
    state: &mut R::Workspace,
    flat: usize,
) -> Option<R::Record> {
    let reps = spec.replications;
    let cell_index = flat / reps;
    let replication = flat % reps;
    let cell = &cells[cell_index];
    let ctx = CellCtx {
        cell,
        cell_index,
        replication,
        seed: derive_seed(
            spec.master_seed,
            runner.salt(cell_index, cell),
            replication as u64,
        ),
        spec,
        cache,
    };
    let checkpointable = runner.checkpoint_columns();
    spans.item_start(cell_index);
    if checkpointable.is_some() {
        if let Some(record) = checkpoint::restore(spec.name, cell_index, replication)
            .and_then(|fields| runner.decode_record(&fields))
        {
            // Restored from a previous run: count it as done without
            // re-running (a shape mismatch falls through and re-runs).
            spans.item_end(cell_index);
            return Some(record);
        }
    }
    let mut attempt = 0;
    loop {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            faults::apply(spec.name, cell_index, attempt);
            timed_item(telemetry, || runner.run(&ctx, state))
        }));
        match outcome {
            Ok(record) => {
                if let Some(columns) = checkpointable {
                    checkpoint::append(
                        spec.name,
                        cell_index,
                        replication,
                        columns,
                        &runner.encode_record(&record),
                    );
                }
                spans.item_end(cell_index);
                return Some(record);
            }
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                // The panic may have left the workspace in an arbitrary
                // intermediate state; rebuild it before anything else runs
                // on it.
                *state = runner.workspace();
                if attempt < max_retries() {
                    attempt += 1;
                    if let Some(t) = telemetry {
                        t.add(t.metrics().grid_cell_retries, 1);
                    }
                    if progress_enabled() {
                        eprintln!(
                            "  [{}] cell {cell_index} replication {replication} panicked \
                             ({message}); retry {attempt}",
                            spec.name,
                        );
                    }
                    continue;
                }
                let failure = CellFailure {
                    grid: spec.name.to_string(),
                    cell_index,
                    replication,
                    axes: cell_axes(spec, cell_index),
                    message,
                    retries: attempt,
                };
                quarantine(spans, telemetry, failure);
                spans.item_end(cell_index);
                return None;
            }
        }
    }
}

/// Records one quarantined item everywhere it is observable: the global
/// failure sink, the telemetry counters and `cell_failure` event stream,
/// the cell's span status, the progress log, and — under fail-fast — the
/// grid's abort flag.
fn quarantine(spans: &CellSpans<'_>, telemetry: Option<&'static Telemetry>, failure: CellFailure) {
    spans.mark_failed(failure.cell_index);
    if let Some(t) = telemetry {
        t.add(t.metrics().grid_cell_failures, 1);
        if t.has_sink() {
            t.emit(
                &JsonObject::new("cell_failure")
                    .str_field("grid", &failure.grid)
                    .u64_field("cell", failure.cell_index as u64)
                    .u64_field("replication", failure.replication as u64)
                    .str_field("axes", &failure.axes_label())
                    .str_field("message", &failure.message)
                    .u64_field("retries", failure.retries as u64)
                    .finish(),
            );
        }
    }
    if progress_enabled() {
        eprintln!("  quarantined: {failure}");
    }
    if fail_fast_enabled() {
        spans.flag_fatal(&failure);
    }
    push_failure(failure);
}

fn check_axes(spec: &GridSpec, cells: usize) {
    if let Some(declared) = spec.declared_cells() {
        assert_eq!(
            declared, cells,
            "grid '{}': declared axes imply {declared} cells, got {cells}",
            spec.name
        );
    }
}

/// Groups the flat slot vector back into per-cell rows, dropping
/// quarantined (empty) slots; surviving replications keep their order.
fn collect_rows<T>(flat: Vec<Option<T>>, cells: usize, reps: usize) -> Vec<Vec<T>> {
    let mut it = flat.into_iter();
    let mut rows = Vec::with_capacity(cells);
    for _ in 0..cells {
        rows.push(it.by_ref().take(reps).flatten().collect());
    }
    rows
}

/// Per-cell span accounting: each cell's wall time runs from the moment
/// its first item is claimed to the moment its last item finishes,
/// whichever workers ran them. Feeds the `grid.*` telemetry metrics and
/// the optional progress line; results never depend on it.
struct CellSpans<'a> {
    name: &'a str,
    epoch: Instant,
    /// Nanoseconds (since `epoch`) each cell's first item started;
    /// `u64::MAX` = untouched.
    started_ns: Vec<AtomicU64>,
    /// Items still outstanding per cell.
    remaining: Vec<AtomicUsize>,
    /// Whether any of the cell's items were quarantined (closes the
    /// cell's span with status `"failed"`).
    failed: Vec<AtomicBool>,
    /// Fail-fast: stop claiming new items.
    abort: AtomicBool,
    /// The failure that triggered the abort, re-raised after the workers
    /// drain.
    fatal: Mutex<Option<CellFailure>>,
    completed_cells: AtomicUsize,
    total_cells: usize,
    straggler_ns: AtomicU64,
    telemetry: Option<&'static Telemetry>,
}

impl<'a> CellSpans<'a> {
    fn new(
        name: &'a str,
        cells: usize,
        reps: usize,
        telemetry: Option<&'static Telemetry>,
    ) -> Self {
        Self {
            name,
            epoch: Instant::now(),
            started_ns: (0..cells).map(|_| AtomicU64::new(u64::MAX)).collect(),
            remaining: (0..cells).map(|_| AtomicUsize::new(reps)).collect(),
            failed: (0..cells).map(|_| AtomicBool::new(false)).collect(),
            abort: AtomicBool::new(false),
            fatal: Mutex::new(None),
            completed_cells: AtomicUsize::new(0),
            total_cells: cells,
            straggler_ns: AtomicU64::new(0),
            telemetry,
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn item_start(&self, cell: usize) {
        self.started_ns[cell].fetch_min(self.now_ns(), Ordering::Relaxed);
    }

    fn mark_failed(&self, cell: usize) {
        self.failed[cell].store(true, Ordering::Relaxed);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// Arms the fail-fast abort with the triggering failure (first one
    /// wins).
    fn flag_fatal(&self, failure: &CellFailure) {
        let mut fatal = self.fatal.lock().unwrap_or_else(PoisonError::into_inner);
        if fatal.is_none() {
            *fatal = Some(failure.clone());
        }
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Re-raises the armed fail-fast failure, if any — called once after
    /// the workers have drained so in-flight items finish cleanly first.
    fn raise_fatal(&self) {
        let fatal = self
            .fatal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(failure) = fatal {
            panic!("grid '{}' aborted (fail-fast): {failure}", self.name);
        }
    }

    fn item_end(&self, cell: usize) {
        if self.remaining[cell].fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Last item of this cell: close the span.
        let span_ns = self
            .now_ns()
            .saturating_sub(self.started_ns[cell].load(Ordering::Relaxed));
        let slowest = self
            .straggler_ns
            .fetch_max(span_ns, Ordering::Relaxed)
            .max(span_ns);
        let done = self.completed_cells.fetch_add(1, Ordering::Relaxed) + 1;
        let failed = self.failed[cell].load(Ordering::Relaxed);
        if let Some(t) = self.telemetry {
            let m = t.metrics();
            t.add(m.grid_cells, 1);
            t.record(m.grid_cell_micros, span_ns / 1_000);
            t.set_gauge(m.grid_straggler_micros, slowest as f64 / 1_000.0);
            // The cell's first and last item may have run on different
            // workers, so the span is assembled here rather than held as an
            // RAII guard; its start is back-dated from the close.
            let dur_us = span_ns / 1_000;
            t.record_span_at_status(
                SpanKind::GridCell,
                trace_now_us().saturating_sub(dur_us),
                dur_us,
                failed.then_some("failed"),
            );
        }
        if progress_enabled() {
            // Throughput and ETA from completed-cell wall time. Stderr
            // only: scheduling-dependent numbers must never reach results.
            // Until a cell has completed over measurable wall time there
            // is no meaningful rate — print `eta --` instead of the
            // clamped absurdities the old `.max(1e-9)` produced.
            let elapsed = self.epoch.elapsed().as_secs_f64();
            if done == 0 || elapsed <= 0.0 {
                eprintln!(
                    "  [{}] {done}/{} cells ({elapsed:.1}s, eta --)",
                    self.name, self.total_cells,
                );
            } else {
                let rate = done as f64 / elapsed;
                let eta = (self.total_cells - done) as f64 / rate;
                eprintln!(
                    "  [{}] {done}/{} cells ({elapsed:.1}s, {rate:.1} cells/s, eta {eta:.0}s)",
                    self.name, self.total_cells,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy adapter whose record captures everything scheduling could
    /// leak: the resolved seed, indices, and a workspace-history counter.
    struct Probe;

    impl CellRun for Probe {
        type Cell = u64;
        type Workspace = usize;
        type Record = (usize, usize, u64);

        fn workspace(&self) -> usize {
            0
        }

        fn salt(&self, _cell_index: usize, cell: &u64) -> u64 {
            *cell
        }

        fn run(&self, ctx: &CellCtx<'_, u64>, calls: &mut usize) -> (usize, usize, u64) {
            *calls += 1; // workspace history must NOT appear in the record
            (ctx.cell_index, ctx.replication, ctx.seed)
        }
    }

    fn spec(reps: usize) -> GridSpec {
        GridSpec::new("test", reps, 42)
    }

    #[test]
    fn records_come_back_in_grid_order_with_derived_seeds() {
        let cells = [10u64, 20, 30];
        let rows = run_grid(&spec(4), &cells, &Probe, &SubstrateCache::passthrough());
        assert_eq!(rows.len(), 3);
        for (ci, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (r, &(got_ci, got_r, got_seed)) in row.iter().enumerate() {
                assert_eq!(got_ci, ci);
                assert_eq!(got_r, r);
                assert_eq!(got_seed, derive_seed(42, cells[ci], r as u64));
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let cells: Vec<u64> = (0..7).collect();
        let cache = SubstrateCache::passthrough();
        let reference = run_grid_with_threads(&spec(5), &cells, &Probe, &cache, 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                run_grid_with_threads(&spec(5), &cells, &Probe, &cache, threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn claim_order_never_changes_results() {
        let cells: Vec<u64> = (0..4).collect();
        let cache = SubstrateCache::passthrough();
        let reference = run_grid_with_threads(&spec(3), &cells, &Probe, &cache, 1);
        let total = cells.len() * 3;
        let reversed: Vec<usize> = (0..total).rev().collect();
        assert_eq!(
            run_grid_in_order(&spec(3), &cells, &Probe, &cache, &reversed),
            reference
        );
        // Interleave replications across cells (round-robin by replication).
        let mut interleaved = Vec::with_capacity(total);
        for r in 0..3 {
            for ci in 0..cells.len() {
                interleaved.push(ci * 3 + r);
            }
        }
        assert_eq!(
            run_grid_in_order(&spec(3), &cells, &Probe, &cache, &interleaved),
            reference
        );
    }

    // The satellite proptest: the global-queue schedule is
    // replication-order-independent. Random sort keys induce an arbitrary
    // permutation of the flat work queue; the records must be identical to
    // the in-order sequential schedule every time.
    proptest::proptest! {
        #[test]
        fn schedule_is_replication_order_independent(
            shuffle in proptest::collection::vec(proptest::prelude::any::<u64>(), 20),
        ) {
            let cells: Vec<u64> = (0..5).collect();
            let reps = 4; // 5 cells × 4 reps = 20 = shuffle.len()
            let total = cells.len() * reps;
            let cache = SubstrateCache::passthrough();
            let reference = run_grid_with_threads(&spec(reps), &cells, &Probe, &cache, 1);
            let mut order: Vec<usize> = (0..total).collect();
            order.sort_by_key(|&i| (shuffle[i], i));
            let rows = run_grid_in_order(&spec(reps), &cells, &Probe, &cache, &order);
            proptest::prop_assert_eq!(rows, reference);
        }
    }

    #[test]
    fn empty_grids_and_zero_replications() {
        let cache = SubstrateCache::passthrough();
        let empty: Vec<Vec<(usize, usize, u64)>> = run_grid(&spec(3), &[], &Probe, &cache);
        assert!(empty.is_empty());
        let zero_reps = run_grid(&spec(0), &[1u64, 2], &Probe, &cache);
        assert_eq!(zero_reps, vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn declared_axes_multiply_out() {
        let s = GridSpec::new("axes", 2, 1)
            .with_axis("model", 3)
            .with_axis("size", 2);
        assert_eq!(s.declared_cells(), Some(6));
        let cells: Vec<u64> = (0..6).collect();
        let rows = run_grid(&s, &cells, &Probe, &SubstrateCache::passthrough());
        assert_eq!(rows.len(), 6);
    }

    #[test]
    #[should_panic(expected = "declared axes imply")]
    fn axis_mismatch_panics() {
        let s = GridSpec::new("axes", 1, 1).with_axis("model", 3);
        let _ = run_grid(&s, &[1u64], &Probe, &SubstrateCache::passthrough());
    }

    /// Serializes tests that touch the process-global failure sink and
    /// the fail-fast knob (the sink is drained cross-test otherwise).
    static FAILURE_LOCK: Mutex<()> = Mutex::new(());

    fn failure_guard() -> std::sync::MutexGuard<'static, ()> {
        FAILURE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Panics on every attempt of every replication of one cell.
    struct PanicOn {
        cell: usize,
    }

    impl CellRun for PanicOn {
        type Cell = u64;
        type Workspace = ();
        type Record = u64;

        fn workspace(&self) {}

        fn salt(&self, _cell_index: usize, cell: &u64) -> u64 {
            *cell
        }

        fn run(&self, ctx: &CellCtx<'_, u64>, (): &mut ()) -> u64 {
            assert!(
                ctx.cell_index != self.cell,
                "boom at replication {}",
                ctx.replication
            );
            ctx.seed
        }
    }

    #[test]
    fn panicking_cell_is_quarantined_while_the_rest_complete() {
        let _guard = failure_guard();
        let _ = take_failures();
        let s = GridSpec::new("quarantine", 2, 42).with_axis("size", 3);
        let cells = [10u64, 20, 30];
        let rows = run_grid_with_threads(
            &s,
            &cells,
            &PanicOn { cell: 1 },
            &SubstrateCache::passthrough(),
            2,
        );
        // The panicking cell loses its replications; every other item
        // completes with its usual derived seed.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], Vec::<u64>::new());
        for ci in [0usize, 2] {
            let expected: Vec<u64> = (0..2).map(|r| derive_seed(42, cells[ci], r)).collect();
            assert_eq!(rows[ci], expected, "cell {ci}");
        }
        let mut failures = take_failures();
        failures.sort_by_key(|f| f.replication);
        assert_eq!(failures.len(), 2, "one failure per replication");
        for (r, f) in failures.iter().enumerate() {
            assert_eq!(f.grid, "quarantine");
            assert_eq!(f.cell_index, 1);
            assert_eq!(f.replication, r);
            assert_eq!(f.axes, vec![("size".to_string(), 1)]);
            assert_eq!(f.axes_label(), "size=1");
            assert_eq!(f.message, format!("boom at replication {r}"));
            assert_eq!(f.retries, DEFAULT_MAX_RETRIES);
        }
    }

    #[test]
    fn multi_axis_failures_carry_row_major_coordinates() {
        let _guard = failure_guard();
        let _ = take_failures();
        let s = GridSpec::new("axes2d", 1, 7)
            .with_axis("model", 2)
            .with_axis("size", 3);
        let cells: Vec<u64> = (0..6).collect();
        let rows = run_grid_with_threads(
            &s,
            &cells,
            &PanicOn { cell: 4 },
            &SubstrateCache::passthrough(),
            1,
        );
        assert_eq!(rows[4], Vec::<u64>::new());
        let failures = take_failures();
        assert_eq!(failures.len(), 1);
        // Cell 4 in a 2×3 row-major grid is (model=1, size=1).
        assert_eq!(
            failures[0].axes,
            vec![("model".to_string(), 1), ("size".to_string(), 1)]
        );
        assert_eq!(failures[0].axes_label(), "model=1, size=1");
        assert_eq!(failures[0].to_string(), format!("{}", failures[0]));
        assert!(failures[0]
            .to_string()
            .contains("cell 4 (model=1, size=1) replication 0"));
    }

    #[test]
    fn flaky_items_recover_through_the_retry_path() {
        let _guard = failure_guard();
        let _ = take_failures();

        /// Panics on the first attempt of every item, succeeds after.
        struct FlakyOnce {
            seen: Mutex<std::collections::HashSet<(usize, usize)>>,
        }

        impl CellRun for FlakyOnce {
            type Cell = u64;
            type Workspace = ();
            type Record = u64;

            fn workspace(&self) {}

            fn salt(&self, _cell_index: usize, cell: &u64) -> u64 {
                *cell
            }

            fn run(&self, ctx: &CellCtx<'_, u64>, (): &mut ()) -> u64 {
                let fresh = self
                    .seen
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert((ctx.cell_index, ctx.replication));
                assert!(!fresh, "transient failure");
                ctx.seed
            }
        }

        let cells = [1u64, 2, 3];
        let flaky = FlakyOnce {
            seen: Mutex::new(std::collections::HashSet::new()),
        };
        let rows =
            run_grid_with_threads(&spec(3), &cells, &flaky, &SubstrateCache::passthrough(), 2);
        // Every item panicked once and succeeded on its retry: full rows,
        // no quarantines.
        assert!(take_failures().is_empty());
        let reference =
            run_grid_with_threads(&spec(3), &cells, &Probe, &SubstrateCache::passthrough(), 1);
        let seeds: Vec<Vec<u64>> = reference
            .iter()
            .map(|row| row.iter().map(|&(_, _, seed)| seed).collect())
            .collect();
        assert_eq!(rows, seeds);
    }

    #[test]
    fn fail_fast_re_raises_the_original_payload_with_axes() {
        let _guard = failure_guard();
        let _ = take_failures();
        set_fail_fast(true);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_grid_with_threads(
                &GridSpec::new("fatal", 2, 42).with_axis("size", 3),
                &[10u64, 20, 30],
                &PanicOn { cell: 0 },
                &SubstrateCache::passthrough(),
                1,
            )
        }));
        set_fail_fast(false);
        let _ = take_failures();
        let message = panic_message(result.expect_err("fail-fast must re-raise").as_ref());
        assert!(
            message.contains("grid 'fatal' aborted (fail-fast)"),
            "{message}"
        );
        assert!(message.contains("cell 0 (size=0)"), "{message}");
        assert!(message.contains("boom at replication 0"), "{message}");
    }

    #[test]
    fn injected_faults_panic_and_recover_deterministically() {
        let _guard = failure_guard();
        let _ = take_failures();
        // The plan is scoped to this test's grid name so concurrently
        // running grid tests (which share the process-global plan) never
        // match it. `once` faults panic on attempt 0 only; the default
        // retry budget absorbs them, so the grid completes clean.
        let faulted = GridSpec::new("faulted", 2, 42);
        crate::faults::set_fault_plan(Some(
            crate::faults::FaultPlan::parse("panic@faulted/2:once").unwrap(),
        ));
        let cells: Vec<u64> = (0..4).collect();
        let with_faults =
            run_grid_with_threads(&faulted, &cells, &Probe, &SubstrateCache::passthrough(), 2);
        crate::faults::set_fault_plan(None);
        assert!(take_failures().is_empty(), "once-faults recover via retry");
        let reference =
            run_grid_with_threads(&faulted, &cells, &Probe, &SubstrateCache::passthrough(), 1);
        assert_eq!(with_faults, reference);

        // A persistent fault exhausts retries and quarantines the cell.
        crate::faults::set_fault_plan(Some(
            crate::faults::FaultPlan::parse("panic@faulted/2").unwrap(),
        ));
        let rows =
            run_grid_with_threads(&faulted, &cells, &Probe, &SubstrateCache::passthrough(), 2);
        crate::faults::set_fault_plan(None);
        assert_eq!(rows[2], Vec::new());
        let failures = take_failures();
        assert_eq!(failures.len(), 2);
        assert!(
            failures[0].message.contains("injected fault"),
            "{}",
            failures[0].message
        );
    }

    #[test]
    fn rotating_substrates_share_generations_across_cells() {
        use crate::scenario::ScenarioConfig;

        struct Substrates;
        impl CellRun for Substrates {
            type Cell = ();
            type Workspace = ();
            type Record = u64;
            fn workspace(&self) {}
            fn salt(&self, cell_index: usize, (): &()) -> u64 {
                cell_index as u64
            }
            fn run(&self, ctx: &CellCtx<'_, ()>, (): &mut ()) -> u64 {
                let config = ScenarioConfig::paper(60);
                // Fingerprint the substrate by its allocation: rotating
                // replications on the same slot must share one Arc.
                Arc::as_ptr(&ctx.scenario(&config, 0xABCD, 0x1234)) as u64
            }
        }

        let cache = SubstrateCache::new();
        let s = spec(6).with_substrate(SubstrateMode::Rotating(2));
        let rows = run_grid(&s, &[(), ()], &Substrates, &cache);
        // 2 slots shared across both cells: exactly 2 generations.
        assert_eq!(cache.generations(), 2);
        // Replications on the same slot see the same substrate.
        assert_eq!(rows[0][0], rows[0][2]);
        assert_eq!(rows[0][1], rows[0][3]);
        // And both cells see the same slots.
        assert_eq!(rows[0], rows[1]);

        // Per-replication mode generates fresh substrates every time.
        let fresh_cache = SubstrateCache::new();
        let _ = run_grid(&spec(3), &[(), ()], &Substrates, &fresh_cache);
        assert_eq!(
            fresh_cache.generations(),
            0,
            "fresh path bypasses the cache"
        );
    }
}
