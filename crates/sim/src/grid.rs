//! The declarative experiment grid engine.
//!
//! Every experiment in this crate has the same shape: a parameter grid of
//! *cells*, each averaged over `R` seeded *replications*. Before this
//! module each experiment hand-rolled that loop — enumerate points, derive
//! seeds, fan each point out with
//! [`parallel_map`](crate::runner::parallel_map), fold — which put a
//! synchronization barrier between grid points: a straggler replication at
//! one point idled every other worker until the point finished.
//!
//! The engine inverts that. A [`GridSpec`] declares the grid (named axes,
//! replication count, master seed, [`SubstrateMode`]); a [`CellRun`]
//! adapter maps one resolved cell + derived seed to a metrics record; and
//! [`run_grid`] flattens the *entire* `cells × replications` product into
//! one global work queue drained by `RIT_THREADS` workers. Workers reuse a
//! per-worker workspace across everything they claim and share one
//! [`SubstrateCache`], so there is no barrier anywhere between the first
//! and last item of a grid.
//!
//! # Determinism contract
//!
//! Scheduling never leaks into results:
//!
//! - the seed of item `(cell, replication)` is
//!   `derive_seed(master_seed, salt(cell), replication)` — a pure function
//!   of the spec and the adapter, independent of which worker runs it or
//!   when;
//! - records are scattered into their `(cell, replication)` slot and
//!   handed back in grid order, whatever order the queue was drained in;
//! - workspaces carry *capacity, not results*: an adapter's
//!   [`run`](CellRun::run) must produce the same record for an item
//!   regardless of the workspace's history (the
//!   replication-order proptests pin this).
//!
//! Consequently the output is bit-identical at any thread count and any
//! claim order — the same contract the per-point `parallel_map` loops
//! provided, now with one queue instead of one barrier per point.
//!
//! # Telemetry
//!
//! When a global [`rit_telemetry`] instance is installed the engine emits
//! per-cell spans: a `grid.cells` completed counter, a `grid.cell_micros`
//! wall-time histogram (first item claimed → last item finished), and a
//! `grid.straggler_micros` gauge tracking the slowest cell so far — plus a
//! `grid.cell` span (histogram + JSONL `span` event) per completed cell,
//! which the Chrome-trace exporter renders as one slice per cell. Worker
//! items continue to feed the `worker.*` metrics exactly as
//! `parallel_map` does, and each item is additionally a `worker.item`
//! span. With progress enabled, completion lines carry cells/s and an ETA
//! derived from completed-cell wall time (stderr only).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rit_telemetry::{span::trace_now_us, SpanKind, Telemetry};

use crate::runner::{default_threads, derive_seed, timed_item};
use crate::scenario::{Scenario, ScenarioConfig};
use crate::substrate::{SubstrateCache, SubstrateMode};

/// A named grid dimension — purely descriptive (progress lines, manifest
/// text); the engine only checks that the axis lengths multiply out to the
/// number of resolved cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Axis {
    /// Human-readable dimension name (`"num_users"`, `"ask_value"`, …).
    pub name: &'static str,
    /// Number of distinct values along this dimension.
    pub len: usize,
}

/// Declarative description of one experiment grid: what varies (named
/// axes), how often each cell repeats, and which seed/substrate policy the
/// replications draw from.
#[derive(Clone, Debug)]
pub struct GridSpec {
    /// Grid name, used in progress lines and telemetry.
    pub name: &'static str,
    /// Replications per cell. Every cell runs exactly this many times.
    pub replications: usize,
    /// Master seed; item seeds derive from it via
    /// `derive_seed(master_seed, salt, replication)`.
    pub master_seed: u64,
    /// How replications source their scenario substrate (fresh per
    /// replication, or rotating over a cached pool).
    pub substrate: SubstrateMode,
    /// Declared dimensions. Empty means "unspecified"; non-empty lengths
    /// must multiply out to the cell count handed to [`run_grid`].
    pub axes: Vec<Axis>,
}

impl GridSpec {
    /// A spec with per-replication substrates and no declared axes.
    #[must_use]
    pub fn new(name: &'static str, replications: usize, master_seed: u64) -> Self {
        Self {
            name,
            replications,
            master_seed,
            substrate: SubstrateMode::PerReplication,
            axes: Vec::new(),
        }
    }

    /// Sets the substrate mode (builder style).
    #[must_use]
    pub fn with_substrate(mut self, substrate: SubstrateMode) -> Self {
        self.substrate = substrate;
        self
    }

    /// Declares a named axis of `len` values (builder style).
    #[must_use]
    pub fn with_axis(mut self, name: &'static str, len: usize) -> Self {
        self.axes.push(Axis { name, len });
        self
    }

    /// The cell count implied by the declared axes, or `None` when no axes
    /// were declared.
    #[must_use]
    pub fn declared_cells(&self) -> Option<usize> {
        if self.axes.is_empty() {
            None
        } else {
            Some(self.axes.iter().map(|a| a.len).product())
        }
    }
}

/// Everything the engine resolves for one work item, handed to
/// [`CellRun::run`].
#[derive(Debug)]
pub struct CellCtx<'a, C> {
    /// The resolved cell configuration.
    pub cell: &'a C,
    /// Index of the cell in the grid's cell list.
    pub cell_index: usize,
    /// Replication index within the cell, `0..spec.replications`.
    pub replication: usize,
    /// The item's derived seed:
    /// `derive_seed(master_seed, salt(cell), replication)`.
    pub seed: u64,
    spec: &'a GridSpec,
    cache: &'a SubstrateCache,
}

impl<C> CellCtx<'_, C> {
    /// The grid's master seed.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.spec.master_seed
    }

    /// The grid's substrate mode.
    #[must_use]
    pub fn substrate_mode(&self) -> SubstrateMode {
        self.spec.substrate
    }

    /// The shared substrate cache.
    #[must_use]
    pub fn cache(&self) -> &SubstrateCache {
        self.cache
    }

    /// The item's scenario substrate under the grid's [`SubstrateMode`],
    /// preserving the seed scheme the experiments have always used:
    ///
    /// - **per-replication**: a fresh
    ///   `Scenario::generate(config, seed ^ fresh_salt)` — the xor
    ///   decorrelates the substrate stream from the mechanism stream that
    ///   consumes [`seed`](Self::seed) directly;
    /// - **rotating(k)**: substrate slot `replication % k`, served from the
    ///   shared cache under
    ///   `derive_seed(master_seed, rotating_stream, slot)` — one
    ///   generation per slot for the whole grid.
    ///
    /// `fresh_salt` and `rotating_stream` are per-experiment constants so
    /// distinct experiments never collide on a substrate seed.
    ///
    /// # Panics
    ///
    /// Propagates [`Scenario::generate`] panics (invalid configuration).
    #[must_use]
    pub fn scenario(
        &self,
        config: &ScenarioConfig,
        fresh_salt: u64,
        rotating_stream: u64,
    ) -> Arc<Scenario> {
        match self.spec.substrate.slot(self.replication) {
            None => Arc::new(Scenario::generate(config, self.seed ^ fresh_salt)),
            Some(slot) => self.cache.scenario(
                config,
                derive_seed(self.spec.master_seed, rotating_stream, slot as u64),
            ),
        }
    }
}

/// One experiment's cell executor: resolved cell + derived seed +
/// per-worker workspace → metrics record. Monomorphized per experiment —
/// no dynamic dispatch on the hot path.
pub trait CellRun: Sync {
    /// Resolved cell configuration (one grid point).
    type Cell: Sync;
    /// Per-worker scratch state, created once per worker thread and reused
    /// across every item the worker claims. Must carry capacity, not
    /// results — see the module-level determinism contract.
    type Workspace;
    /// The metrics record one `(cell, replication)` item produces.
    type Record: Send;

    /// Creates one worker's workspace (called once per worker thread).
    fn workspace(&self) -> Self::Workspace;

    /// The seed salt of a cell: item seeds are
    /// `derive_seed(master_seed, salt, replication)`. Ported experiments
    /// return exactly the point index their pre-engine loop used, keeping
    /// every output bit-identical.
    fn salt(&self, cell_index: usize, cell: &Self::Cell) -> u64;

    /// Executes one `(cell, replication)` item. Must be deterministic in
    /// `ctx` alone (not workspace history, not scheduling).
    fn run(&self, ctx: &CellCtx<'_, Self::Cell>, workspace: &mut Self::Workspace) -> Self::Record;
}

static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Enables (or disables) per-cell progress lines on stderr for every
/// subsequent grid run in this process. Off by default; the `experiments`
/// binary switches it on. Progress is stderr-only and never affects
/// results.
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Relaxed);
}

fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Runs the full `cells × replications` grid on the default worker count
/// (the `RIT_THREADS` override, else available parallelism) and returns
/// records grouped per cell, replications in order.
///
/// # Panics
///
/// Panics when the spec declares axes whose lengths do not multiply out to
/// `cells.len()`, or when a worker thread panics.
pub fn run_grid<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
) -> Vec<Vec<R::Record>> {
    run_grid_with_threads(spec, cells, runner, cache, default_threads())
}

/// [`run_grid`] with an explicit worker-thread count (clamped to
/// `[1, cells × replications]`).
///
/// # Panics
///
/// Same conditions as [`run_grid`].
pub fn run_grid_with_threads<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
    threads: usize,
) -> Vec<Vec<R::Record>> {
    check_axes(spec, cells.len());
    let reps = spec.replications;
    let total = cells.len() * reps;
    if total == 0 {
        return cells.iter().map(|_| Vec::new()).collect();
    }
    let threads = threads.max(1).min(total);
    let telemetry = rit_telemetry::active();
    if let Some(t) = telemetry {
        t.set_gauge(t.metrics().worker_threads, threads as f64);
    }
    let spans = CellSpans::new(spec.name, cells.len(), reps, telemetry);

    if threads <= 1 {
        let mut state = runner.workspace();
        let flat: Vec<R::Record> = (0..total)
            .map(|i| run_item(spec, cells, runner, cache, &spans, telemetry, &mut state, i))
            .collect();
        return collect_rows(flat, cells.len(), reps);
    }

    let next = AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, R::Record)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut state = runner.workspace();
                    let mut batch: Vec<(usize, R::Record)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let record =
                            run_item(spec, cells, runner, cache, &spans, telemetry, &mut state, i);
                        batch.push((i, record));
                    }
                    batch
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("grid worker panicked"))
            .collect()
    })
    .expect("grid worker panicked");

    // Single merge pass: scatter each batch into its slot by flat index.
    let mut slots: Vec<Option<R::Record>> = (0..total).map(|_| None).collect();
    for (i, value) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "item {i} claimed twice");
        slots[i] = Some(value);
    }
    let flat: Vec<R::Record> = slots
        .into_iter()
        .map(|v| v.expect("every item filled"))
        .collect();
    collect_rows(flat, cells.len(), reps)
}

/// Processes the grid's items sequentially in an arbitrary claim order —
/// the schedule-independence test hook. `order` must be a permutation of
/// `0..cells.len() × replications`; one workspace is threaded through the
/// whole permutation (the worst case for workspace-history dependence).
/// Results come back in grid order, exactly like [`run_grid`].
///
/// # Panics
///
/// Panics when `order` is not a permutation of the grid's flat item
/// indices, or when the spec's axes disagree with `cells.len()`.
#[doc(hidden)]
pub fn run_grid_in_order<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
    order: &[usize],
) -> Vec<Vec<R::Record>> {
    check_axes(spec, cells.len());
    let reps = spec.replications;
    let total = cells.len() * reps;
    assert_eq!(order.len(), total, "order must cover every item");
    let telemetry = rit_telemetry::active();
    let spans = CellSpans::new(spec.name, cells.len(), reps, telemetry);
    let mut state = runner.workspace();
    let mut slots: Vec<Option<R::Record>> = (0..total).map(|_| None).collect();
    for &i in order {
        let record = run_item(spec, cells, runner, cache, &spans, telemetry, &mut state, i);
        assert!(slots[i].is_none(), "item {i} claimed twice");
        slots[i] = Some(record);
    }
    let flat: Vec<R::Record> = slots
        .into_iter()
        .map(|v| v.expect("order must be a permutation"))
        .collect();
    collect_rows(flat, cells.len(), reps)
}

/// Executes one flat work item: resolve the cell, derive the seed, account
/// the cell span, run the adapter.
#[allow(clippy::too_many_arguments)]
fn run_item<R: CellRun>(
    spec: &GridSpec,
    cells: &[R::Cell],
    runner: &R,
    cache: &SubstrateCache,
    spans: &CellSpans<'_>,
    telemetry: Option<&'static Telemetry>,
    state: &mut R::Workspace,
    flat: usize,
) -> R::Record {
    let reps = spec.replications;
    let cell_index = flat / reps;
    let replication = flat % reps;
    let cell = &cells[cell_index];
    let ctx = CellCtx {
        cell,
        cell_index,
        replication,
        seed: derive_seed(
            spec.master_seed,
            runner.salt(cell_index, cell),
            replication as u64,
        ),
        spec,
        cache,
    };
    spans.item_start(cell_index);
    let record = timed_item(telemetry, || runner.run(&ctx, state));
    spans.item_end(cell_index);
    record
}

fn check_axes(spec: &GridSpec, cells: usize) {
    if let Some(declared) = spec.declared_cells() {
        assert_eq!(
            declared, cells,
            "grid '{}': declared axes imply {declared} cells, got {cells}",
            spec.name
        );
    }
}

fn collect_rows<T>(flat: Vec<T>, cells: usize, reps: usize) -> Vec<Vec<T>> {
    let mut it = flat.into_iter();
    let mut rows = Vec::with_capacity(cells);
    for _ in 0..cells {
        rows.push(it.by_ref().take(reps).collect());
    }
    rows
}

/// Per-cell span accounting: each cell's wall time runs from the moment
/// its first item is claimed to the moment its last item finishes,
/// whichever workers ran them. Feeds the `grid.*` telemetry metrics and
/// the optional progress line; results never depend on it.
struct CellSpans<'a> {
    name: &'a str,
    epoch: Instant,
    /// Nanoseconds (since `epoch`) each cell's first item started;
    /// `u64::MAX` = untouched.
    started_ns: Vec<AtomicU64>,
    /// Items still outstanding per cell.
    remaining: Vec<AtomicUsize>,
    completed_cells: AtomicUsize,
    total_cells: usize,
    straggler_ns: AtomicU64,
    telemetry: Option<&'static Telemetry>,
}

impl<'a> CellSpans<'a> {
    fn new(
        name: &'a str,
        cells: usize,
        reps: usize,
        telemetry: Option<&'static Telemetry>,
    ) -> Self {
        Self {
            name,
            epoch: Instant::now(),
            started_ns: (0..cells).map(|_| AtomicU64::new(u64::MAX)).collect(),
            remaining: (0..cells).map(|_| AtomicUsize::new(reps)).collect(),
            completed_cells: AtomicUsize::new(0),
            total_cells: cells,
            straggler_ns: AtomicU64::new(0),
            telemetry,
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn item_start(&self, cell: usize) {
        self.started_ns[cell].fetch_min(self.now_ns(), Ordering::Relaxed);
    }

    fn item_end(&self, cell: usize) {
        if self.remaining[cell].fetch_sub(1, Ordering::AcqRel) != 1 {
            return;
        }
        // Last item of this cell: close the span.
        let span_ns = self
            .now_ns()
            .saturating_sub(self.started_ns[cell].load(Ordering::Relaxed));
        let slowest = self
            .straggler_ns
            .fetch_max(span_ns, Ordering::Relaxed)
            .max(span_ns);
        let done = self.completed_cells.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(t) = self.telemetry {
            let m = t.metrics();
            t.add(m.grid_cells, 1);
            t.record(m.grid_cell_micros, span_ns / 1_000);
            t.set_gauge(m.grid_straggler_micros, slowest as f64 / 1_000.0);
            // The cell's first and last item may have run on different
            // workers, so the span is assembled here rather than held as an
            // RAII guard; its start is back-dated from the close.
            let dur_us = span_ns / 1_000;
            t.record_span_at(
                SpanKind::GridCell,
                trace_now_us().saturating_sub(dur_us),
                dur_us,
            );
        }
        if progress_enabled() {
            // Throughput and ETA from completed-cell wall time. Stderr
            // only: scheduling-dependent numbers must never reach results.
            let elapsed = self.epoch.elapsed().as_secs_f64();
            let rate = done as f64 / elapsed.max(1e-9);
            let eta = (self.total_cells - done) as f64 / rate.max(1e-9);
            eprintln!(
                "  [{}] {done}/{} cells ({elapsed:.1}s, {rate:.1} cells/s, eta {eta:.0}s)",
                self.name, self.total_cells,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy adapter whose record captures everything scheduling could
    /// leak: the resolved seed, indices, and a workspace-history counter.
    struct Probe;

    impl CellRun for Probe {
        type Cell = u64;
        type Workspace = usize;
        type Record = (usize, usize, u64);

        fn workspace(&self) -> usize {
            0
        }

        fn salt(&self, _cell_index: usize, cell: &u64) -> u64 {
            *cell
        }

        fn run(&self, ctx: &CellCtx<'_, u64>, calls: &mut usize) -> (usize, usize, u64) {
            *calls += 1; // workspace history must NOT appear in the record
            (ctx.cell_index, ctx.replication, ctx.seed)
        }
    }

    fn spec(reps: usize) -> GridSpec {
        GridSpec::new("test", reps, 42)
    }

    #[test]
    fn records_come_back_in_grid_order_with_derived_seeds() {
        let cells = [10u64, 20, 30];
        let rows = run_grid(&spec(4), &cells, &Probe, &SubstrateCache::passthrough());
        assert_eq!(rows.len(), 3);
        for (ci, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (r, &(got_ci, got_r, got_seed)) in row.iter().enumerate() {
                assert_eq!(got_ci, ci);
                assert_eq!(got_r, r);
                assert_eq!(got_seed, derive_seed(42, cells[ci], r as u64));
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results() {
        let cells: Vec<u64> = (0..7).collect();
        let cache = SubstrateCache::passthrough();
        let reference = run_grid_with_threads(&spec(5), &cells, &Probe, &cache, 1);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                run_grid_with_threads(&spec(5), &cells, &Probe, &cache, threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn claim_order_never_changes_results() {
        let cells: Vec<u64> = (0..4).collect();
        let cache = SubstrateCache::passthrough();
        let reference = run_grid_with_threads(&spec(3), &cells, &Probe, &cache, 1);
        let total = cells.len() * 3;
        let reversed: Vec<usize> = (0..total).rev().collect();
        assert_eq!(
            run_grid_in_order(&spec(3), &cells, &Probe, &cache, &reversed),
            reference
        );
        // Interleave replications across cells (round-robin by replication).
        let mut interleaved = Vec::with_capacity(total);
        for r in 0..3 {
            for ci in 0..cells.len() {
                interleaved.push(ci * 3 + r);
            }
        }
        assert_eq!(
            run_grid_in_order(&spec(3), &cells, &Probe, &cache, &interleaved),
            reference
        );
    }

    // The satellite proptest: the global-queue schedule is
    // replication-order-independent. Random sort keys induce an arbitrary
    // permutation of the flat work queue; the records must be identical to
    // the in-order sequential schedule every time.
    proptest::proptest! {
        #[test]
        fn schedule_is_replication_order_independent(
            shuffle in proptest::collection::vec(proptest::prelude::any::<u64>(), 20),
        ) {
            let cells: Vec<u64> = (0..5).collect();
            let reps = 4; // 5 cells × 4 reps = 20 = shuffle.len()
            let total = cells.len() * reps;
            let cache = SubstrateCache::passthrough();
            let reference = run_grid_with_threads(&spec(reps), &cells, &Probe, &cache, 1);
            let mut order: Vec<usize> = (0..total).collect();
            order.sort_by_key(|&i| (shuffle[i], i));
            let rows = run_grid_in_order(&spec(reps), &cells, &Probe, &cache, &order);
            proptest::prop_assert_eq!(rows, reference);
        }
    }

    #[test]
    fn empty_grids_and_zero_replications() {
        let cache = SubstrateCache::passthrough();
        let empty: Vec<Vec<(usize, usize, u64)>> = run_grid(&spec(3), &[], &Probe, &cache);
        assert!(empty.is_empty());
        let zero_reps = run_grid(&spec(0), &[1u64, 2], &Probe, &cache);
        assert_eq!(zero_reps, vec![Vec::new(), Vec::new()]);
    }

    #[test]
    fn declared_axes_multiply_out() {
        let s = GridSpec::new("axes", 2, 1)
            .with_axis("model", 3)
            .with_axis("size", 2);
        assert_eq!(s.declared_cells(), Some(6));
        let cells: Vec<u64> = (0..6).collect();
        let rows = run_grid(&s, &cells, &Probe, &SubstrateCache::passthrough());
        assert_eq!(rows.len(), 6);
    }

    #[test]
    #[should_panic(expected = "declared axes imply")]
    fn axis_mismatch_panics() {
        let s = GridSpec::new("axes", 1, 1).with_axis("model", 3);
        let _ = run_grid(&s, &[1u64], &Probe, &SubstrateCache::passthrough());
    }

    #[test]
    fn rotating_substrates_share_generations_across_cells() {
        use crate::scenario::ScenarioConfig;

        struct Substrates;
        impl CellRun for Substrates {
            type Cell = ();
            type Workspace = ();
            type Record = u64;
            fn workspace(&self) {}
            fn salt(&self, cell_index: usize, (): &()) -> u64 {
                cell_index as u64
            }
            fn run(&self, ctx: &CellCtx<'_, ()>, (): &mut ()) -> u64 {
                let config = ScenarioConfig::paper(60);
                // Fingerprint the substrate by its allocation: rotating
                // replications on the same slot must share one Arc.
                Arc::as_ptr(&ctx.scenario(&config, 0xABCD, 0x1234)) as u64
            }
        }

        let cache = SubstrateCache::new();
        let s = spec(6).with_substrate(SubstrateMode::Rotating(2));
        let rows = run_grid(&s, &[(), ()], &Substrates, &cache);
        // 2 slots shared across both cells: exactly 2 generations.
        assert_eq!(cache.generations(), 2);
        // Replications on the same slot see the same substrate.
        assert_eq!(rows[0][0], rows[0][2]);
        assert_eq!(rows[0][1], rows[0][3]);
        // And both cells see the same slots.
        assert_eq!(rows[0], rows[1]);

        // Per-replication mode generates fresh substrates every time.
        let fresh_cache = SubstrateCache::new();
        let _ = run_grid(&spec(3), &[(), ()], &Substrates, &fresh_cache);
        assert_eq!(
            fresh_cache.generations(),
            0,
            "fresh path bypasses the cache"
        );
    }
}
