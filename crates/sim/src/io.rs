//! Plain-text (CSV) interchange formats for scenarios and outcomes.
//!
//! A platform operator integrating RIT needs to feed real asks and a real
//! solicitation tree into the mechanism and get payments back out. These
//! formats are deliberately trivial — comma-separated, one header line,
//! stable column order — so they can be produced from any database export:
//!
//! * **asks.csv** — `user,task_type,quantity,unit_price`, users in id order
//!   starting at 0;
//! * **tree.csv** — `node,parent` for nodes `1..=N` (parent `0` is the
//!   platform);
//! * **job.csv** — `task_type,tasks` for types `0..m`;
//! * **costs.csv** (optional) — `user,unit_cost`: the *true* costs, which
//!   only simulations know; lets auditors compute utilities offline;
//! * **outcome.csv** (written) — per-user allocation and payments.
//!
//! All readers validate ordering and ranges and report the offending line.
//!
//! The module also hosts the workspace's **one** tabular emitter: every
//! result table the drivers write — figure CSVs, the mechanism-comparison
//! CSV, the attack-suite CSV — renders through [`Table`], and every float in
//! them through [`fmt_f64`], so numeric formatting is defined in exactly one
//! place.

use std::fmt;
use std::fmt::Write as _;
use std::num::{ParseFloatError, ParseIntError};

use rit_model::{Ask, Job, ModelError, TaskTypeId};
use rit_tree::{IncentiveTree, NodeId, TreeError};

/// Canonical float rendering for every table the workspace emits.
///
/// This is Rust's shortest-round-trip `Display` (`format!("{v}")`): the
/// fewest digits that parse back to the same `f64`, no exponent notation
/// for the magnitudes these tables carry, `0` for zero, a leading `-` for
/// negatives, and the literal `NaN` for NaN (readers treat it as
/// missing-by-convention). Centralizing the call keeps every emitter
/// byte-identical about numbers.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// One cell of a [`Table`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Raw text, written as-is in CSV (callers pre-sanitize commas) and
    /// JSON-escaped in JSON lines.
    Str(String),
    /// A float, rendered via [`fmt_f64`] (JSON: NaN becomes `null`).
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A boolean (`true`/`false`).
    Bool(bool),
    /// An empty cell (CSV: empty field; JSON: `null`).
    Empty,
}

impl Value {
    fn render_csv(&self, out: &mut String) {
        match self {
            Self::Str(s) => out.push_str(s),
            Self::F64(v) => out.push_str(&fmt_f64(*v)),
            Self::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Self::Empty => {}
        }
    }

    fn render_json(&self, out: &mut String) {
        match self {
            Self::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Self::F64(v) if v.is_nan() => out.push_str("null"),
            Self::F64(v) => out.push_str(&fmt_f64(*v)),
            Self::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Self::Empty => out.push_str("null"),
        }
    }
}

/// A result table with a fixed column set: the single path every driver's
/// CSV (and JSON-lines mirror) goes through.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// A table with the given column names (stable order).
    #[must_use]
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Self {
        Self {
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// If the row's width does not match the header's.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width must match the {}-column header",
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as CSV: the header line, then one line per row,
    /// every line `\n`-terminated, floats via [`fmt_f64`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                cell.render_csv(&mut out);
            }
            out.push('\n');
        }
        out
    }

    /// Renders the table as JSON lines: one object per row, keys in column
    /// order, non-finite floats as `null`.
    #[must_use]
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push('{');
            for (i, (name, cell)) in self.columns.iter().zip(row).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                Value::Str(name.clone()).render_json(&mut out);
                out.push(':');
                cell.render_json(&mut out);
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Error while parsing a scenario file.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ScenarioIoError {
    /// The header line did not match the expected columns.
    BadHeader {
        /// What was expected.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// A data line had the wrong number of fields or unparsable values.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// Rows were present but not in the required dense id order.
    OutOfOrder {
        /// 1-based line number.
        line: usize,
        /// The id found.
        found: u64,
        /// The id required.
        expected: u64,
    },
    /// A parsed value failed domain validation.
    Model(ModelError),
    /// The parsed parents did not form a valid tree.
    Tree(TreeError),
}

impl fmt::Display for ScenarioIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadHeader { expected, found } => {
                write!(f, "expected header `{expected}`, found `{found}`")
            }
            Self::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
            Self::OutOfOrder {
                line,
                found,
                expected,
            } => write!(
                f,
                "line {line}: id {found} out of order (expected {expected})"
            ),
            Self::Model(e) => write!(f, "invalid value: {e}"),
            Self::Tree(e) => write!(f, "invalid tree: {e}"),
        }
    }
}

impl std::error::Error for ScenarioIoError {}

impl From<ModelError> for ScenarioIoError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<TreeError> for ScenarioIoError {
    fn from(e: TreeError) -> Self {
        Self::Tree(e)
    }
}

fn bad_int(line: usize, field: &str) -> impl FnOnce(ParseIntError) -> ScenarioIoError + '_ {
    move |e| ScenarioIoError::BadLine {
        line,
        reason: format!("{field}: {e}"),
    }
}

fn bad_float(line: usize, field: &str) -> impl FnOnce(ParseFloatError) -> ScenarioIoError + '_ {
    move |e| ScenarioIoError::BadLine {
        line,
        reason: format!("{field}: {e}"),
    }
}

fn rows<'a>(
    text: &'a str,
    header: &'static str,
) -> Result<impl Iterator<Item = (usize, &'a str)>, ScenarioIoError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == header => {}
        other => {
            return Err(ScenarioIoError::BadHeader {
                expected: header,
                found: other.map(|(_, h)| h.to_string()).unwrap_or_default(),
            })
        }
    }
    Ok(lines
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#')))
}

/// Parses an asks file (`user,task_type,quantity,unit_price`).
///
/// # Errors
///
/// Any format, ordering, or domain violation, with the offending line.
pub fn parse_asks(text: &str) -> Result<Vec<Ask>, ScenarioIoError> {
    let mut asks = Vec::new();
    for (line, row) in rows(text, "user,task_type,quantity,unit_price")? {
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() != 4 {
            return Err(ScenarioIoError::BadLine {
                line,
                reason: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let user: u64 = fields[0].parse().map_err(bad_int(line, "user"))?;
        if user != asks.len() as u64 {
            return Err(ScenarioIoError::OutOfOrder {
                line,
                found: user,
                expected: asks.len() as u64,
            });
        }
        let task_type: u32 = fields[1].parse().map_err(bad_int(line, "task_type"))?;
        let quantity: u64 = fields[2].parse().map_err(bad_int(line, "quantity"))?;
        let price: f64 = fields[3].parse().map_err(bad_float(line, "unit_price"))?;
        asks.push(Ask::new(TaskTypeId::new(task_type), quantity, price)?);
    }
    Ok(asks)
}

/// Renders an asks file.
#[must_use]
pub fn render_asks(asks: &[Ask]) -> String {
    let mut out = String::from("user,task_type,quantity,unit_price\n");
    for (j, a) in asks.iter().enumerate() {
        out.push_str(&format!(
            "{j},{},{},{}\n",
            a.task_type().raw(),
            a.quantity(),
            a.unit_price()
        ));
    }
    out
}

/// Parses a tree file (`node,parent`, nodes `1..=N` dense and in order,
/// parent `0` = platform).
///
/// # Errors
///
/// Any format, ordering, or tree violation.
pub fn parse_tree(text: &str) -> Result<IncentiveTree, ScenarioIoError> {
    let mut parents: Vec<NodeId> = Vec::new();
    for (line, row) in rows(text, "node,parent")? {
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(ScenarioIoError::BadLine {
                line,
                reason: format!("expected 2 fields, found {}", fields.len()),
            });
        }
        let node: u64 = fields[0].parse().map_err(bad_int(line, "node"))?;
        if node != parents.len() as u64 + 1 {
            return Err(ScenarioIoError::OutOfOrder {
                line,
                found: node,
                expected: parents.len() as u64 + 1,
            });
        }
        let parent: u32 = fields[1].parse().map_err(bad_int(line, "parent"))?;
        parents.push(NodeId::new(parent));
    }
    Ok(IncentiveTree::from_parents(&parents)?)
}

/// Renders a tree file.
#[must_use]
pub fn render_tree(tree: &IncentiveTree) -> String {
    let mut out = String::from("node,parent\n");
    for (i, p) in tree.to_parents().iter().enumerate() {
        out.push_str(&format!("{},{}\n", i + 1, p.index()));
    }
    out
}

/// Parses a job file (`task_type,tasks`, types `0..m` dense and in order).
///
/// # Errors
///
/// Any format, ordering, or domain violation.
pub fn parse_job(text: &str) -> Result<Job, ScenarioIoError> {
    let mut counts: Vec<u64> = Vec::new();
    for (line, row) in rows(text, "task_type,tasks")? {
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(ScenarioIoError::BadLine {
                line,
                reason: format!("expected 2 fields, found {}", fields.len()),
            });
        }
        let t: u64 = fields[0].parse().map_err(bad_int(line, "task_type"))?;
        if t != counts.len() as u64 {
            return Err(ScenarioIoError::OutOfOrder {
                line,
                found: t,
                expected: counts.len() as u64,
            });
        }
        counts.push(fields[1].parse().map_err(bad_int(line, "tasks"))?);
    }
    Ok(Job::from_counts(counts)?)
}

/// Renders a job file.
#[must_use]
pub fn render_job(job: &Job) -> String {
    let mut out = String::from("task_type,tasks\n");
    for (t, c) in job.iter() {
        out.push_str(&format!("{},{c}\n", t.raw()));
    }
    out
}

/// Parses a true-cost file (`user,unit_cost`, users dense in order).
///
/// # Errors
///
/// Any format, ordering, or domain violation.
pub fn parse_costs(text: &str) -> Result<Vec<f64>, ScenarioIoError> {
    let mut costs = Vec::new();
    for (line, row) in rows(text, "user,unit_cost")? {
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(ScenarioIoError::BadLine {
                line,
                reason: format!("expected 2 fields, found {}", fields.len()),
            });
        }
        let user: u64 = fields[0].parse().map_err(bad_int(line, "user"))?;
        if user != costs.len() as u64 {
            return Err(ScenarioIoError::OutOfOrder {
                line,
                found: user,
                expected: costs.len() as u64,
            });
        }
        let cost: f64 = fields[1].parse().map_err(bad_float(line, "unit_cost"))?;
        if !(cost.is_finite() && cost > 0.0) {
            return Err(ScenarioIoError::Model(ModelError::NonPositivePrice {
                value: cost,
            }));
        }
        costs.push(cost);
    }
    Ok(costs)
}

/// Renders a true-cost file.
#[must_use]
pub fn render_costs(costs: &[f64]) -> String {
    let mut out = String::from("user,unit_cost\n");
    for (j, c) in costs.iter().enumerate() {
        out.push_str(&format!("{j},{c}\n"));
    }
    out
}

/// One row of an outcome file (see [`render_outcome`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutcomeRow {
    /// The user's task type (raw index).
    pub task_type: u32,
    /// Tasks allocated.
    pub allocated: u64,
    /// Auction payment `p^A`.
    pub auction_payment: f64,
    /// Final payment `p`.
    pub payment: f64,
    /// Solicitation component `p − p^A`.
    pub solicitation_reward: f64,
}

/// Parses an outcome file written by [`render_outcome`].
///
/// # Errors
///
/// Any format or ordering violation, with the offending line.
pub fn parse_outcome(text: &str) -> Result<Vec<OutcomeRow>, ScenarioIoError> {
    let mut out = Vec::new();
    for (line, row) in rows(
        text,
        "user,task_type,allocated,auction_payment,payment,solicitation_reward",
    )? {
        let fields: Vec<&str> = row.split(',').map(str::trim).collect();
        if fields.len() != 6 {
            return Err(ScenarioIoError::BadLine {
                line,
                reason: format!("expected 6 fields, found {}", fields.len()),
            });
        }
        let user: u64 = fields[0].parse().map_err(bad_int(line, "user"))?;
        if user != out.len() as u64 {
            return Err(ScenarioIoError::OutOfOrder {
                line,
                found: user,
                expected: out.len() as u64,
            });
        }
        out.push(OutcomeRow {
            task_type: fields[1].parse().map_err(bad_int(line, "task_type"))?,
            allocated: fields[2].parse().map_err(bad_int(line, "allocated"))?,
            auction_payment: fields[3]
                .parse()
                .map_err(bad_float(line, "auction_payment"))?,
            payment: fields[4].parse().map_err(bad_float(line, "payment"))?,
            solicitation_reward: fields[5]
                .parse()
                .map_err(bad_float(line, "solicitation_reward"))?,
        });
    }
    Ok(out)
}

/// Renders a mechanism outcome as CSV
/// (`user,task_type,allocated,auction_payment,payment,solicitation_reward`).
#[must_use]
pub fn render_outcome(asks: &[Ask], outcome: &rit_core::RitOutcome) -> String {
    let mut out =
        String::from("user,task_type,allocated,auction_payment,payment,solicitation_reward\n");
    let rewards = outcome.solicitation_rewards();
    for (j, a) in asks.iter().enumerate() {
        out.push_str(&format!(
            "{j},{},{},{},{},{}\n",
            a.task_type().raw(),
            outcome.allocation()[j],
            outcome.auction_payments()[j],
            outcome.payment(j),
            rewards[j]
        ));
    }
    out
}

/// [`render_outcome`] for the normalized [`rit_core::MechanismOutcome`] view —
/// same schema, so downstream tooling reads RIT and baseline runs alike.
#[must_use]
pub fn render_mechanism_outcome(asks: &[Ask], outcome: &rit_core::MechanismOutcome) -> String {
    let mut out =
        String::from("user,task_type,allocated,auction_payment,payment,solicitation_reward\n");
    let rewards = outcome.solicitation_rewards();
    for (j, a) in asks.iter().enumerate() {
        out.push_str(&format!(
            "{j},{},{},{},{},{}\n",
            a.task_type().raw(),
            outcome.allocation()[j],
            outcome.auction_payments()[j],
            outcome.payment(j),
            rewards[j]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rit_tree::generate;

    #[test]
    fn fmt_f64_edge_values() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(-0.0), "-0");
        assert_eq!(fmt_f64(-1.5), "-1.5");
        assert_eq!(fmt_f64(1e-12), "0.000000000001");
        assert_eq!(fmt_f64(0.1 + 0.2), "0.30000000000000004");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
        // Round trip: the rendering parses back to the same bits.
        for v in [0.0, -1.5, 1e-12, 1.0 / 3.0, 123_456.789] {
            assert_eq!(fmt_f64(v).parse::<f64>().unwrap(), v);
        }
    }

    #[test]
    fn table_renders_csv_and_json_lines() {
        let mut t = Table::new(vec!["name", "x", "count", "ok", "note"]);
        t.push_row(vec![
            Value::Str("a;b".into()),
            Value::F64(1.25),
            Value::U64(3),
            Value::Bool(true),
            Value::Empty,
        ]);
        t.push_row(vec![
            Value::Str("q\"uote".into()),
            Value::F64(f64::NAN),
            Value::U64(0),
            Value::Bool(false),
            Value::Empty,
        ]);
        assert_eq!(
            t.to_csv(),
            "name,x,count,ok,note\na;b,1.25,3,true,\nq\"uote,NaN,0,false,\n"
        );
        assert_eq!(
            t.to_json_lines(),
            "{\"name\":\"a;b\",\"x\":1.25,\"count\":3,\"ok\":true,\"note\":null}\n\
             {\"name\":\"q\\\"uote\",\"x\":null,\"count\":0,\"ok\":false,\"note\":null}\n"
        );
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec![Value::U64(1)]);
    }

    #[test]
    fn asks_round_trip() {
        let asks = vec![
            Ask::new(TaskTypeId::new(0), 2, 3.5).unwrap(),
            Ask::new(TaskTypeId::new(4), 7, 0.25).unwrap(),
        ];
        let text = render_asks(&asks);
        assert_eq!(parse_asks(&text).unwrap(), asks);
    }

    #[test]
    fn tree_round_trip() {
        let tree = generate::k_ary(10, 3);
        let text = render_tree(&tree);
        assert_eq!(parse_tree(&text).unwrap(), tree);
    }

    #[test]
    fn job_round_trip() {
        let job = Job::from_counts(vec![5, 0, 12]).unwrap();
        let text = render_job(&job);
        assert_eq!(parse_job(&text).unwrap(), job);
    }

    #[test]
    fn header_mismatch_reported() {
        let err = parse_asks("task_type,quantity\n").unwrap_err();
        assert!(matches!(err, ScenarioIoError::BadHeader { .. }));
        assert!(err.to_string().contains("expected header"));
    }

    #[test]
    fn field_count_and_parse_errors_carry_line_numbers() {
        let text = "user,task_type,quantity,unit_price\n0,1,2\n";
        match parse_asks(text).unwrap_err() {
            ScenarioIoError::BadLine { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected: {other:?}"),
        }
        let text = "user,task_type,quantity,unit_price\n0,1,two,3.0\n";
        assert!(matches!(
            parse_asks(text).unwrap_err(),
            ScenarioIoError::BadLine { line: 2, .. }
        ));
    }

    #[test]
    fn out_of_order_ids_rejected() {
        let text = "user,task_type,quantity,unit_price\n1,0,1,1.0\n";
        assert!(matches!(
            parse_asks(text).unwrap_err(),
            ScenarioIoError::OutOfOrder {
                expected: 0,
                found: 1,
                ..
            }
        ));
        let text = "node,parent\n2,0\n";
        assert!(matches!(
            parse_tree(text).unwrap_err(),
            ScenarioIoError::OutOfOrder { expected: 1, .. }
        ));
    }

    #[test]
    fn domain_errors_propagate() {
        let text = "user,task_type,quantity,unit_price\n0,0,0,1.0\n";
        assert!(matches!(
            parse_asks(text).unwrap_err(),
            ScenarioIoError::Model(ModelError::ZeroQuantity)
        ));
        // Cyclic tree: node 1's parent is itself.
        let text = "node,parent\n1,1\n";
        assert!(matches!(
            parse_tree(text).unwrap_err(),
            ScenarioIoError::Tree(TreeError::CycleDetected { .. })
        ));
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "task_type,tasks\n# a comment\n0,5\n\n1,3\n";
        let job = parse_job(text).unwrap();
        assert_eq!(job.counts(), &[5, 3]);
    }

    #[test]
    fn costs_round_trip_and_validate() {
        let costs = vec![0.5, 2.25, 9.99];
        let text = render_costs(&costs);
        assert_eq!(parse_costs(&text).unwrap(), costs);
        // Non-positive costs rejected.
        let bad = "user,unit_cost\n0,-1.0\n";
        assert!(matches!(
            parse_costs(bad).unwrap_err(),
            ScenarioIoError::Model(ModelError::NonPositivePrice { .. })
        ));
        // Out-of-order ids rejected.
        let bad = "user,unit_cost\n1,2.0\n";
        assert!(matches!(
            parse_costs(bad).unwrap_err(),
            ScenarioIoError::OutOfOrder { .. }
        ));
    }

    #[test]
    fn outcome_round_trips() {
        use rand::SeedableRng;
        let scenario =
            crate::scenario::Scenario::generate(&crate::scenario::ScenarioConfig::paper(60), 5);
        let job = Job::uniform(10, 5).unwrap();
        let rit = rit_core::Rit::new(rit_core::RitConfig {
            round_limit: rit_core::RoundLimit::until_stall(),
            ..rit_core::RitConfig::default()
        })
        .unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let outcome = rit
            .run(&job, &scenario.tree, &scenario.asks, &mut rng)
            .unwrap();
        let text = render_outcome(&scenario.asks, &outcome);
        let rows = parse_outcome(&text).unwrap();
        assert_eq!(rows.len(), 60);
        for (j, row) in rows.iter().enumerate() {
            assert_eq!(row.task_type, scenario.asks[j].task_type().raw());
            assert_eq!(row.allocated, outcome.allocation()[j]);
            assert!((row.payment - outcome.payment(j)).abs() < 1e-9);
        }
    }

    #[test]
    fn outcome_rendering_includes_all_users() {
        use rand::SeedableRng;
        let scenario =
            crate::scenario::Scenario::generate(&crate::scenario::ScenarioConfig::paper(50), 3);
        let job = Job::uniform(10, 5).unwrap();
        let rit = rit_core::Rit::new(rit_core::RitConfig {
            round_limit: rit_core::RoundLimit::until_stall(),
            ..rit_core::RitConfig::default()
        })
        .unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let outcome = rit
            .run(&job, &scenario.tree, &scenario.asks, &mut rng)
            .unwrap();
        let text = render_outcome(&scenario.asks, &outcome);
        assert_eq!(text.lines().count(), 51);
        assert!(text.starts_with("user,task_type,allocated"));
    }
}
