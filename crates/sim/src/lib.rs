//! Simulation harness reproducing the RIT paper's evaluation (§7).
//!
//! The paper evaluates RIT with `m = 10` task types, user capacities
//! `~U{1..20}`, costs `~U(0,10]`, `H = 0.8`, an incentive tree grown from a
//! social graph, and four figures:
//!
//! | figure | sweep | metric |
//! |---|---|---|
//! | Fig 6(a)/(b) | users 40k–80k / tasks 1k–3k | average user utility (auction vs RIT) |
//! | Fig 7(a)/(b) | same sweeps | total platform payment (auction vs RIT) |
//! | Fig 8(a)/(b) | same sweeps | running time (auction vs RIT) |
//! | Fig 9 | identities δ = 2–17 | a sybil attacker's total utility at three ask values |
//!
//! [`experiments`] regenerates each figure as a [`metrics::Figure`] (series
//! of `(x, y)` points with dispersion), which the `experiments` binary
//! renders to Markdown, CSV and gnuplot. Beyond the paper's figures the
//! harness ships two ablations (`ablation`), a Lemma 6.2 `bound_check`, the
//! `robustness` / `tree_shape` / `quality_screening` sensitivity sweeps, a
//! `truthfulness_profile`, multi-epoch [`campaign`]s, and the [`attacks`]
//! driver evaluating declarative deviation suites through the
//! `rit_adversary` layer. [`scenario`]
//! builds the §7-A populations and solicitation trees; [`substrate`]
//! memoizes them across replications; [`grid`] is the declarative
//! experiment engine every module above runs on (one global work queue
//! over the whole `cells × replications` product); [`checkpoint`]
//! persists completed grid items so interrupted runs resume
//! byte-identically, and [`faults`] injects deterministic failures to
//! exercise the engine's crash paths; [`runner`] provides the
//! lower-level replication fan-out; [`analysis`] summarizes payment
//! distributions; [`io`] speaks the CSV interchange formats and owns the
//! canonical float formatter every table emitter shares.
//!
//! # Example
//!
//! ```
//! use rit_sim::experiments::{fig9, Scale};
//!
//! // A smoke-scale Fig 9: tiny population, few runs — shape only.
//! let figure = fig9::run(&fig9::Fig9Config { scale: Scale::Smoke, runs: 2, seed: 7 });
//! assert_eq!(figure.id, "fig9");
//! assert_eq!(figure.series.len(), 4); // three ask values + truthful reference
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod attacks;
pub mod campaign;
pub mod checkpoint;
pub mod experiments;
pub mod faults;
pub mod grid;
pub mod io;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod substrate;
