//! Metric accumulation and figure output.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::io::{Table, Value};

// `MeanStd` moved to `rit_telemetry` (per-worker accumulators merge into
// the registry's flush path); re-exported here so every experiment driver
// keeps importing it from `rit_sim::metrics`.
pub use rit_telemetry::MeanStd;

/// One data point of a figure series: `x`, mean `y`, and its std dev.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// The swept parameter value.
    pub x: f64,
    /// Mean of the metric over replications.
    pub y: f64,
    /// Standard deviation over replications.
    pub y_std: f64,
}

/// A named series of points (one curve in a paper figure).
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    /// Curve label, e.g. `"RIT"` or `"auction phase"`.
    pub name: String,
    /// The curve's points in sweep order.
    pub points: Vec<Point>,
}

/// A reproduced paper figure: labelled series over a swept parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Figure {
    /// Stable identifier, e.g. `"fig6a"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Label of the swept parameter.
    pub x_label: &'static str,
    /// Label of the metric.
    pub y_label: &'static str,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders the figure as a Markdown table (one row per x, one column
    /// per series, `mean ± std`).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for r in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(r).map(|p| p.x))
                .unwrap_or(f64::NAN);
            let _ = write!(out, "| {x} |");
            for s in &self.series {
                match s.points.get(r) {
                    Some(p) => {
                        let _ = write!(out, " {:.4} ± {:.4} |", p.y, p.y_std);
                    }
                    None => {
                        let _ = write!(out, " — |");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the figure as CSV with columns
    /// `x, <series>_mean, <series> _std, …`, through the workspace's shared
    /// [`Table`] emitter (floats via [`crate::io::fmt_f64`]).
    #[must_use]
    pub fn to_csv(&self) -> String {
        self.to_table().to_csv()
    }

    /// The figure as the shared [`Table`] (the CSV and JSON-lines source).
    /// Commas in labels become `;` so the header stays one field per
    /// column.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut columns = vec![self.x_label.replace(',', ";")];
        for s in &self.series {
            let name = s.name.replace(',', ";");
            columns.push(format!("{name}_mean"));
            columns.push(format!("{name}_std"));
        }
        let mut table = Table::new(columns);
        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for r in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(r).map(|p| p.x))
                .unwrap_or(f64::NAN);
            let mut row = Vec::with_capacity(1 + 2 * self.series.len());
            row.push(Value::F64(x));
            for s in &self.series {
                match s.points.get(r) {
                    Some(p) => {
                        row.push(Value::F64(p.y));
                        row.push(Value::F64(p.y_std));
                    }
                    None => {
                        row.push(Value::Empty);
                        row.push(Value::Empty);
                    }
                }
            }
            table.push_row(row);
        }
        table
    }

    /// Writes the CSV rendering to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_csv(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }

    /// Renders a gnuplot script that plots this figure from its CSV file
    /// (`csv_name`, as written by [`Figure::write_csv`]) with error bars.
    ///
    /// ```sh
    /// gnuplot results/fig6a.gp    # produces results/fig6a.png
    /// ```
    #[must_use]
    pub fn to_gnuplot(&self, csv_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "set datafile separator ','");
        let _ = writeln!(out, "set terminal pngcairo size 900,600");
        let _ = writeln!(out, "set output '{}.png'", self.id);
        let _ = writeln!(out, "set title {:?}", self.title);
        let _ = writeln!(out, "set xlabel {:?}", self.x_label);
        let _ = writeln!(out, "set ylabel {:?}", self.y_label);
        let _ = writeln!(out, "set key outside right");
        let _ = write!(out, "plot");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                let _ = write!(out, ",");
            }
            // Columns: 1 = x, then (mean, std) pairs per series.
            let mean_col = 2 + 2 * i;
            let std_col = mean_col + 1;
            let _ = write!(
                out,
                " '{csv_name}' skip 1 using 1:{mean_col}:{std_col} with yerrorlines title {:?}",
                s.name
            );
        }
        let _ = writeln!(out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_reexport_works() {
        // Behavior is pinned in `rit_telemetry`; this only guards the
        // re-export path existing call sites rely on.
        let mut acc = MeanStd::new();
        acc.extend([10.0, 20.0, 30.0]);
        assert_eq!(acc.mean(), 20.0);
        assert!((acc.std_dev() - 10.0).abs() < 1e-12);
    }

    fn sample_figure() -> Figure {
        Figure {
            id: "figX",
            title: "demo".into(),
            x_label: "n",
            y_label: "utility",
            series: vec![
                Series {
                    name: "RIT".into(),
                    points: vec![
                        Point {
                            x: 1.0,
                            y: 2.0,
                            y_std: 0.1,
                        },
                        Point {
                            x: 2.0,
                            y: 3.0,
                            y_std: 0.2,
                        },
                    ],
                },
                Series {
                    name: "auction".into(),
                    points: vec![Point {
                        x: 1.0,
                        y: 1.5,
                        y_std: 0.1,
                    }],
                },
            ],
        }
    }

    #[test]
    fn markdown_contains_all_cells() {
        let md = sample_figure().to_markdown();
        assert!(md.contains("figX"));
        assert!(md.contains("| n |"));
        assert!(md.contains("2.0000 ± 0.1000"));
        assert!(md.contains("—")); // missing cell placeholder
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample_figure().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "n,RIT_mean,RIT_std,auction_mean,auction_std");
        assert!(lines[1].starts_with("1,2,0.1,1.5,0.1"));
        assert!(lines[2].ends_with(",,"));
    }

    #[test]
    fn gnuplot_script_references_all_series() {
        let gp = sample_figure().to_gnuplot("figX.csv");
        assert!(gp.contains("set output 'figX.png'"));
        assert!(gp.contains("using 1:2:3"));
        assert!(gp.contains("using 1:4:5"));
        assert!(gp.contains("\"RIT\""));
        assert!(gp.contains("\"auction\""));
        assert_eq!(gp.matches("yerrorlines").count(), 2);
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("rit_sim_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig.csv");
        sample_figure().write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("RIT_mean"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
