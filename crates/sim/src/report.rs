//! The read side of the observability stack: run summaries, perf diffs,
//! and Chrome-trace export over recorded artifacts.
//!
//! The write side (`rit_telemetry` spans + JSONL sink, the bench bins'
//! `BENCH_*.json` reports) produces files; this module ingests them back
//! with the hand-rolled [`rit_telemetry::JsonValue`] parser — no external
//! dependencies — and renders:
//!
//! - [`summarize`]: a markdown run summary per file — manifest header,
//!   quarantined grid cells (panic message, axes, retries), top spans by
//!   total/self time with exact p50/p90/p99 over the raw span events,
//!   counter/gauge/histogram tables, bench arm/phase timings.
//! - [`diff`]: a regression gate comparing two runs metric-by-metric via
//!   [`MeanStd`]. Only *timing* metrics gate (names ending in `.wall_s`,
//!   or containing `_micros`/`_ns`); `speedup` metrics regress when they
//!   *drop*; everything else is reported as drift but never fails the
//!   gate. A metric present in only one run has nothing to compare
//!   against: it is classified as drift too — rendered in the table so a
//!   schema change or a quarantined cell is visible, never gating. Tiny
//!   timings (below [`GATE_FLOOR_WALL_S`] / [`GATE_FLOOR_US`]) are
//!   jitter-dominated and also never gate.
//! - [`render_trace`]: `telemetry.jsonl` → Chrome `trace_event` JSON
//!   (delegates to [`rit_telemetry::chrome_trace`]).
//!
//! Both bench report schemas (`BENCH_sim.json` schema 2, `BENCH_scale.json`
//! schema 1) and the JSONL event stream are recognized by content, not by
//! file name: a file whose first parsed line carries an `"event"` field is
//! a JSONL stream, anything else must parse as one bench report object.

use std::collections::BTreeMap;
use std::fmt;

use rit_telemetry::{chrome_trace, JsonValue, MeanStd};

/// Relative change below which a timing delta is never flagged, and above
/// which (for gating classes) the diff exits nonzero. The default is
/// deliberately loose — CI timing noise on shared runners routinely hits
/// tens of percent — and can be tightened per-call.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

/// Wall-clock floor (seconds): `.wall_s` metrics whose baseline mean is
/// below this are jitter-dominated and reported as drift, never gated.
pub const GATE_FLOOR_WALL_S: f64 = 0.01;

/// Microsecond floor for `_micros`/`_ns`-classified metrics (ns values are
/// scaled to µs before the comparison with this floor).
pub const GATE_FLOOR_US: f64 = 10_000.0;

/// A report-side failure: unreadable file, unparsable JSON, or a schema
/// the ingester does not recognize.
#[derive(Debug)]
pub struct ReportError {
    message: String,
}

impl ReportError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ReportError {}

/// One recorded span event (`"event":"span"` JSONL line).
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span kind name (`run`, `grid.cell`, `auction.phase`, …).
    pub name: String,
    /// Process-unique span id (nonzero).
    pub id: u64,
    /// Parent span id (`0` = root / cross-thread assembly).
    pub parent: u64,
    /// Recording thread's trace id.
    pub thread: u64,
    /// Start offset from the trace epoch, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Terminal status (`"failed"` for quarantined grid cells); empty for
    /// ordinary spans.
    pub status: String,
}

/// One quarantined grid cell (`"event":"cell_failure"` JSONL line), as
/// emitted by the grid engine's failure path.
#[derive(Clone, Debug)]
pub struct CellFailureRecord {
    /// Grid name the cell belongs to.
    pub grid: String,
    /// Flat cell index within the grid.
    pub cell: u64,
    /// Replication index within the cell.
    pub replication: u64,
    /// Human-readable axis coordinates (`"model=1, size=2"`).
    pub axes: String,
    /// The panic message that quarantined the item.
    pub message: String,
    /// Retries attempted before quarantine.
    pub retries: u64,
}

/// A histogram percentile summary as recorded in a flush event or a bench
/// report's embedded telemetry block.
#[derive(Clone, Copy, Debug, Default)]
pub struct HistLine {
    /// Samples recorded.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Bucketed 50th percentile.
    pub p50: u64,
    /// Bucketed 90th percentile.
    pub p90: u64,
    /// Bucketed 99th percentile.
    pub p99: u64,
}

/// Everything extracted from one artifact file, ready for rendering and
/// diffing.
#[derive(Debug, Default)]
pub struct RunData {
    /// Display label (the file name as given).
    pub label: String,
    /// Manifest header fields in emission order (tool, version, …).
    pub manifest: Vec<(String, String)>,
    /// Diffable scalars: metric key → accumulated samples.
    pub metrics: BTreeMap<String, MeanStd>,
    /// Raw span events (JSONL streams only).
    pub spans: Vec<SpanRecord>,
    /// Counter summaries.
    pub counters: Vec<(String, u64)>,
    /// Gauge summaries.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<(String, HistLine)>,
    /// Bench arm/phase timings: `(section, name, mean_s, p50_s)`.
    pub timings: Vec<(&'static str, String, f64, f64)>,
    /// Quarantined grid cells (JSONL streams only).
    pub failures: Vec<CellFailureRecord>,
}

impl RunData {
    /// Parses one artifact (JSONL event stream or `BENCH_*.json` report),
    /// recognized by content.
    ///
    /// # Errors
    ///
    /// Returns [`ReportError`] when the content is neither a JSONL stream
    /// whose lines are objects nor a parsable bench report object.
    pub fn parse(label: &str, content: &str) -> Result<RunData, ReportError> {
        let mut data = RunData {
            label: label.to_string(),
            ..RunData::default()
        };
        let first_line = content.lines().find(|l| !l.trim().is_empty());
        let looks_jsonl = first_line
            .and_then(|l| JsonValue::parse(l).ok())
            .is_some_and(|v| v.get("event").is_some());
        if looks_jsonl {
            data.ingest_jsonl(content);
            return Ok(data);
        }
        let value = JsonValue::parse(content)
            .map_err(|e| ReportError::new(format!("{label}: not a bench report: {e}")))?;
        data.ingest_bench(&value)?;
        Ok(data)
    }

    fn push_metric(&mut self, key: &str, value: f64) {
        self.metrics.entry(key.to_string()).or_default().push(value);
    }

    /// Ingests a `telemetry.jsonl` stream. Malformed lines are skipped —
    /// the stream may have been truncated by a crash, and a partial
    /// summary beats none.
    fn ingest_jsonl(&mut self, content: &str) {
        for line in content.lines() {
            let Ok(value) = JsonValue::parse(line) else {
                continue;
            };
            let get_str = |key: &str| value.get(key).and_then(JsonValue::as_str).unwrap_or("");
            let get_u64 = |key: &str| value.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            let get_f64 = |key: &str| value.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            match value.get("event").and_then(JsonValue::as_str) {
                Some("manifest") => {
                    self.manifest = value
                        .entries()
                        .unwrap_or(&[])
                        .iter()
                        .filter(|(k, _)| k != "event")
                        .map(|(k, v)| {
                            let rendered = match v {
                                JsonValue::String(s) => s.clone(),
                                other => render_scalar(other),
                            };
                            (k.clone(), rendered)
                        })
                        .collect();
                }
                Some("span") => {
                    self.spans.push(SpanRecord {
                        name: get_str("name").to_string(),
                        id: get_u64("id"),
                        parent: get_u64("parent"),
                        thread: get_u64("thread"),
                        start_us: get_u64("start_us"),
                        dur_us: get_u64("dur_us"),
                        status: get_str("status").to_string(),
                    });
                }
                Some("cell_failure") => {
                    self.failures.push(CellFailureRecord {
                        grid: get_str("grid").to_string(),
                        cell: get_u64("cell"),
                        replication: get_u64("replication"),
                        axes: get_str("axes").to_string(),
                        message: get_str("message").to_string(),
                        retries: get_u64("retries"),
                    });
                }
                Some("counter") => {
                    let name = get_str("name").to_string();
                    let v = get_u64("value");
                    self.push_metric(&format!("counter.{name}"), v as f64);
                    self.counters.push((name, v));
                }
                Some("gauge") => {
                    let name = get_str("name").to_string();
                    let v = get_f64("value");
                    self.push_metric(&format!("gauge.{name}"), v);
                    self.gauges.push((name, v));
                }
                Some("histogram") => {
                    let name = get_str("name").to_string();
                    let h = HistLine {
                        count: get_u64("count"),
                        min: get_u64("min"),
                        max: get_u64("max"),
                        mean: get_f64("mean"),
                        p50: get_u64("p50"),
                        p90: get_u64("p90"),
                        p99: get_u64("p99"),
                    };
                    self.push_metric(&format!("hist.{name}.mean"), h.mean);
                    self.histograms.push((name, h));
                }
                _ => {}
            }
        }
    }

    /// Ingests a `BENCH_sim.json` (schema 2, `arms`) or `BENCH_scale.json`
    /// (schema 1, `phases`) report.
    fn ingest_bench(&mut self, value: &JsonValue) -> Result<(), ReportError> {
        let label = self.label.clone();
        let entries = value
            .entries()
            .ok_or_else(|| ReportError::new(format!("{label}: bench report is not an object")))?;
        // Scalar header fields double as the manifest table.
        for (key, v) in entries {
            match v {
                JsonValue::Array(_) | JsonValue::Object(_) => {}
                other => self.manifest.push((key.clone(), render_scalar(other))),
            }
        }
        if let Some(speedup) = value.get("auction_speedup").and_then(JsonValue::as_f64) {
            self.push_metric("auction_speedup", speedup);
        }
        for (section, key) in [("arm", "arms"), ("phase", "phases")] {
            let Some(items) = value.get(key).and_then(JsonValue::as_array) else {
                continue;
            };
            for item in items {
                let Some(name) = item.get("name").and_then(JsonValue::as_str) else {
                    continue;
                };
                let walls: Vec<f64> = item
                    .get("wall_s")
                    .and_then(JsonValue::as_array)
                    .map(|xs| xs.iter().filter_map(JsonValue::as_f64).collect())
                    .unwrap_or_default();
                let metric = format!("{section}.{name}.wall_s");
                for w in &walls {
                    self.push_metric(&metric, *w);
                }
                let mean = if walls.is_empty() {
                    0.0
                } else {
                    walls.iter().sum::<f64>() / walls.len() as f64
                };
                let p50 = item
                    .get("p50_wall_s")
                    .and_then(JsonValue::as_f64)
                    .unwrap_or(mean);
                self.timings.push((section, name.to_string(), mean, p50));
            }
        }
        if let Some(telemetry) = value.get("telemetry") {
            self.ingest_bench_telemetry(telemetry);
        }
        if self.timings.is_empty() && self.metrics.is_empty() {
            return Err(ReportError::new(format!(
                "{label}: no arms/phases/telemetry found — unrecognized report schema"
            )));
        }
        Ok(())
    }

    fn ingest_bench_telemetry(&mut self, telemetry: &JsonValue) {
        if let Some(counters) = telemetry.get("counters").and_then(JsonValue::entries) {
            for (name, v) in counters {
                if let Some(x) = v.as_u64() {
                    self.push_metric(&format!("counter.{name}"), x as f64);
                    self.counters.push((name.clone(), x));
                }
            }
        }
        if let Some(gauges) = telemetry.get("gauges").and_then(JsonValue::entries) {
            for (name, v) in gauges {
                if let Some(x) = v.as_f64() {
                    self.push_metric(&format!("gauge.{name}"), x);
                    self.gauges.push((name.clone(), x));
                }
            }
        }
        if let Some(hists) = telemetry.get("histograms").and_then(JsonValue::entries) {
            for (name, h) in hists {
                let u = |key: &str| h.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
                let line = HistLine {
                    count: u("count"),
                    min: u("min"),
                    max: u("max"),
                    mean: h.get("mean").and_then(JsonValue::as_f64).unwrap_or(0.0),
                    p50: u("p50"),
                    p90: u("p90"),
                    p99: u("p99"),
                };
                self.push_metric(&format!("hist.{name}.mean"), line.mean);
                self.histograms.push((name.clone(), line));
            }
        }
    }
}

fn render_scalar(value: &JsonValue) -> String {
    match value {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Number(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                format!("{}", *x as i64)
            } else {
                format!("{x}")
            }
        }
        JsonValue::String(s) => s.clone(),
        JsonValue::Array(_) | JsonValue::Object(_) => String::new(),
    }
}

// ---------------------------------------------------------------------------
// Summary rendering
// ---------------------------------------------------------------------------

/// Per-span-name aggregate over the raw span events of one run.
#[derive(Debug)]
struct SpanAgg {
    name: String,
    count: u64,
    total_us: u64,
    self_us: u64,
    durs: Vec<u64>,
}

/// Aggregates raw span events by name, computing total and *self* time
/// (total minus the duration of direct children, via the parent links).
fn aggregate_spans(spans: &[SpanRecord]) -> Vec<SpanAgg> {
    let mut self_by_id: BTreeMap<u64, i128> = BTreeMap::new();
    let mut name_by_id: BTreeMap<u64, &str> = BTreeMap::new();
    for s in spans {
        self_by_id.insert(s.id, i128::from(s.dur_us));
        name_by_id.insert(s.id, &s.name);
    }
    for s in spans {
        if s.parent != 0 {
            if let Some(parent_self) = self_by_id.get_mut(&s.parent) {
                *parent_self -= i128::from(s.dur_us);
            }
        }
    }
    let mut by_name: BTreeMap<&str, SpanAgg> = BTreeMap::new();
    for s in spans {
        let agg = by_name.entry(&s.name).or_insert_with(|| SpanAgg {
            name: s.name.clone(),
            count: 0,
            total_us: 0,
            self_us: 0,
            durs: Vec::new(),
        });
        agg.count += 1;
        agg.total_us += s.dur_us;
        // Clamp: overlapping children (cross-thread nesting) can push a
        // parent's self time below zero; report it as zero.
        let own = self_by_id.get(&s.id).copied().unwrap_or(0).max(0);
        agg.self_us += u64::try_from(own).unwrap_or(0);
        agg.durs.push(s.dur_us);
    }
    let mut aggs: Vec<SpanAgg> = by_name.into_values().collect();
    aggs.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
    aggs
}

/// Exact percentile over raw samples (nearest-rank on the sorted vector).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.3}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Renders a markdown run summary over one or more artifact files
/// (`telemetry.jsonl` streams and/or `BENCH_*.json` reports), in the order
/// given. Each `(label, content)` pair is one already-read file.
///
/// # Errors
///
/// Propagates the first [`RunData::parse`] failure.
pub fn summarize(files: &[(String, String)]) -> Result<String, ReportError> {
    let mut out = String::from("# Run report\n");
    for (label, content) in files {
        let data = RunData::parse(label, content)?;
        render_run(&mut out, &data);
    }
    Ok(out)
}

fn render_run(out: &mut String, data: &RunData) {
    use std::fmt::Write;
    let _ = writeln!(out, "\n## {}\n", data.label);
    if !data.manifest.is_empty() {
        out.push_str("| field | value |\n|---|---|\n");
        for (key, value) in &data.manifest {
            let _ = writeln!(out, "| {key} | {value} |");
        }
        out.push('\n');
    }
    if !data.failures.is_empty() {
        let _ = writeln!(
            out,
            "### Failed cells ({} quarantined)\n\n\
             | grid | cell | axes | replication | retries | panic |\n\
             |---|---|---|---|---|---|",
            data.failures.len()
        );
        for f in &data.failures {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                f.grid, f.cell, f.axes, f.replication, f.retries, f.message
            );
        }
        out.push('\n');
    }
    if !data.timings.is_empty() {
        out.push_str("### Timings\n\n| section | name | mean | p50 |\n|---|---|---|---|\n");
        for (section, name, mean, p50) in &data.timings {
            let _ = writeln!(out, "| {section} | {name} | {mean:.3}s | {p50:.3}s |");
        }
        out.push('\n');
    }
    if !data.spans.is_empty() {
        out.push_str(
            "### Top spans by total time\n\n\
             | span | count | total | self | p50 | p90 | p99 |\n\
             |---|---|---|---|---|---|---|\n",
        );
        for agg in aggregate_spans(&data.spans) {
            let mut sorted = agg.durs.clone();
            sorted.sort_unstable();
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} |",
                agg.name,
                agg.count,
                fmt_us(agg.total_us),
                fmt_us(agg.self_us),
                fmt_us(percentile(&sorted, 50.0)),
                fmt_us(percentile(&sorted, 90.0)),
                fmt_us(percentile(&sorted, 99.0)),
            );
        }
        out.push('\n');
    }
    if !data.counters.is_empty() {
        out.push_str("### Counters\n\n| counter | value |\n|---|---|\n");
        for (name, value) in &data.counters {
            let _ = writeln!(out, "| {name} | {value} |");
        }
        out.push('\n');
    }
    if !data.gauges.is_empty() {
        out.push_str("### Gauges\n\n| gauge | value |\n|---|---|\n");
        for (name, value) in &data.gauges {
            let _ = writeln!(out, "| {name} | {value} |");
        }
        out.push('\n');
    }
    if !data.histograms.is_empty() {
        out.push_str(
            "### Histograms\n\n| histogram | count | min | max | mean | p50 | p90 | p99 |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for (name, h) in &data.histograms {
            let _ = writeln!(
                out,
                "| {name} | {} | {} | {} | {:.1} | {} | {} | {} |",
                h.count, h.min, h.max, h.mean, h.p50, h.p90, h.p99
            );
        }
        out.push('\n');
    }
}

// ---------------------------------------------------------------------------
// Diff / regression gate
// ---------------------------------------------------------------------------

/// How a metric participates in the regression gate, decided by name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MetricClass {
    /// Wall-clock-like: higher is worse; gates the exit code.
    Time,
    /// `speedup`-like: lower is worse; gates the exit code.
    HigherBetter,
    /// Everything else: reported as drift, never gates.
    Neutral,
}

fn classify(key: &str) -> MetricClass {
    if key.contains("speedup") {
        return MetricClass::HigherBetter;
    }
    if key.ends_with(".wall_s") || key.contains("_micros") || key.contains("_ns") {
        return MetricClass::Time;
    }
    MetricClass::Neutral
}

/// `true` when a timing metric is large enough for its relative delta to
/// mean anything (sub-floor timings are scheduler jitter).
fn above_gate_floor(key: &str, baseline_mean: f64) -> bool {
    if key.ends_with(".wall_s") {
        baseline_mean >= GATE_FLOOR_WALL_S
    } else if key.contains("_ns") {
        baseline_mean / 1_000.0 >= GATE_FLOOR_US
    } else {
        baseline_mean >= GATE_FLOOR_US
    }
}

/// The outcome of [`diff`]: a rendered markdown comparison plus the list
/// of gating regressions (empty = the gate passes).
#[derive(Debug)]
pub struct DiffReport {
    /// The full markdown comparison table.
    pub markdown: String,
    /// One `metric: Δ` line per gating regression.
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// `true` when at least one gating metric regressed beyond the
    /// threshold.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Compares two runs metric-by-metric. `baseline` and `candidate` are
/// `(label, content)` pairs of already-read artifact files; `threshold` is
/// the relative change beyond which a gating metric regresses (e.g. `0.5`
/// = 50%).
///
/// # Errors
///
/// Propagates [`RunData::parse`] failures for either file.
pub fn diff(
    baseline: (&str, &str),
    candidate: (&str, &str),
    threshold: f64,
) -> Result<DiffReport, ReportError> {
    use std::fmt::Write;
    let base = RunData::parse(baseline.0, baseline.1)?;
    let cand = RunData::parse(candidate.0, candidate.1)?;
    let mut markdown = format!(
        "# Perf diff\n\nbaseline: `{}`\ncandidate: `{}`\nthreshold: {:.0}%\n\n\
         | metric | baseline | candidate | Δ | status |\n|---|---|---|---|---|\n",
        base.label,
        cand.label,
        threshold * 100.0
    );
    let mut regressions = Vec::new();
    let mut only_base = Vec::new();
    let mut only_cand: Vec<&String> = cand
        .metrics
        .keys()
        .filter(|k| !base.metrics.contains_key(*k))
        .collect();
    for (key, b) in &base.metrics {
        let Some(c) = cand.metrics.get(key) else {
            only_base.push(key);
            continue;
        };
        let (bm, cm) = (b.mean(), c.mean());
        let delta = if bm.abs() > f64::EPSILON {
            (cm - bm) / bm.abs()
        } else if cm.abs() > f64::EPSILON {
            f64::INFINITY
        } else {
            0.0
        };
        let class = classify(key);
        let beyond = delta.abs() > threshold;
        let status = match class {
            MetricClass::Time if beyond && delta > 0.0 => {
                if above_gate_floor(key, bm) {
                    regressions.push(format!("{key}: +{:.0}%", delta * 100.0));
                    "**REGRESSION**"
                } else {
                    "drift (sub-floor)"
                }
            }
            MetricClass::HigherBetter if beyond && delta < 0.0 => {
                regressions.push(format!("{key}: {:.0}%", delta * 100.0));
                "**REGRESSION**"
            }
            MetricClass::Time | MetricClass::HigherBetter if beyond => "improved",
            MetricClass::Neutral if beyond => "drift",
            _ => "ok",
        };
        if status != "ok" || class != MetricClass::Neutral {
            let _ = writeln!(
                markdown,
                "| {key} | {bm:.4} | {cm:.4} | {:+.1}% | {status} |",
                delta * 100.0
            );
        }
    }
    // Metrics present in only one run cannot be compared, so they can
    // never gate — but silently dropping them would hide a schema change
    // or a quarantined cell's missing samples. Report them as drift.
    for key in only_base {
        let _ = writeln!(
            markdown,
            "| {key} | present | missing | — | drift (only in baseline) |"
        );
    }
    only_cand.sort();
    for key in only_cand {
        let _ = writeln!(
            markdown,
            "| {key} | missing | present | — | drift (only in candidate) |"
        );
    }
    if regressions.is_empty() {
        markdown.push_str("\nGate: **pass** — no gating metric regressed.\n");
    } else {
        let _ = writeln!(
            markdown,
            "\nGate: **FAIL** — {} regression(s):",
            regressions.len()
        );
        for r in &regressions {
            let _ = writeln!(markdown, "- {r}");
        }
    }
    Ok(DiffReport {
        markdown,
        regressions,
    })
}

// ---------------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------------

/// Converts a `telemetry.jsonl` stream to Chrome `trace_event` JSON;
/// returns the JSON document and the number of slices emitted.
#[must_use]
pub fn render_trace(jsonl: &str) -> (String, usize) {
    chrome_trace(jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;

    const JSONL: &str = concat!(
        r#"{"event":"manifest","tool":"bench_sim","version":"0.1.0","config_hash":"00000000deadbeef","seed":42,"threads":4,"mechanism":"rit","rng_mode":"streams"}"#,
        "\n",
        r#"{"event":"span","name":"run","id":1,"parent":0,"thread":1,"start_us":0,"dur_us":1000}"#,
        "\n",
        r#"{"event":"span","name":"auction.phase","id":2,"parent":1,"thread":1,"start_us":100,"dur_us":600}"#,
        "\n",
        r#"{"event":"counter","name":"auction.rounds","value":17}"#,
        "\n",
        r#"{"event":"gauge","name":"worker.threads","value":4}"#,
        "\n",
        r#"{"event":"histogram","name":"span.run_micros","count":1,"min":1000,"max":1000,"mean":1000.0,"p50":1000,"p90":1000,"p99":1000}"#,
        "\n",
    );

    fn bench_sim_json(wall: f64) -> String {
        format!(
            r#"{{
  "schema_version": 2,
  "bench": "bench_sim",
  "quick": true,
  "threads": 4,
  "config_hash": "00000000deadbeef",
  "arms": [
    {{"name": "fig3_sweep", "wall_s": [{w}, {w}, {w}], "min_wall_s": {w}, "mean_wall_s": {w}, "p50_wall_s": {w}, "substrate_generations": 3, "substrate_cache_hits": 0}}
  ],
  "telemetry": {{
    "counters": {{"auction.rounds": 17, "worker.items": 9}},
    "gauges": {{"worker.threads": 4}},
    "histograms": {{
      "worker.item_micros": {{"count": 9, "min": 10, "max": 20, "mean": 15.0, "p50": 15, "p90": 20, "p99": 20}}
    }}
  }}
}}
"#,
            w = wall
        )
    }

    #[test]
    fn jsonl_ingestion_extracts_manifest_spans_and_metrics() {
        let data = RunData::parse("telemetry.jsonl", JSONL).unwrap();
        assert_eq!(data.spans.len(), 2);
        assert_eq!(
            data.manifest[0],
            ("tool".to_string(), "bench_sim".to_string())
        );
        assert!(data.manifest.iter().any(|(k, v)| k == "seed" && v == "42"));
        assert_eq!(data.metrics["counter.auction.rounds"].mean(), 17.0);
        assert_eq!(data.metrics["hist.span.run_micros.mean"].mean(), 1000.0);
    }

    #[test]
    fn bench_ingestion_extracts_arms_and_embedded_telemetry() {
        let data = RunData::parse("BENCH_sim.json", &bench_sim_json(2.0)).unwrap();
        let arm = &data.metrics["arm.fig3_sweep.wall_s"];
        assert_eq!(arm.count(), 3);
        assert!((arm.mean() - 2.0).abs() < 1e-12);
        assert_eq!(data.metrics["counter.worker.items"].mean(), 9.0);
        assert!(data
            .manifest
            .iter()
            .any(|(k, v)| k == "config_hash" && v == "00000000deadbeef"));
    }

    #[test]
    fn summary_reports_span_self_time_separately_from_total() {
        let report = summarize(&[("telemetry.jsonl".to_string(), JSONL.to_string())]).unwrap();
        assert!(report.contains("### Top spans by total time"));
        // run: total 1000µs, self 1000 - 600 (child auction.phase) = 400µs.
        assert!(report.contains("| run | 1 | 1.00ms | 400µs |"), "{report}");
        assert!(report.contains("| auction.phase | 1 | 600µs | 600µs |"));
        assert!(report.contains("| auction.rounds | 17 |"));
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let a = bench_sim_json(2.0);
        let d = diff(("a.json", &a), ("b.json", &a), DEFAULT_THRESHOLD).unwrap();
        assert!(!d.has_regressions(), "{}", d.markdown);
        assert!(d.markdown.contains("Gate: **pass**"));
    }

    #[test]
    fn injected_timing_regression_fails_the_gate_and_names_the_metric() {
        let a = bench_sim_json(2.0);
        let b = bench_sim_json(20.0);
        let d = diff(("a.json", &a), ("b.json", &b), DEFAULT_THRESHOLD).unwrap();
        assert!(d.has_regressions());
        assert!(
            d.regressions
                .iter()
                .any(|r| r.contains("arm.fig3_sweep.wall_s")),
            "{:?}",
            d.regressions
        );
        assert!(d.markdown.contains("**REGRESSION**"));
        // The improvement direction does not gate.
        let d = diff(("a.json", &b), ("b.json", &a), DEFAULT_THRESHOLD).unwrap();
        assert!(!d.has_regressions(), "{}", d.markdown);
        assert!(d.markdown.contains("improved"));
    }

    #[test]
    fn speedup_drop_gates_and_counter_drift_does_not() {
        let base = r#"{"schema_version": 1, "bench": "bench_scale", "auction_speedup": 4.0,
            "phases": [{"name": "auction_parallel", "threads": 4, "wall_s": [1.0], "p50_wall_s": 1.0}]}"#;
        let cand = r#"{"schema_version": 1, "bench": "bench_scale", "auction_speedup": 1.2,
            "phases": [{"name": "auction_parallel", "threads": 4, "wall_s": [1.0], "p50_wall_s": 1.0}]}"#;
        let d = diff(("a", base), ("b", cand), DEFAULT_THRESHOLD).unwrap();
        assert!(d.has_regressions());
        assert!(d.regressions.iter().any(|r| r.contains("auction_speedup")));

        // A counter changing wildly is drift, not a gate failure.
        let base = r#"{"event":"manifest","tool":"t"}
{"event":"counter","name":"auction.rounds","value":10}"#;
        let cand = r#"{"event":"manifest","tool":"t"}
{"event":"counter","name":"auction.rounds","value":1000}"#;
        let d = diff(("a", base), ("b", cand), DEFAULT_THRESHOLD).unwrap();
        assert!(!d.has_regressions(), "{}", d.markdown);
        assert!(d.markdown.contains("drift"));
    }

    #[test]
    fn sub_floor_timings_never_gate() {
        let base = r#"{"schema_version": 1, "bench": "x",
            "phases": [{"name": "tiny", "threads": 1, "wall_s": [0.0001], "p50_wall_s": 0.0001}]}"#;
        let cand = r#"{"schema_version": 1, "bench": "x",
            "phases": [{"name": "tiny", "threads": 1, "wall_s": [0.005], "p50_wall_s": 0.005}]}"#;
        let d = diff(("a", base), ("b", cand), DEFAULT_THRESHOLD).unwrap();
        assert!(!d.has_regressions(), "{}", d.markdown);
        assert!(d.markdown.contains("sub-floor"));
    }

    #[test]
    fn one_sided_metrics_are_drift_and_never_gate() {
        let base = r#"{"event":"manifest","tool":"t"}
{"event":"counter","name":"auction.rounds","value":10}
{"event":"counter","name":"grid.cell_failures","value":2}"#;
        let cand = r#"{"event":"manifest","tool":"t"}
{"event":"counter","name":"auction.rounds","value":10}
{"event":"gauge","name":"worker.threads","value":4}"#;
        let d = diff(("a", base), ("b", cand), DEFAULT_THRESHOLD).unwrap();
        // Present-in-one-run metrics are reported, classified as drift,
        // and the gate still passes.
        assert!(!d.has_regressions(), "{}", d.markdown);
        assert!(
            d.markdown
                .contains("| counter.grid.cell_failures | present | missing | — | drift"),
            "{}",
            d.markdown
        );
        assert!(
            d.markdown
                .contains("| gauge.worker.threads | missing | present | — | drift"),
            "{}",
            d.markdown
        );
        assert!(d.markdown.contains("Gate: **pass**"));
    }

    #[test]
    fn cell_failures_are_ingested_and_rendered() {
        let jsonl = concat!(
            r#"{"event":"manifest","tool":"experiments"}"#,
            "\n",
            r#"{"event":"cell_failure","grid":"users","cell":3,"replication":1,"axes":"size=3","message":"boom","retries":1}"#,
            "\n",
            r#"{"event":"span","name":"grid.cell","id":7,"parent":0,"thread":1,"start_us":0,"dur_us":10,"status":"failed"}"#,
            "\n",
        );
        let data = RunData::parse("telemetry.jsonl", jsonl).unwrap();
        assert_eq!(data.failures.len(), 1);
        let f = &data.failures[0];
        assert_eq!(f.grid, "users");
        assert_eq!(f.cell, 3);
        assert_eq!(f.axes, "size=3");
        assert_eq!(f.message, "boom");
        assert_eq!(data.spans[0].status, "failed");

        let report = summarize(&[("t.jsonl".to_string(), jsonl.to_string())]).unwrap();
        assert!(
            report.contains("### Failed cells (1 quarantined)"),
            "{report}"
        );
        assert!(
            report.contains("| users | 3 | size=3 | 1 | 1 | boom |"),
            "{report}"
        );
    }

    #[test]
    fn unreadable_content_is_a_report_error() {
        assert!(RunData::parse("x", "not json at all").is_err());
        assert!(RunData::parse("x", "{\"schema_version\": 9}").is_err());
    }

    #[test]
    fn trace_export_round_trips_through_the_parser() {
        let (json, slices) = render_trace(JSONL);
        assert_eq!(slices, 2);
        let v = JsonValue::parse(&json).unwrap();
        let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
        // 2 slices + 1 process-name metadata record from the manifest.
        assert_eq!(events.len(), 3);
    }
}
