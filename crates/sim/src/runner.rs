//! Parallel execution of independent replications.
//!
//! Every experiment point is averaged over `R` independent runs, each fully
//! determined by its own seed. [`parallel_map`] fans the run indices out
//! over CPU cores with crossbeam's scoped threads. Work is claimed from a
//! shared atomic counter, but each worker accumulates its `(index, value)`
//! pairs privately and hands them back through the thread's join handle —
//! no lock on the result path — and a single merge pass restores index
//! order, so output is deterministic regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use rit_telemetry::Telemetry;

/// The environment variable that pins the worker-thread count (CI and
/// benchmarks use it for reproducible timing). Unset, empty, unparsable,
/// or `0` means "use all available cores".
pub const THREADS_ENV: &str = "RIT_THREADS";

/// Process-wide programmatic thread override (0 = unset). Set by the
/// binaries' `--threads` flag; wins over [`THREADS_ENV`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Pins the worker-thread count for the whole process, overriding
/// [`THREADS_ENV`]. The binaries call this from their `--threads N` flag
/// (validated there — this function trusts its input). `0` clears the
/// override, restoring env-then-auto resolution.
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Parses a `RIT_THREADS`-style value: `Some(n)` for a positive integer,
/// `None` (auto) otherwise.
#[must_use]
pub fn parse_thread_override(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// The worker-thread count: the [`set_thread_override`] value if one was
/// set (the `--threads` flag), else the [`THREADS_ENV`] override, else the
/// available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => {}
        n => return n,
    }
    std::env::var(THREADS_ENV)
        .ok()
        .as_deref()
        .and_then(parse_thread_override)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `f(0), f(1), …, f(count - 1)` across available cores (or the
/// [`THREADS_ENV`] override) and returns the results in index order.
///
/// `f` must be deterministic in its index for reproducible experiments (use
/// the index to derive an RNG seed).
pub fn parallel_map<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with_threads(count, default_threads(), f)
}

/// [`parallel_map`] with an explicit worker-thread count (clamped to
/// `[1, count]`).
pub fn parallel_map_with_threads<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_init_with_threads(count, threads, || (), |(), i| f(i))
}

/// [`parallel_map`] with per-worker scratch state: each worker thread calls
/// `init` once and threads the resulting state through every index it
/// claims. Experiments use this to reuse one [`rit_core::RitWorkspace`] per
/// worker across all replications, so auction scratch is allocated
/// `threads` times per sweep point instead of `R` times.
///
/// `f` must produce the same result for an index regardless of the state's
/// history (workspaces carry capacity, not results), or determinism breaks.
pub fn parallel_map_init<T, S, I, F>(count: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    parallel_map_init_with_threads(count, default_threads(), init, f)
}

/// [`parallel_map_init`] with an explicit worker-thread count.
pub fn parallel_map_init_with_threads<T, S, I, F>(
    count: usize,
    threads: usize,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if count == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(count);
    let telemetry = rit_telemetry::active();
    if let Some(t) = telemetry {
        t.set_gauge(t.metrics().worker_threads, threads as f64);
    }
    if threads <= 1 {
        let mut state = init();
        return (0..count)
            .map(|i| timed_item(telemetry, || f(&mut state, i)))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let batches: Vec<Vec<(usize, T)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut state = init();
                    let mut batch: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        batch.push((i, timed_item(telemetry, || f(&mut state, i))));
                    }
                    batch
                })
            })
            .collect();
        // Re-raise worker panics with their original payload so the
        // message (and anything downcastable) survives, instead of the
        // old static "worker thread panicked" string.
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));

    // Single merge pass: scatter each batch into its slots by index.
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, value) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every index filled"))
        .collect()
}

/// Runs one work item, accounting its wall time against the global
/// telemetry's worker busy-time metrics when one is installed. The
/// untelemetered path is the bare closure call — no clock reads. Shared
/// with the grid engine so `worker.*` metrics mean the same thing under
/// both schedulers. Each item is also a `worker.item` span, so spans
/// opened inside the item (substrate generation, auction phases) nest
/// under it in trace exports.
pub(crate) fn timed_item<T>(telemetry: Option<&'static Telemetry>, f: impl FnOnce() -> T) -> T {
    let Some(t) = telemetry else {
        return f();
    };
    let span = t.start_span(rit_telemetry::SpanKind::WorkerItem);
    let start = Instant::now();
    let out = f();
    drop(span);
    let busy = start.elapsed();
    let m = t.metrics();
    t.add(m.worker_items, 1);
    t.add(
        m.worker_busy_ns,
        u64::try_from(busy.as_nanos()).unwrap_or(u64::MAX),
    );
    t.record(
        m.worker_item_micros,
        u64::try_from(busy.as_micros()).unwrap_or(u64::MAX),
    );
    out
}

/// Derives a per-run seed from an experiment seed, a sweep-point index, and
/// a replication index (now owned by the adversary layer, re-exported here
/// for existing call sites).
pub use rit_adversary::derive_seed;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let out = parallel_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        assert!(parallel_map(0, |i| i).is_empty());
        assert_eq!(parallel_map(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn heavy_closure_parallelizes_correctly() {
        // Hash-like workload to catch ordering races.
        let out = parallel_map(64, |i| {
            let mut x = i as u64;
            for _ in 0..1000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            x
        });
        let expected: Vec<u64> = (0..64)
            .map(|i| {
                let mut x = i as u64;
                for _ in 0..1000 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                }
                x
            })
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn explicit_thread_counts_preserve_results() {
        let expected: Vec<usize> = (0..40).map(|i| i * 3).collect();
        for threads in [1, 2, 7, 64] {
            assert_eq!(
                parallel_map_with_threads(40, threads, |i| i * 3),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn per_worker_state_is_reused_not_shared() {
        // Each worker counts the indices it processed in its own state; the
        // per-index results must be identical to a stateless map and the
        // total work must cover every index exactly once.
        let out = parallel_map_init_with_threads(
            100,
            4,
            || 0usize,
            |calls, i| {
                *calls += 1;
                (i, *calls)
            },
        );
        let indices: Vec<usize> = out.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..100).collect::<Vec<_>>());
        // Every worker's call counter ends at its own batch size; the
        // counters over all indices must sum to the total count.
        let max_calls = out.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max_calls >= 100 / 4, "some worker claimed a full share");
    }

    #[test]
    fn worker_panics_preserve_their_payload() {
        let result = std::panic::catch_unwind(|| {
            parallel_map_with_threads(8, 2, |i| {
                if i == 5 {
                    panic!("item exploded: {i}");
                }
                i
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .expect("original String payload survives the join");
        assert_eq!(message, "item exploded: 5");
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("auto"), None);
        assert_eq!(parse_thread_override("-2"), None);
    }

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a = derive_seed(1, 2, 3);
        assert_eq!(a, derive_seed(1, 2, 3));
        let mut seen = std::collections::HashSet::new();
        for p in 0..50u64 {
            for r in 0..50u64 {
                assert!(
                    seen.insert(derive_seed(42, p, r)),
                    "collision at ({p}, {r})"
                );
            }
        }
    }
}
