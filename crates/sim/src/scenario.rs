//! Building §7-A evaluation scenarios: population + social graph +
//! incentive tree + truthful asks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rit_model::workload::WorkloadConfig;
use rit_model::{Ask, Population};
use rit_socialgraph::{generators, spanning};
use rit_tree::IncentiveTree;

/// Which synthetic social network substitutes for the paper's Twitter trace
/// (see DESIGN.md §2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphModel {
    /// Barabási–Albert preferential attachment with `m` edges per newcomer —
    /// the default; heavy-tailed like a follower graph.
    BarabasiAlbert {
        /// Edges attached by each arriving node.
        m: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    ErdosRenyi {
        /// Edge probability.
        p: f64,
    },
    /// Watts–Strogatz ring rewiring.
    WattsStrogatz {
        /// Even base degree.
        k: usize,
        /// Rewiring probability.
        beta: f64,
    },
}

impl Default for GraphModel {
    fn default() -> Self {
        Self::BarabasiAlbert { m: 2 }
    }
}

/// Configuration of one evaluation scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioConfig {
    /// Number of crowdsensing users `n`.
    pub num_users: usize,
    /// The §7-A user-distribution parameters.
    pub workload: WorkloadConfig,
    /// Social-graph model for the solicitation structure.
    pub graph: GraphModel,
}

impl ScenarioConfig {
    /// The paper's setup with `n` users (workload `m = 10`, `K ≤ 20`,
    /// `c ≤ 10`; BA graph).
    #[must_use]
    pub fn paper(num_users: usize) -> Self {
        Self {
            num_users,
            workload: WorkloadConfig::paper(),
            graph: GraphModel::default(),
        }
    }
}

/// A generated scenario: who the users are, how they were recruited, and
/// what they (truthfully) ask.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The private user profiles.
    pub population: Population,
    /// The solicitation tree (user `j` ↔ tree node `j + 1`).
    pub tree: IncentiveTree,
    /// Truthful asks, one per user.
    pub asks: Vec<Ask>,
}

impl Scenario {
    /// Generates a scenario from a seed: population profiles, social graph,
    /// spanning-forest incentive tree, and truthful asks.
    ///
    /// # Panics
    ///
    /// Panics if the workload configuration is invalid or the graph model's
    /// preconditions fail (e.g. BA with `n ≤ m`).
    #[must_use]
    pub fn generate(config: &ScenarioConfig, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        Self::generate_with(config, &mut rng)
    }

    /// Like [`Scenario::generate`] but drawing from a caller-supplied RNG.
    ///
    /// # Panics
    ///
    /// See [`Scenario::generate`].
    #[must_use]
    pub fn generate_with<R: Rng + ?Sized>(config: &ScenarioConfig, rng: &mut R) -> Self {
        let population = config
            .workload
            .sample_population(config.num_users, rng)
            .expect("workload config validated by caller");
        let graph = match config.graph {
            GraphModel::BarabasiAlbert { m } => {
                generators::barabasi_albert(config.num_users, m, rng)
            }
            GraphModel::ErdosRenyi { p } => generators::erdos_renyi(config.num_users, p, rng),
            GraphModel::WattsStrogatz { k, beta } => {
                generators::watts_strogatz(config.num_users, k, beta, rng)
            }
        };
        let tree = spanning::spanning_forest_tree(&graph);
        let asks = population.truthful_asks().into_vec();
        Self {
            population,
            tree,
            asks,
        }
    }

    /// Like [`Scenario::generate`], memoized through `cache`: the first
    /// request for `(config, seed)` generates, later ones share the `Arc`.
    /// See [`crate::substrate::SubstrateCache`].
    ///
    /// # Panics
    ///
    /// See [`Scenario::generate`].
    #[must_use]
    pub fn generate_cached(
        cache: &crate::substrate::SubstrateCache,
        config: &ScenarioConfig,
        seed: u64,
    ) -> std::sync::Arc<Self> {
        cache.scenario(config, seed)
    }

    /// Number of users.
    #[must_use]
    pub fn num_users(&self) -> usize {
        self.population.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_scenario() {
        let config = ScenarioConfig::paper(500);
        let s = Scenario::generate(&config, 7);
        assert_eq!(s.population.len(), 500);
        assert_eq!(s.tree.num_users(), 500);
        assert_eq!(s.asks.len(), 500);
        // Truthful asks reveal the profiles.
        for (j, ask) in s.asks.iter().enumerate() {
            assert_eq!(ask.task_type(), s.population[j].task_type());
            assert_eq!(ask.quantity(), s.population[j].capacity());
            assert_eq!(ask.unit_price(), s.population[j].unit_cost());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = ScenarioConfig::paper(200);
        let a = Scenario::generate(&config, 1);
        let b = Scenario::generate(&config, 1);
        let c = Scenario::generate(&config, 2);
        assert_eq!(a.asks, b.asks);
        assert_eq!(a.tree, b.tree);
        assert_ne!(a.asks, c.asks);
    }

    #[test]
    fn alternative_graph_models() {
        let mut config = ScenarioConfig::paper(300);
        config.graph = GraphModel::ErdosRenyi { p: 0.02 };
        assert_eq!(Scenario::generate(&config, 3).tree.num_users(), 300);
        config.graph = GraphModel::WattsStrogatz { k: 4, beta: 0.1 };
        assert_eq!(Scenario::generate(&config, 3).tree.num_users(), 300);
    }
}
